#!/usr/bin/env python
"""Back to real hardware: export the circuits as Verilog + VCD traces.

The paper's artefact was Verilog on an SRC-6; this example regenerates
that artefact from the netlists — a synthesizable module per circuit plus
a GTKWave-loadable waveform of the pipelined converter filling up and
then emitting one permutation per clock.

Run:  python examples/verilog_export.py [outdir]
Writes:  idx2perm_n8.v, knuth_shuffle_n8.v, perm2idx_n8.v, pipeline.vcd
"""

import pathlib
import sys

from repro.core.converter import IndexToPermutationConverter
from repro.core.inverse_converter import PermutationToIndexConverter
from repro.core.knuth import KnuthShuffleCircuit
from repro.hdl.export import VCDWriter, to_verilog
from repro.hdl.optimize import sweep
from repro.hdl.simulator import SequentialSimulator


def main() -> None:
    outdir = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path("export")
    outdir.mkdir(exist_ok=True)
    n = 8

    designs = {
        "idx2perm_n8": IndexToPermutationConverter(n).build_netlist(pipelined=True),
        "knuth_shuffle_n8": KnuthShuffleCircuit(n).build_netlist(pipelined=True),
        "perm2idx_n8": PermutationToIndexConverter(n).build_netlist(pipelined=True),
    }
    for name, nl in designs.items():
        swept, stats = sweep(nl)
        verilog = to_verilog(swept, module_name=name)
        path = outdir / f"{name}.v"
        path.write_text(verilog)
        print(f"{path}: {len(verilog.splitlines())} lines "
              f"({swept.num_logic_gates} gates, {swept.num_registers} regs; "
              f"sweep removed {stats.gates_removed} dead gates)")

    # cycle-accurate trace of the converter pipeline
    conv = IndexToPermutationConverter(4)
    nl = conv.build_netlist(pipelined=True)
    sim = SequentialSimulator(nl)
    vcd = VCDWriter({"index": conv.index_width, "word": conv.word_width})
    for i in list(range(12)) + [0] * 3:
        outs = sim.step({"index": i if i < 12 else 0})
        vcd.sample({"index": i if i < 12 else 0, "word": int(outs["word"][0])})
    trace = outdir / "pipeline.vcd"
    vcd.write(str(trace))
    print(f"{trace}: {vcd.cycles} cycles "
          f"(watch 'word' become valid after {conv.pipeline_register_stages} fill clocks)")


if __name__ == "__main__":
    main()
