#!/usr/bin/env python
"""The paper's §III-C Monte-Carlo experiment: estimating e from derangements.

Reproduces: "In the generation of 1,048,576 random 4-element permutations …
385,811 of them were derangements.  Therefore, we can approximate e as
e ≈ 1048576/385811 = 2.718." and the repeats at n = 8 and n = 16 — then
goes one step further and shards the workload over jump-ahead LFSR
substreams, showing the parallel decomposition is bit-exact.

Run:  python examples/monte_carlo_derangements.py [--samples 1048576]
"""

import argparse
import math
import time

from repro.analysis.derangements import derangement_experiment, subfactorial
from repro.apps.montecarlo import parallel_derangement_estimate
from repro.core.factorial import factorial


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=1 << 20)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args()

    print(f"{'n':>3}  {'samples':>9}  {'derangements':>12}  {'e estimate':>10}  "
          f"{'true d_n/n!':>11}  {'elapsed':>8}")
    for n in (4, 8, 16):
        t0 = time.perf_counter()
        result = derangement_experiment(n, samples=args.samples)
        dt = time.perf_counter() - t0
        exact = subfactorial(n) / factorial(n)
        print(f"{n:>3}  {result.samples:>9}  {result.derangements:>12}  "
              f"{result.e_estimate:>10.4f}  {exact:>11.6f}  {dt:>7.2f}s")

    print(f"\ntrue e = {math.e:.6f}")

    print(f"\nParallel run ({args.workers} jump-ahead substreams), n = 4:")
    seq = derangement_experiment(4, samples=args.samples)
    par = parallel_derangement_estimate(4, samples=args.samples, workers=args.workers)
    print(f"  sequential derangements: {seq.derangements}")
    print(f"  parallel   derangements: {par.derangements}")
    print(f"  bit-exact match: {seq.derangements == par.derangements}")


if __name__ == "__main__":
    main()
