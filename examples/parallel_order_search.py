#!/usr/bin/env python
"""Index-parallel search: shard 'all n! permutations' across processes.

The converter turns brute-force permutation search into an embarrassingly
parallel job: worker w unranks and processes its own contiguous slice of
``0..n!−1`` (no permutation lists cross process boundaries — only integer
ranges).  This example runs the BDD variable-ordering search of the
paper's introduction that way, validates the parallel result against the
sequential one, and prints a strong-scaling table.

Run:  python examples/parallel_order_search.py
"""

import time

from repro.apps.bdd import achilles_heel, best_variable_order, sift_order
from repro.core.factorial import factorial
from repro.parallel.experiments import parallel_best_order
from repro.perf.scaling import render_scaling_table, strong_scaling


def main() -> None:
    k = 3
    tt, n_vars = achilles_heel(k)
    total = factorial(n_vars)
    print(f"Achilles-heel function, {n_vars} variables; searching {total} orders.\n")

    t0 = time.perf_counter()
    sb, sbs, sw, sws = best_variable_order(tt, n_vars)
    t_seq = time.perf_counter() - t0
    print(f"sequential : best {sbs} nodes {sb}, worst {sws} nodes ({t_seq:.2f}s)")

    pb, pbs, pw, pws = parallel_best_order(tt, n_vars, workers=4)
    print(f"parallel   : best {pbs} nodes {pb}, worst {pws} nodes")
    print(f"results identical: {(sbs, sws) == (pbs, pws)}\n")

    import os

    print(f"Strong scaling (fixed problem, growing workers; host has "
          f"{os.cpu_count()} CPU(s) — speedup needs real cores):")
    points = strong_scaling(
        lambda w: parallel_best_order(tt, n_vars, workers=w)[1],
        worker_counts=(1, 2, 4),
    )
    print(render_scaling_table(points))

    print("\nWhen n! is out of reach, sifting gets close in O(n²) evaluations:")
    worst_order = list(range(0, n_vars, 2)) + list(range(1, n_vars, 2))
    order, size = sift_order(tt, n_vars, initial=worst_order, passes=3)
    print(f"  sifting from the worst order: {size} nodes via {order} "
          f"(exhaustive optimum: {sbs})")


if __name__ == "__main__":
    main()
