#!/usr/bin/env python
"""Permutation diffusion layers for ciphers (paper §I, crypto motivation).

"Permutations are used to create diffusion, where information in the
plaintext is spread out across the ciphertext."  A hardware index-to-
permutation converter lets a cipher derive its wire-crossing layer from a
key-dependent *index* on the fly.  This example builds a toy SPN whose
per-round bit permutations come from converter indices and measures the
avalanche effect round by round.

Run:  python examples/crypto_diffusion.py
"""

from repro.apps.crypto import PermutationDiffusionLayer, SPNetwork, avalanche_profile
from repro.core.factorial import factorial


def main() -> None:
    width = 16
    key = 0xDEADBEEFCAFEF00D

    print("Key-dependent diffusion layer from an index:")
    layer = PermutationDiffusionLayer.from_key(width, key)
    print(f"  key  = {key:#x}")
    print(f"  index = key mod {width}! = {key % factorial(width)}")
    print(f"  layer permutation: {' '.join(map(str, layer.permutation))}")
    block = 0x0001
    print(f"  forward({block:#06x}) = {layer.forward(block):#06x}; "
          f"inverse round-trips: {layer.inverse(layer.forward(block)) == block}\n")

    print("Avalanche vs round count (ideal: half the output bits flip):")
    print(f"{'rounds':>7}  {'mean flips':>10}  {'ratio to ideal':>14}")
    for rounds in (1, 2, 3, 4, 6):
        indices = [(key * (r + 1)) % factorial(width) for r in range(rounds)]
        spn = SPNetwork(width, layer_indices=indices)
        report = avalanche_profile(spn, samples=64)
        print(f"{rounds:>7}  {report.mean_flips:>10.2f}  {report.avalanche_ratio:>14.3f}")

    print("\nOutput Hamming-distance histogram at 4 rounds:")
    spn = SPNetwork(width, layer_indices=[(key * (r + 1)) % factorial(width) for r in range(4)])
    report = avalanche_profile(spn, samples=64)
    peak = max(report.histogram)
    for flips, count in enumerate(report.histogram):
        if count:
            print(f"  {flips:>2} bits: {'#' * (50 * count // peak)}")


if __name__ == "__main__":
    main()
