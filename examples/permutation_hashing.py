#!/usr/bin/env python
"""Unique-permutation hashing: contention in a shared-memory table.

The paper's §I headline application: "Such a circuit is needed in the
hardware implementation of unique-permutation hash functions to specify how
parallel machines interact through a shared memory.  Such hash functions
yield the minimal possible contention, as they probe each location with the
same probability regardless of which locations are currently occupied."

This example fills hash tables to increasing load factors with
(a) permutation probing — probe sequence = the converter output for a
    hashed index, a uniformly random permutation per key — and
(b) linear probing, and prints the mean/max probe counts.  Watch linear
probing's clustering penalty explode at high load while permutation probing
stays near the ideal 1/(1−α) curve.

Run:  python examples/permutation_hashing.py
"""

from repro.apps.hashing import simulate_contention


def main() -> None:
    table_size = 16
    trials = 200
    print(f"table size n = {table_size}, {trials} trials per point\n")
    print(f"{'load':>6}  {'perm mean':>9}  {'perm max':>8}  {'lin mean':>9}  "
          f"{'lin max':>8}  {'ideal 1/(1-a)':>13}")
    for load in (0.25, 0.5, 0.75, 0.875, 0.9375):
        res = simulate_contention(table_size, load_factor=load, trials=trials, seed=7)
        perm, lin = res["permutation"], res["linear"]
        # uniform-probing ideal: expected probes ≈ (1/α)·ln(1/(1−α)) per
        # successful insert averaged over the fill; the simple marginal
        # bound 1/(1−α) is quoted for the last insert.
        ideal = 1.0 / (1.0 - load + 1.0 / table_size)
        print(f"{load:>6.3f}  {perm.mean_probes:>9.3f}  {perm.max_probes:>8}  "
              f"{lin.mean_probes:>9.3f}  {lin.max_probes:>8}  {ideal:>13.2f}")

    print("\nPer-insert probe-count histogram at 94% load:")
    res = simulate_contention(table_size, load_factor=0.9375, trials=trials, seed=7)
    peak = max(max(res["permutation"].probe_histogram), max(res["linear"].probe_histogram))
    print(f"{'probes':>7}  {'permutation':>24}  {'linear':>24}")
    for probes in range(1, 13):
        p = res["permutation"].probe_histogram[probes]
        l = res["linear"].probe_histogram[probes]
        pb = "#" * (22 * p // peak)
        lb = "#" * (22 * l // peak)
        print(f"{probes:>7}  {pb:<24}  {lb:<24}")


if __name__ == "__main__":
    main()
