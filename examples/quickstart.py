#!/usr/bin/env python
"""Quickstart: the paper's two circuits in five minutes.

Walks through:
  1. the factorial number system (Table I),
  2. index → permutation conversion (functional and gate-level),
  3. the pipelined circuit producing one permutation per clock,
  4. random permutations — the indexed generator and the Knuth shuffle.

Run:  python examples/quickstart.py
"""

from repro import (
    FactorialDigits,
    IndexToPermutationConverter,
    KnuthShuffleCircuit,
    Permutation,
    RandomPermutationGenerator,
)


def section(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    section("1. The factorial number system (paper §II, Table I)")
    for index in (0, 5, 11, 23):
        digits = FactorialDigits.from_index(index, 4)
        print(f"  N={index:>2}  digits (MSB first) = {digits}  = {digits.expansion()}")

    section("2. Index -> permutation")
    conv = IndexToPermutationConverter(4)
    for index in (0, 5, 11, 23):
        perm = conv.convert(index)
        packed = Permutation(perm).packed_value()
        print(f"  N={index:>2}  ->  {' '.join(map(str, perm))}   (packed word {packed:#010b})")

    print("\n  Batch conversion is vectorised (NumPy):")
    print(" ", conv.convert_batch([0, 1, 2, 3]).tolist())

    section("3. The gate-level circuit, combinational and pipelined")
    netlist = conv.build_netlist(pipelined=True)
    print(f"  pipelined n=4 netlist: {netlist.summary()}")
    out = conv.simulate_netlist(range(6), pipelined=True)
    print(f"  cycle-accurate pipeline output (1 perm/clock after fill):")
    for i, row in enumerate(out):
        print(f"    clock {i + conv.pipeline_register_stages}:  {' '.join(map(str, row))}")

    section("4a. Random permutations: index generator (Fig. 2)")
    gen = RandomPermutationGenerator(4, m=16)
    sample = gen.sample(5)
    for row in sample:
        print("  ", " ".join(str(int(x)) for x in row))
    bias = gen.index_bias()
    print(f"  exact index bias at m=16: max/min probability ratio = {bias.ratio:.6f}")

    section("4b. Random permutations: Knuth shuffle circuit (Fig. 3)")
    shuffle = KnuthShuffleCircuit(8)
    sample = shuffle.sample(5)
    for row in sample:
        print("  ", " ".join(str(int(x)) for x in row))
    print(f"  circuit: {shuffle.num_stages} stages, "
          f"{shuffle.crossover_count()} crossovers (= n(n-1)/2), latency {shuffle.latency}")


if __name__ == "__main__":
    main()
