#!/usr/bin/env python
"""Data-stream reordering for pipelined FFT engines (paper §I, ref. [15]).

"Permutations can be used to reorder data streams in FPGA-based digital
signal processing engines … to automatically generate efficient parallel
pipelined FFT architectures."  Every classical FFT reorder — bit reversal,
stride/corner-turn — is one element of S_n, i.e. one converter index.

This example shows the indices, runs blocks through the cycle-accurate
double-buffered reorder engine, and verifies a radix-2 FFT built on the
explicit bit-reversal reorder against numpy.fft.

Run:  python examples/fft_stream_reorder.py
"""

import numpy as np

from repro.apps.dsp import (
    StreamReorderEngine,
    bit_reversal_permutation,
    fft_with_explicit_reorder,
    permutation_index,
    stride_permutation,
)


def main() -> None:
    n = 16
    bitrev = bit_reversal_permutation(n)
    stride4 = stride_permutation(n, 4)

    print(f"Classical FFT reorders on {n} points as converter indices:")
    print(f"  bit-reversal : perm = {' '.join(map(str, bitrev))}")
    print(f"                 index = {permutation_index(bitrev)}  (of {n}! - 1)")
    print(f"  stride-4     : perm = {' '.join(map(str, stride4))}")
    print(f"                 index = {permutation_index(stride4)}\n")

    engine = StreamReorderEngine(bitrev)
    stream = np.arange(2 * n)
    print("Double-buffered engine, one sample per clock, latency = one block:")
    log = engine.simulate_cycles(list(stream))
    fill = sum(1 for _, v in log if v is None)
    emitted = [v for _, v in log if v is not None]
    print(f"  fill cycles: {fill}  (= block size {engine.latency})")
    print(f"  first reordered block: {emitted[:n]}")
    assert emitted == engine.process(stream).tolist()

    rng = np.random.default_rng(42)
    x = rng.normal(size=256) + 1j * rng.normal(size=256)
    ours = fft_with_explicit_reorder(x)
    ref = np.fft.fft(x)
    err = float(np.max(np.abs(ours - ref)))
    print(f"\nRadix-2 DIT FFT over the explicit reorder vs numpy.fft.fft:")
    print(f"  256-point max abs error = {err:.2e}  (match: {err < 1e-9})")


if __name__ == "__main__":
    main()
