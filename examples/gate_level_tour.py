#!/usr/bin/env python
"""A tour of the gate-level substrate: from index bits to FPGA tables.

Builds the Fig.-1 converter and the Fig.-3 shuffle as real netlists,
verifies them against the arithmetic reference, pipelines them, runs
them through the unified synthesis flow (optimisation pass pipeline,
6-input LUT map, timing) and prints Table-III/IV-style resource rows —
the whole hardware story of the paper at software speed.

Run:  python examples/gate_level_tour.py
"""

from repro.core.converter import IndexToPermutationConverter
from repro.core.knuth import KnuthShuffleCircuit
from repro.flow import build_circuit, synthesize
from repro.fpga import render_resource_table
from repro.hdl.passes import PassManager
from repro.hdl.verify import assert_equivalent


def main() -> None:
    print("1. Build and formally check the n=4 converter netlist")
    conv = IndexToPermutationConverter(4)
    nl = conv.build_netlist()
    print(f"   {nl!r}")

    def reference(point):
        perm = conv.convert(point["index"])
        return {f"out{t}": perm[t] for t in range(4)}

    checked = assert_equivalent(nl, reference, domains={"index": 24}, samples=500)
    print(f"   equivalence-checked against the arithmetic model on {checked} vectors\n")

    print("2. Cycle-accurate pipeline: latency n-1 banks, then 1 perm/clock")
    out = conv.simulate_netlist(range(8), pipelined=True)
    for clk, row in enumerate(out):
        print(f"   clock {clk + conv.pipeline_register_stages}: index {clk} -> "
              f"{' '.join(map(str, row))}")

    print("\n3. The optimisation pass pipeline, equivalence-gated per pass")
    pipe_nl = conv.build_netlist(pipelined=True)
    result = PassManager(checked=True).run(pipe_nl)
    print(result.render())
    print(f"   reclaimed {result.gates_removed} gates and "
          f"{result.registers_removed} registers, every pass proven\n")

    print("4. Table-III-style resources, index-to-permutation converter")
    rows = [
        synthesize(build_circuit("converter", n, pipelined=True), n=n).report
        for n in (2, 4, 6, 8, 10)
    ]
    print(render_resource_table(rows))

    print("\n5. Table-IV-style resources, Knuth shuffle (per-stage LFSR RNGs)")
    rows = [
        synthesize(build_circuit("shuffle", n, pipelined=True), n=n).report
        for n in (2, 4, 6, 8)
    ]
    print(render_resource_table(rows))

    print("\n6. The same shuffle netlist actually *running*: 5 clocked draws")
    sim_out = KnuthShuffleCircuit(4, m=12).simulate_netlist(5)
    for row in sim_out:
        print("   ", " ".join(map(str, row)))


if __name__ == "__main__":
    main()
