#!/usr/bin/env python
"""The wired complement of the converter: Beneš permutation networks.

The converter turns an index into a permutation; a Beneš network turns a
permutation into a *wiring* — the minimal rearrangeable fabric that
physically reorders live data.  This example runs the full §I pipeline:

    index ──converter──▶ permutation ──looping router──▶ switch settings
          ──Beneš fabric (gate level)──▶ reordered data

and prints the fabric's minimality numbers (n·log2 n − n/2 switches in
2·log2 n − 1 stages).

Run:  python examples/benes_network.py
"""

import numpy as np

from repro.core.benes import BenesNetwork, route
from repro.core.converter import IndexToPermutationConverter
from repro.core.factorial import factorial


def main() -> None:
    n = 8
    conv = IndexToPermutationConverter(n)
    net = BenesNetwork(n, width=8)
    data = [0x10 * (i + 1) for i in range(n)]

    print(f"Beneš fabric for n = {n}: {net.switch_count} switches "
          f"(= n·log2 n − n/2), {net.stage_count} stages\n")

    print(f"{'index':>7}  {'permutation':<18} {'reordered data (gate level)'}")
    rng = np.random.default_rng(7)
    for index in [0, 1, factorial(n) // 2, factorial(n) - 1] + list(
        rng.integers(0, factorial(n), size=3)
    ):
        perm = conv.convert(int(index))
        out = net.simulate_netlist(perm, data)
        assert out == [data[perm[j]] for j in range(n)]
        print(f"{int(index):>7}  {' '.join(map(str, perm)):<18} "
              f"{' '.join(f'{v:02x}' for v in out)}")

    print("\nSwitch settings for the reversal (index n!−1):")
    settings = route(conv.convert(factorial(n) - 1))
    bits = settings.flatten()
    print(f"  control word ({len(bits)} bits): "
          f"{''.join('1' if b else '0' for b in bits)}")

    print("\nMinimality across sizes:")
    print(f"{'n':>5}  {'switches':>8}  {'stages':>6}  {'log2(n!) bound':>14}")
    import math

    for size in (4, 8, 16, 64, 256, 1024):
        b = BenesNetwork(size)
        bound = math.lgamma(size + 1) / math.log(2)
        print(f"{size:>5}  {b.switch_count:>8}  {b.stage_count:>6}  {bound:>14.0f}")


if __name__ == "__main__":
    main()
