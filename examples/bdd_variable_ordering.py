#!/usr/bin/env python
"""BDD variable-ordering search driven by permutation enumeration.

The paper's §I motivation: "The complexity of the BDD is strongly dependent
on the order in which variables are applied … the BDD of the Achilles Heel
function has a polynomial number of nodes for the optimum ordering and an
exponential number of nodes for the worst case ordering.  Determining the
optimum ordering involves the generation of typically many permutations."

This example enumerates ALL n! variable orders with the index-to-permutation
converter (exactly what the hardware would stream, one order per clock),
scores each by ROBDD node count, and reports the best/worst spread for the
Achilles-heel function x0·x1 + x2·x3 + x4·x5.

Run:  python examples/bdd_variable_ordering.py
"""

import time

from repro.apps.bdd import achilles_heel, bdd_size_under_order
from repro.core.factorial import factorial
from repro.core.sequences import all_permutations


def main() -> None:
    k = 3
    tt, n_vars = achilles_heel(k)
    print(f"Achilles-heel function with k={k} product terms ({n_vars} variables)")
    print(f"Searching all {n_vars}! = {factorial(n_vars)} variable orders…\n")

    t0 = time.perf_counter()
    sizes: dict[tuple[int, ...], int] = {}
    for order in all_permutations(n_vars):
        sizes[order] = bdd_size_under_order(tt, n_vars, order)
    elapsed = time.perf_counter() - t0

    best = min(sizes, key=sizes.get)
    worst = max(sizes, key=sizes.get)
    histogram: dict[int, int] = {}
    for s in sizes.values():
        histogram[s] = histogram.get(s, 0) + 1

    print(f"best  order: {best}  ->  {sizes[best]} nodes (paired variables)")
    print(f"worst order: {worst}  ->  {sizes[worst]} nodes (interleaved factors)")
    print(f"searched {len(sizes)} orders in {elapsed:.2f}s\n")

    print("node-count histogram over all orders:")
    for size in sorted(histogram):
        bar = "#" * (60 * histogram[size] // max(histogram.values()))
        print(f"  {size:>4} nodes: {histogram[size]:>4} orders {bar}")

    print("\nExponential gap versus k (paired order vs split order):")
    print(f"{'k':>3}  {'paired':>7}  {'split':>7}")
    for kk in (2, 3, 4, 5):
        tt_k, n_k = achilles_heel(kk)
        paired = bdd_size_under_order(tt_k, n_k, list(range(n_k)))
        split = bdd_size_under_order(
            tt_k, n_k, list(range(0, n_k, 2)) + list(range(1, n_k, 2))
        )
        print(f"{kk:>3}  {paired:>7}  {split:>7}")


if __name__ == "__main__":
    main()
