"""Cross-module integration tests: whole pipelines, end to end."""

import math

import numpy as np
import pytest

from repro import (
    IndexToPermutationConverter,
    KnuthShuffleCircuit,
    Permutation,
    RandomPermutationGenerator,
)
from repro.analysis.uniformity import uniformity_report
from repro.core.lehmer import rank_batch
from repro.fpga import synthesize
from repro.hdl.verify import assert_equivalent
from repro.rng.source import LFSRIndexSource


class TestGateLevelEquivalence:
    """The converter netlist is formally checked against the arithmetic
    reference through the generic equivalence harness."""

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_converter_exhaustive_over_valid_indices(self, n):
        conv = IndexToPermutationConverter(n)
        nl = conv.build_netlist()

        def reference(point):
            idx = point["index"]
            if idx >= conv.index_limit:
                return {}  # outside the specified domain
            perm = conv.convert(idx)
            out = {f"out{t}": perm[t] for t in range(n)}
            out["word"] = Permutation(perm).packed_value()
            return out

        checked = assert_equivalent(
            nl, reference, samples=300, domains={"index": conv.index_limit}
        )
        assert checked == 300

    def test_converter_n6_random(self):
        conv = IndexToPermutationConverter(6)
        nl = conv.build_netlist()

        def reference(point):
            return {f"out{t}": conv.convert(point["index"])[t] for t in range(6)}

        assert_equivalent(nl, reference, samples=100, domains={"index": conv.index_limit})


class TestFullRandomPermutationPipeline:
    def test_indexed_generator_distribution(self):
        """Fig.-2 pipeline end to end: LFSR → scale → converter, tested
        for approximate uniformity over the permutation space."""
        gen = RandomPermutationGenerator(4, m=20)
        perms = gen.sample(24_000)
        rep = uniformity_report(perms)
        assert rep.tv_distance < 0.05
        assert rep.counts.min() > 0

    def test_indexed_vs_shuffle_agree_statistically(self):
        """Both §III generators target the same uniform law."""
        a = RandomPermutationGenerator(4, m=20).sample(20_000)
        b = KnuthShuffleCircuit(4, m=20).sample(20_000)
        ca = np.bincount(rank_batch(a), minlength=24) / 20_000
        cb = np.bincount(rank_batch(b), minlength=24) / 20_000
        assert np.abs(ca - cb).max() < 0.02

    def test_source_to_converter_stream(self):
        conv = IndexToPermutationConverter(5)
        src = LFSRIndexSource(math.factorial(5), m=24)
        out = conv.stream(src, 500)
        assert len({tuple(r) for r in out}) > 100  # well spread over 120


class TestSynthesisPipeline:
    def test_both_circuits_synthesize_at_scale(self):
        """DESIGN.md's Table-III/IV pipeline runs for a spread of n."""
        for n in (2, 6, 10):
            conv_rep = synthesize(
                IndexToPermutationConverter(n).build_netlist(pipelined=True), n
            )
            assert conv_rep.total_luts >= 1 or n == 2
        shuf_rep = synthesize(KnuthShuffleCircuit(6, m=16).build_netlist(pipelined=True), 6)
        assert shuf_rep.registers > 0

    def test_shuffle_area_exceeds_converter_at_same_n(self):
        """Table IV vs Table III: shuffle rows carry the per-stage RNGs,
        so register counts are much higher."""
        n = 6
        conv = synthesize(IndexToPermutationConverter(n).build_netlist(pipelined=True), n)
        shuf = synthesize(KnuthShuffleCircuit(n).build_netlist(pipelined=True), n)
        assert shuf.registers > conv.registers


class TestPaperNarrative:
    def test_permutation_count_and_index_range(self):
        """'Since there are n! n-element permutations, the index ranges
        from 0 to n!−1.'"""
        conv = IndexToPermutationConverter(4)
        assert conv.index_limit == 24
        perms = {conv.convert(i) for i in range(24)}
        assert len(perms) == 24

    def test_one_permutation_per_clock_after_fill(self):
        """§II-B: 'after the first codeword emerges, a codeword emerges at
        each clock period' — counted on the cycle-accurate pipeline."""
        conv = IndexToPermutationConverter(4)
        idx = list(range(10))
        out = conv.simulate_netlist(idx, pipelined=True)
        assert out.shape == (10, 4)  # 10 inputs → 10 outputs, 1/clock

    def test_derangement_to_e_chain(self):
        """§III-C end to end at reduced scale: shuffle → derangements → e."""
        from repro.analysis.derangements import derangement_experiment

        r = derangement_experiment(4, samples=1 << 14)
        assert abs(r.e_estimate - math.e) < 0.15
