"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Gate-level property tests build netlists inside examples; relax deadlines.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=50,
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic NumPy generator for sampling-based tests."""
    return np.random.default_rng(12345)
