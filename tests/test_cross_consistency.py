"""Cross-implementation consistency: every independent path must agree.

The repository implements the index↔permutation map many times over —
arithmetic (three algorithms), vectorised, two gate-level architectures,
an inverse circuit, a serialised netlist, exported-order enumerations.
This suite drives one shared set of random test points through *all* of
them and insists on a single answer, which is the strongest regression
net the repo has: any future change that breaks one path trips here even
if that path's own unit tests were not updated.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.converter import IndexToPermutationConverter
from repro.core.inverse_converter import PermutationToIndexConverter
from repro.core.lehmer import (
    rank_batch,
    rank_fenwick,
    rank_naive,
    unrank_batch,
    unrank_fenwick,
    unrank_naive,
)
from repro.core.permutation import Permutation
from repro.core.sequences import PermutationSequence
from repro.core.serial_converter import SerialConverter
from repro.hdl.serialize import netlist_from_dict, netlist_to_dict
from repro.hdl.simulator import CombinationalSimulator


cases = st.integers(2, 7).flatmap(
    lambda n: st.tuples(st.just(n), st.integers(0, math.factorial(n) - 1))
)


@given(cases)
@settings(max_examples=30)
def test_six_software_paths_agree(case):
    n, index = case
    conv = IndexToPermutationConverter(n)
    paths = {
        "naive": unrank_naive(index, n),
        "fenwick": unrank_fenwick(index, n),
        "batch": tuple(int(x) for x in unrank_batch([index], n)[0]),
        "converter": conv.convert(index),
        "converter_batch": tuple(int(x) for x in conv.convert_batch([index])[0]),
        "sequence": PermutationSequence(n)[index],
    }
    assert len(set(paths.values())) == 1, paths


@given(cases)
@settings(max_examples=15)
def test_hardware_paths_agree_with_software(case):
    n, index = case
    want = unrank_naive(index, n)
    conv = IndexToPermutationConverter(n)
    assert tuple(conv.simulate_netlist([index])[0]) == want
    if n >= 2:
        assert tuple(SerialConverter(n).simulate_netlist([index])[0]) == want


@given(cases)
@settings(max_examples=15)
def test_ranking_paths_agree(case):
    n, index = case
    perm = unrank_naive(index, n)
    assert rank_naive(perm) == index
    assert rank_fenwick(perm) == index
    assert int(rank_batch(np.array([perm]))[0]) == index
    assert Permutation(perm).index == index
    inv = PermutationToIndexConverter(n)
    assert inv.convert(perm) == index
    assert int(inv.simulate_netlist(np.array([perm]))[0]) == index


@given(cases)
@settings(max_examples=10)
def test_serialised_netlist_still_converts(case):
    n, index = case
    conv = IndexToPermutationConverter(n)
    nl = netlist_from_dict(netlist_to_dict(conv.build_netlist()))
    outs = CombinationalSimulator(nl).run({"index": index})
    got = tuple(int(outs[f"out{t}"][0]) for t in range(n))
    assert got == conv.convert(index)


@given(st.integers(2, 6))
@settings(max_examples=10)
def test_full_bijection_every_path(n):
    """All n! indices, three paths, one total order."""
    total = math.factorial(n)
    a = [unrank_naive(i, n) for i in range(total)]
    b = [tuple(int(x) for x in row) for row in unrank_batch(range(total), n)]
    c = list(PermutationSequence(n))
    assert a == b == c
    assert len(set(a)) == total


def test_word_and_element_outputs_consistent():
    """The packed word output must equal the packed element outputs."""
    conv = IndexToPermutationConverter(5)
    nl = conv.build_netlist()
    sim = CombinationalSimulator(nl)
    outs = sim.run({"index": list(range(0, 120, 7))})
    for lane in range(len(outs["word"])):
        perm = tuple(int(outs[f"out{t}"][lane]) for t in range(5))
        assert int(outs["word"][lane]) == Permutation(perm).packed_value()


def test_knuth_and_indexed_generator_cover_same_space():
    """Both §III generators, the converter enumeration, and itertools all
    cover exactly the same set of n! permutations."""
    import itertools

    from repro.core.knuth import KnuthShuffleCircuit
    from repro.core.random_perm import RandomPermutationGenerator

    n = 4
    universe = set(itertools.permutations(range(n)))
    knuth = {tuple(int(x) for x in r) for r in KnuthShuffleCircuit(n, m=16).sample(5000)}
    indexed = {tuple(int(x) for x in r) for r in RandomPermutationGenerator(n, m=16).sample(5000)}
    enumerated = set(IndexToPermutationConverter(n))
    assert knuth == indexed == enumerated == universe
