"""Unified synthesis flow tests: FlowTarget, FlowResult, build_circuit."""

import pytest

from repro.core.converter import IndexToPermutationConverter
from repro.flow import (
    CIRCUITS,
    FlowResult,
    FlowTarget,
    build_circuit,
    render_flow_report,
    synthesize,
)
from repro.fpga.report import synthesize as raw_synthesize
from repro.hdl.simulator import SequentialSimulator


class TestFlowTarget:
    def test_defaults_select_full_pipeline(self):
        t = FlowTarget()
        assert t.k == 6 and t.passes is None and not t.checked

    def test_no_opt_constructor(self):
        t = FlowTarget.no_opt(k=4)
        assert t.passes == () and t.k == 4


class TestBuildCircuit:
    @pytest.mark.parametrize("circuit", CIRCUITS)
    def test_known_circuits_build(self, circuit):
        nl = build_circuit(circuit, 4)
        assert nl.num_logic_gates > 0

    def test_pipelined_flag_adds_registers(self):
        plain = build_circuit("converter", 4)
        piped = build_circuit("converter", 4, pipelined=True)
        assert plain.num_registers == 0
        assert piped.num_registers > 0

    def test_unknown_circuit_rejected(self):
        with pytest.raises(ValueError, match="unknown circuit 'alu'"):
            build_circuit("alu", 4)


class TestSynthesize:
    def test_full_flow_result_is_consistent(self):
        result = synthesize(build_circuit("converter", 6, pipelined=True), n=6)
        assert isinstance(result, FlowResult)
        assert result.total_luts == len(result.luts) == result.report.total_luts
        assert result.lut_levels == result.report.lut_levels
        assert result.fmax_mhz == result.report.fmax_mhz
        assert result.report.n == 6
        assert result.passes is not None
        assert result.gates_removed > 0

    def test_no_opt_matches_raw_fpga_synthesize(self):
        """passes=() reproduces the pre-flow behaviour bit for bit."""
        nl = build_circuit("converter", 5, pipelined=True)
        via_flow = synthesize(nl, FlowTarget.no_opt(), n=5)
        assert via_flow.passes is None
        assert via_flow.netlist is nl
        assert via_flow.report == raw_synthesize(nl, 5)

    def test_optimised_flow_never_worse_than_raw(self):
        nl = build_circuit("converter", 6, pipelined=True)
        raw = raw_synthesize(nl, 6)
        opt = synthesize(nl, n=6)
        assert opt.report.total_luts <= raw.total_luts
        assert opt.report.lut_levels <= raw.lut_levels
        assert opt.report.registers <= raw.registers

    def test_optimised_netlist_behaviour_preserved(self):
        nl = build_circuit("converter", 4, pipelined=True)
        result = synthesize(nl, n=4)
        s1, s2 = SequentialSimulator(nl), SequentialSimulator(result.netlist)
        for i in range(24):
            o1, o2 = s1.step({"index": i}), s2.step({"index": i})
            assert int(o1["word"][0]) == int(o2["word"][0])

    def test_explicit_pass_selection(self):
        nl = build_circuit("converter", 5)
        result = synthesize(nl, FlowTarget(passes=("sweep",)), n=5)
        assert [r.pass_name for r in result.passes.reports] == ["sweep"]

    def test_checked_target_gates_every_pass(self):
        nl = build_circuit("converter", 4)
        result = synthesize(nl, FlowTarget(checked=True), n=4)
        assert result.passes.checked

    def test_unknown_pass_name_surfaces(self):
        with pytest.raises(ValueError, match="unknown pass"):
            synthesize(build_circuit("converter", 3), FlowTarget(passes=("bogus",)))

    def test_k_reaches_the_mapper(self):
        nl = build_circuit("converter", 6)
        k4 = synthesize(nl, FlowTarget(k=4), n=6)
        k6 = synthesize(nl, FlowTarget(k=6), n=6)
        assert k4.total_luts > k6.total_luts

    def test_default_n_is_zero(self):
        assert synthesize(build_circuit("converter", 3)).report.n == 0


class TestRenderFlowReport:
    def test_contains_pass_table_and_resource_row(self):
        result = synthesize(build_circuit("converter", 4, pipelined=True), n=4)
        text = render_flow_report(result)
        assert "sweep" in text  # pass delta table
        assert "Freq" in text or "MHz" in text  # resource table header

    def test_no_opt_report_has_no_pass_table(self):
        result = synthesize(build_circuit("converter", 4), FlowTarget.no_opt(), n=4)
        text = render_flow_report(result)
        assert "sweep" not in text
