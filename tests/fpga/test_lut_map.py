"""Technology mapper: structural validity of the LUT covering."""

import pytest

from repro.core.converter import IndexToPermutationConverter
from repro.fpga.lut_map import lut_histogram, map_to_luts
from repro.hdl.gates import Op
from repro.hdl.netlist import Bus, Netlist


def _valid_cover(nl, luts, k):
    """Every LUT ≤ k inputs; every LUT input is a leaf or another root."""
    roots = {l.root for l in luts}
    leaves = {
        w for w, g in enumerate(nl.gates)
        if g.op in (Op.INPUT, Op.REG, Op.CONST0, Op.CONST1)
    }
    for lut in luts:
        assert lut.size <= k
        for w in lut.inputs:
            assert w in roots or w in leaves, f"dangling LUT input {w}"
    # every observable logic wire must be a root
    observable = {w for bus in nl.outputs.values() for w in bus}
    observable.update(r.d for r in nl.registers)
    for w in observable:
        if nl.gates[w].op not in (Op.INPUT, Op.REG, Op.CONST0, Op.CONST1):
            assert w in roots


@pytest.mark.parametrize("k", [3, 4, 6])
@pytest.mark.parametrize("n", [3, 5, 7])
def test_converter_cover_valid(n, k):
    nl = IndexToPermutationConverter(n).build_netlist()
    luts = map_to_luts(nl, k=k)
    _valid_cover(nl, luts, k)


def test_pipelined_cover_valid():
    nl = IndexToPermutationConverter(5).build_netlist(pipelined=True)
    luts = map_to_luts(nl, k=6)
    _valid_cover(nl, luts, 6)


def test_single_gate_maps_to_one_lut():
    nl = Netlist()
    a = nl.input("a", 2)
    nl.output("y", Bus([nl.gate(Op.AND, a[0], a[1])]))
    luts = map_to_luts(nl)
    assert len(luts) == 1 and luts[0].size == 2


def test_chain_absorbed_into_one_lut():
    """A 3-gate chain over 4 inputs fits one 4-LUT."""
    nl = Netlist()
    a = nl.input("a", 4)
    x = nl.gate(Op.AND, a[0], a[1])
    y = nl.gate(Op.OR, x, a[2])
    z = nl.gate(Op.XOR, y, a[3])
    nl.output("y", Bus([z]))
    luts = map_to_luts(nl, k=4)
    assert len(luts) == 1 and luts[0].size == 4


def test_k2_splits_chain():
    nl = Netlist()
    a = nl.input("a", 4)
    x = nl.gate(Op.AND, a[0], a[1])
    y = nl.gate(Op.OR, x, a[2])
    z = nl.gate(Op.XOR, y, a[3])
    nl.output("y", Bus([z]))
    luts = map_to_luts(nl, k=2)
    assert len(luts) == 3


def test_multi_fanout_terminates_cone():
    nl = Netlist()
    a = nl.input("a", 3)
    shared = nl.gate(Op.AND, a[0], a[1])
    y1 = nl.gate(Op.OR, shared, a[2])
    y2 = nl.gate(Op.XOR, shared, a[2])
    nl.output("y1", Bus([y1]))
    nl.output("y2", Bus([y2]))
    luts = map_to_luts(nl, k=4)
    assert {l.root for l in luts} == {shared, y1, y2}


def test_constants_do_not_count_as_inputs():
    nl = Netlist()
    a = nl.input("a", 1)
    # XOR with register output: register is a real leaf; const folded away
    q = nl.register(a[0])
    y = nl.gate(Op.XOR, a[0], q)
    nl.output("y", Bus([y]))
    luts = map_to_luts(nl)
    assert all(l.size <= 2 for l in luts)


def test_dead_logic_not_mapped():
    nl = Netlist()
    a = nl.input("a", 2)
    nl.gate(Op.AND, a[0], a[1])  # dangling
    nl.output("y", Bus([nl.gate(Op.OR, a[0], a[1])]))
    luts = map_to_luts(nl)
    assert len(luts) == 1


def test_histogram_sums_to_total():
    nl = IndexToPermutationConverter(6).build_netlist()
    luts = map_to_luts(nl, k=6)
    hist = lut_histogram(luts, k=6)
    assert sum(hist.values()) == len(luts)
    assert all(size in hist for size in range(1, 7))


def test_k_below_two_rejected():
    nl = Netlist()
    with pytest.raises(ValueError):
        map_to_luts(nl, k=1)
