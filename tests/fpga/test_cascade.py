"""LUT-cascade sizing tests (paper §II-B remark, ref. [16])."""

import pytest

from repro.fpga.cascade import CascadeCell, converter_cascade
from repro.fpga.lut_map import map_to_luts
from repro.core.converter import IndexToPermutationConverter


class TestCell:
    def test_memory_formula(self):
        cell = CascadeCell(stage=0, index_bits_in=5, partial_bits_in=0,
                           index_bits_out=3, partial_bits_out=2)
        assert cell.address_bits == 5
        assert cell.word_bits == 5
        assert cell.memory_bits == 32 * 5


class TestConverterCascade:
    def test_n4_structure(self):
        rep = converter_cascade(4)
        assert rep.levels == 4
        c0 = rep.cells[0]
        # stage 0: 5-bit index in, no partial output yet
        assert (c0.index_bits_in, c0.partial_bits_in) == (5, 0)
        assert c0.partial_bits_out == 2
        # last cell emits the full word and no index rail
        last = rep.cells[-1]
        assert last.index_bits_out == 0
        assert last.partial_bits_out == 8

    def test_rails_grow_monotonically(self):
        rep = converter_cascade(6)
        partials = [c.partial_bits_in for c in rep.cells]
        assert partials == sorted(partials)

    def test_index_rail_shrinks(self):
        rep = converter_cascade(6)
        idx = [c.index_bits_in for c in rep.cells if c.index_bits_in]
        assert idx == sorted(idx, reverse=True)

    def test_delay_linear(self):
        assert converter_cascade(9).levels == 9

    def test_memory_explodes_exponentially(self):
        """The cascade trade-off: memory is super-polynomial in n, so the
        discrete gate design must win for growing n."""
        mems = [converter_cascade(n).total_memory_bits for n in (3, 5, 7, 9)]
        ratios = [b / a for a, b in zip(mems, mems[1:])]
        assert all(r > 8 for r in ratios)

    def test_crossover_vs_discrete_logic(self):
        """Small n: one-memory-per-stage is compact; by n ≈ 8 the gate
        netlist (LUT-mapped) needs far fewer bits than the cascade ROMs."""
        n_small, n_big = 3, 8
        def lut_bits(n):
            luts = map_to_luts(IndexToPermutationConverter(n).build_netlist(), k=6)
            return sum((1 << l.size) for l in luts)  # LUT mask bits

        assert converter_cascade(n_small).total_memory_bits < 10 * lut_bits(n_small)
        assert converter_cascade(n_big).total_memory_bits > 10 * lut_bits(n_big)
