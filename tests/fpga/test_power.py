"""Switching activity and toggle-order tests."""

import numpy as np
import pytest

from repro.core.converter import IndexToPermutationConverter
from repro.core.orders import sjt_permutations
from repro.core.sequences import all_permutations
from repro.fpga.power import (
    ActivityReport,
    estimate_dynamic_power_mw,
    measure_activity,
    output_toggle_comparison,
    word_toggles,
)
from repro.hdl.gates import Op
from repro.hdl.netlist import Bus, Netlist


class TestActivity:
    def test_static_inputs_no_toggles(self):
        """After the n−1-cycle pipeline fill settles, a constant input
        produces zero further switching: extending the run adds nothing."""
        nl = IndexToPermutationConverter(4).build_netlist(pipelined=True)
        settled = measure_activity(nl, [{"index": 5}] * 6)  # fill (3) + slack
        longer = measure_activity(nl, [{"index": 5}] * 20)
        assert longer.total_toggles == settled.total_toggles

    def test_changing_inputs_toggle(self):
        nl = IndexToPermutationConverter(4).build_netlist()
        rep = measure_activity(nl, [{"index": i} for i in range(20)])
        assert rep.total_toggles > 0
        assert 0.0 < rep.mean_activity < 1.0

    def test_counter_lsb_is_hottest_index_bit(self):
        """The low index bit toggles every cycle under a counter —
        a sanity anchor for the activity measurement."""
        nl = Netlist()
        a = nl.input("a", 4)
        nl.output("y", Bus([nl.gate(Op.NOT, a[0])]))
        rep = measure_activity(nl, [{"a": i} for i in range(16)])
        assert rep.peak_activity == 1.0

    def test_empty_stream_rejected(self):
        nl = IndexToPermutationConverter(3).build_netlist()
        with pytest.raises(ValueError):
            measure_activity(nl, [])

    def test_power_scales_with_clock(self):
        nl = IndexToPermutationConverter(4).build_netlist()
        rep = measure_activity(nl, [{"index": i} for i in range(24)])
        assert estimate_dynamic_power_mw(rep, 200.0) == pytest.approx(
            2 * estimate_dynamic_power_mw(rep, 100.0)
        )

    def test_report_fields(self):
        rep = ActivityReport(cycles=10, live_wires=5, total_toggles=20,
                             per_wire_rate=np.array([0.1, 0.2, 0.3, 0.4, 1.0]))
        assert rep.mean_activity == pytest.approx(0.4)
        assert rep.peak_activity == 1.0


class TestWordToggles:
    def test_constant_sequence(self):
        total, worst = word_toggles(iter([(0, 1, 2, 3)] * 5), 4)
        assert (total, worst) == (0, 0)

    def test_single_swap_costs_at_most_two_elements(self):
        total, worst = word_toggles(iter([(0, 1, 2, 3), (1, 0, 2, 3)]), 4)
        assert worst <= 4  # two 2-bit elements


class TestToggleComparison:
    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_sjt_wins_on_totals(self, n):
        cmp = output_toggle_comparison(n)
        assert cmp.sjt_order_toggles < cmp.counter_order_toggles
        assert cmp.mean_reduction > 1.0

    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_sjt_bounded_worst_step(self, n):
        """The minimal-change guarantee: one adjacent pair per step."""
        from repro.core.factorial import element_width

        cmp = output_toggle_comparison(n)
        assert cmp.sjt_worst_step <= 2 * element_width(n)

    def test_counter_worst_step_is_full_word(self):
        """Counter order periodically rewrites the entire word."""
        from repro.core.factorial import word_width

        cmp = output_toggle_comparison(4)
        assert cmp.counter_worst_step == word_width(4)

    def test_step_count(self):
        assert output_toggle_comparison(4).steps == 23
