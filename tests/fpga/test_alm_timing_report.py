"""ALM packing, timing model and resource report tests."""

import pytest

from repro.core.converter import IndexToPermutationConverter
from repro.core.knuth import KnuthShuffleCircuit
from repro.fpga.alm import pack_alms
from repro.fpga.lut_map import LUT, map_to_luts
from repro.fpga.report import ResourceReport, render_resource_table, synthesize
from repro.fpga.timing import DelayModel, estimate_fmax_mhz, lut_levels
from repro.hdl.gates import Op
from repro.hdl.netlist import Bus, Netlist


class TestALM:
    def test_two_small_share_one_alm(self):
        luts = [LUT(0, (1, 2)), LUT(3, (4, 5, 6))]
        assert pack_alms(luts) == 1

    def test_large_luts_take_own_alm(self):
        luts = [LUT(0, tuple(range(1, 7))), LUT(9, tuple(range(10, 15)))]
        assert pack_alms(luts) == 2

    def test_mixed(self):
        luts = [LUT(0, (1,)), LUT(2, (3, 4)), LUT(5, (6, 7, 8)), LUT(9, tuple(range(10, 16)))]
        assert pack_alms(luts) == 3  # ceil(3/2) + 1

    def test_empty(self):
        assert pack_alms([]) == 0


class TestTiming:
    def _chain(self, length):
        nl = Netlist()
        a = nl.input("a", length + 1)
        w = a[0]
        for i in range(length):
            w = nl.gate(Op.AND, w, a[i + 1])
        nl.output("y", Bus([w]))
        return nl

    def test_levels_of_chain_with_k2(self):
        nl = self._chain(4)
        luts = map_to_luts(nl, k=2)
        assert lut_levels(nl, luts) == 4

    def test_levels_collapse_with_wide_luts(self):
        nl = self._chain(4)
        luts = map_to_luts(nl, k=6)
        assert lut_levels(nl, luts) == 1

    def test_fmax_decreases_with_depth(self):
        model = DelayModel()
        assert model.fmax_mhz(1) > model.fmax_mhz(5) > model.fmax_mhz(20)

    def test_period_formula(self):
        model = DelayModel(t_reg_ns=1.0, t_lut_ns=0.5, t_route_ns=0.5)
        assert model.period_ns(3) == 4.0
        assert model.fmax_mhz(3) == 250.0

    def test_estimate_on_real_circuit(self):
        nl = IndexToPermutationConverter(5).build_netlist()
        luts = map_to_luts(nl)
        f = estimate_fmax_mhz(nl, luts)
        assert 1.0 < f < 1000.0

    def test_empty_netlist_levels_zero(self):
        nl = Netlist()
        a = nl.input("a", 1)
        nl.output("y", a)
        assert lut_levels(nl, map_to_luts(nl)) == 0


class TestReport:
    def test_fields_consistent(self):
        nl = IndexToPermutationConverter(6).build_netlist(pipelined=True)
        rep = synthesize(nl, 6)
        assert rep.n == 6
        assert rep.total_luts == sum(rep.lut_hist.values())
        assert rep.registers == nl.num_registers
        assert rep.packed_alms <= rep.total_luts
        assert rep.fmax_mhz > 0

    def test_resources_grow_with_n(self):
        """The Table-III trend: area strictly increasing in n."""
        reps = [
            synthesize(IndexToPermutationConverter(n).build_netlist(), n)
            for n in (3, 5, 7, 9)
        ]
        luts = [r.total_luts for r in reps]
        assert luts == sorted(luts) and len(set(luts)) == len(luts)

    def test_pipelined_has_registers_and_higher_fmax(self):
        """Pipelining trades registers for clock rate (§II-B)."""
        n = 8
        comb = synthesize(IndexToPermutationConverter(n).build_netlist(), n)
        pipe = synthesize(IndexToPermutationConverter(n).build_netlist(pipelined=True), n)
        assert comb.registers == 0 and pipe.registers > 0
        assert pipe.fmax_mhz > comb.fmax_mhz

    def test_shuffle_reports(self):
        nl = KnuthShuffleCircuit(5, m=12).build_netlist()
        rep = synthesize(nl, 5)
        assert rep.registers == sum(KnuthShuffleCircuit(5, m=12).widths)

    def test_render_table(self):
        reps = [
            synthesize(IndexToPermutationConverter(n).build_netlist(), n)
            for n in (3, 4)
        ]
        text = render_resource_table(reps)
        lines = text.splitlines()
        assert len(lines) == 3
        assert "Freq" in lines[0]

    def test_luts_of_size(self):
        rep = synthesize(IndexToPermutationConverter(4).build_netlist(), 4)
        assert rep.luts_of_size(99) == 0
