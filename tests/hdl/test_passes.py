"""Pass pipeline tests: stock passes, the manager, and checked mode."""

import pytest

from repro.core.converter import IndexToPermutationConverter
from repro.core.knuth import KnuthShuffleCircuit
from repro.errors import PassVerificationError
from repro.hdl.gates import Op
from repro.hdl.netlist import Bus, Netlist
from repro.hdl.passes import (
    DEFAULT_PIPELINE,
    PASSES,
    ConstantFoldPass,
    DedupePass,
    DeMorganPass,
    PassManager,
    RegisterConstPropPass,
    SweepPass,
    check_equivalent,
    default_pipeline,
    rebuild,
    resolve_passes,
)
from repro.hdl.simulator import CombinationalSimulator, SequentialSimulator
from repro.obs.tracing import Tracer


def _same_comb(a: Netlist, b: Netlist, stimulus: dict) -> None:
    ra = CombinationalSimulator(a).run(stimulus)
    rb = CombinationalSimulator(b).run(stimulus)
    for key in ra:
        assert [int(v) for v in ra[key]] == [int(v) for v in rb[key]]


def _same_seq(a: Netlist, b: Netlist, stimuli: list, cycles: int = 20) -> None:
    sa, sb = SequentialSimulator(a), SequentialSimulator(b)
    for i in range(cycles):
        stim = stimuli[i % len(stimuli)] if stimuli else {}
        oa, ob = sa.step(stim), sb.step(stim)
        assert {k: int(v[0]) for k, v in oa.items()} == {
            k: int(v[0]) for k, v in ob.items()
        }


class TestRebuild:
    def test_identity_roundtrip(self):
        nl = IndexToPermutationConverter(4).build_netlist(pipelined=True)
        out = rebuild(nl)
        assert out.summary() == nl.summary()
        _same_seq(nl, out, [{"index": i} for i in range(24)])

    def test_ports_preserved(self):
        nl = Netlist("t")
        nl.input("unused", 3)
        a = nl.input("a", 1)
        nl.output("y", a)
        out = rebuild(nl)
        assert list(out.inputs) == ["unused", "a"]
        assert out.inputs["unused"].width == 3

    def test_does_not_mutate_source(self):
        nl = IndexToPermutationConverter(3).build_netlist()
        before = (list(nl.gates), list(nl.registers))
        rebuild(nl, fold=True, cse=True)
        assert (list(nl.gates), list(nl.registers)) == before


class TestConstantFoldPass:
    def test_folds_unfolded_netlist(self):
        nl = Netlist("t", fold=False, cse=False)
        a = nl.input("a", 1)
        one = nl._new_wire(Op.CONST1, ())
        nl._const1 = one
        w = nl.gate(Op.AND, a[0], one)  # a & 1 == a, but fold is off
        nl.output("y", Bus([w]))
        assert nl.num_logic_gates == 1
        out = ConstantFoldPass().run(nl)
        # the AND folded to its input; the stale gate is dead, not live
        assert out.outputs["y"][0] == out.inputs["a"][0]
        _same_comb(nl, out, {"a": [0, 1]})


class TestDedupePass:
    def test_merges_fanout_duplicates(self):
        nl = Netlist("t", fold=False, cse=False)
        a = nl.input("a", 2)
        w1 = nl.gate(Op.XOR, a[0], a[1])
        w2 = nl.gate(Op.XOR, a[0], a[1])  # structural duplicate
        w3 = nl.gate(Op.XOR, a[1], a[0])  # commutative duplicate
        nl.output("y", Bus([nl.gate(Op.AND, w1, w2), w3]))
        out = DedupePass().run(nl)
        assert out.num_logic_gates < nl.num_logic_gates
        assert out.outputs["y"][1] == out.gates[out.outputs["y"][0]].fanin[0]
        _same_comb(nl, out, {"a": [0, 1, 2, 3]})


class TestDeMorganPass:
    def _run(self, nl):
        out = DeMorganPass().run(nl)
        swept = SweepPass().run(out)
        return out, swept

    def test_inverter_fusion(self):
        nl = Netlist("t")
        a = nl.input("a", 2)
        nl.output("y", Bus([nl.gate(Op.NOT, nl.gate(Op.AND, a[0], a[1]))]))
        _, swept = self._run(nl)
        assert swept.gate_counts() == {Op.NAND: 1}
        _same_comb(nl, swept, {"a": [0, 1, 2, 3]})

    def test_de_morgan_collapse(self):
        nl = Netlist("t")
        a = nl.input("a", 2)
        w = nl.gate(Op.AND, nl.gate(Op.NOT, a[0]), nl.gate(Op.NOT, a[1]))
        nl.output("y", Bus([w]))
        _, swept = self._run(nl)
        assert swept.gate_counts() == {Op.NOR: 1}
        _same_comb(nl, swept, {"a": [0, 1, 2, 3]})

    def test_xor_polarity_absorption(self):
        nl = Netlist("t")
        a = nl.input("a", 2)
        one_flip = nl.gate(Op.XOR, nl.gate(Op.NOT, a[0]), a[1])
        two_flip = nl.gate(Op.XOR, nl.gate(Op.NOT, a[0]), nl.gate(Op.NOT, a[1]))
        nl.output("y", Bus([one_flip, two_flip]))
        _, swept = self._run(nl)
        counts = swept.gate_counts()
        assert counts.get(Op.NOT, 0) == 0
        assert counts[Op.XNOR] == 1 and counts[Op.XOR] == 1
        _same_comb(nl, swept, {"a": [0, 1, 2, 3]})

    def test_never_increases_gate_count_on_real_circuit(self):
        nl = IndexToPermutationConverter(5).build_netlist()
        out = DeMorganPass().run(nl)
        assert out.num_live_gates <= nl.num_live_gates
        _same_comb(nl, out, {"index": list(range(120))})


class TestRegisterConstPropPass:
    def test_register_tied_to_init_constant_deleted(self):
        nl = Netlist("t")
        a = nl.input("a", 1)
        q = nl.register(nl.const(0), init=False)
        nl.output("y", Bus([nl.gate(Op.OR, a[0], q)]))
        out = RegisterConstPropPass().run(nl)
        assert out.num_registers == 0
        # OR with constant 0 folds straight through to the input
        assert out.outputs["y"][0] == out.inputs["a"][0]
        _same_seq(nl, out, [{"a": 0}, {"a": 1}])

    def test_register_tied_to_other_constant_survives(self):
        """init=0 but D=1: Q is 0 then 1 — not a constant, must stay."""
        nl = Netlist("t")
        a = nl.input("a", 1)
        q = nl.register(nl.const(1), init=False)
        nl.output("y", Bus([nl.gate(Op.AND, a[0], q)]))
        out = RegisterConstPropPass().run(nl)
        assert out.num_registers == 1
        _same_seq(nl, out, [{"a": 1}])

    def test_self_loop_hold_register_deleted(self):
        nl = Netlist("t")
        a = nl.input("a", 1)
        q = nl._new_wire(Op.REG, ())
        from repro.hdl.netlist import Register

        nl.registers.append(Register(q=q, d=q, init=True))
        nl.output("y", Bus([nl.gate(Op.AND, a[0], q)]))
        out = RegisterConstPropPass().run(nl)
        assert out.num_registers == 0
        _same_seq(nl, out, [{"a": 0}, {"a": 1}])

    def test_chain_through_constant_register_collapses(self):
        nl = Netlist("t")
        a = nl.input("a", 1)
        q1 = nl.register(nl.const(1), init=True)
        q2 = nl.register(q1, init=True)  # constant only via q1
        nl.output("y", Bus([nl.gate(Op.AND, a[0], q2)]))
        out = RegisterConstPropPass().run(nl)
        assert out.num_registers == 0
        _same_seq(nl, out, [{"a": 0}, {"a": 1}])

    def test_fires_on_pipelined_converter(self):
        """The pipelined converter registers constant low-order stage bits."""
        nl = IndexToPermutationConverter(4).build_netlist(pipelined=True)
        out = RegisterConstPropPass().run(nl)
        assert out.num_registers < nl.num_registers
        _same_seq(nl, out, [{"index": i} for i in range(24)])


class TestSweepPass:
    def test_matches_legacy_optimize_sweep(self):
        from repro.hdl.optimize import sweep

        nl = IndexToPermutationConverter(5).build_netlist()
        via_pass = SweepPass().run(nl)
        via_legacy, stats = sweep(nl)
        assert via_pass.summary() == via_legacy.summary()
        assert stats.gates_removed == nl.num_logic_gates - via_pass.num_logic_gates


class TestRegistry:
    def test_default_pipeline_names(self):
        assert DEFAULT_PIPELINE == ("regprop", "demorgan", "fold", "dedupe", "sweep")
        assert [p.name for p in default_pipeline()] == list(DEFAULT_PIPELINE)

    def test_every_registered_pass_constructs(self):
        for name, ctor in PASSES.items():
            assert ctor().name == name

    def test_resolve_mixed_names_and_instances(self):
        resolved = resolve_passes(["sweep", DeMorganPass()])
        assert [p.name for p in resolved] == ["sweep", "demorgan"]

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown pass 'bogus'"):
            resolve_passes(["bogus"])


class TestCheckEquivalent:
    def test_small_combinational_uses_bdd(self):
        nl = IndexToPermutationConverter(3).build_netlist()
        method, points = check_equivalent(nl, SweepPass().run(nl))
        assert method == "bdd"
        assert points == 1 << 3

    def test_sequential_uses_simulation(self):
        nl = IndexToPermutationConverter(3).build_netlist(pipelined=True)
        method, points = check_equivalent(nl, SweepPass().run(nl))
        assert method == "simulation"
        assert points > 0

    def test_wide_combinational_falls_back_to_simulation(self):
        nl = IndexToPermutationConverter(6).build_netlist()  # 10 input bits
        method, _ = check_equivalent(nl, SweepPass().run(nl), bdd_bit_limit=4)
        assert method == "simulation"

    def test_detects_broken_rewrite(self):
        nl = Netlist("t")
        a = nl.input("a", 2)
        nl.output("y", Bus([nl.gate(Op.AND, a[0], a[1])]))
        bad = Netlist("t")
        b = bad.input("a", 2)
        bad.output("y", Bus([bad.gate(Op.OR, b[0], b[1])]))
        with pytest.raises(AssertionError, match="counterexample"):
            check_equivalent(nl, bad)


class _BrokenPass:
    """A 'pass' that swaps the output polarity — must be caught."""

    name = "broken"

    def run(self, nl: Netlist) -> Netlist:
        out = rebuild(nl)
        name, bus = next(iter(out.outputs.items()))
        out.outputs[name] = Bus(out.gate(Op.NOT, w) for w in bus)
        return out


class TestPassManager:
    def test_full_pipeline_on_converter(self):
        nl = IndexToPermutationConverter(4).build_netlist(pipelined=True)
        result = PassManager().run(nl)
        assert [r.pass_name for r in result.reports] == list(DEFAULT_PIPELINE)
        assert result.gates_removed > 0
        assert result.registers_removed > 0
        assert not result.checked
        _same_seq(nl, result.netlist, [{"index": i} for i in range(24)])

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_checked_pipeline_converter(self, n):
        nl = IndexToPermutationConverter(n).build_netlist(pipelined=True)
        result = PassManager(checked=True).run(nl)
        assert result.checked
        assert all(r.check_method in ("bdd", "simulation") for r in result.reports)
        assert all(r.check_points > 0 for r in result.reports)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_checked_pipeline_shuffle(self, n):
        nl = KnuthShuffleCircuit(n, m=8).build_netlist()
        result = PassManager(checked=True).run(nl)
        assert result.checked

    def test_checked_combinational_uses_bdd_proof(self):
        nl = IndexToPermutationConverter(3).build_netlist()
        result = PassManager(checked=True).run(nl)
        assert {r.check_method for r in result.reports} == {"bdd"}

    def test_broken_pass_raises_and_names_itself(self):
        nl = IndexToPermutationConverter(3).build_netlist()
        manager = PassManager(["sweep", _BrokenPass()], checked=True)
        with pytest.raises(PassVerificationError, match="'broken'"):
            manager.run(nl)

    def test_unchecked_manager_lets_broken_pass_through(self):
        """checked=False skips the gate — that is the documented contract."""
        nl = IndexToPermutationConverter(3).build_netlist()
        result = PassManager([_BrokenPass()]).run(nl)
        assert result.reports[0].check_method is None

    def test_tracer_gets_one_span_per_pass(self):
        tracer = Tracer()
        nl = IndexToPermutationConverter(3).build_netlist()
        with tracer.span("pipeline"):
            PassManager(checked=True, tracer=tracer).run(nl)
        root = tracer.roots[0]
        assert [c.name for c in root.children] == [
            f"pass:{name}" for name in DEFAULT_PIPELINE
        ]
        assert all("gates" in c.attrs for c in root.children)
        assert all("check" in c.attrs for c in root.children)

    def test_metrics_recorded_when_enabled(self):
        from repro.obs.metrics import REGISTRY

        REGISTRY.enable()
        try:
            REGISTRY.reset()
            nl = IndexToPermutationConverter(4).build_netlist()
            PassManager(checked=True).run(nl)
            text = REGISTRY.render_exposition()
        finally:
            REGISTRY.disable()
        assert 'repro_pass_runs_total{pass_name="sweep"}' in text
        assert "repro_pass_equivalence_checks_total" in text
        assert "repro_pass_wall_seconds" in text

    def test_render_delta_table(self):
        nl = IndexToPermutationConverter(4).build_netlist()
        result = PassManager(checked=True).run(nl)
        table = result.render()
        for name in DEFAULT_PIPELINE:
            assert name in table
        assert "bdd:" in table

    def test_pipeline_idempotent(self):
        nl = IndexToPermutationConverter(5).build_netlist()
        once = PassManager().run(nl).netlist
        again = PassManager().run(once)
        assert again.gates_removed == 0
        assert again.registers_removed == 0
