"""Lane/word boundary transposes: every packing helper round-trips.

The simulators and the vector engine cross the lane boundary through a
small family of transposes — ``bits_from_ints``/``ints_from_bits`` on
the boolean side, ``pack_lanes``/``unpack_lanes`` on bigints,
``lanes_to_words``/``words_to_lanes``/``vec_from_ints`` on word arrays.
Hypothesis sweeps widths 1–128 so every dtype tier (uint8, uint16,
uint32, uint64 and the >64-bit bigint fallback) and every word-boundary
edge (63/64/65, 127/128) is exercised, and asserts the bigint and
word-array packings are the *same bytes*.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hdl.compile import pack_lanes, unpack_lanes, words_for
from repro.hdl.simulator import bits_from_ints, ints_from_bits
from repro.hdl.vector import (
    lanes_to_words,
    u64_from_int,
    vec_from_ints,
    vector_constants,
    words_to_lanes,
)


@st.composite
def width_and_values(draw):
    width = draw(st.integers(1, 128))
    n = draw(st.integers(1, 20))
    values = [
        draw(st.integers(0, (1 << width) - 1)) for _ in range(n)
    ]
    return width, values


@given(width_and_values())
@settings(max_examples=150)
def test_bits_from_ints_round_trip(case):
    width, values = case
    lanes = bits_from_ints(values, width)
    assert len(lanes) == width
    assert all(lane.dtype == bool and lane.shape == (len(values),) for lane in lanes)
    assert [int(v) for v in ints_from_bits(lanes)] == values


@given(width_and_values())
@settings(max_examples=100)
def test_uint_tiers_match_python_int_path(case):
    """Every integer dtype feeds the same transpose as plain Python ints."""
    width, values = case
    ref = bits_from_ints(values, width)
    dtypes = [np.uint64, np.int64]
    if width <= 32:
        dtypes.append(np.uint32)
    if width <= 16:
        dtypes.append(np.uint16)
    if width <= 8:
        dtypes.append(np.uint8)
    for dt in dtypes:
        if width > 63 and np.dtype(dt).kind == "i":
            continue  # signed 64-bit cannot hold 64-bit values
        if width > 64:
            continue  # bigint fallback only
        arr = np.array(values, dtype=dt)
        got = bits_from_ints(arr, width)
        for a, b in zip(ref, got):
            assert np.array_equal(a, b), dt


def test_bigint_fallback_beyond_uint64():
    values = [(1 << 127) | 1, (1 << 90) + 5, 0, (1 << 128) - 1]
    lanes = bits_from_ints(values, 128)
    assert len(lanes) == 128
    assert [int(v) for v in ints_from_bits(lanes)] == values


@given(st.integers(1, 300), st.data())
@settings(max_examples=100)
def test_word_array_and_bigint_packings_agree(lanes, data):
    """lanes_to_words produces the same bytes as pack_lanes, word by word."""
    bits = np.array(
        [data.draw(st.booleans()) for _ in range(lanes)], dtype=bool
    )
    words = words_for(lanes)
    arr = lanes_to_words(bits, words)
    value = pack_lanes(bits)
    assert arr.shape == (words,)
    assert np.array_equal(arr, u64_from_int(value, words))
    assert np.array_equal(words_to_lanes(arr, lanes), bits)
    assert np.array_equal(unpack_lanes(value, lanes), bits)


@given(width_and_values())
@settings(max_examples=100)
def test_vec_from_ints_matches_bigint_transpose(case):
    """The one-shot NumPy input transpose equals the per-wire bigint path."""
    width, values = case
    batch = len(values)
    words = words_for(batch)
    zero, ones = vector_constants(batch)
    vec = vec_from_ints(values, width, batch, words, zero, ones)
    ref = bits_from_ints(values, width)
    assert len(vec) == width
    for wire_words, lane in zip(vec, ref):
        assert np.array_equal(wire_words, lanes_to_words(lane, words))


@given(st.integers(1, 128), st.integers(2, 200))
@settings(max_examples=60)
def test_vec_from_ints_scalar_broadcast(width, batch):
    """A single value broadcasts to the shared zero/ones constants."""
    words = words_for(batch)
    zero, ones = vector_constants(batch)
    value = (1 << width) - 1  # all bits set
    vec = vec_from_ints([value], width, batch, words, zero, ones)
    assert all(v is ones for v in vec)
    vec0 = vec_from_ints([0], width, batch, words, zero, ones)
    assert all(v is zero for v in vec0)


class TestBoundaryEdges:
    def test_word_boundary_widths(self):
        for width in (63, 64, 65, 127, 128):
            values = [(1 << width) - 1, 0, 1, 1 << (width - 1)]
            lanes = bits_from_ints(values, width)
            assert [int(v) for v in ints_from_bits(lanes)] == values

    def test_word_boundary_lane_counts(self):
        rng = np.random.default_rng(7)
        for lanes in (1, 63, 64, 65, 1024, 4096):
            bits = rng.integers(0, 2, size=lanes).astype(bool)
            words = words_for(lanes)
            arr = lanes_to_words(bits, words)
            assert np.array_equal(words_to_lanes(arr, lanes), bits)
            assert np.array_equal(arr, u64_from_int(pack_lanes(bits), words))
