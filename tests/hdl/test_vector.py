"""Vector engine vs compiled bigints: bit-exact equivalence at any width.

The vector backend runs the *same* exec-compiled kernels as the bigint
engine, just over NumPy ``uint64`` word arrays — so the two must agree
bit for bit on every circuit, batch width, overlay and SEU schedule.
Hypothesis drives random netlists through both; explicit cases pin the
wide-sweep behaviour (≥ 1024 lanes in one sweep) and the prepared-kernel
cache tier.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hdl.compile import PackedFaultPlan
from repro.hdl.gates import Op
from repro.hdl.netlist import Netlist
from repro.hdl.simulator import (
    BatchEntry,
    CombinationalSimulator,
    SequentialSimulator,
)
from repro.hdl.vector import (
    VECTOR_SWEEP_LANES,
    clear_vector_cache,
    vector_cache_info,
    vector_constants,
    vector_kernel,
)
from repro.robustness.faults import FaultOverlay, SEUFault, StuckAtFault

from .test_compile import _ints, _registered
from .test_fuzz import random_circuit, _build


# --------------------------------------------------------------------- #
# combinational equivalence


@given(random_circuit())
@settings(max_examples=100)
def test_vector_matches_compiled_combinational(case):
    n_inputs, ops, picks, vectors = case
    nl, _ = _build(n_inputs, ops, picks)
    compiled = CombinationalSimulator(nl, backend="compiled").run({"a": vectors})
    vector = CombinationalSimulator(nl, backend="vector").run({"a": vectors})
    assert _ints(compiled) == _ints(vector)


@given(random_circuit(), st.data())
@settings(max_examples=60)
def test_vector_matches_compiled_with_stuck_overlay(case, data):
    n_inputs, ops, picks, vectors = case
    nl, _ = _build(n_inputs, ops, picks)
    logic = [
        w
        for w, g in enumerate(nl.gates)
        if g.op not in (Op.INPUT, Op.REG, Op.CONST0, Op.CONST1)
    ]
    if not logic:
        return
    faults = [
        StuckAtFault(
            wire=data.draw(st.sampled_from(logic)), value=data.draw(st.booleans())
        )
        for _ in range(data.draw(st.integers(1, min(3, len(logic)))))
    ]
    overlay = FaultOverlay(faults, nl)
    compiled = CombinationalSimulator(nl, backend="compiled").run(
        {"a": vectors}, overlay=overlay
    )
    vector = CombinationalSimulator(nl, backend="vector").run(
        {"a": vectors}, overlay=overlay
    )
    assert _ints(compiled) == _ints(vector)


@given(random_circuit(), st.data())
@settings(max_examples=40)
def test_vector_matches_compiled_with_packed_plan(case, data):
    n_inputs, ops, picks, _ = case
    nl, _ = _build(n_inputs, ops, picks)
    logic = [
        w
        for w, g in enumerate(nl.gates)
        if g.op not in (Op.INPUT, Op.REG, Op.CONST0, Op.CONST1)
    ]
    if not logic:
        return
    slots = data.draw(st.integers(2, 5))
    per = data.draw(st.integers(1, 6))
    lanes = slots * per
    plan = PackedFaultPlan(lanes)
    for s in range(1, slots):
        plan.stick(
            data.draw(st.sampled_from(logic)),
            data.draw(st.booleans()),
            slice(s * per, (s + 1) * per),
        )
    vecs = [
        data.draw(st.integers(0, (1 << n_inputs) - 1)) for _ in range(lanes)
    ]
    compiled = CombinationalSimulator(nl, backend="compiled").run(
        {"a": vecs}, overlay=plan
    )
    vector = CombinationalSimulator(nl, backend="vector").run(
        {"a": vecs}, overlay=plan
    )
    assert _ints(compiled) == _ints(vector)


# --------------------------------------------------------------------- #
# sequential equivalence


@given(random_circuit(), st.data())
@settings(max_examples=50)
def test_vector_matches_compiled_sequential(case, data):
    nl, n_inputs = _registered(case)
    batch = data.draw(st.integers(1, 5))
    cycles = data.draw(st.integers(1, 6))
    streams = [
        [data.draw(st.integers(0, (1 << n_inputs) - 1)) for _ in range(batch)]
        for _ in range(cycles)
    ]
    sc = SequentialSimulator(nl, batch=batch, backend="compiled")
    sv = SequentialSimulator(nl, batch=batch, backend="vector")
    for vec in streams:
        assert _ints(sc.step({"a": vec})) == _ints(sv.step({"a": vec}))
    assert {
        q: [bool(b) for b in lanes] for q, lanes in sc.state.items()
    } == {q: [bool(b) for b in lanes] for q, lanes in sv.state.items()}


@given(random_circuit(), st.data())
@settings(max_examples=40)
def test_vector_matches_compiled_sequential_with_faults(case, data):
    nl, n_inputs = _registered(case)
    regs = [r.q for r in nl.registers]
    logic = [
        w
        for w, g in enumerate(nl.gates)
        if g.op not in (Op.INPUT, Op.REG, Op.CONST0, Op.CONST1)
    ]
    faults = []
    if logic and data.draw(st.booleans()):
        faults.append(
            StuckAtFault(
                wire=data.draw(st.sampled_from(logic)),
                value=data.draw(st.booleans()),
            )
        )
    faults.append(
        SEUFault(
            register=data.draw(st.sampled_from(regs)),
            cycle=data.draw(st.integers(0, 3)),
        )
    )
    vectors = [data.draw(st.integers(0, (1 << n_inputs) - 1)) for _ in range(5)]
    outs = []
    for backend in ("compiled", "vector"):
        sim = SequentialSimulator(
            nl, batch=1, overlay=FaultOverlay(faults, nl), backend=backend
        )
        outs.append([_ints(sim.step({"a": v})) for v in vectors])
    assert outs[0] == outs[1]


# --------------------------------------------------------------------- #
# wide sweeps: the point of the engine


class TestWideSweeps:
    def test_comb_sweep_beyond_1024_lanes(self):
        from repro.flow import build_circuit

        nl = build_circuit("converter", 5)
        lanes = 1500
        assert lanes > 1024
        idx = [i % 120 for i in range(lanes)]
        a = CombinationalSimulator(nl, backend="compiled").run({"index": idx})
        b = CombinationalSimulator(nl, backend="vector").run({"index": idx})
        assert _ints(a) == _ints(b)

    def test_quantum_covers_at_least_1024_lanes(self):
        assert VECTOR_SWEEP_LANES >= 1024

    def test_full_quantum_single_sweep(self):
        """One sweep at the full 4096-lane quantum stays bit-exact."""
        from repro.flow import build_circuit

        nl = build_circuit("converter", 4)
        idx = [i % 24 for i in range(VECTOR_SWEEP_LANES)]
        a = CombinationalSimulator(nl, backend="compiled").run({"index": idx})
        b = CombinationalSimulator(nl, backend="vector").run({"index": idx})
        assert _ints(a) == _ints(b)

    def test_batch_entry_lazy_and_materialized(self):
        from repro.flow import build_circuit

        nl = build_circuit("converter", 5)
        idx = np.arange(1200) % 120
        ec = BatchEntry(nl, backend="compiled")
        ev = BatchEntry(nl, backend="vector")
        assert ev.engine.name == "vector"
        a = ec.run({"index": idx})
        lazy = ev.run({"index": idx}, materialize=False)
        full = ev.run({"index": idx})
        assert _ints(a) == _ints(dict(lazy)) == _ints(full)

    def test_run_stream_held_input_pipeline(self):
        from repro.flow import build_circuit

        nl = build_circuit("converter", 4, pipelined=True)
        idx = np.arange(1100, dtype=np.int64) % 24
        stream = [{"index": idx}] * 7
        sc = SequentialSimulator(nl, batch=1100, backend="compiled")
        sv = SequentialSimulator(nl, batch=1100, backend="vector")
        ref = sc.run_stream(stream)
        lazy = sv.run_stream(stream, materialize=False)
        for a, b in zip(ref, lazy):
            assert _ints(a) == _ints(b)

    def test_wide_packed_plan_one_sweep(self):
        """A whole fault campaign's worth of lanes in one vector sweep."""
        from repro.flow import build_circuit
        from repro.robustness.faults import stuck_fault_sites

        nl = build_circuit("converter", 4)
        idx = list(range(24))
        sites = stuck_fault_sites(nl)[:60]
        T, slots = len(idx), len(sites) + 1
        lanes = slots * T
        assert lanes > 1024
        plan = PackedFaultPlan(lanes)
        for s, f in enumerate(sites, start=1):
            plan.stick(f.wire, f.value, slice(s * T, (s + 1) * T))
        a = CombinationalSimulator(nl, backend="compiled").run(
            {"index": idx * slots}, overlay=plan
        )
        b = CombinationalSimulator(nl, backend="vector").run(
            {"index": idx * slots}, overlay=plan
        )
        assert _ints(a) == _ints(b)

    def test_plan_lane_mismatch_rejected(self):
        from repro.flow import build_circuit

        nl = build_circuit("converter", 3)
        plan = PackedFaultPlan(12)
        plan.stick(10, True, [1])
        with pytest.raises(ValueError, match="lanes"):
            CombinationalSimulator(nl, backend="vector").run(
                {"index": list(range(6))}, overlay=plan
            )


# --------------------------------------------------------------------- #
# the prepared-kernel cache tier


class TestVectorCache:
    def setup_method(self):
        clear_vector_cache()

    def test_same_width_hits(self):
        nl = Netlist("c")
        a = nl.input("a", 2)
        nl.output("y", nl.gate(Op.AND, a[0], a[1]))
        k1 = vector_kernel(nl, lanes=100)
        k2 = vector_kernel(nl, lanes=100)
        assert k1 == k2
        info = vector_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_widths_cached_separately(self):
        nl = Netlist("c")
        a = nl.input("a", 2)
        nl.output("y", nl.gate(Op.OR, a[0], a[1]))
        vector_kernel(nl, lanes=64)
        vector_kernel(nl, lanes=128)
        assert vector_cache_info()["misses"] == 2

    def test_kernel_eviction_propagates(self):
        from repro.hdl.compile import evict_kernel

        nl = Netlist("c")
        a = nl.input("a", 2)
        nl.output("y", nl.gate(Op.XOR, a[0], a[1]))
        kern, _, _ = vector_kernel(nl, lanes=64)
        evict_kernel(kern.fingerprint)
        kern2, _, _ = vector_kernel(nl, lanes=64)
        assert kern2 is not kern  # staleness check rebuilt the entry

    def test_constants_tail_mask(self):
        zero, ones = vector_constants(70)
        assert zero.shape == ones.shape == (2,)
        assert int(ones[0]) == 0xFFFFFFFFFFFFFFFF
        assert int(ones[1]) == (1 << 6) - 1
        with pytest.raises(ValueError):
            ones[0] = 0  # read-only
