"""Netlist JSON serialisation tests."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.converter import IndexToPermutationConverter
from repro.core.knuth import KnuthShuffleCircuit
from repro.hdl.gates import GATE_ARITY, Op
from repro.hdl.netlist import Bus, Netlist
from repro.hdl.serialize import (
    load_netlist,
    netlist_from_dict,
    netlist_to_dict,
    save_netlist,
)
from repro.hdl.simulator import CombinationalSimulator, SequentialSimulator


def _roundtrip(nl: Netlist) -> Netlist:
    return netlist_from_dict(json.loads(json.dumps(netlist_to_dict(nl))))


class TestRoundtrip:
    def test_structure_preserved(self):
        nl = IndexToPermutationConverter(5).build_netlist(pipelined=True)
        back = _roundtrip(nl)
        assert back.summary() == nl.summary()
        assert [g.op for g in back.gates] == [g.op for g in nl.gates]
        assert back.registers == nl.registers

    def test_combinational_behaviour_preserved(self):
        nl = IndexToPermutationConverter(4).build_netlist()
        back = _roundtrip(nl)
        a = CombinationalSimulator(nl).run({"index": list(range(24))})
        b = CombinationalSimulator(back).run({"index": list(range(24))})
        assert [int(v) for v in a["word"]] == [int(v) for v in b["word"]]

    def test_sequential_behaviour_preserved(self):
        nl = KnuthShuffleCircuit(4, m=10).build_netlist()
        back = _roundtrip(nl)
        s1, s2 = SequentialSimulator(nl), SequentialSimulator(back)
        for _ in range(20):
            o1, o2 = s1.step({}), s2.step({})
            assert int(o1["word"][0]) == int(o2["word"][0])

    def test_reloaded_netlist_is_extendable(self):
        """Constant bookkeeping must survive so further edits still fold."""
        nl = Netlist("t")
        a = nl.input("a", 1)
        nl.output("y", Bus([nl.gate(Op.AND, a[0], nl.const(1))]))
        back = _roundtrip(nl)
        w = back.gate(Op.AND, back.inputs["a"][0], back.const(0))
        assert back.gates[w].op is Op.CONST0

    def test_gate_names_preserved(self):
        nl = Netlist()
        a = nl.input("data", 3)
        nl.output("y", a)
        back = _roundtrip(nl)
        assert back.gates[a[0]].name == "data[0]"

    def test_empty_string_gate_name_preserved(self):
        """'' is a legal name and must not collapse to None (falsy-test bug)."""
        nl = Netlist()
        a = nl.input("a", 1)
        w = nl.gate(Op.NOT, a[0], name="")
        nl.output("y", Bus([w]))
        back = _roundtrip(nl)
        assert back.gates[w].name == ""

    def test_reloaded_netlist_dedupes_further_edits(self):
        """The CSE table must be rebuilt on load, not just the constants."""
        nl = Netlist("t")
        a = nl.input("a", 2)
        w = nl.gate(Op.AND, a[0], a[1])
        nl.output("y", Bus([w]))
        back = _roundtrip(nl)
        again = back.gate(Op.AND, back.inputs["a"][0], back.inputs["a"][1])
        assert again == w  # structural hash hit, no duplicate gate
        # commutative canonicalisation survives too
        swapped = back.gate(Op.AND, back.inputs["a"][1], back.inputs["a"][0])
        assert swapped == w
        assert back.num_logic_gates == nl.num_logic_gates


_GATE_OPS = [Op.NOT, Op.AND, Op.OR, Op.XOR, Op.NAND, Op.NOR, Op.XNOR, Op.MUX]
_NAMES = st.one_of(st.none(), st.text(max_size=6))


@st.composite
def _netlists(draw):
    """Random sequential netlists: named buses, logic, registers (q/d/init)."""
    nl = Netlist(draw(st.text(max_size=8)))
    wires = []
    for i in range(draw(st.integers(1, 3))):
        wires.extend(nl.input(f"in{i}", draw(st.integers(1, 4))))
    for _ in range(draw(st.integers(0, 12))):
        op = draw(st.sampled_from(_GATE_OPS))
        fanin = [draw(st.sampled_from(wires)) for _ in range(GATE_ARITY[op])]
        wires.append(nl.gate(op, *fanin, name=draw(_NAMES)))
        if draw(st.booleans()):
            wires.append(
                nl.register(wires[-1], init=draw(st.booleans()), name=draw(_NAMES))
            )
    for j in range(draw(st.integers(1, 2))):
        width = draw(st.integers(1, 3))
        nl.output(f"out{j}", Bus([draw(st.sampled_from(wires)) for _ in range(width)]))
    return nl


class TestRoundtripProperty:
    @given(_netlists())
    @settings(max_examples=60, deadline=None)
    def test_every_field_survives(self, nl):
        back = _roundtrip(nl)
        assert back.name == nl.name
        assert back.gates == nl.gates  # op + fanin + name, gate for gate
        assert back.registers == nl.registers  # q, d and init all intact
        assert back.inputs == nl.inputs
        assert back.outputs == nl.outputs
        assert back.summary() == nl.summary()


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a repro netlist"):
            netlist_from_dict({"format": "other"})

    def test_wrong_version_rejected(self):
        doc = netlist_to_dict(Netlist())
        doc["version"] = 99
        with pytest.raises(ValueError, match="version"):
            netlist_from_dict(doc)


class TestFiles:
    def test_save_and_load(self, tmp_path):
        nl = IndexToPermutationConverter(3).build_netlist()
        path = tmp_path / "conv3.json"
        save_netlist(nl, str(path))
        back = load_netlist(str(path))
        got = CombinationalSimulator(back).run({"index": [4]})
        assert int(got["out0"][0]) == IndexToPermutationConverter(3).convert(4)[0]
