"""Verilog export and VCD writer tests."""

import re
from pathlib import Path

import pytest

from repro.core.converter import IndexToPermutationConverter
from repro.hdl.export import VCDWriter, to_verilog
from repro.hdl.gates import Op
from repro.hdl.netlist import Bus, Netlist


class TestVerilog:
    def _simple(self):
        nl = Netlist("demo")
        a = nl.input("a", 2)
        b = nl.input("b", 2)
        y = Bus(nl.gate(Op.XOR, x, w) for x, w in zip(a, b))
        nl.output("y", y)
        return nl

    def test_module_skeleton(self):
        v = to_verilog(self._simple())
        assert v.startswith("module demo(")
        assert v.rstrip().endswith("endmodule")
        assert "input [1:0] in_a;" in v
        assert "output [1:0] out_y;" in v

    def test_combinational_has_no_clock(self):
        v = to_verilog(self._simple())
        assert "clk" not in v
        assert "always" not in v

    def test_gate_expressions(self):
        v = to_verilog(self._simple())
        assert v.count(" ^ ") == 2  # two XOR bit slices

    def test_registers_get_clock_and_always_block(self):
        nl = Netlist("reg_demo")
        a = nl.input("a", 1)
        q = nl.register(a[0], init=True)
        nl.output("y", Bus([q]))
        v = to_verilog(nl)
        assert "input clk;" in v
        assert "always @(posedge clk)" in v
        assert "= 1'b1;" in v  # init value on the reg declaration

    def test_mux_renders_ternary(self):
        nl = Netlist("mux")
        s = nl.input("s", 1)
        a = nl.input("a", 1)
        b = nl.input("b", 1)
        nl.output("y", Bus([nl.gate(Op.MUX, s[0], a[0], b[0])]))
        assert "?" in to_verilog(nl)

    def test_converter_exports(self):
        nl = IndexToPermutationConverter(4).build_netlist(pipelined=True)
        v = to_verilog(nl, module_name="idx2perm4")
        assert "module idx2perm4(clk" in v
        # every output bus concatenation present
        for name in ("out0", "out1", "out2", "out3", "word"):
            assert f"out_{name} = {{" in v

    def test_every_assigned_wire_is_declared(self):
        v = to_verilog(IndexToPermutationConverter(3).build_netlist())
        declared = set(re.findall(r"(?:wire|reg) (w\d+)", v))
        assigned = set(re.findall(r"assign (w\d+)", v))
        assert assigned <= declared

    def test_custom_module_name(self):
        v = to_verilog(self._simple(), module_name="my_mod")
        assert "module my_mod(" in v

    def test_golden_converter_n3_pipelined(self):
        """Exact-match golden file: any drift in the emitted Verilog —
        wire numbering, port order, always-block shape — is a visible,
        reviewed diff rather than a silent change.  Regenerate with:

            PYTHONPATH=src python - <<'EOF'
            from repro.core.converter import IndexToPermutationConverter
            from repro.hdl.export import to_verilog
            nl = IndexToPermutationConverter(3).build_netlist(pipelined=True)
            open("tests/hdl/golden/converter_n3_pipelined.v", "w").write(to_verilog(nl))
            EOF
        """
        golden = Path(__file__).parent / "golden" / "converter_n3_pipelined.v"
        nl = IndexToPermutationConverter(3).build_netlist(pipelined=True)
        assert to_verilog(nl) == golden.read_text()


class TestVCD:
    def test_header_and_vars(self):
        w = VCDWriter({"index": 5, "clk": 1})
        w.sample({"index": 3, "clk": 0})
        text = w.render()
        assert "$timescale 1ns $end" in text
        assert "$var wire 5" in text and "$var wire 1" in text
        assert "$enddefinitions $end" in text

    def test_only_changes_recorded(self):
        w = VCDWriter({"x": 4})
        w.sample({"x": 7})
        w.sample({"x": 7})
        w.sample({"x": 2})
        text = w.render()
        assert text.count("b111 ") == 1
        assert text.count("b10 ") == 1

    def test_scalar_signals_use_short_form(self):
        w = VCDWriter({"bit": 1})
        w.sample({"bit": 1})
        assert re.search(r"^1\S$", w.render(), re.MULTILINE)

    def test_unknown_signal_rejected(self):
        w = VCDWriter({"x": 2})
        with pytest.raises(ValueError):
            w.sample({"y": 0})

    def test_empty_signals_rejected(self):
        with pytest.raises(ValueError):
            VCDWriter({})

    def test_cycles_counter(self):
        w = VCDWriter({"x": 1})
        for v in (0, 1, 0):
            w.sample({"x": v})
        assert w.cycles == 3

    def test_write_to_file(self, tmp_path):
        w = VCDWriter({"x": 2})
        w.sample({"x": 3})
        path = tmp_path / "trace.vcd"
        w.write(str(path))
        assert path.read_text().startswith("$timescale")

    def test_trace_of_real_pipeline(self):
        """Dump a cycle-accurate converter run — the GTKWave workflow."""
        from repro.hdl.simulator import SequentialSimulator

        conv = IndexToPermutationConverter(4)
        nl = conv.build_netlist(pipelined=True)
        sim = SequentialSimulator(nl)
        w = VCDWriter({"index": 5, "word": 8})
        for i in range(10):
            outs = sim.step({"index": i})
            w.sample({"index": i, "word": int(outs["word"][0])})
        text = w.render()
        assert w.cycles == 10
        assert text.count("#") >= 4  # several time markers
