"""Dead-logic sweep tests."""

import numpy as np
import pytest

from repro.core.converter import IndexToPermutationConverter
from repro.hdl.gates import Op
from repro.hdl.netlist import Bus, Netlist
from repro.hdl.optimize import statistics_delta, sweep
from repro.hdl.simulator import CombinationalSimulator, SequentialSimulator


def test_removes_dangling_gates():
    nl = Netlist()
    a = nl.input("a", 2)
    nl.gate(Op.AND, a[0], a[1])  # dead
    nl.output("y", Bus([nl.gate(Op.OR, a[0], a[1])]))
    swept, stats = sweep(nl)
    assert stats.gates_removed == 1
    assert swept.num_logic_gates == 1


def test_preserves_unused_inputs_in_port_list():
    nl = Netlist()
    nl.input("unused", 3)
    a = nl.input("a", 1)
    nl.output("y", a)
    swept, _ = sweep(nl)
    assert "unused" in swept.inputs
    assert swept.inputs["unused"].width == 3


def test_removes_dead_registers_and_their_cones():
    nl = Netlist()
    a = nl.input("a", 1)
    dead_d = nl.gate(Op.NOT, a[0])
    nl.register(dead_d)  # Q never read
    live = nl.gate(Op.BUF, a[0])
    nl.output("y", Bus([a[0]]))
    swept, stats = sweep(nl)
    assert stats.registers_removed == 1
    assert swept.num_logic_gates == 0


def test_keeps_feedback_registers():
    """A register feeding itself through logic (LFSR-style) must stay."""
    from repro.rng.lfsr import build_lfsr_netlist

    nl = build_lfsr_netlist(8)
    swept, stats = sweep(nl)
    assert swept.num_registers == 8
    assert stats.registers_removed == 0


def test_swept_converter_equivalent_combinational():
    conv = IndexToPermutationConverter(4)
    nl = conv.build_netlist()
    swept, stats = sweep(nl)
    assert stats.gates_removed > 0  # truncated ripple tails are dead
    a = CombinationalSimulator(nl).run({"index": list(range(24))})
    b = CombinationalSimulator(swept).run({"index": list(range(24))})
    for key in a:
        assert [int(v) for v in a[key]] == [int(v) for v in b[key]]


def test_swept_pipeline_equivalent_sequentially():
    nl = IndexToPermutationConverter(4).build_netlist(pipelined=True)
    swept, _ = sweep(nl)
    s1, s2 = SequentialSimulator(nl), SequentialSimulator(swept)
    for i in list(range(24)) + [0, 0, 0]:
        o1, o2 = s1.step({"index": i}), s2.step({"index": i})
        assert {k: int(v[0]) for k, v in o1.items()} == {k: int(v[0]) for k, v in o2.items()}


def test_idempotent():
    nl = IndexToPermutationConverter(5).build_netlist()
    once, _ = sweep(nl)
    twice, stats = sweep(once)
    assert stats.gates_removed == 0


def test_statistics_delta():
    nl = IndexToPermutationConverter(4).build_netlist()
    swept, _ = sweep(nl)
    delta = statistics_delta(nl, swept)
    assert delta["logic_gates"] > 0
    assert delta["input_bits"] == 0 and delta["output_bits"] == 0


def test_live_gate_count_matches_sweep():
    nl = IndexToPermutationConverter(6).build_netlist()
    swept, _ = sweep(nl)
    assert nl.num_live_gates == swept.num_logic_gates
