"""Equivalence-checking harness tests: it must catch planted bugs."""

import pytest

from repro.hdl.components import ripple_add
from repro.hdl.netlist import Bus, Netlist
from repro.hdl.verify import assert_equivalent, exhaustive_check, random_check


def _adder_netlist(bug: bool = False):
    nl = Netlist("adder")
    a = nl.input("a", 4)
    b = nl.input("b", 4)
    s, _ = ripple_add(nl, a, b)
    if bug:
        s = Bus(list(s[1:]) + [s[0]])  # rotate bits: wrong function
    nl.output("s", s)
    return nl


def _reference(point):
    return {"s": (point["a"] + point["b"]) % 16}


def test_exhaustive_passes_correct_circuit():
    assert exhaustive_check(_adder_netlist(), _reference) == 256


def test_exhaustive_catches_planted_bug():
    with pytest.raises(AssertionError, match="disagrees"):
        exhaustive_check(_adder_netlist(bug=True), _reference)


def test_exhaustive_refuses_large_spaces():
    nl = Netlist()
    a = nl.input("a", 25)
    nl.output("y", a)
    with pytest.raises(ValueError, match="too large"):
        exhaustive_check(nl, lambda p: {"y": p["a"]})


def test_random_check_passes_and_counts():
    assert random_check(_adder_netlist(), _reference, samples=64) == 64


def test_random_check_catches_bug():
    with pytest.raises(AssertionError):
        random_check(_adder_netlist(bug=True), _reference, samples=200)


def test_random_check_respects_domains():
    nl = Netlist()
    a = nl.input("a", 8)
    nl.output("y", a)
    seen = []

    def ref(point):
        seen.append(point["a"])
        return {"y": point["a"]}

    random_check(nl, ref, samples=100, domains={"a": 10})
    assert all(0 <= v < 10 for v in seen)


def test_assert_equivalent_dispatches_exhaustive_for_small():
    # 8 input bits -> exhaustive: exactly 256 vectors
    assert assert_equivalent(_adder_netlist(), _reference) == 256


def test_assert_equivalent_random_for_large():
    nl = Netlist("wide")
    a = nl.input("a", 30)
    nl.output("y", a)
    n = assert_equivalent(nl, lambda p: {"y": p["a"]}, samples=50)
    assert n == 50
