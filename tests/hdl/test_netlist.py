"""Unit tests for netlist construction, folding, CSE and analysis."""

import pytest

from repro.hdl.gates import Op
from repro.hdl.netlist import Bus, Netlist


@pytest.fixture
def nl():
    return Netlist("t")


class TestBus:
    def test_width_iter_index(self):
        b = Bus([3, 5, 7])
        assert b.width == len(b) == 3
        assert list(b) == [3, 5, 7]
        assert b[1] == 5

    def test_slice_returns_bus(self):
        b = Bus(range(8))
        assert isinstance(b[2:5], Bus)
        assert list(b[2:5]) == [2, 3, 4]

    def test_concat_low_bits_first(self):
        assert list(Bus([1, 2]) + Bus([3])) == [1, 2, 3]

    def test_equality_and_hash(self):
        assert Bus([1, 2]) == Bus([1, 2])
        assert hash(Bus([1, 2])) == hash(Bus([1, 2]))
        assert Bus([1, 2]) != Bus([2, 1])


class TestConstruction:
    def test_constants_shared(self, nl):
        assert nl.const(0) == nl.const(0)
        assert nl.const(1) == nl.const(1)
        assert nl.const(0) != nl.const(1)

    def test_const_bus_encoding(self, nl):
        b = nl.const_bus(5, 4)
        ops = [nl.gates[w].op for w in b]
        assert ops == [Op.CONST1, Op.CONST0, Op.CONST1, Op.CONST0]

    def test_const_bus_overflow_rejected(self, nl):
        with pytest.raises(ValueError):
            nl.const_bus(16, 4)

    def test_duplicate_input_rejected(self, nl):
        nl.input("a", 2)
        with pytest.raises(ValueError):
            nl.input("a", 2)

    def test_duplicate_output_rejected(self, nl):
        a = nl.input("a", 1)
        nl.output("y", a)
        with pytest.raises(ValueError):
            nl.output("y", a)

    def test_scalar_output_wrapped(self, nl):
        a = nl.input("a", 1)
        nl.output("y", a[0])
        assert nl.outputs["y"].width == 1

    def test_arity_enforced(self, nl):
        a = nl.input("a", 2)
        with pytest.raises(ValueError):
            nl.gate(Op.AND, a[0])


class TestFolding:
    def test_and_identities(self, nl):
        a = nl.input("a", 1)[0]
        assert nl.gate(Op.AND, a, nl.const(1)) == a
        assert nl.gate(Op.AND, a, nl.const(0)) == nl.const(0)
        assert nl.gate(Op.AND, a, a) == a

    def test_or_identities(self, nl):
        a = nl.input("a", 1)[0]
        assert nl.gate(Op.OR, a, nl.const(0)) == a
        assert nl.gate(Op.OR, a, nl.const(1)) == nl.const(1)

    def test_xor_identities(self, nl):
        a = nl.input("a", 1)[0]
        assert nl.gate(Op.XOR, a, a) == nl.const(0)
        assert nl.gate(Op.XOR, a, nl.const(0)) == a
        inv = nl.gate(Op.XOR, a, nl.const(1))
        assert nl.gates[inv].op == Op.NOT

    def test_double_negation_cancels(self, nl):
        a = nl.input("a", 1)[0]
        assert nl.gate(Op.NOT, nl.gate(Op.NOT, a)) == a

    def test_buf_is_transparent(self, nl):
        a = nl.input("a", 1)[0]
        assert nl.gate(Op.BUF, a) == a

    def test_mux_constant_select(self, nl):
        a = nl.input("a", 1)[0]
        b = nl.input("b", 1)[0]
        assert nl.gate(Op.MUX, nl.const(0), a, b) == a
        assert nl.gate(Op.MUX, nl.const(1), a, b) == b

    def test_mux_equal_branches(self, nl):
        s = nl.input("s", 1)[0]
        a = nl.input("a", 1)[0]
        assert nl.gate(Op.MUX, s, a, a) == a

    def test_mux_as_buffer_of_select(self, nl):
        s = nl.input("s", 1)[0]
        assert nl.gate(Op.MUX, s, nl.const(0), nl.const(1)) == s


class TestCSE:
    def test_identical_gates_merged(self, nl):
        a = nl.input("a", 1)[0]
        b = nl.input("b", 1)[0]
        assert nl.gate(Op.AND, a, b) == nl.gate(Op.AND, a, b)

    def test_commutative_canonicalisation(self, nl):
        a = nl.input("a", 1)[0]
        b = nl.input("b", 1)[0]
        assert nl.gate(Op.AND, a, b) == nl.gate(Op.AND, b, a)
        assert nl.gate(Op.XOR, a, b) == nl.gate(Op.XOR, b, a)

    def test_mux_not_commuted(self, nl):
        a = nl.input("a", 1)[0]
        b = nl.input("b", 1)[0]
        s = nl.input("s", 1)[0]
        assert nl.gate(Op.MUX, s, a, b) != nl.gate(Op.MUX, s, b, a)


class TestAnalysis:
    def test_levels_and_depth(self, nl):
        a = nl.input("a", 1)[0]
        b = nl.input("b", 1)[0]
        x = nl.gate(Op.AND, a, b)
        y = nl.gate(Op.OR, x, a)
        nl.output("y", Bus([y]))
        lev = nl.levels()
        assert lev[a] == 0 and lev[x] == 1 and lev[y] == 2
        assert nl.depth == 2

    def test_depth_counts_register_d_paths(self, nl):
        a = nl.input("a", 1)[0]
        x = nl.gate(Op.NOT, a)
        nl.register(x)
        assert nl.depth == 1

    def test_register_breaks_combinational_depth(self, nl):
        a = nl.input("a", 1)[0]
        q = nl.register(nl.gate(Op.NOT, a))
        y = nl.gate(Op.NOT, q)
        nl.output("y", Bus([y]))
        lev = nl.levels()
        assert lev[q] == 0 and lev[y] == 1

    def test_gate_counts_exclude_leaves(self, nl):
        a = nl.input("a", 2)
        nl.gate(Op.AND, a[0], a[1])
        counts = nl.gate_counts()
        assert counts == {Op.AND: 1}
        assert nl.num_logic_gates == 1

    def test_register_bus_inits(self, nl):
        a = nl.input("a", 3)
        q = nl.register_bus(a, init=0b101)
        inits = [r.init for r in nl.registers]
        assert inits == [True, False, True]
        assert q.width == 3

    def test_fanout_counts(self, nl):
        a = nl.input("a", 1)[0]
        b = nl.input("b", 1)[0]
        x = nl.gate(Op.AND, a, b)
        nl.gate(Op.OR, x, a)
        fo = nl.fanout_counts()
        assert fo[a] == 2 and fo[x] == 1

    def test_live_wires_excludes_dangling(self, nl):
        a = nl.input("a", 1)[0]
        b = nl.input("b", 1)[0]
        dead = nl.gate(Op.AND, a, b)
        live = nl.gate(Op.OR, a, b)
        nl.output("y", Bus([live]))
        wires = nl.live_wires()
        assert live in wires and dead not in wires

    def test_check_passes_on_valid(self, nl):
        a = nl.input("a", 2)
        nl.output("y", Bus([nl.gate(Op.AND, a[0], a[1])]))
        nl.check()

    def test_summary_keys(self, nl):
        a = nl.input("a", 2)
        nl.output("y", Bus([nl.gate(Op.XOR, a[0], a[1])]))
        s = nl.summary()
        assert set(s) == {"logic_gates", "registers", "depth", "input_bits", "output_bits"}
        assert s["input_bits"] == 2 and s["output_bits"] == 1

    def test_repr_mentions_counts(self, nl):
        assert "Netlist" in repr(nl)
