"""Word-level components checked against arithmetic references."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.hdl import components as C
from repro.hdl.netlist import Bus, Netlist
from repro.hdl.simulator import CombinationalSimulator


def run1(nl, **inputs):
    """Evaluate a single-output netlist on one input point."""
    sim = CombinationalSimulator(nl)
    outs = sim.run(inputs)
    (name,) = outs
    return int(outs[name][0])


def build(fn, widths, **kw):
    """Make a netlist with declared inputs and one output from fn."""
    nl = Netlist()
    buses = {name: nl.input(name, w) for name, w in widths.items()}
    out = fn(nl, buses, **kw)
    nl.output("y", out if isinstance(out, Bus) else Bus([out]))
    return nl


class TestAdders:
    @given(st.integers(0, 15), st.integers(0, 15))
    def test_ripple_add(self, a, b):
        nl = build(lambda nl, i: C.ripple_add(nl, i["a"], i["b"])[0], {"a": 4, "b": 4})
        assert run1(nl, a=a, b=b) == (a + b) % 16

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_carry_out(self, a, b):
        nl = build(lambda nl, i: C.ripple_add(nl, i["a"], i["b"])[1], {"a": 4, "b": 4})
        assert run1(nl, a=a, b=b) == ((a + b) >> 4)

    def test_mixed_widths_zero_extended(self):
        nl = build(lambda nl, i: C.ripple_add(nl, i["a"], i["b"])[0], {"a": 5, "b": 2})
        assert run1(nl, a=20, b=3) == 23


class TestSubtractors:
    @given(st.integers(0, 15), st.integers(0, 15))
    def test_difference_wraps(self, a, b):
        nl = build(lambda nl, i: C.ripple_sub(nl, i["a"], i["b"])[0], {"a": 4, "b": 4})
        assert run1(nl, a=a, b=b) == (a - b) % 16

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_borrow_is_less_than(self, a, b):
        nl = build(lambda nl, i: C.ripple_sub(nl, i["a"], i["b"])[1], {"a": 4, "b": 4})
        assert run1(nl, a=a, b=b) == int(a < b)

    @given(st.integers(0, 31), st.integers(0, 31))
    def test_sub_const(self, a, c):
        nl = build(lambda nl, i: C.sub_const(nl, i["a"], c)[0], {"a": 5})
        assert run1(nl, a=a) == (a - c) % 32


class TestComparators:
    @pytest.mark.parametrize("c", [0, 1, 5, 15, 16, 31, 32])
    def test_geq_const_exhaustive(self, c):
        nl = build(lambda nl, i: C.geq_const(nl, i["a"], c), {"a": 5})
        sim = CombinationalSimulator(nl)
        vals = sim.run({"a": list(range(32))})["y"]
        assert [int(v) for v in vals] == [int(a >= c) for a in range(32)]

    def test_geq_zero_is_constant_true(self):
        nl = Netlist()
        a = nl.input("a", 4)
        w = C.geq_const(nl, a, 0)
        assert nl.gates[w].op.name == "CONST1"

    def test_geq_oversized_constant_false(self):
        nl = Netlist()
        a = nl.input("a", 3)
        w = C.geq_const(nl, a, 9)
        assert nl.gates[w].op.name == "CONST0"

    @pytest.mark.parametrize("c", [0, 3, 7, 8])
    def test_less_const(self, c):
        nl = build(lambda nl, i: C.less_const(nl, i["a"], c), {"a": 3})
        sim = CombinationalSimulator(nl)
        vals = sim.run({"a": list(range(8))})["y"]
        assert [int(v) for v in vals] == [int(a < c) for a in range(8)]

    @pytest.mark.parametrize("c", [0, 5, 7, 12])
    def test_equals_const(self, c):
        nl = build(lambda nl, i: C.equals_const(nl, i["a"], c), {"a": 4})
        sim = CombinationalSimulator(nl)
        vals = sim.run({"a": list(range(16))})["y"]
        assert [int(v) for v in vals] == [int(a == c) for a in range(16)]


class TestMuxes:
    @given(st.integers(0, 1), st.integers(0, 7), st.integers(0, 7))
    def test_mux2_bus(self, s, a, b):
        nl = build(
            lambda nl, i: C.mux2_bus(nl, i["s"][0], i["a"], i["b"]),
            {"s": 1, "a": 3, "b": 3},
        )
        assert run1(nl, s=s, a=a, b=b) == (b if s else a)

    @pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 8])
    def test_binary_mux_selects(self, count):
        nl = Netlist()
        sel_width = max(1, (count - 1).bit_length())
        sel = nl.input("sel", sel_width)
        options = [nl.const_bus(10 + i, 5) for i in range(count)]
        nl.output("y", C.binary_mux(nl, sel, options))
        sim = CombinationalSimulator(nl)
        vals = sim.run({"sel": list(range(count))})["y"]
        assert [int(v) for v in vals] == [10 + i for i in range(count)]

    def test_binary_mux_empty_rejected(self):
        nl = Netlist()
        sel = nl.input("sel", 1)
        with pytest.raises(ValueError):
            C.binary_mux(nl, sel, [])

    @pytest.mark.parametrize("count", [1, 2, 3, 5])
    def test_onehot_mux(self, count):
        nl = Netlist()
        sel = nl.input("sel", count)
        data = [nl.const_bus(7 * i % 16, 4) for i in range(count)]
        nl.output("y", C.onehot_mux(nl, list(sel), data))
        sim = CombinationalSimulator(nl)
        vals = sim.run({"sel": [1 << i for i in range(count)]})["y"]
        assert [int(v) for v in vals] == [7 * i % 16 for i in range(count)]

    def test_onehot_mux_all_zero_select(self):
        nl = Netlist()
        sel = nl.input("sel", 3)
        data = [nl.const_bus(5, 3)] * 3
        nl.output("y", C.onehot_mux(nl, list(sel), data))
        assert run1(nl, sel=0) == 0

    def test_onehot_mux_length_mismatch(self):
        nl = Netlist()
        sel = nl.input("sel", 2)
        with pytest.raises(ValueError):
            C.onehot_mux(nl, list(sel), [nl.const_bus(0, 2)])


class TestEncoders:
    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_thermometer_to_onehot(self, width):
        nl = Netlist()
        t = nl.input("t", width)
        onehot = C.thermometer_to_onehot(nl, list(t))
        nl.output("y", Bus(onehot))
        sim = CombinationalSimulator(nl)
        # thermometer for value v: low v bits set
        codes = [(1 << v) - 1 for v in range(width + 1)]
        vals = sim.run({"t": codes})["y"]
        assert [int(x) for x in vals] == [1 << v for v in range(width + 1)]

    @pytest.mark.parametrize("count", [2, 3, 4, 7])
    def test_onehot_to_binary(self, count):
        nl = Netlist()
        oh = nl.input("oh", count)
        nl.output("y", C.onehot_to_binary(nl, list(oh)))
        sim = CombinationalSimulator(nl)
        vals = sim.run({"oh": [1 << v for v in range(count)]})["y"]
        assert [int(x) for x in vals] == list(range(count))

    @pytest.mark.parametrize("count", [1, 2, 5, 8])
    def test_decoder(self, count):
        nl = Netlist()
        width = max(1, (count - 1).bit_length())
        sel = nl.input("sel", width)
        nl.output("y", Bus(C.decoder(nl, sel, count)))
        sim = CombinationalSimulator(nl)
        vals = sim.run({"sel": list(range(count))})["y"]
        assert [int(x) for x in vals] == [1 << v for v in range(count)]


class TestCrossover:
    @given(st.integers(0, 1), st.integers(0, 7), st.integers(0, 7))
    def test_swap_semantics(self, ctrl, a, b):
        nl = Netlist()
        ib = {"c": nl.input("c", 1), "a": nl.input("a", 3), "b": nl.input("b", 3)}
        x, y = C.crossover(nl, ib["c"][0], ib["a"], ib["b"])
        nl.output("x", x)
        nl.output("y", y)
        sim = CombinationalSimulator(nl)
        outs = sim.run({"c": ctrl, "a": a, "b": b})
        if ctrl:
            assert (int(outs["x"][0]), int(outs["y"][0])) == (b, a)
        else:
            assert (int(outs["x"][0]), int(outs["y"][0])) == (a, b)


class TestMultiplier:
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 6, 24, 120, 255])
    def test_shift_add_mult_const(self, k):
        nl = Netlist()
        x = nl.input("x", 5)
        nl.output("y", C.shift_add_mult_const(nl, x, k))
        sim = CombinationalSimulator(nl)
        vals = sim.run({"x": list(range(32))})["y"]
        assert [int(v) for v in vals] == [k * x for x in range(32)]

    def test_negative_k_rejected(self):
        nl = Netlist()
        x = nl.input("x", 3)
        with pytest.raises(ValueError):
            C.shift_add_mult_const(nl, x, -1)

    @given(st.integers(0, 31), st.integers(1, 40))
    def test_scaling_block_end_to_end(self, x, k):
        """The whole Fig.-2 datapath: (k·x) >> m."""
        m = 5
        nl = Netlist()
        xb = nl.input("x", m)
        prod = C.shift_add_mult_const(nl, xb, k)
        nl.output("y", C.truncate_high(nl, prod, m))
        assert run1(nl, x=x) == (k * x) >> m


class TestMisc:
    def test_zero_extend(self):
        nl = Netlist()
        a = nl.input("a", 2)
        b = C.zero_extend(nl, a, 5)
        assert b.width == 5

    def test_zero_extend_shrink_rejected(self):
        nl = Netlist()
        a = nl.input("a", 4)
        with pytest.raises(ValueError):
            C.zero_extend(nl, a, 2)

    def test_reduce_or_empty_is_false(self):
        nl = Netlist()
        assert nl.gates[C.reduce_or(nl, [])].op.name == "CONST0"

    def test_reduce_and_empty_is_true(self):
        nl = Netlist()
        assert nl.gates[C.reduce_and(nl, [])].op.name == "CONST1"

    @pytest.mark.parametrize("count", [1, 2, 3, 7])
    def test_reduce_or_matches_any(self, count):
        nl = Netlist()
        a = nl.input("a", count)
        nl.output("y", Bus([C.reduce_or(nl, list(a))]))
        sim = CombinationalSimulator(nl)
        vals = sim.run({"a": list(range(1 << count))})["y"]
        assert [int(v) for v in vals] == [int(x != 0) for x in range(1 << count)]

    def test_truncate_high_past_width(self):
        nl = Netlist()
        a = nl.input("a", 3)
        out = C.truncate_high(nl, a, 5)
        nl.output("y", out)
        assert run1(nl, a=7) == 0
