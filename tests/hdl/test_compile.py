"""Compiled engine vs interpreter: bit-exact equivalence, cache behaviour.

The compiled backend (:mod:`repro.hdl.compile`) must be a drop-in for the
interpreter — Hypothesis drives random netlists, random batches and random
stuck-at overlays through both engines and requires identical outputs, for
combinational and sequential circuits alike.  The kernel cache is checked
for hits on recompilation and invalidation after netlist mutation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hdl.compile import (
    PackedFaultPlan,
    clear_kernel_cache,
    compile_netlist,
    kernel_cache_info,
    pack_lanes,
    unpack_lanes,
    words_for,
)
from repro.hdl.gates import Op
from repro.hdl.netlist import Bus, Netlist
from repro.hdl.serialize import netlist_fingerprint
from repro.hdl.simulator import CombinationalSimulator, SequentialSimulator
from repro.robustness.faults import FaultOverlay, SEUFault, StuckAtFault

from .test_fuzz import random_circuit, _build


def _ints(outs):
    return {k: [int(v) for v in vals] for k, vals in outs.items()}


# --------------------------------------------------------------------- #
# packing primitives


class TestPacking:
    def test_roundtrip_multiword(self):
        rng = np.random.default_rng(0)
        for lanes in (1, 63, 64, 65, 200, 4096):
            bits = rng.integers(0, 2, size=lanes).astype(bool)
            value = pack_lanes(bits)
            assert isinstance(value, int)
            assert value.bit_length() <= lanes <= words_for(lanes) * 64
            assert np.array_equal(unpack_lanes(value, lanes), bits)

    def test_lane_order_is_lsb_first(self):
        assert pack_lanes(np.ones(3, dtype=bool)) == 0b111
        assert pack_lanes(np.array([False, True], dtype=bool)) == 0b10


# --------------------------------------------------------------------- #
# combinational equivalence


@given(random_circuit())
@settings(max_examples=100)
def test_compiled_matches_interp_combinational(case):
    n_inputs, ops, picks, vectors = case
    nl, _ = _build(n_inputs, ops, picks)
    interp = CombinationalSimulator(nl, backend="interp").run({"a": vectors})
    compiled = CombinationalSimulator(nl, backend="compiled").run({"a": vectors})
    assert _ints(interp) == _ints(compiled)


@given(random_circuit(), st.data())
@settings(max_examples=80)
def test_compiled_matches_interp_with_stuck_overlay(case, data):
    n_inputs, ops, picks, vectors = case
    nl, _ = _build(n_inputs, ops, picks)
    logic = [
        w
        for w, g in enumerate(nl.gates)
        if g.op not in (Op.INPUT, Op.REG, Op.CONST0, Op.CONST1)
    ]
    if not logic:
        return
    n_faults = data.draw(st.integers(1, min(3, len(logic))))
    faults = [
        StuckAtFault(
            wire=data.draw(st.sampled_from(logic)), value=data.draw(st.booleans())
        )
        for _ in range(n_faults)
    ]
    overlay = FaultOverlay(faults, nl)
    interp = CombinationalSimulator(nl, backend="interp").run(
        {"a": vectors}, overlay=overlay
    )
    compiled = CombinationalSimulator(nl, backend="compiled").run(
        {"a": vectors}, overlay=overlay
    )
    assert _ints(interp) == _ints(compiled)


def test_wide_batch_crosses_word_boundary():
    from repro.flow import build_circuit

    nl = build_circuit("converter", 5)
    idx = [i % 120 for i in range(200)]  # 200 lanes -> 4 packed words
    a = CombinationalSimulator(nl, backend="interp").run({"index": idx})
    b = CombinationalSimulator(nl, backend="compiled").run({"index": idx})
    assert _ints(a) == _ints(b)


# --------------------------------------------------------------------- #
# sequential equivalence


def _registered(case):
    """Random combinational DAG with its output bus registered."""
    n_inputs, ops, picks, _ = case
    nl, _ = _build(n_inputs, ops, picks)
    out = nl.outputs.pop("y")
    nl.output("y", nl.register_bus(out, init=0b0101 & ((1 << len(out)) - 1)))
    return nl, n_inputs


@given(random_circuit(), st.data())
@settings(max_examples=60)
def test_compiled_matches_interp_sequential(case, data):
    nl, n_inputs = _registered(case)
    batch = data.draw(st.integers(1, 5))
    cycles = data.draw(st.integers(1, 6))
    streams = [
        [data.draw(st.integers(0, (1 << n_inputs) - 1)) for _ in range(batch)]
        for _ in range(cycles)
    ]
    si = SequentialSimulator(nl, batch=batch, backend="interp")
    sc = SequentialSimulator(nl, batch=batch, backend="compiled")
    for vec in streams:
        assert _ints(si.step({"a": vec})) == _ints(sc.step({"a": vec}))


@given(random_circuit(), st.data())
@settings(max_examples=40)
def test_compiled_matches_interp_sequential_with_faults(case, data):
    nl, n_inputs = _registered(case)
    regs = [r.q for r in nl.registers]
    logic = [
        w
        for w, g in enumerate(nl.gates)
        if g.op not in (Op.INPUT, Op.REG, Op.CONST0, Op.CONST1)
    ]
    faults = []
    if logic and data.draw(st.booleans()):
        faults.append(
            StuckAtFault(
                wire=data.draw(st.sampled_from(logic)), value=data.draw(st.booleans())
            )
        )
    faults.append(
        SEUFault(register=data.draw(st.sampled_from(regs)), cycle=data.draw(st.integers(0, 3)))
    )
    vectors = [data.draw(st.integers(0, (1 << n_inputs) - 1)) for _ in range(5)]
    outs = []
    for backend in ("interp", "compiled"):
        sim = SequentialSimulator(
            nl, batch=1, overlay=FaultOverlay(faults, nl), backend=backend
        )
        outs.append([_ints(sim.step({"a": v})) for v in vectors])
    assert outs[0] == outs[1]


def test_feedback_counter_compiled():
    """Register feedback loops (built via direct register append) compile."""

    def build():
        nl = Netlist("counter", fold=False, cse=False)
        from repro.hdl.netlist import Register

        q0 = nl._new_wire(Op.REG, ())
        q1 = nl._new_wire(Op.REG, ())
        d0 = nl.gate(Op.NOT, q0)
        carry = q0
        d1 = nl.gate(Op.XOR, q1, carry)
        nl.registers.append(Register(q=q0, d=d0))
        nl.registers.append(Register(q=q1, d=d1))
        nl.output("count", Bus([q0, q1]))
        return nl

    nl = build()
    si = SequentialSimulator(nl, batch=1, backend="interp")
    sc = SequentialSimulator(nl, batch=1, backend="compiled")
    seq_i = [int(si.step({})["count"][0]) for _ in range(8)]
    seq_c = [int(sc.step({})["count"][0]) for _ in range(8)]
    assert seq_i == seq_c == [0, 1, 2, 3, 0, 1, 2, 3]


# --------------------------------------------------------------------- #
# incremental (event-driven) kernels


class TestIncrementalKernel:
    def test_flags_are_exclusive(self):
        from repro.flow import build_circuit

        nl = build_circuit("converter", 3, pipelined=True)
        with pytest.raises(ValueError, match="exclusive"):
            compile_netlist(nl, patchable=True, incremental=True)

    def test_variants_cached_separately(self):
        from repro.flow import build_circuit

        nl = build_circuit("converter", 3, pipelined=True)
        plain = compile_netlist(nl)
        inc = compile_netlist(nl, incremental=True)
        assert plain is not inc
        assert inc.incremental and inc.state_slots > 0
        assert "S[" in inc.source and "S[" not in plain.source
        assert compile_netlist(nl, incremental=True) is inc

    def test_held_input_stream_matches_interp(self):
        """The pipeline-fill fast path (held input, lazy outputs) stays
        bit-identical to interpreted full re-evaluation every cycle."""
        from repro.flow import build_circuit

        nl = build_circuit("converter", 4, pipelined=True)
        idx = np.arange(24, dtype=np.int64)
        stream = [{"index": idx}] * 7
        si = SequentialSimulator(nl, batch=24, backend="interp")
        sc = SequentialSimulator(nl, batch=24, backend="compiled")
        ref = si.run_stream(stream)
        lazy = sc.run_stream(stream, materialize=False)
        for a, b in zip(ref, lazy):
            assert _ints(a) == _ints(b)

    def test_changing_then_held_then_reset(self):
        """Stale state entries after input changes or reset() must never
        leak: the identity guard only skips when values truly match."""
        from repro.flow import build_circuit

        nl = build_circuit("converter", 3, pipelined=True)
        vecs = [[0, 5, 3], [1, 1, 1], [1, 1, 1], [4, 0, 2]]
        si = SequentialSimulator(nl, batch=3, backend="interp")
        sc = SequentialSimulator(nl, batch=3, backend="compiled")
        first = []
        for v in vecs:
            a, b = _ints(si.step({"index": v})), _ints(sc.step({"index": v}))
            assert a == b
            first.append(b)
        sc.reset()
        sc_again = [_ints(sc.step({"index": v})) for v in vecs]
        assert sc_again == first


# --------------------------------------------------------------------- #
# packed fault plans


def test_packed_plan_matches_per_fault_runs():
    from repro.flow import build_circuit
    from repro.robustness.faults import stuck_fault_sites

    nl = build_circuit("converter", 4)
    idx = list(range(24))
    sites = stuck_fault_sites(nl)[:10]
    T, slots = len(idx), len(sites) + 1
    plan = PackedFaultPlan(slots * T)
    for s, f in enumerate(sites, start=1):
        plan.stick(f.wire, f.value, slice(s * T, (s + 1) * T))
    packed = CombinationalSimulator(nl, backend="compiled").run(
        {"index": idx * slots}, overlay=plan
    )
    # slot 0 is golden; slot s is fault s-1 — compare against per-fault runs
    for s in range(slots):
        overlay = None if s == 0 else FaultOverlay([sites[s - 1]], nl)
        ref = CombinationalSimulator(nl, backend="interp").run(
            {"index": idx}, overlay=overlay
        )
        for name in ref:
            got = [int(v) for v in packed[name][s * T : (s + 1) * T]]
            assert got == [int(v) for v in ref[name]], (s, name)


def test_packed_plan_runs_on_interpreter_too():
    """The plan implements the overlay protocol, lane for lane."""
    from repro.flow import build_circuit
    from repro.robustness.faults import stuck_fault_sites

    nl = build_circuit("converter", 3)
    idx = list(range(6))
    f = stuck_fault_sites(nl)[3]
    plan = PackedFaultPlan(2 * 6)
    plan.stick(f.wire, f.value, slice(6, 12))
    a = CombinationalSimulator(nl, backend="interp").run({"index": idx * 2}, overlay=plan)
    b = CombinationalSimulator(nl, backend="compiled").run({"index": idx * 2}, overlay=plan)
    assert _ints(a) == _ints(b)


def test_packed_plan_lane_mismatch_rejected():
    from repro.flow import build_circuit

    nl = build_circuit("converter", 3)
    plan = PackedFaultPlan(12)
    plan.stick(10, True, [1])
    with pytest.raises(ValueError, match="lanes"):
        CombinationalSimulator(nl, backend="compiled").run(
            {"index": list(range(6))}, overlay=plan
        )


# --------------------------------------------------------------------- #
# kernel cache


class TestKernelCache:
    def setup_method(self):
        clear_kernel_cache()

    def test_recompile_hits_cache(self):
        nl = Netlist("c")
        a = nl.input("a", 2)
        nl.output("y", nl.gate(Op.AND, a[0], a[1]))
        k1 = compile_netlist(nl)
        k2 = compile_netlist(nl)
        assert k1 is k2
        info = kernel_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_structurally_identical_netlists_share_kernels(self):
        def build():
            nl = Netlist("c")
            a = nl.input("a", 2)
            nl.output("y", nl.gate(Op.XOR, a[0], a[1]))
            return nl

        assert compile_netlist(build()) is compile_netlist(build())

    def test_patchable_variants_cached_separately(self):
        nl = Netlist("c")
        a = nl.input("a", 2)
        nl.output("y", nl.gate(Op.OR, a[0], a[1]))
        plain = compile_netlist(nl, patchable=False)
        patch = compile_netlist(nl, patchable=True)
        assert plain is not patch
        assert "P.get" not in plain.source and "_g = P.get" in patch.source

    def test_mutation_invalidates_kernel(self):
        nl = Netlist("c")
        a = nl.input("a", 2)
        nl.output("y", nl.gate(Op.AND, a[0], a[1]))
        before = netlist_fingerprint(nl)
        out1 = CombinationalSimulator(nl, backend="compiled").run({"a": [0b11]})
        assert int(out1["y"][0]) == 1
        # mutate through the builder API: new gate, new output port
        nl.output("z", nl.gate(Op.XOR, a[0], a[1]))
        assert netlist_fingerprint(nl) != before
        out2 = CombinationalSimulator(nl, backend="compiled").run({"a": [0b01]})
        assert int(out2["y"][0]) == 0 and int(out2["z"][0]) == 1
        # both structures compiled: two distinct kernels, no stale reuse
        assert kernel_cache_info()["misses"] == 2

    def test_register_append_invalidates_fingerprint(self):
        from repro.hdl.netlist import Register

        nl = Netlist("c")
        a = nl.input("a", 1)
        q = nl._new_wire(Op.REG, ())
        nl.output("y", q)
        before = netlist_fingerprint(nl)
        nl.registers.append(Register(q=q, d=a[0]))
        assert netlist_fingerprint(nl) != before


# --------------------------------------------------------------------- #
# word packing helpers (satellite: vectorised bits_from_ints)


class TestVectorisedPacking:
    def test_fast_and_wide_paths_agree(self):
        from repro.hdl.simulator import bits_from_ints, ints_from_bits

        rng = np.random.default_rng(1)
        for width in (1, 7, 63, 64, 65, 90):
            vals = [int(x) for x in rng.integers(0, 1 << min(width, 63), size=17)]
            lanes = bits_from_ints(vals, width)
            assert len(lanes) == width
            assert [int(v) for v in ints_from_bits(lanes)] == vals

    def test_bigint_values_beyond_uint64(self):
        from repro.hdl.simulator import bits_from_ints, ints_from_bits

        vals = [(1 << 90) + 5, (1 << 70) - 1, 0]
        lanes = bits_from_ints(vals, 91)
        assert [int(v) for v in ints_from_bits(lanes)] == vals

    def test_validation_messages_preserved(self):
        from repro.hdl.simulator import bits_from_ints

        with pytest.raises(ValueError, match="non-negative"):
            bits_from_ints([-1], 4)
        with pytest.raises(ValueError, match="does not fit"):
            bits_from_ints([8], 3)
        with pytest.raises(ValueError, match="does not fit"):
            bits_from_ints([1 << 70], 64)


class TestKernelQuarantine:
    """evict_kernel: the supervised tier's corrupted-kernel quarantine."""

    def test_evicts_every_variant_of_the_fingerprint(self):
        from repro.hdl.compile import evict_kernel

        clear_kernel_cache()
        nl = Netlist("quarantine")
        a = nl.input("a", 2)
        nl.output("y", nl.gate(Op.AND, a[0], a[1]))
        plain = compile_netlist(nl)
        patchable = compile_netlist(nl, patchable=True)
        assert plain.fingerprint == patchable.fingerprint
        assert evict_kernel(plain.fingerprint) == 2
        assert evict_kernel(plain.fingerprint) == 0  # idempotent
        # the next compile is a fresh build, not the convicted artefact
        rebuilt = compile_netlist(nl)
        assert rebuilt is not plain

    def test_unknown_fingerprint_is_a_noop(self):
        from repro.hdl.compile import evict_kernel

        assert evict_kernel("not-a-real-fingerprint") == 0
