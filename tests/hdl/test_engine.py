"""Engine registry and resolution: the documented fallback matrix.

Every ``backend=`` string in the codebase funnels through
:func:`repro.hdl.engine.resolve_backend`; these tests pin the dispatch
rules — auto picks compiled, probes and bridging overlays force the
interpreter, explicit names fall back rather than fail, unknown names
raise — and the live :data:`BACKENDS` view.
"""

from __future__ import annotations

import pytest

from repro.hdl.engine import (
    BACKENDS,
    Engine,
    EngineCapabilities,
    engine_capability,
    engine_names,
    get_engine,
    overlay_packable,
    register_engine,
    require_backend,
    resolve_backend,
)
from repro.hdl.netlist import Netlist
from repro.robustness.faults import (
    BridgingFault,
    FaultOverlay,
    SEUFault,
    StuckAtFault,
)


def _bridging_overlay():
    nl = Netlist("b")
    a = nl.input("a", 2)
    from repro.hdl.gates import Op

    y = nl.gate(Op.AND, a[0], a[1])
    nl.output("y", y)
    return FaultOverlay([BridgingFault(aggressor=a[0], victim=y)], nl)


class TestRegistry:
    def test_builtins_registered(self):
        assert engine_names() == ("interp", "compiled", "vector")

    def test_backends_view_is_auto_plus_names(self):
        assert tuple(BACKENDS) == ("auto", "interp", "compiled", "vector")
        assert "vector" in BACKENDS
        assert "nope" not in BACKENDS
        assert len(BACKENDS) == 4
        assert BACKENDS[0] == "auto"
        assert BACKENDS == ("auto", "interp", "compiled", "vector")

    def test_get_engine_unknown_name(self):
        with pytest.raises(ValueError, match="unknown engine"):
            get_engine("turbo")

    def test_auto_is_not_an_engine_name(self):
        with pytest.raises(ValueError, match="resolver keyword"):
            register_engine(
                type("Bad", (Engine,), {"name": "auto"})  # type: ignore[arg-type]
            )
        with pytest.raises(ValueError):
            get_engine("auto")

    def test_require_backend(self):
        for name in BACKENDS:
            require_backend(name)
        with pytest.raises(ValueError, match="backend must be one of"):
            require_backend("turbo")

    def test_capability_records(self):
        interp = engine_capability("interp")
        compiled = engine_capability("compiled")
        vector = engine_capability("vector")
        assert interp.probes and interp.general_overlays
        assert not compiled.probes and not compiled.general_overlays
        assert compiled.patch_masks and compiled.incremental
        assert vector.patch_masks and vector.seu_lanes and not vector.probes
        assert vector.sweep_lanes >= 1024 > compiled.sweep_lanes
        assert compiled.auto_priority > vector.auto_priority > interp.auto_priority


class TestResolution:
    def test_auto_prefers_compiled(self):
        assert resolve_backend("auto").name == "compiled"

    def test_auto_with_probe_falls_to_interp(self):
        assert resolve_backend("auto", probe=object()).name == "interp"

    def test_auto_with_stuck_overlay_stays_compiled(self):
        nl = Netlist("s")
        a = nl.input("a", 1)
        nl.output("y", a[0])
        overlay = FaultOverlay([StuckAtFault(wire=a[0], value=True)], nl)
        assert resolve_backend("auto", overlay=overlay).name == "compiled"

    def test_auto_with_bridging_overlay_falls_to_interp(self):
        assert resolve_backend("auto", overlay=_bridging_overlay()).name == "interp"

    def test_explicit_vector_resolves(self):
        assert resolve_backend("vector").name == "vector"

    def test_explicit_vector_with_probe_falls_back(self):
        assert resolve_backend("vector", probe=object()).name == "interp"

    def test_explicit_compiled_with_bridging_falls_back(self):
        assert (
            resolve_backend("compiled", overlay=_bridging_overlay()).name
            == "interp"
        )

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_backend("turbo")


class TestOverlayPackable:
    def test_none_and_stuck_and_plans_pack(self):
        from repro.hdl.compile import PackedFaultPlan

        nl = Netlist("s")
        a = nl.input("a", 1)
        nl.output("y", a[0])
        assert overlay_packable(None)
        assert overlay_packable(PackedFaultPlan(8))
        assert overlay_packable(
            FaultOverlay([StuckAtFault(wire=a[0], value=False)], nl)
        )
        assert overlay_packable(
            FaultOverlay([SEUFault(register=0, cycle=0)])
        )

    def test_bridging_does_not_pack(self):
        assert not overlay_packable(_bridging_overlay())


class TestShadowing:
    """Re-registering a name replaces the builtin (latest wins)."""

    def test_shadow_and_restore(self):
        original = get_engine("vector")

        @register_engine
        class Shadow(original):  # type: ignore[misc, valid-type]
            name = "vector"
            capabilities = EngineCapabilities(
                name="vector",
                sweep_lanes=128,
                probes=False,
                patch_masks=True,
                seu_lanes=True,
                general_overlays=False,
                incremental=False,
                auto_priority=50,
            )

        try:
            assert get_engine("vector") is Shadow
            assert engine_capability("vector").sweep_lanes == 128
        finally:
            register_engine(original)
        assert get_engine("vector") is original
