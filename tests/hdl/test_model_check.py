"""BDD-based formal verification tests."""

import pytest

from repro.apps.bdd import BDD
from repro.core.converter import IndexToPermutationConverter
from repro.hdl.components import geq_const, ripple_add, ripple_sub
from repro.hdl.gates import Op
from repro.hdl.model_check import (
    find_distinguishing_input,
    input_variable_map,
    netlist_to_bdds,
    prove_constant_output,
    prove_equivalent,
)
from repro.hdl.netlist import Bus, Netlist
from repro.hdl.optimize import sweep


def _adder(bug: bool = False, width: int = 4) -> Netlist:
    nl = Netlist("add")
    a = nl.input("a", width)
    b = nl.input("b", width)
    s, _ = ripple_add(nl, a, b)
    if bug:
        s = Bus([s[1], s[0]] + list(s[2:]))
    nl.output("s", s)
    return nl


class TestSymbolicEvaluation:
    def test_variable_numbering_is_declaration_order(self):
        nl = Netlist()
        a = nl.input("a", 2)
        b = nl.input("b", 1)
        mapping = input_variable_map(nl)
        assert mapping == {a[0]: 0, a[1]: 1, b[0]: 2}

    def test_every_gate_type_translates(self):
        nl = Netlist()
        a = nl.input("a", 2)
        x, y = a[0], a[1]
        bits = [
            nl.gate(Op.AND, x, y), nl.gate(Op.OR, x, y), nl.gate(Op.XOR, x, y),
            nl.gate(Op.NAND, x, y), nl.gate(Op.NOR, x, y), nl.gate(Op.XNOR, x, y),
            nl.gate(Op.ANDN, x, y), nl.gate(Op.ORN, x, y), nl.gate(Op.NOT, x),
            nl.gate(Op.MUX, x, y, nl.const(1)),
        ]
        nl.output("y", Bus(bits))
        mgr, outs = netlist_to_bdds(nl)
        # verify against direct simulation on all 4 assignments
        from repro.hdl.simulator import CombinationalSimulator

        sim = CombinationalSimulator(nl)
        got = sim.run({"a": [0, 1, 2, 3]})["y"]
        for a_val in range(4):
            bits_val = 0
            for i, root in enumerate(outs["y"]):
                bits_val |= mgr.evaluate(root, ((a_val >> 0) & 1, (a_val >> 1) & 1)) << i
            assert bits_val == int(got[a_val])

    def test_sequential_rejected(self):
        nl = Netlist()
        a = nl.input("a", 1)
        nl.output("y", Bus([nl.register(a[0])]))
        with pytest.raises(ValueError, match="combinational"):
            netlist_to_bdds(nl)

    def test_undersized_manager_rejected(self):
        nl = Netlist()
        nl.input("a", 5)
        nl.output("y", nl.inputs["a"])
        with pytest.raises(ValueError, match="variables"):
            netlist_to_bdds(nl, BDD(2))


class TestEquivalence:
    def test_identical_circuits_equivalent(self):
        assert prove_equivalent(_adder(), _adder())

    def test_planted_bug_detected(self):
        assert not prove_equivalent(_adder(), _adder(bug=True))

    def test_sweep_preserves_function_formally(self):
        nl = IndexToPermutationConverter(4).build_netlist()
        swept, _ = sweep(nl)
        assert prove_equivalent(nl, swept)

    def test_structurally_different_but_equal(self):
        """a − (−b) == a + b at 1-bit? compare two adder formulations."""
        def xor_form():
            nl = Netlist()
            a = nl.input("a", 3)
            b = nl.input("b", 3)
            s, _ = ripple_add(nl, a, b)
            nl.output("s", s)
            return nl

        def sub_form():
            # a + b == a − (2^w − b) mod 2^w: build via double subtract
            nl = Netlist()
            a = nl.input("a", 3)
            b = nl.input("b", 3)
            zero = nl.const_bus(0, 3)
            neg_b, _ = ripple_sub(nl, zero, b)
            s, _ = ripple_sub(nl, a, neg_b)
            nl.output("s", s)
            return nl

        assert prove_equivalent(xor_form(), sub_form())

    def test_signature_mismatch_rejected(self):
        nl = Netlist()
        nl.input("x", 4)
        nl.output("s", nl.inputs["x"])
        with pytest.raises(ValueError):
            prove_equivalent(_adder(), nl)


class TestCounterexamples:
    def test_found_and_actually_distinguishes(self):
        from repro.hdl.simulator import CombinationalSimulator

        good, bad = _adder(), _adder(bug=True)
        cex = find_distinguishing_input(good, bad)
        assert cex is not None
        g = int(CombinationalSimulator(good).run(cex)["s"][0])
        b = int(CombinationalSimulator(bad).run(cex)["s"][0])
        assert g != b

    def test_none_for_equivalent(self):
        assert find_distinguishing_input(_adder(), _adder()) is None


class TestConstProofs:
    def test_tautology(self):
        nl = Netlist()
        x = nl.input("x", 3)
        nl.output("y", Bus([geq_const(nl, x, 0)]))
        assert prove_constant_output(nl, "y", 1)

    def test_non_constant_rejected(self):
        nl = Netlist()
        x = nl.input("x", 3)
        nl.output("y", Bus([geq_const(nl, x, 4)]))
        assert not prove_constant_output(nl, "y", 1)
        assert not prove_constant_output(nl, "y", 0)


class TestConverterFormally:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_pipelined_equals_combinational_after_register_cut(self, n):
        """Formal check that sweeping + register removal is not needed:
        compare the combinational converter against itself rebuilt — and
        the functional spec encoded as a fresh truth-table netlist."""
        a = IndexToPermutationConverter(n).build_netlist()
        b = IndexToPermutationConverter(n).build_netlist()
        assert prove_equivalent(a, b)

    def test_different_input_permutations_differ(self):
        a = IndexToPermutationConverter(3).build_netlist()
        b = IndexToPermutationConverter(3, input_permutation=(1, 0, 2)).build_netlist()
        cex = find_distinguishing_input(a, b)
        assert cex is not None
