"""Unit tests for the primitive gate library."""

import numpy as np
import pytest

from repro.hdl.gates import GATE_ARITY, Op, evaluate_op

F = np.array([False, False, True, True])
S = np.array([False, True, False, True])


def test_buf_copies():
    out = evaluate_op(Op.BUF, (F,))
    assert out.tolist() == F.tolist()
    out[0] = True
    assert not F[0], "BUF must not alias its input"


def test_not():
    assert evaluate_op(Op.NOT, (F,)).tolist() == [True, True, False, False]


@pytest.mark.parametrize(
    "op, expected",
    [
        (Op.AND, [False, False, False, True]),
        (Op.OR, [False, True, True, True]),
        (Op.XOR, [False, True, True, False]),
        (Op.NAND, [True, True, True, False]),
        (Op.NOR, [True, False, False, False]),
        (Op.XNOR, [True, False, False, True]),
        (Op.ANDN, [False, False, True, False]),
        (Op.ORN, [True, False, True, True]),
    ],
)
def test_two_input_truth_tables(op, expected):
    assert evaluate_op(op, (F, S)).tolist() == expected


def test_mux_semantics():
    sel = np.array([False, True, False, True])
    a = np.array([True, True, False, False])
    b = np.array([False, False, True, True])
    # MUX(sel, a, b) = b if sel else a
    assert evaluate_op(Op.MUX, (sel, a, b)).tolist() == [True, False, False, True]


def test_arity_table_complete():
    for op in Op:
        assert op in GATE_ARITY


def test_leaf_ops_not_evaluable():
    for op in (Op.INPUT, Op.REG, Op.CONST0, Op.CONST1):
        with pytest.raises(ValueError):
            evaluate_op(op, ())


def test_evaluate_preserves_shape():
    x = np.zeros((7,), dtype=bool)
    y = np.ones((7,), dtype=bool)
    assert evaluate_op(Op.AND, (x, y)).shape == (7,)
