"""Random-netlist fuzzing: the simulator against a pure-Python evaluator.

Hypothesis generates random combinational DAGs; each is evaluated both by
the vectorised simulator and by a direct recursive interpreter.  Any
divergence in folding, CSE or batch evaluation shows up here.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hdl.gates import GATE_ARITY, Op
from repro.hdl.netlist import Bus, Netlist
from repro.hdl.simulator import CombinationalSimulator

_BINARY_OPS = [Op.AND, Op.OR, Op.XOR, Op.NAND, Op.NOR, Op.XNOR, Op.ANDN, Op.ORN]


@st.composite
def random_circuit(draw):
    """A random DAG over ≤ 8 input bits and ≤ 25 gates, plus test vectors."""
    n_inputs = draw(st.integers(1, 8))
    n_gates = draw(st.integers(1, 25))
    ops = []
    for g in range(n_gates):
        kind = draw(st.sampled_from(["not", "bin", "mux", "const"]))
        ops.append(kind)
    # operand picks are indices into "everything created so far"
    picks = draw(
        st.lists(st.integers(0, 10_000), min_size=3 * n_gates, max_size=3 * n_gates)
    )
    vectors = draw(st.lists(st.integers(0, (1 << n_inputs) - 1), min_size=1, max_size=8))
    return n_inputs, ops, picks, vectors


def _build(n_inputs: int, ops, picks):
    """Construct the netlist and a parallel expression tree."""
    nl = Netlist("fuzz")
    a = nl.input("a", n_inputs)
    wires = list(a)
    exprs: dict[int, object] = {w: ("in", i) for i, w in enumerate(a)}
    p = iter(picks)

    def pick() -> int:
        return wires[next(p) % len(wires)]

    for kind in ops:
        if kind == "const":
            w = nl.const(next(p) % 2)
            exprs.setdefault(w, ("const", (next(p, 0) * 0) + (1 if nl.gates[w].op is Op.CONST1 else 0)))
        elif kind == "not":
            x = pick()
            w = nl.gate(Op.NOT, x)
            exprs.setdefault(w, ("not", x))
        elif kind == "mux":
            s, x, y = pick(), pick(), pick()
            w = nl.gate(Op.MUX, s, x, y)
            exprs.setdefault(w, ("mux", s, x, y))
        else:
            op = _BINARY_OPS[next(p) % len(_BINARY_OPS)]
            x, y = pick(), pick()
            w = nl.gate(op, x, y)
            exprs.setdefault(w, (op, x, y))
        wires.append(w)
    nl.output("y", Bus(wires[-min(4, len(wires)):]))
    return nl, exprs


def _interpret(nl: Netlist, wire: int, a_value: int, memo: dict[int, int]) -> int:
    """Direct recursive evaluation straight off the gate table."""
    if wire in memo:
        return memo[wire]
    g = nl.gates[wire]
    if g.op is Op.INPUT:
        bit = int(g.name.split("[")[1].rstrip("]"))
        v = (a_value >> bit) & 1
    elif g.op is Op.CONST0:
        v = 0
    elif g.op is Op.CONST1:
        v = 1
    else:
        args = [_interpret(nl, f, a_value, memo) for f in g.fanin]
        if g.op is Op.BUF:
            v = args[0]
        elif g.op is Op.NOT:
            v = 1 - args[0]
        elif g.op is Op.AND:
            v = args[0] & args[1]
        elif g.op is Op.OR:
            v = args[0] | args[1]
        elif g.op is Op.XOR:
            v = args[0] ^ args[1]
        elif g.op is Op.NAND:
            v = 1 - (args[0] & args[1])
        elif g.op is Op.NOR:
            v = 1 - (args[0] | args[1])
        elif g.op is Op.XNOR:
            v = 1 - (args[0] ^ args[1])
        elif g.op is Op.ANDN:
            v = args[0] & (1 - args[1])
        elif g.op is Op.ORN:
            v = args[0] | (1 - args[1])
        elif g.op is Op.MUX:
            v = args[2] if args[0] else args[1]
        else:  # pragma: no cover
            raise AssertionError(g.op)
    memo[wire] = v
    return v


@given(random_circuit())
@settings(max_examples=120)
def test_simulator_matches_direct_interpretation(case):
    n_inputs, ops, picks, vectors = case
    nl, _ = _build(n_inputs, ops, picks)
    nl.check()
    sim = CombinationalSimulator(nl)
    got = sim.run({"a": vectors})["y"]
    out_bus = nl.outputs["y"]
    for lane, a_value in enumerate(vectors):
        memo: dict[int, int] = {}
        want = 0
        for b, w in enumerate(out_bus):
            want |= _interpret(nl, w, a_value, memo) << b
        assert int(got[lane]) == want


@given(random_circuit())
@settings(max_examples=60)
def test_sweep_preserves_function(case):
    from repro.hdl.optimize import sweep

    n_inputs, ops, picks, vectors = case
    nl, _ = _build(n_inputs, ops, picks)
    swept, _ = sweep(nl)
    a = CombinationalSimulator(nl).run({"a": vectors})["y"]
    b = CombinationalSimulator(swept).run({"a": vectors})["y"]
    assert [int(v) for v in a] == [int(v) for v in b]


@given(random_circuit())
@settings(max_examples=60)
def test_lut_mapping_covers_every_random_circuit(case):
    from repro.fpga.lut_map import map_to_luts
    from repro.hdl.gates import Op as _Op

    n_inputs, ops, picks, _ = case
    nl, _ = _build(n_inputs, ops, picks)
    luts = map_to_luts(nl, k=4)
    roots = {l.root for l in luts}
    for w in nl.outputs["y"]:
        if nl.gates[w].op not in (_Op.INPUT, _Op.REG, _Op.CONST0, _Op.CONST1):
            assert w in roots
    assert all(l.size <= 4 for l in luts)
