"""Combinational and sequential simulation engine tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hdl.gates import Op
from repro.hdl.netlist import Bus, Netlist
from repro.hdl.simulator import (
    CombinationalSimulator,
    SequentialSimulator,
    bits_from_ints,
    ints_from_bits,
)


class TestBitPacking:
    @given(st.lists(st.integers(0, 2**40 - 1), min_size=1, max_size=20))
    def test_roundtrip(self, values):
        lanes = bits_from_ints(values, 40)
        back = ints_from_bits(lanes)
        assert [int(v) for v in back] == values

    def test_wide_words_beyond_uint64(self):
        big = (1 << 200) - 7
        lanes = bits_from_ints([big, 0, 1], 201)
        back = ints_from_bits(lanes)
        assert int(back[0]) == big

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            bits_from_ints([8], 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bits_from_ints([-1], 4)

    def test_empty_bits_rejected(self):
        with pytest.raises(ValueError):
            ints_from_bits([])


def _xor_netlist():
    nl = Netlist()
    a = nl.input("a", 4)
    b = nl.input("b", 4)
    nl.output("y", Bus(nl.gate(Op.XOR, x, y) for x, y in zip(a, b)))
    return nl


class TestCombinational:
    def test_scalar_inputs(self):
        sim = CombinationalSimulator(_xor_netlist())
        assert int(sim.run({"a": 12, "b": 10})["y"][0]) == 6

    def test_batch_inputs(self):
        sim = CombinationalSimulator(_xor_netlist())
        out = sim.run({"a": [1, 2, 3], "b": [3, 2, 1]})["y"]
        assert [int(v) for v in out] == [2, 0, 2]

    def test_scalar_broadcasts_against_batch(self):
        sim = CombinationalSimulator(_xor_netlist())
        out = sim.run({"a": [0, 1, 2, 3], "b": 1})["y"]
        assert [int(v) for v in out] == [1, 0, 3, 2]

    def test_missing_input_rejected(self):
        sim = CombinationalSimulator(_xor_netlist())
        with pytest.raises(ValueError, match="missing"):
            sim.run({"a": 1})

    def test_unknown_input_rejected(self):
        sim = CombinationalSimulator(_xor_netlist())
        with pytest.raises(ValueError, match="unknown"):
            sim.run({"a": 1, "b": 2, "c": 3})

    def test_inconsistent_batches_rejected(self):
        sim = CombinationalSimulator(_xor_netlist())
        with pytest.raises(ValueError, match="batch"):
            sim.run({"a": [1, 2], "b": [1, 2, 3]})

    def test_registers_read_init_value(self):
        nl = Netlist()
        a = nl.input("a", 1)
        q = nl.register(a[0], init=True)
        nl.output("y", Bus([q]))
        sim = CombinationalSimulator(nl)
        assert int(sim.run({"a": 0})["y"][0]) == 1

    def test_register_state_override(self):
        nl = Netlist()
        a = nl.input("a", 1)
        q = nl.register(a[0], init=False)
        nl.output("y", Bus([q]))
        sim = CombinationalSimulator(nl)
        out = sim.run({"a": 0}, reg_state={q: np.array([True])})
        assert int(out["y"][0]) == 1


class TestSequential:
    def _counter(self, width=4):
        """A width-bit binary counter built from registers + incrementer."""
        from repro.hdl.components import ripple_add

        nl = Netlist()
        qs = []
        for i in range(width):
            q = nl._new_wire(Op.REG, ())
            qs.append(q)
        state = Bus(qs)
        inc, _ = ripple_add(nl, state, nl.const_bus(1, width))
        from repro.hdl.netlist import Register

        for q, d in zip(qs, inc):
            nl.registers.append(Register(q=q, d=d, init=False))
        nl.output("count", state)
        return nl

    def test_counter_counts(self):
        sim = SequentialSimulator(self._counter(), batch=1)
        seen = [int(sim.step({})["count"][0]) for _ in range(10)]
        assert seen == list(range(10))

    def test_reset_rewinds(self):
        sim = SequentialSimulator(self._counter())
        for _ in range(5):
            sim.step({})
        sim.reset()
        assert sim.cycle == 0
        assert int(sim.step({})["count"][0]) == 0

    def test_cycle_counter(self):
        sim = SequentialSimulator(self._counter())
        sim.step({})
        sim.step({})
        assert sim.cycle == 2

    def test_run_stream(self):
        nl = Netlist()
        a = nl.input("a", 3)
        q = nl.register_bus(a)
        nl.output("y", q)
        sim = SequentialSimulator(nl)
        outs = sim.run_stream([{"a": v} for v in (3, 5, 7)])
        assert [int(o["y"][0]) for o in outs] == [0, 3, 5]  # one-cycle delay

    def test_batched_lanes_independent(self):
        nl = Netlist()
        a = nl.input("a", 2)
        q = nl.register_bus(a)
        nl.output("y", q)
        sim = SequentialSimulator(nl, batch=3)
        sim.step({"a": [0, 1, 2]})
        out = sim.step({"a": [0, 0, 0]})["y"]
        assert [int(v) for v in out] == [0, 1, 2]
