"""Hardware timing model tests (Table II's SRC-6 column)."""

import pytest

from repro.perf.clock_model import SRC6_CLOCK_MHZ, HardwareEstimate, HardwareTimingModel


class TestEstimate:
    def test_src6_marginal_is_10ns(self):
        """The paper: one permutation per 100 MHz clock → 10 ns."""
        model = HardwareTimingModel(10, clock_mhz=SRC6_CLOCK_MHZ)
        est = model.estimate(1_000_000)
        assert est.marginal_ns_per_permutation == pytest.approx(10.0)

    def test_marginal_independent_of_n(self):
        """The defining property: hardware cost does not grow with n."""
        times = [
            HardwareTimingModel(n, clock_mhz=100.0).estimate(1000).marginal_ns_per_permutation
            for n in (2, 5, 10)
        ]
        assert len(set(times)) == 1

    def test_amortised_tends_to_marginal(self):
        model = HardwareTimingModel(8, clock_mhz=100.0)
        small = model.estimate(10).ns_per_permutation
        large = model.estimate(100_000).ns_per_permutation
        assert small > large
        assert large == pytest.approx(10.0, rel=1e-3)

    def test_total_includes_fill(self):
        model = HardwareTimingModel(5, clock_mhz=100.0)
        est = model.estimate(10)
        assert est.total_ns == pytest.approx((model.latency_cycles + 10) * 10.0)

    def test_latency(self):
        model = HardwareTimingModel(6, clock_mhz=200.0)
        assert model.latency_cycles == 5
        assert model.latency_ns == pytest.approx(25.0)

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            HardwareTimingModel(4).estimate(0)


class TestFPGADerivedClock:
    def test_clock_from_timing_model(self):
        """clock_mhz=None pulls Fmax from the synthesized pipelined netlist."""
        model = HardwareTimingModel(4, clock_mhz=None)
        assert 1.0 < model.clock_mhz < 1000.0

    def test_fpga_clock_decreases_with_n(self):
        """Deeper stages → slower clock, the Table-III frequency trend."""
        f3 = HardwareTimingModel(3, clock_mhz=None).clock_mhz
        f8 = HardwareTimingModel(8, clock_mhz=None).clock_mhz
        assert f3 > f8
