"""Strong-scaling harness tests."""

import time

import pytest

from repro.perf.scaling import ScalingPoint, render_scaling_table, strong_scaling


def _deterministic_job(workers: int) -> int:
    return sum(range(1000))  # independent of workers


def _nondeterministic_job(workers: int) -> int:
    return workers  # changes with workers: must be rejected


class TestStrongScaling:
    def test_runs_and_validates(self):
        points = strong_scaling(_deterministic_job, worker_counts=(1, 2))
        assert [p.workers for p in points] == [1, 2]
        assert len({p.result_digest for p in points}) == 1

    def test_worker_dependent_result_rejected(self):
        with pytest.raises(AssertionError, match="differs"):
            strong_scaling(_nondeterministic_job, worker_counts=(1, 2))

    def test_repeat_nondeterminism_rejected(self):
        calls = []

        def flaky(workers):
            calls.append(1)
            return len(calls)

        with pytest.raises(AssertionError, match="deterministic"):
            strong_scaling(flaky, worker_counts=(1,), repeats=2)

    def test_empty_counts_rejected(self):
        with pytest.raises(ValueError):
            strong_scaling(_deterministic_job, worker_counts=())

    def test_numpy_results_freezable(self):
        import numpy as np

        points = strong_scaling(lambda w: np.arange(10), worker_counts=(1, 3))
        assert len({p.result_digest for p in points}) == 1

    def test_speedup_computation(self):
        base = ScalingPoint(workers=1, seconds=4.0, result_digest=0)
        fast = ScalingPoint(workers=4, seconds=1.0, result_digest=0)
        assert fast.speedup_vs(base) == pytest.approx(4.0)
        assert fast.efficiency_vs(base) == pytest.approx(1.0)

    def test_render(self):
        points = strong_scaling(_deterministic_job, worker_counts=(1, 2))
        table = render_scaling_table(points)
        assert "speedup" in table.splitlines()[0]
        assert len(table.splitlines()) == 3

    def test_real_parallel_job_scales_without_changing_result(self):
        """End-to-end: the parallel derangement counter under the harness."""
        from repro.parallel.experiments import parallel_derangements

        points = strong_scaling(
            lambda w: parallel_derangements(4, samples=1 << 12, workers=w).derangements,
            worker_counts=(1, 2),
        )
        assert len({p.result_digest for p in points}) == 1
