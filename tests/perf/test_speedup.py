"""Table-II harness tests (with tiny iteration counts to stay fast)."""

import pytest

from repro.perf.software_baseline import (
    default_iterations,
    software_batch_unrank_ns,
    software_shuffle_ns,
    software_unrank_ns,
)
from repro.perf.speedup import Table2Row, render_table2, table2_rows


class TestBaselines:
    def test_scalar_time_positive(self):
        assert software_unrank_ns(4, iterations=200) > 0

    def test_batch_time_positive(self):
        assert software_batch_unrank_ns(4, iterations=200) > 0

    def test_shuffle_time_positive(self):
        assert software_shuffle_ns(4, iterations=200) > 0

    def test_batch_faster_than_scalar(self):
        """The vectorised unranker must beat the scalar loop per element."""
        scalar = software_unrank_ns(8, iterations=2000)
        batch = software_batch_unrank_ns(8, iterations=2000)
        assert batch < scalar

    def test_default_iterations_decrease_with_n(self):
        assert default_iterations(2) >= default_iterations(6) >= default_iterations(10)


class TestRows:
    def test_row_derived_columns(self):
        row = Table2Row(n=4, hw_ns=10.0, sw_ns=2500.0, sw_batch_ns=200.0, iterations=100)
        assert row.speedup == pytest.approx(250.0)
        assert row.speedup_vs_batch == pytest.approx(20.0)

    def test_table2_shape(self):
        rows = table2_rows(ns=[2, 3], iterations=300)
        assert [r.n for r in rows] == [2, 3]
        for r in rows:
            assert r.hw_ns == pytest.approx(10.0)  # SRC-6 default clock
            assert r.speedup > 1.0

    def test_speedup_grows_with_n(self):
        """The paper's shape: software slows with n, hardware does not,
        so the speedup column increases."""
        rows = table2_rows(ns=[2, 8], iterations=3000)
        assert rows[1].speedup > rows[0].speedup

    def test_render(self):
        rows = table2_rows(ns=[3], iterations=200)
        text = render_table2(rows)
        assert "speedup" in text.splitlines()[0]
        assert len(text.splitlines()) == 2
