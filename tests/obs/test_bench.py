"""Benchmark telemetry: schema validation, stats, report emission."""

import json

import pytest

from repro.obs.bench import (
    SCHEMA,
    BenchReportError,
    emit_report,
    environment_fingerprint,
    iteration_stats,
    load_and_validate,
    main,
    measure,
    measure_disabled_metrics_overhead,
    validate_report,
)


def good_payload(**overrides) -> dict:
    payload = {
        "schema": SCHEMA,
        "name": "unit_probe",
        "environment": environment_fingerprint(),
        "data": {"rows": [1, 2, 3]},
    }
    payload.update(overrides)
    return payload


class TestValidator:
    def test_good_payload_passes(self):
        validate_report(good_payload())

    def test_timing_with_histogram_passes(self):
        timing = iteration_stats([0.001, 0.002, 0.004, 0.008], unit="s")
        validate_report(good_payload(timing=timing))

    @pytest.mark.parametrize(
        "mutation, fragment",
        [
            ({"schema": "repro-bench/0"}, "schema"),
            ({"name": "Bad-Name"}, "name"),
            ({"environment": "laptop"}, "environment"),
            ({"environment": {"python": "3.11"}}, "cpu_count"),
            ({"data": [1, 2]}, "data"),
            ({"timing": {"mean": "fast"}}, "timing.mean"),
            ({"text_report": 7}, "text_report"),
        ],
    )
    def test_bad_payloads_rejected(self, mutation, fragment):
        with pytest.raises(BenchReportError) as err:
            validate_report(good_payload(**mutation))
        assert fragment in str(err.value)

    def test_non_dict_rejected(self):
        with pytest.raises(BenchReportError):
            validate_report([1, 2, 3])

    def test_histogram_count_length_enforced(self):
        timing = {"histogram": {"edges": [1.0, 2.0], "counts": [1, 2]}}
        with pytest.raises(BenchReportError) as err:
            validate_report(good_payload(timing=timing))
        assert "len(edges)+1" in str(err.value)

    def test_histogram_edges_must_ascend(self):
        timing = {"histogram": {"edges": [2.0, 1.0], "counts": [0, 0, 0]}}
        with pytest.raises(BenchReportError) as err:
            validate_report(good_payload(timing=timing))
        assert "ascending" in str(err.value)

    def test_all_problems_reported_at_once(self):
        with pytest.raises(BenchReportError) as err:
            validate_report({"schema": "nope", "name": "UGLY"})
        assert len(err.value.problems) >= 3  # schema, name, environment, data


class TestIterationStats:
    def test_invariants(self):
        stats = iteration_stats([3.0, 1.0, 2.0, 2.0])
        assert stats["min"] == 1.0 and stats["max"] == 3.0
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["median"] == pytest.approx(2.0)
        assert stats["rounds"] == 4
        hist = stats["histogram"]
        assert sum(hist["counts"]) == 4
        assert hist["edges"] == sorted(hist["edges"])
        assert len(hist["counts"]) == len(hist["edges"]) + 1

    def test_single_sample_has_no_histogram(self):
        stats = iteration_stats([1.0])
        assert stats["stddev"] == 0.0
        assert "histogram" not in stats

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            iteration_stats([])

    def test_measure_produces_valid_timing(self):
        timing = measure(lambda: sum(range(100)), rounds=3)
        assert timing["rounds"] == 3
        validate_report(good_payload(timing=timing))


class TestEmitReport:
    def test_writes_schema_valid_json(self, tmp_path):
        path = emit_report(tmp_path, "unit_probe", data={"k": 1},
                           text_report="results/unit_probe.txt")
        assert path == tmp_path / "unit_probe.json"
        payload = load_and_validate(path)
        assert payload["data"] == {"k": 1}
        assert payload["text_report"] == "results/unit_probe.txt"
        assert payload["environment"]["cpu_count"] >= 1

    def test_bad_name_refused_before_writing(self, tmp_path):
        with pytest.raises(BenchReportError):
            emit_report(tmp_path, "Bad Name", data={})
        assert list(tmp_path.iterdir()) == []

    def test_missing_benchmark_fixture_omits_timing(self, tmp_path):
        class Hollow:
            stats = None

        path = emit_report(tmp_path, "unit_probe", benchmark=Hollow())
        assert "timing" not in json.loads(path.read_text())


class TestOverheadProbe:
    def test_reports_all_fields(self):
        out = measure_disabled_metrics_overhead(
            lambda: None, hot_calls=100, guard_calls=1000, repeats=1
        )
        assert set(out) == {
            "disabled_inc_ns", "hot_path_ns_per_op",
            "instrumented_sites_per_op", "overhead_pct",
        }
        assert out["disabled_inc_ns"] >= 0.0
        assert out["overhead_pct"] >= 0.0


class TestValidateCli:
    def test_ok_and_invalid_paths(self, tmp_path, capsys):
        good = emit_report(tmp_path, "unit_probe", data={})
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "wrong"}))
        assert main(["validate", str(good)]) == 0
        assert "ok" in capsys.readouterr().out
        assert main(["validate", str(good), str(bad)]) == 1
        captured = capsys.readouterr()
        assert "INVALID" in captured.err

    def test_missing_file_fails(self, tmp_path, capsys):
        assert main(["validate", str(tmp_path / "nope.json")]) == 1
        assert "MISSING" in capsys.readouterr().err
