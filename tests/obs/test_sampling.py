"""Samplers, trace/span id minting, the span ring and its dump schema."""

import json

import pytest

from repro.obs import sampling as sampling_mod
from repro.obs.sampling import (
    TRACE_DUMP_SCHEMA,
    AlwaysSampler,
    NeverSampler,
    ProbabilisticSampler,
    RateLimitedSampler,
    SpanRing,
    new_span_id,
    new_trace_id,
    validate_trace_dump,
)
from repro.obs.tracing import Span


class TestIdentifiers:
    def test_shapes_are_w3c_sized_hex(self):
        t, s = new_trace_id(), new_span_id()
        assert len(t) == 32 and int(t, 16) >= 0
        assert len(s) == 16 and int(s, 16) >= 0

    def test_ids_do_not_repeat(self):
        ids = {new_span_id() for _ in range(10_000)}
        assert len(ids) == 10_000

    def test_fork_guard_reseeds_on_pid_change(self, monkeypatch):
        # simulate a fork by lying about the pid: the generator must be
        # replaced so a child never replays the parent's id stream
        before = sampling_mod._id_rand
        monkeypatch.setattr(
            sampling_mod.os, "getpid", lambda: sampling_mod._id_pid + 1
        )
        new_span_id()
        assert sampling_mod._id_rand is not before


class TestSamplers:
    def test_always_and_never(self):
        assert all(AlwaysSampler()("x") for _ in range(10))
        assert not any(NeverSampler()("x") for _ in range(10))

    def test_probabilistic_is_seeded_and_deterministic(self):
        a = ProbabilisticSampler(0.3, seed=42)
        b = ProbabilisticSampler(0.3, seed=42)
        assert [a("t") for _ in range(200)] == [b("t") for _ in range(200)]

    def test_probabilistic_hits_roughly_its_rate(self):
        s = ProbabilisticSampler(0.25, seed=1)
        kept = sum(s("t") for _ in range(4000))
        assert 800 <= kept <= 1200  # 0.25 ± generous tolerance

    def test_rate_bounds_validated(self):
        with pytest.raises(ValueError):
            ProbabilisticSampler(1.5)
        with pytest.raises(ValueError):
            ProbabilisticSampler(-0.1)

    def test_edge_rates_never_touch_the_rng(self):
        assert all(ProbabilisticSampler(1.0)("t") for _ in range(5))
        assert not any(ProbabilisticSampler(0.0)("t") for _ in range(5))

    def test_decision_tally_feeds_effective_rate(self):
        s = ProbabilisticSampler(0.5, seed=0)
        for _ in range(100):
            s("t")
        assert s.decisions == 100
        assert 0 < s.sampled < 100

    def test_rate_limited_token_bucket_on_driven_clock(self, monkeypatch):
        clock = {"now": 100.0}
        monkeypatch.setattr(sampling_mod, "_monotonic", lambda: clock["now"])
        s = RateLimitedSampler(max_per_s=2.0, burst=2)
        # burst drains, then the bucket is empty
        assert s("t") and s("t")
        assert not s("t")
        # half a second refills one token at 2/s
        clock["now"] += 0.5
        assert s("t")
        assert not s("t")

    def test_rate_limited_validates_rate(self):
        with pytest.raises(ValueError):
            RateLimitedSampler(0.0)


class TestSpanRing:
    def _export(self, name: str = "root") -> dict:
        return Span(name).end().export()

    def test_overflow_drops_oldest_and_counts(self):
        ring = SpanRing(capacity=2)
        for name in ("a", "b", "c"):
            ring.record(self._export(name))
        assert len(ring) == 2
        assert ring.recorded == 3
        assert ring.dropped == 1
        assert [t["name"] for t in ring.snapshot()] == ["b", "c"]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SpanRing(0)

    def test_dump_writes_valid_schema(self, tmp_path):
        ring = SpanRing(capacity=4)
        ring.record(self._export())
        path = tmp_path / "traces.json"
        doc = ring.dump(path)
        assert doc["schema"] == TRACE_DUMP_SCHEMA
        on_disk = json.loads(path.read_text())
        assert on_disk == doc
        validate_trace_dump(on_disk)


class TestTraceDumpValidation:
    def test_accepts_a_real_tree(self):
        root = Span("batch")
        root.child("request").end()
        root.end()
        validate_trace_dump(
            {
                "schema": TRACE_DUMP_SCHEMA,
                "capacity": 1,
                "recorded": 1,
                "dropped": 0,
                "traces": [root.export()],
            }
        )

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            validate_trace_dump({"schema": "nope", "traces": []})

    def test_rejects_broken_parent_link(self):
        root = Span("batch")
        child = root.child("request")
        child.end()
        root.end()
        doc = root.export()
        doc["children"][0]["parent_id"] = "0000000000000000"
        with pytest.raises(ValueError):
            validate_trace_dump(
                {"schema": TRACE_DUMP_SCHEMA, "traces": [doc]}
            )

    def test_rejects_cross_trace_child(self):
        root = Span("batch")
        child = root.child("request")
        child.end()
        root.end()
        doc = root.export()
        doc["children"][0]["trace_id"] = new_trace_id()
        with pytest.raises(ValueError):
            validate_trace_dump(
                {"schema": TRACE_DUMP_SCHEMA, "traces": [doc]}
            )

    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            validate_trace_dump([])
