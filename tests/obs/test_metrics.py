"""Metrics registry: cardinality bounds, bucket semantics, disabled no-op."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    OVERFLOW_LABEL,
    MetricsRegistry,
)
from repro.obs.metrics import _NOOP  # noqa: PLC2701 — the disabled-path contract


@pytest.fixture
def reg():
    return MetricsRegistry(enabled=True)


class TestDisabledNoOp:
    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("c_total", "help", ("k",))
        g = reg.gauge("g", "help")
        h = reg.histogram("h_seconds", "help")
        c.inc(k="v")
        g.set(3.0)
        h.observe(0.2)
        assert c.series_count == 0
        assert g.series_count == 0
        assert h.series_count == 0
        assert reg.render_exposition() == ""
        assert reg.snapshot() == {"metrics": []}

    def test_disabled_labels_returns_shared_noop_handle(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("c_total", "help", ("k",))
        handle = c.labels(k="anything")
        assert handle is _NOOP
        # and the handle absorbs every update type
        handle.inc()
        handle.dec()
        handle.set(1.0)
        handle.observe(1.0)

    def test_enable_disable_round_trip(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "help")
        c.inc()
        assert c.series_count == 0
        reg.enable()
        c.inc(2.0)
        reg.disable()
        c.inc(100.0)  # dropped
        reg.enable()
        assert "c_total 2" in reg.render_exposition()


class TestLabelCardinality:
    def test_overflow_folds_into_reserved_series(self, reg):
        reg.max_series = 4
        c = reg.counter("c_total", "help", ("k",))
        for i in range(10):
            c.inc(k=f"v{i}")
        # 4 real series; everything after folds into __overflow__
        assert c.series_count == 5
        overflow = c.labels(k="v9999")
        assert overflow is c._series[(OVERFLOW_LABEL,)]
        assert overflow.value == 6.0  # v4..v9 all landed here

    def test_label_name_mismatch_raises(self, reg):
        c = reg.counter("c_total", "help", ("k",))
        with pytest.raises(ValueError):
            c.labels(wrong="v")
        with pytest.raises(ValueError):
            c.inc()  # labelled metric used without labels

    def test_registration_idempotent_and_kind_checked(self, reg):
        c1 = reg.counter("c_total", "help", ("k",))
        c2 = reg.counter("c_total", "help", ("k",))
        assert c1 is c2
        with pytest.raises(ValueError):
            reg.gauge("c_total", "help", ("k",))
        with pytest.raises(ValueError):
            reg.counter("c_total", "help", ("other",))

    def test_invalid_names_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.counter("1bad", "help")
        with pytest.raises(ValueError):
            reg.counter("ok_total", "help", ("bad-label",))


class TestCounterGauge:
    def test_counter_rejects_negative(self, reg):
        c = reg.counter("c_total", "help")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_gauge_moves_both_ways(self, reg):
        g = reg.gauge("g", "help", ("k",))
        g.set(10.0, k="a")
        g.inc(5.0, k="a")
        g.dec(2.0, k="a")
        assert g.labels(k="a").value == 13.0


class TestHistogramBuckets:
    def test_bucket_edges_are_le_inclusive(self, reg):
        h = reg.histogram("h", "help", buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.5, 2.0, 5.0, 99.0):
            h.observe(v)
        handle = h._default_handle()
        # le-semantics: a value equal to an edge lands in that bucket
        assert handle.counts == [2, 2, 1, 1]  # ≤1, ≤2, ≤5, +Inf
        assert handle.cumulative() == [2, 4, 5, 6]
        assert handle.count == 6
        assert handle.sum == pytest.approx(109.0)

    def test_unsorted_buckets_are_sorted(self, reg):
        h = reg.histogram("h", "help", buckets=(5.0, 1.0, 2.0))
        assert h.buckets == (1.0, 2.0, 5.0)

    def test_duplicate_edges_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.histogram("h", "help", buckets=(1.0, 1.0))

    def test_default_buckets_are_prometheus(self, reg):
        h = reg.histogram("h", "help")
        assert h.buckets == DEFAULT_BUCKETS


class TestExposition:
    def test_counter_exposition_format(self, reg):
        c = reg.counter("requests_total", "requests served", ("code",))
        c.inc(code=200)
        c.inc(code=200)
        c.inc(code=500)
        text = reg.render_exposition()
        assert "# HELP requests_total requests served" in text
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{code="200"} 2' in text
        assert 'requests_total{code="500"} 1' in text
        assert text.endswith("\n")

    def test_histogram_exposition_is_cumulative_with_inf(self, reg):
        h = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 3.0):
            h.observe(v)
        text = reg.render_exposition()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1.0"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_sum 3.55" in text
        assert "lat_seconds_count 3" in text

    def test_label_values_escaped(self, reg):
        c = reg.counter("c_total", "help", ("k",))
        c.inc(k='sa"id\nthing\\here')
        text = reg.render_exposition()
        assert r'c_total{k="sa\"id\nthing\\here"} 1' in text

    def test_snapshot_round_trips_through_json(self, reg):
        import json

        c = reg.counter("c_total", "help", ("k",))
        c.inc(k="a")
        h = reg.histogram("h", "help", buckets=(1.0,))
        h.observe(0.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        by_name = {m["name"]: m for m in snap["metrics"]}
        assert by_name["c_total"]["series"][0] == {"labels": {"k": "a"}, "value": 1.0}
        assert by_name["h"]["series"][0]["counts"] == [1, 0]

    def test_reset_clears_series_keeps_registrations(self, reg):
        c = reg.counter("c_total", "help")
        c.inc()
        reg.reset()
        assert reg.render_exposition() == ""
        c.inc()  # handle still usable post-reset
        assert "c_total 1" in reg.render_exposition()


class TestEnumGauge:
    """Gauge.set_enum: the one-hot breaker-state publication pattern."""

    def test_one_hot_across_states(self, reg):
        g = reg.gauge("g_state", "help", ("shard", "state"))
        g.set_enum("open", ("closed", "open", "half_open"), shard="s1")
        snap = {
            tuple(sorted(s["labels"].items())): s["value"]
            for m in reg.snapshot()["metrics"]
            if m["name"] == "g_state"
            for s in m["series"]
        }
        assert snap[(("shard", "s1"), ("state", "closed"))] == 0.0
        assert snap[(("shard", "s1"), ("state", "open"))] == 1.0
        assert snap[(("shard", "s1"), ("state", "half_open"))] == 0.0

    def test_transition_clears_the_previous_state(self, reg):
        g = reg.gauge("g_state", "help", ("state",))
        states = ("closed", "open", "half_open")
        g.set_enum("open", states)
        g.set_enum("closed", states)
        values = {
            s["labels"]["state"]: s["value"]
            for m in reg.snapshot()["metrics"]
            if m["name"] == "g_state"
            for s in m["series"]
        }
        assert values == {"closed": 1.0, "open": 0.0, "half_open": 0.0}

    def test_unknown_state_rejected(self, reg):
        g = reg.gauge("g_state", "help", ("state",))
        with pytest.raises(ValueError):
            g.set_enum("exploded", ("closed", "open"))

    def test_disabled_registry_noop(self):
        reg = MetricsRegistry(enabled=False)
        g = reg.gauge("g_state", "help", ("state",))
        g.set_enum("anything-goes", ("closed",))  # not even validated
        assert g.series_count == 0
