"""Tracing: span nesting, export round-trip, cross-process propagation."""

import pytest

from repro.obs.events import CollectingSink, SpanEventSink, TeeSink
from repro.obs.tracing import Span, Tracer
from repro.parallel.sharding import ShardSpec, hardened_map_reduce, index_shards


class TestSpanNesting:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer", job="j1") as outer:
            with tracer.span("inner-a"):
                pass
            with tracer.span("inner-b"):
                with tracer.span("leaf"):
                    pass
        assert tracer.root is outer
        assert [c.name for c in outer.children] == ["inner-a", "inner-b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]
        assert outer.status == "ok"
        assert outer.wall_s is not None and outer.wall_s >= 0
        assert outer.cpu_s is not None

    def test_current_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("a"):
            assert tracer.current.name == "a"
            with tracer.span("b"):
                assert tracer.current.name == "b"
            assert tracer.current.name == "a"
        assert tracer.current is None

    def test_exception_marks_span_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.root.status == "error"
        assert "boom" in tracer.root.error

    def test_events_carry_fields_and_offsets(self):
        tracer = Tracer()
        with tracer.span("s") as s:
            s.event("checkpoint", items=3)
        (e,) = s.events
        assert e["name"] == "checkpoint"
        assert e["fields"] == {"items": 3}
        assert e["offset_s"] >= 0

    def test_render_shows_tree_and_events(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
            tracer.current.event("note", k="v")
        text = tracer.render()
        assert "root" in text and "child" in text
        assert "├─" in text or "└─" in text
        assert "note" in text and "k=v" in text


class TestExportRoundTrip:
    def test_export_import_preserves_structure(self):
        tracer = Tracer()
        with tracer.span("root", n=4) as root:
            root.event("mark", x=1)
            with tracer.span("child"):
                pass
        rebuilt = Span.from_export(root.export())
        assert rebuilt.name == "root"
        assert rebuilt.attrs == {"n": 4}
        assert rebuilt.events == root.events
        assert [c.name for c in rebuilt.children] == ["child"]
        assert rebuilt.wall_s == root.wall_s
        assert rebuilt.status == "ok"

    def test_adopt_accepts_exports_and_spans(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            tracer.adopt(Span("live").end())
            tracer.adopt(Span("shipped").end().export())
        assert [c.name for c in parent.children] == ["live", "shipped"]

    def test_find_all_walks_the_tree(self):
        root = Span("r")
        root.children = [Span("shard0").end(), Span("shard1").end()]
        root.children[0].children = [Span("shard0").end()]
        assert len(root.find_all("shard0")) == 2
        assert len(list(root.walk())) == 4


def _square_sum(shard: ShardSpec) -> int:
    return sum(i * i for i in shard)


def _add(a: int, b: int) -> int:
    return a + b


class TestHardenedMapReducePropagation:
    def test_every_shard_becomes_a_child_span_across_processes(self):
        tracer = Tracer()
        shards = index_shards(40, 4)
        with tracer.span("job") as job:
            got = hardened_map_reduce(
                _square_sum, shards, _add, workers=2, tracer=tracer,
                backoff=0.0, jitter=0.0,
            )
        assert got == sum(i * i for i in range(40))
        names = sorted(c.name for c in job.children)
        assert names == ["shard0", "shard1", "shard2", "shard3"]
        for child in job.children:
            # worker-side spans: real timing and the worker's PID
            assert child.status == "ok"
            assert child.wall_s is not None
            assert "pid" in child.attrs
            assert child.attrs["attempt"] == 1

    def test_inline_runner_also_traces(self):
        tracer = Tracer()
        with tracer.span("job") as job:
            hardened_map_reduce(
                _square_sum, index_shards(10, 2), _add, workers=1, tracer=tracer,
            )
        assert sorted(c.name for c in job.children) == ["shard0", "shard1"]

    def test_retries_appear_as_separate_attempt_spans(self, tmp_path):
        import os

        class _FlakyOnce:
            def __init__(self, marker):
                self.marker = marker

            def __call__(self, shard):
                if shard.shard_id == 1 and not os.path.exists(self.marker):
                    open(self.marker, "w").close()
                    raise RuntimeError("transient")
                return _square_sum(shard)

        tracer = Tracer()
        sink = CollectingSink()
        with tracer.span("job") as job:
            hardened_map_reduce(
                _FlakyOnce(str(tmp_path / "m")), index_shards(20, 2), _add,
                workers=1, backoff=0.0, jitter=0.0,
                tracer=tracer, events=sink,
            )
        shard1_attempts = job.find_all("shard1")
        assert len(shard1_attempts) == 2  # failed attempt + successful retry
        statuses = sorted(s.status for s in shard1_attempts)
        assert statuses == ["error", "ok"]
        assert "shard_retry" in sink.kinds()

    def test_span_event_sink_lands_on_current_span(self):
        tracer = Tracer()
        collect = CollectingSink()
        tee = TeeSink(SpanEventSink(tracer), collect)
        with tracer.span("job") as job:
            tee.emit("progress", pct=50)
        assert job.events[0]["name"] == "progress"
        assert collect.events[0].fields == {"pct": 50}
