"""Simulator probes: sample streams, stage digits, VCD golden file."""

import pathlib

import numpy as np
import pytest

from repro.core.converter import IndexToPermutationConverter
from repro.hdl.simulator import CombinationalSimulator, SequentialSimulator
from repro.obs.probes import SimProbe, trace_converter

GOLDEN = pathlib.Path(__file__).parent / "golden" / "converter_n3_pipelined.vcd"


class TestSimProbe:
    def test_combinational_batch_records_one_sample_per_lane(self):
        conv = IndexToPermutationConverter(3)
        nl = conv.build_netlist(with_stage_probes=True)
        probe = SimProbe(nl)
        sim = CombinationalSimulator(nl, probe=probe)
        sim.run({"index": list(range(6))})

        assert probe.sweeps == 1
        assert probe.cycles == 6
        assert probe.signal_history("index") == [0, 1, 2, 3, 4, 5]
        # factorial digits of 0..5 at n = 3: index = d0·2! + d1·1!
        assert probe.stage_digits() == {
            0: [0, 0, 1, 1, 2, 2],
            1: [0, 1, 0, 1, 0, 1],
        }

    def test_gate_evals_scale_with_batch(self):
        nl = IndexToPermutationConverter(3).build_netlist()
        probe = SimProbe(nl)
        CombinationalSimulator(nl, probe=probe).run({"index": list(range(6))})
        assert probe._logic_gates > 0
        assert probe.gate_evals == probe._logic_gates * 6

    def test_transition_tracking_is_optional(self):
        nl = IndexToPermutationConverter(3).build_netlist()
        on = SimProbe(nl)
        off = SimProbe(nl, track_wire_transitions=False)
        CombinationalSimulator(nl, probe=on).run({"index": list(range(6))})
        CombinationalSimulator(nl, probe=off).run({"index": list(range(6))})
        assert on.toggle_total() > 0
        assert off.toggle_total() == 0
        # the sample stream is identical either way
        assert on.samples == off.samples

    def test_sequential_records_one_sample_per_clock(self):
        nl = IndexToPermutationConverter(3).build_netlist(pipelined=True)
        probe = SimProbe(nl)
        seq = SequentialSimulator(nl, batch=1, probe=probe)
        for i in range(5):
            seq.step({"index": i})
        assert probe.cycles == 5
        assert probe.signal_history("index") == [0, 1, 2, 3, 4]

    def test_unwatched_signal_raises(self):
        nl = IndexToPermutationConverter(3).build_netlist()
        probe = SimProbe(nl)
        with pytest.raises(KeyError):
            probe.signal_history("nope")

    def test_empty_watch_list_rejected(self):
        nl = IndexToPermutationConverter(3).build_netlist()
        with pytest.raises(ValueError):
            SimProbe(nl, signals={})

    def test_vcd_requires_samples(self):
        nl = IndexToPermutationConverter(3).build_netlist()
        with pytest.raises(ValueError):
            SimProbe(nl).to_vcd()

    def test_probeless_simulator_keeps_probe_none(self):
        nl = IndexToPermutationConverter(3).build_netlist()
        assert CombinationalSimulator(nl).probe is None
        assert SequentialSimulator(nl).probe is None

    def test_summary_is_json_able(self):
        import json

        nl = IndexToPermutationConverter(3).build_netlist()
        probe = SimProbe(nl)
        CombinationalSimulator(nl, probe=probe).run({"index": [0, 1]})
        summary = json.loads(json.dumps(probe.summary()))
        assert summary["samples"] == 2
        assert "gate_evals" in summary and "wire_toggles" in summary


class TestStageProbeNetlist:
    def test_stage_probes_do_not_perturb_default_netlist(self):
        conv = IndexToPermutationConverter(5)
        plain = conv.build_netlist()
        probed = conv.build_netlist(with_stage_probes=True)
        assert len(probed.gates) > len(plain.gates)  # encoders added
        # default build unchanged: resource counts must not move
        assert len(plain.gates) == len(conv.build_netlist().gates)
        assert [n for n in probed.outputs if n.startswith("dbg_digit")] == [
            "dbg_digit0", "dbg_digit1", "dbg_digit2", "dbg_digit3",
        ]


class TestTraceConverter:
    def test_traced_run_matches_functional_model(self):
        perms, probe = trace_converter(3, list(range(6)), pipelined=True)
        conv = IndexToPermutationConverter(3)
        assert np.array_equal(perms, conv.convert_batch(range(6)))
        assert probe.cycles == 6 + conv.pipeline_register_stages

    def test_combinational_trace_matches_too(self):
        perms, _ = trace_converter(3, [0, 3, 5], pipelined=False)
        assert np.array_equal(
            perms, IndexToPermutationConverter(3).convert_batch([0, 3, 5])
        )

    def test_vcd_golden_file_n3(self, tmp_path):
        """The n = 3 pipelined trace must render byte-identical VCD."""
        out = tmp_path / "n3.vcd"
        trace_converter(3, list(range(6)), vcd_path=str(out), pipelined=True)
        assert out.read_text() == GOLDEN.read_text()

    def test_vcd_is_structurally_valid(self, tmp_path):
        """Sanity-parse the dump: header, var declarations, time marks."""
        out = tmp_path / "n3.vcd"
        _, probe = trace_converter(
            3, list(range(6)), vcd_path=str(out), pipelined=True
        )
        text = out.read_text()
        lines = text.splitlines()
        assert lines[0].startswith("$timescale")
        assert "$enddefinitions $end" in lines
        var_lines = [l for l in lines if l.startswith("$var wire ")]
        assert len(var_lines) == len(probe.signals)
        declared = {l.split()[4] for l in var_lines}
        assert declared == set(probe.signals)
        time_marks = [l for l in lines if l.startswith("#")]
        assert time_marks[0] == "#0"
        assert len(time_marks) == probe.cycles + 1  # final #t closes the dump

    def test_tracer_integration_emits_vcd_event(self, tmp_path):
        from repro.obs.tracing import Tracer

        tracer = Tracer()
        out = tmp_path / "n3.vcd"
        with tracer.span("unrank"):
            trace_converter(3, [0], vcd_path=str(out), tracer=tracer)
        assert [c.name for c in tracer.root.children] == ["simulate"]
        (event,) = tracer.root.events
        assert event["name"] == "vcd_written"
        assert event["fields"]["path"] == str(out)
