"""The pull-based exposition endpoint and the terminal dashboard."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.httpexp import ExpositionServer, fetch_json, fetch_text, render_dashboard
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampling import TRACE_DUMP_SCHEMA, SpanRing, validate_trace_dump
from repro.obs.tracing import Span


@pytest.fixture
def reg() -> MetricsRegistry:
    reg = MetricsRegistry(enabled=True)
    c = reg.counter(
        "repro_serve_requests_total", "requests", ("workload", "outcome")
    )
    c.inc(7, workload="unrank", outcome="ok")
    c.inc(1, workload="unrank", outcome="shed")
    reg.gauge("repro_serve_queue_depth", "queued entries").set(3)
    return reg


def test_port_zero_resolves_and_serves_prometheus_text(reg):
    with ExpositionServer(registry=reg, port=0) as srv:
        assert srv.port != 0
        text = fetch_text(srv.url + "/metrics")
    assert "# TYPE repro_serve_requests_total counter" in text
    assert (
        'repro_serve_requests_total{workload="unrank",outcome="ok"} 7' in text
    )
    assert "repro_serve_queue_depth 3" in text


def test_metrics_json_is_the_registry_snapshot(reg):
    with ExpositionServer(registry=reg, port=0) as srv:
        doc = fetch_json(srv.url + "/metrics.json")
    assert doc == reg.snapshot()


def test_traces_serves_the_ring_dump(reg):
    ring = SpanRing(capacity=8)
    ring.record(Span("serve.batch").end().export())
    with ExpositionServer(registry=reg, ring=ring, port=0) as srv:
        doc = fetch_json(srv.url + "/traces")
    validate_trace_dump(doc)
    assert doc["recorded"] == 1
    assert doc["traces"][0]["name"] == "serve.batch"


def test_traces_without_a_ring_is_an_empty_valid_dump(reg):
    with ExpositionServer(registry=reg, port=0) as srv:
        doc = fetch_json(srv.url + "/traces")
    assert doc["schema"] == TRACE_DUMP_SCHEMA
    assert doc["traces"] == []


def test_health_defaults_ok_and_degrades_to_503(reg):
    with ExpositionServer(registry=reg, port=0) as srv:
        assert fetch_json(srv.url + "/health") == {"status": "ok"}
    degraded = {"status": "degraded", "shards": {"0": {"alive": False}}}
    with ExpositionServer(registry=reg, health_fn=lambda: degraded, port=0) as srv:
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(srv.url + "/health", timeout=2.0)
        assert err.value.code == 503
        assert json.loads(err.value.read()) == degraded


def test_unknown_path_is_404_not_a_crash(reg):
    with ExpositionServer(registry=reg, port=0) as srv:
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(srv.url + "/nope", timeout=2.0)
        assert err.value.code == 404
        # and the server is still alive afterwards
        assert fetch_json(srv.url + "/health") == {"status": "ok"}


def test_stop_is_idempotent_and_restartable(reg):
    srv = ExpositionServer(registry=reg, port=0)
    srv.start()
    first = srv.url
    fetch_text(first + "/metrics")
    srv.stop()
    srv.stop()  # second stop is a no-op
    srv.start()
    fetch_text(srv.url + "/metrics")
    srv.stop()


class TestDashboard:
    def test_renders_traffic_and_depth_rows(self, reg):
        panel = render_dashboard(reg.snapshot())
        assert "repro serving telemetry" in panel
        assert "requests" in panel
        assert "shed" in panel
        assert "queue depth       3" in panel

    def test_health_section_and_empty_snapshot_tolerated(self):
        empty = MetricsRegistry(enabled=True)
        panel = render_dashboard(
            empty.snapshot(), health={"status": "degraded", "shards": {}}
        )
        assert "health      degraded" in panel
