"""The stack-sampling profiler: phase attribution and the dump schema."""

import json
import threading
import time

import pytest

from repro.obs.profiler import (
    PROFILE_SCHEMA,
    SamplingProfiler,
    classify_frame,
    validate_profile,
)


def spin(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(i * i for i in range(500))


class TestSampling:
    def test_profiles_a_busy_thread(self):
        stop = threading.Event()
        worker = threading.Thread(target=spin, args=(stop,), daemon=True)
        worker.start()
        try:
            with SamplingProfiler(interval_s=0.001) as prof:
                time.sleep(0.15)
        finally:
            stop.set()
            worker.join()
        assert prof.samples > 10
        assert prof.phase_counts
        assert any("spin" in folded for folded in prof.stack_counts)

    def test_stop_is_idempotent_and_wall_accumulates(self):
        prof = SamplingProfiler(interval_s=0.001)
        prof.start()
        time.sleep(0.02)
        prof.stop()
        prof.stop()
        assert prof.report()["wall_s"] > 0.0

    def test_stack_table_overflow_folds(self):
        prof = SamplingProfiler(interval_s=0.001, max_stacks=1)
        prof.stack_counts["existing"] = 1
        stop = threading.Event()
        worker = threading.Thread(target=spin, args=(stop,), daemon=True)
        worker.start()
        try:
            prof.start()
            time.sleep(0.05)
            prof.stop()
        finally:
            stop.set()
            worker.join()
        # the table never grew beyond max_stacks + the overflow bucket
        assert len(prof.stack_counts) <= 2

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=0.0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_stacks=0)


class TestClassification:
    def test_repo_phases_attributed_by_path(self):
        assert classify_frame("src/repro/serve/batcher.py", "submit") == "batcher"
        assert classify_frame("/x/other/place.py", "f") is None


class TestReport:
    def _profile(self) -> SamplingProfiler:
        stop = threading.Event()
        worker = threading.Thread(target=spin, args=(stop,), daemon=True)
        worker.start()
        prof = SamplingProfiler(interval_s=0.001)
        try:
            with prof:
                time.sleep(0.1)
        finally:
            stop.set()
            worker.join()
        return prof

    def test_report_validates_and_fractions_sum_to_one(self):
        doc = self._profile().report()
        validate_profile(doc)
        assert doc["schema"] == PROFILE_SCHEMA
        assert sum(doc["phase_fractions"].values()) == pytest.approx(1.0)

    def test_dump_round_trips_through_disk(self, tmp_path):
        path = tmp_path / "profile.json"
        doc = self._profile().dump(path)
        on_disk = json.loads(path.read_text())
        assert on_disk == doc
        validate_profile(on_disk)

    def test_validate_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            validate_profile({"schema": "nope"})
