"""Bench-history ledger: ingest idempotency, direction rules, the gate."""

import json

import pytest

from repro.obs.history import (
    HISTORY_SCHEMA,
    extract_metrics,
    ingest_report,
    ledger_names,
    load_history,
    metric_direction,
    regress,
    render_regress_report,
    validate_history_entry,
)


def report(name: str = "serving", **metrics: float) -> dict:
    return {
        "schema": "repro-bench/1",
        "name": name,
        "data": dict(metrics) or {"sweep_us": 20.0},
    }


class TestDirections:
    def test_latency_suffixes_are_lower_better(self):
        for name in ("data.single_us", "wall_s", "rss_bytes", "jitter_stddev"):
            assert metric_direction(name) == "lower"

    def test_throughput_suffixes_are_higher_better(self):
        for name in ("requests_per_s", "hit_ratio", "batched_speedup"):
            assert metric_direction(name) == "higher"

    def test_per_s_beats_the_bare_s_latency_suffix(self):
        # longest suffix wins: a rate metric must not be classified as
        # a latency just because "_per_s" also ends in "_s"
        assert metric_direction("data.throughput_per_s") == "higher"

    def test_overhead_x_is_lower_better_despite_x_suffix(self):
        # "_overhead_x" must match before the generic "_x" rule: a
        # bigger telemetry-overhead multiplier is worse, not better
        assert metric_direction("telemetry_overhead_x") == "lower"
        assert metric_direction("batched_speedup_x") == "higher"

    def test_unknown_suffix_has_no_direction(self):
        assert metric_direction("n") is None


class TestIngest:
    def test_appends_one_valid_entry(self, tmp_path):
        entry = ingest_report(
            report(sweep_us=21.5), tmp_path, git_sha="abc123"
        )
        validate_history_entry(entry)
        assert entry["schema"] == HISTORY_SCHEMA
        assert entry["metrics"]["data.sweep_us"] == 21.5
        assert ledger_names(tmp_path) == ["serving"]
        assert load_history(tmp_path, "serving") == [entry]

    def test_idempotent_per_sha_and_smoke_flag(self, tmp_path):
        assert ingest_report(report(), tmp_path, git_sha="abc") is not None
        assert ingest_report(report(), tmp_path, git_sha="abc") is None
        # a smoke entry at the same sha is a different population
        assert (
            ingest_report(report(), tmp_path, git_sha="abc", smoke=True)
            is not None
        )
        assert len(load_history(tmp_path, "serving")) == 2

    def test_nameless_report_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="name"):
            ingest_report({"schema": "repro-bench/1"}, tmp_path)

    def test_nested_data_flattens_with_dotted_keys(self):
        metrics = extract_metrics(
            {"name": "x", "data": {"load": {"p99_ms": 1.5, "rows": [1, 2]}}}
        )
        assert metrics["data.load.p99_ms"] == 1.5
        assert "data.load.rows" not in metrics  # lists are not scalar metrics


class TestRegress:
    def _seed(self, tmp_path, values, metric="sweep_us"):
        for i, v in enumerate(values):
            ingest_report(
                report(**{metric: v}), tmp_path, git_sha=f"sha{i}"
            )

    def test_passes_inside_tolerance(self, tmp_path):
        self._seed(tmp_path, [20.0, 21.0, 20.5, 20.8])
        result = regress(tmp_path)
        assert result["ok"]
        assert result["checked"] == 1
        assert result["regressions"] == []

    def test_flags_a_latency_regression(self, tmp_path):
        self._seed(tmp_path, [20.0, 21.0, 20.5, 40.0])
        result = regress(tmp_path)
        assert not result["ok"]
        [row] = result["regressions"]
        assert row["metric"] == "data.sweep_us"
        assert row["direction"] == "lower"
        rendered = render_regress_report(result)
        assert "FAIL" in rendered
        assert "data.sweep_us" in rendered

    def test_flags_a_throughput_regression(self, tmp_path):
        self._seed(tmp_path, [10.0, 10.2, 9.9, 5.0], metric="batched_speedup_x")
        result = regress(tmp_path)
        assert not result["ok"]

    def test_improvement_is_not_a_failure(self, tmp_path):
        self._seed(tmp_path, [20.0, 21.0, 20.5, 10.0])
        result = regress(tmp_path)
        assert result["ok"]
        assert len(result["improvements"]) == 1

    def test_short_history_skips_instead_of_failing(self, tmp_path):
        # a fresh ledger must never block CI: one baseline entry is
        # below min_history, so the gate reports a skip, not a verdict
        self._seed(tmp_path, [20.0, 45.0])
        result = regress(tmp_path, min_history=2)
        assert result["ok"]
        assert result["checked"] == 0
        assert any("history" in s.get("reason", "") for s in result["skipped"])

    def test_smoke_populations_never_mix(self, tmp_path):
        self._seed(tmp_path, [20.0, 20.1, 20.2, 20.3])
        # smoke candidate is wildly slower, but compares only against
        # smoke history (none) -> skipped
        ingest_report(report(sweep_us=99.0), tmp_path, git_sha="s1", smoke=True)
        result = regress(tmp_path, smoke=True)
        assert result["ok"]
        assert result["checked"] == 0


class TestValidation:
    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            validate_history_entry({"schema": "nope"})

    def test_ledger_lines_are_self_validating_json(self, tmp_path):
        ingest_report(report(), tmp_path, git_sha="abc")
        for line in (tmp_path / "serving.jsonl").read_text().splitlines():
            validate_history_entry(json.loads(line))
