"""Latency digests: bucket accuracy, merge algebra, serialisation."""

import math
import random
import threading

import pytest

from repro.obs.digests import (
    DIGEST_QUANTILES,
    SUBBUCKETS_PER_OCTAVE,
    LatencyDigest,
)

#: The digest's advertised relative error: half a 2^(1/16) bucket.
GRID_RATIO = 2.0 ** (1.0 / SUBBUCKETS_PER_OCTAVE)


class TestBucketing:
    def test_quantiles_within_grid_relative_error(self):
        rng = random.Random(7)
        values = [rng.uniform(1e-6, 1e-1) for _ in range(5000)]
        d = LatencyDigest()
        for v in values:
            d.observe(v)
        values.sort()
        for q in DIGEST_QUANTILES:
            exact = values[round(q * (len(values) - 1))]
            got = d.quantile(q)
            assert exact / GRID_RATIO <= got <= exact * GRID_RATIO, (
                f"q={q}: {got} vs exact {exact}"
            )

    def test_observe_many_matches_observe(self):
        rng = random.Random(13)
        values = [rng.uniform(1e-9, 10.0) for _ in range(512)]
        one = LatencyDigest()
        many = LatencyDigest()
        for v in values:
            one.observe(v)
        many.observe_many(values)
        assert one.to_dict() == many.to_dict()

    def test_extreme_values_saturate_into_end_buckets(self):
        d = LatencyDigest()
        d.observe(1e-15)  # below the 1 ns grid floor
        d.observe(1e9)  # above the ~1100 s grid ceiling
        assert d.count == 2
        assert d.min == 1e-15
        assert d.max == 1e9
        # the underflow saturates into the bottom (~1 ns) bucket, so its
        # read-back is the grid floor, not the raw value; the overflow's
        # bucket midpoint is clamped back to the observed max
        assert d.quantile(0.0) <= 2e-9
        assert d.quantile(1.0) == pytest.approx(1e9)

    def test_zero_and_negative_count_as_zero(self):
        d = LatencyDigest()
        d.observe_many([0.0, -1.0, 0.5])
        assert d.count == 3
        assert d.zero_count == 2
        assert d.min == 0.0
        assert d.quantile(0.0) == 0.0
        assert d.quantile(1.0) == pytest.approx(0.5, rel=0.05)

    def test_mean_ignores_zero_observations(self):
        d = LatencyDigest()
        d.observe(0.0)
        d.observe(2.0)
        d.observe(4.0)
        assert d.mean == pytest.approx(3.0)

    def test_quantile_bounds_checked(self):
        d = LatencyDigest()
        with pytest.raises(ValueError):
            d.quantile(1.5)
        with pytest.raises(ValueError):
            d.quantile(-0.1)

    def test_empty_digest_reads_zero(self):
        d = LatencyDigest()
        assert d.count == 0
        assert d.quantile(0.99) == 0.0
        assert d.min == 0.0
        assert d.max == 0.0
        assert d.mean == 0.0


class TestMerge:
    def test_merge_equals_single_observer(self):
        rng = random.Random(3)
        a_vals = [rng.uniform(1e-6, 1.0) for _ in range(300)]
        b_vals = [rng.uniform(1e-6, 1.0) for _ in range(200)]
        a = LatencyDigest()
        b = LatencyDigest()
        whole = LatencyDigest()
        a.observe_many(a_vals)
        b.observe_many(b_vals)
        whole.observe_many(a_vals + b_vals)
        a.merge(b)
        merged, single = a.to_dict(), whole.to_dict()
        # sums accumulate in different orders, so compare them in
        # floating-point tolerance; everything else is integer-exact
        assert merged.pop("sum") == pytest.approx(single.pop("sum"))
        assert merged == single

    def test_merge_is_commutative(self):
        xs, ys = [0.001, 0.002, 5.0], [0.004, 0.00001]
        ab = LatencyDigest()
        ab.observe_many(xs)
        other = LatencyDigest()
        other.observe_many(ys)
        ba = LatencyDigest()
        ba.observe_many(ys)
        other2 = LatencyDigest()
        other2.observe_many(xs)
        assert ab.merge(other).to_dict() == ba.merge(other2).to_dict()

    def test_merge_across_serialisation_boundary(self):
        # the cross-process wire format: export on one side, rebuild and
        # merge on the other, exactly like sharded workers report back
        worker = LatencyDigest()
        worker.observe_many([0.010, 0.020, 0.040])
        parent = LatencyDigest()
        parent.observe_many([0.001])
        parent.merge(LatencyDigest.from_dict(worker.to_dict()))
        assert parent.count == 4
        assert parent.max == pytest.approx(0.040)
        assert parent.sum == pytest.approx(0.071)


class TestSerialisation:
    def test_round_trip_preserves_everything(self):
        d = LatencyDigest()
        d.observe_many([0.0, 1e-4, 2e-4, 0.3])
        clone = LatencyDigest.from_dict(d.to_dict())
        assert clone.to_dict() == d.to_dict()
        for q in DIGEST_QUANTILES:
            assert clone.quantile(q) == d.quantile(q)

    def test_to_dict_is_json_plain(self):
        import json

        d = LatencyDigest()
        d.observe_many([0.5, 0.6])
        assert json.loads(json.dumps(d.to_dict())) == d.to_dict()

    def test_empty_round_trip(self):
        clone = LatencyDigest.from_dict(LatencyDigest().to_dict())
        assert clone.count == 0
        assert math.isinf(clone._min)


class TestThreadSafety:
    def test_concurrent_observers_lose_nothing(self):
        d = LatencyDigest()
        per_thread = 2000

        def work(seed: int) -> None:
            rng = random.Random(seed)
            for _ in range(per_thread):
                d.observe(rng.uniform(1e-6, 1.0))

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert d.count == 4 * per_thread
        assert sum(d._counts.values()) == 4 * per_thread
