"""Parallel Monte-Carlo harness and sorting-assessment tests."""

import math

import numpy as np
import pytest

from repro.analysis.derangements import derangement_experiment
from repro.apps.montecarlo import (
    insertion_sort_cost,
    parallel_derangement_estimate,
    sortedness_study,
)
from repro.core.permutation import Permutation


class TestParallelEstimate:
    def test_equals_sequential_run(self):
        """Jump-ahead sharding must reproduce the sequential result bit
        for bit — the defining property of deterministic parallelism."""
        par = parallel_derangement_estimate(4, samples=1 << 13, workers=8)
        seq = derangement_experiment(4, samples=1 << 13)
        assert par.derangements == seq.derangements

    @pytest.mark.parametrize("workers", [1, 3, 5])
    def test_worker_count_invariance(self, workers):
        base = parallel_derangement_estimate(5, samples=4000, workers=1)
        other = parallel_derangement_estimate(5, samples=4000, workers=workers)
        assert base.derangements == other.derangements

    def test_estimates_e(self):
        r = parallel_derangement_estimate(6, samples=1 << 14, workers=4)
        assert abs(r.e_estimate - math.e) / math.e < 0.05

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            parallel_derangement_estimate(4, samples=100, workers=0)

    def test_sample_count_preserved_when_not_divisible(self):
        r = parallel_derangement_estimate(4, samples=1001, workers=3)
        assert r.samples == 1001


class TestInsertionSortCost:
    def test_sorted_is_free(self):
        assert insertion_sort_cost(range(10)) == 0

    def test_reversal_is_worst_case(self):
        assert insertion_sort_cost(range(9, -1, -1)) == 45

    def test_equals_inversion_count(self):
        """Insertion sort moves = inversions — the link the study uses."""
        rng = np.random.default_rng(0)
        for _ in range(20):
            p = Permutation.random(12, rng)
            assert insertion_sort_cost(p) == p.inversions()


class TestSortednessStudy:
    def test_cost_increases_with_disorder(self):
        pts = sortedness_study(n=32, swap_levels=(0, 2, 8, 32), trials=30, seed=2)
        costs = [p.mean_moves for p in pts]
        assert costs[0] == 0.0
        assert costs == sorted(costs)

    def test_random_end_near_theory(self):
        """Uniform random permutations average n(n−1)/4 inversions."""
        pts = sortedness_study(n=48, swap_levels=(0,), trials=200, seed=3)
        random_point = pts[-1]
        theory = 48 * 47 / 4
        assert abs(random_point.mean_moves - theory) / theory < 0.1

    def test_normalised_cost_in_unit_range(self):
        for p in sortedness_study(n=16, swap_levels=(0, 4), trials=10):
            assert 0.0 <= p.normalised_cost <= 1.0

    def test_displacement_tracks_disorder(self):
        pts = sortedness_study(n=32, swap_levels=(0, 16), trials=20, seed=4)
        assert pts[0].mean_displacement < pts[1].mean_displacement
