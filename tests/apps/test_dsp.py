"""Stream-reorder engine and FFT permutation tests."""

import numpy as np
import pytest

from repro.apps.dsp import (
    StreamReorderEngine,
    bit_reversal_permutation,
    fft_with_explicit_reorder,
    permutation_index,
    stride_permutation,
)
from repro.core.lehmer import unrank


class TestBitReversal:
    def test_small_values(self):
        assert list(bit_reversal_permutation(8)) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_involution(self):
        p = bit_reversal_permutation(16)
        assert p * p == type(p).identity(16)

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            bit_reversal_permutation(6)

    def test_trivial_size(self):
        assert list(bit_reversal_permutation(1)) == [0]


class TestStride:
    def test_corner_turn_8_2(self):
        assert list(stride_permutation(8, 2)) == [0, 4, 1, 5, 2, 6, 3, 7]

    def test_inverse_is_conjugate_stride(self):
        n, s = 12, 3
        p = stride_permutation(n, s)
        q = stride_permutation(n, n // s)
        assert p * q == type(p).identity(n)

    def test_stride_must_divide(self):
        with pytest.raises(ValueError):
            stride_permutation(8, 3)


class TestPermutationIndex:
    def test_index_reproduces_permutation(self):
        """Any reorder pattern is just an address into the converter."""
        p = bit_reversal_permutation(8)
        idx = permutation_index(p)
        assert unrank(idx, 8) == tuple(p)

    def test_identity_is_index_zero(self):
        assert permutation_index(stride_permutation(6, 1)) == 0


class TestEngine:
    def test_process_single_block(self):
        engine = StreamReorderEngine(bit_reversal_permutation(4))
        out = engine.process(np.array([10, 11, 12, 13]))
        assert out.tolist() == [10, 12, 11, 13]

    def test_process_multi_block(self):
        engine = StreamReorderEngine(stride_permutation(4, 2))
        out = engine.process(np.arange(8))
        assert out.tolist() == [0, 2, 1, 3, 4, 6, 5, 7]

    def test_length_must_be_multiple(self):
        with pytest.raises(ValueError):
            StreamReorderEngine(bit_reversal_permutation(4)).process(np.arange(6))

    def test_cycle_simulation_matches_process(self):
        engine = StreamReorderEngine(bit_reversal_permutation(4))
        data = list(range(100, 108))
        log = engine.simulate_cycles(data)
        emitted = [v for _, v in log if v is not None]
        assert emitted == engine.process(np.array(data)).tolist()

    def test_latency_is_one_block(self):
        engine = StreamReorderEngine(bit_reversal_permutation(8))
        assert engine.latency == 8
        log = engine.simulate_cycles(list(range(16)))
        assert all(v is None for _, v in log[:8])
        assert log[8][1] is not None


class TestFFT:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 64, 256])
    def test_matches_numpy(self, n, rng):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        assert np.allclose(fft_with_explicit_reorder(x), np.fft.fft(x))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            fft_with_explicit_reorder(np.arange(6))

    def test_impulse(self):
        out = fft_with_explicit_reorder([1, 0, 0, 0])
        assert np.allclose(out, np.ones(4))
