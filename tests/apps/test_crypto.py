"""Permutation diffusion layer and SPN tests."""

import pytest
from hypothesis import given, strategies as st

from repro.apps.crypto import PermutationDiffusionLayer, SPNetwork, avalanche_profile
from repro.core.factorial import factorial


class TestDiffusionLayer:
    @given(st.integers(0, 2**8 - 1), st.integers(0, factorial(8) - 1))
    def test_forward_inverse_roundtrip(self, block, index):
        layer = PermutationDiffusionLayer(8, index)
        assert layer.inverse(layer.forward(block)) == block

    def test_identity_layer(self):
        layer = PermutationDiffusionLayer(8, 0)
        assert layer.forward(0b10110001) == 0b10110001

    def test_reversal_layer(self):
        layer = PermutationDiffusionLayer(4, factorial(4) - 1)
        # perm 3210: bit i -> bit 3-i
        assert layer.forward(0b0001) == 0b1000
        assert layer.forward(0b0011) == 0b1100

    def test_weight_preserved(self):
        layer = PermutationDiffusionLayer(8, 12345)
        for block in (0, 1, 0b10101010, 0xFF):
            assert bin(layer.forward(block)).count("1") == bin(block).count("1")

    def test_from_key_reduces_mod_factorial(self):
        a = PermutationDiffusionLayer.from_key(6, 10)
        b = PermutationDiffusionLayer.from_key(6, 10 + factorial(6))
        assert a.permutation == b.permutation

    def test_block_range_checked(self):
        layer = PermutationDiffusionLayer(4, 1)
        with pytest.raises(ValueError):
            layer.forward(16)
        with pytest.raises(ValueError):
            layer.inverse(-1)


class TestSPNetwork:
    def _cipher(self, rounds=3, width=16):
        return SPNetwork(width, layer_indices=[1000 + r for r in range(rounds)])

    @given(st.integers(0, 2**16 - 1))
    def test_encrypt_decrypt_roundtrip(self, block):
        spn = self._cipher()
        assert spn.decrypt(spn.encrypt(block)) == block

    def test_width_multiple_of_four(self):
        with pytest.raises(ValueError):
            SPNetwork(10, layer_indices=[0])

    def test_key_count_enforced(self):
        with pytest.raises(ValueError):
            SPNetwork(8, layer_indices=[0, 1], round_keys=[1])

    def test_sbox_must_be_bijection(self):
        with pytest.raises(ValueError):
            SPNetwork(8, layer_indices=[0], sbox=[0] * 16)

    def test_encryption_changes_block(self):
        spn = self._cipher()
        assert spn.encrypt(0x1234) != 0x1234


class TestAvalanche:
    def test_report_bookkeeping(self):
        spn = SPNetwork(8, layer_indices=[100, 200, 300, 400])
        rep = avalanche_profile(spn, samples=16)
        assert sum(rep.histogram) == 16 * 8
        assert rep.min_flips <= rep.mean_flips <= rep.max_flips
        assert 0 <= rep.avalanche_ratio <= 2.0

    def test_more_rounds_improve_diffusion(self):
        one = SPNetwork(16, layer_indices=[9999])
        four = SPNetwork(16, layer_indices=[9999, 8888, 7777, 6666])
        r1 = avalanche_profile(one, samples=24)
        r4 = avalanche_profile(four, samples=24)
        assert r4.mean_flips > r1.mean_flips

    def test_multi_round_avalanche_near_half(self):
        # Indices must be spread over 0..16!−1: a small index has all-zero
        # leading Lehmer digits, i.e. a near-identity layer that barely
        # diffuses.  from_key reduces large keys modulo 16!.
        keys = [0x9E3779B97F4A7C15 * (r + 1) for r in range(5)]
        spn = SPNetwork(
            16, layer_indices=[k % factorial(16) for k in keys]
        )
        rep = avalanche_profile(spn, samples=32)
        assert 0.6 < rep.avalanche_ratio < 1.4

    def test_near_identity_layers_diffuse_poorly(self):
        """The flip side, worth pinning down: tiny indices are weak layers."""
        weak = SPNetwork(16, layer_indices=[3, 5, 7, 11, 13])
        strong = SPNetwork(
            16,
            layer_indices=[(0x9E3779B97F4A7C15 * (r + 1)) % factorial(16) for r in range(5)],
        )
        assert (
            avalanche_profile(weak, samples=24).mean_flips
            < avalanche_profile(strong, samples=24).mean_flips
        )
