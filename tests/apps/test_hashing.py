"""Unique-permutation hashing and contention simulation tests."""

import numpy as np
import pytest

from repro.apps.hashing import (
    LinearProbingHasher,
    UniquePermutationHasher,
    simulate_contention,
)


class TestProbeSequences:
    def test_permutation_probe_is_permutation(self):
        h = UniquePermutationHasher(8)
        for key in range(50):
            assert sorted(h.probe_sequence(key)) == list(range(8))

    def test_linear_probe_is_permutation(self):
        h = LinearProbingHasher(8)
        for key in range(50):
            assert sorted(h.probe_sequence(key)) == list(range(8))

    def test_deterministic_per_key(self):
        h = UniquePermutationHasher(6)
        assert h.probe_sequence(42) == h.probe_sequence(42)

    def test_distinct_keys_usually_differ(self):
        h = UniquePermutationHasher(8)
        seqs = {h.probe_sequence(k) for k in range(100)}
        assert len(seqs) > 90

    def test_index_in_range(self):
        h = UniquePermutationHasher(10)
        import math

        for key in range(200):
            assert 0 <= h.index_for_key(key) < math.factorial(10)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            UniquePermutationHasher(0)
        with pytest.raises(ValueError):
            LinearProbingHasher(0)


class TestInsertion:
    def test_fills_table_exactly(self):
        h = UniquePermutationHasher(8)
        occupied = np.zeros(8, dtype=bool)
        for key in range(8):
            h.insert(occupied, key)
        assert occupied.all()

    def test_full_table_raises(self):
        h = UniquePermutationHasher(4)
        occupied = np.ones(4, dtype=bool)
        with pytest.raises(RuntimeError):
            h.insert(occupied, 1)

    def test_first_probe_when_empty(self):
        h = UniquePermutationHasher(6)
        occupied = np.zeros(6, dtype=bool)
        assert h.insert(occupied, 7) == 1


class TestContention:
    def test_result_bookkeeping(self):
        res = simulate_contention(10, load_factor=0.5, trials=4)
        for r in res.values():
            assert r.inserted == 5 * 4
            assert sum(r.probe_histogram) == r.inserted
            assert r.mean_probes >= 1.0
            assert r.max_probes <= 10

    def test_permutation_beats_linear_at_high_load(self):
        """The ref.-[6] claim: permutation probing minimises contention;
        linear probing clusters and degrades at high load factors."""
        res = simulate_contention(16, load_factor=0.95, trials=30, seed=1)
        assert res["permutation"].mean_probes < res["linear"].mean_probes

    def test_invalid_load_factor(self):
        with pytest.raises(ValueError):
            simulate_contention(8, load_factor=0.0)
        with pytest.raises(ValueError):
            simulate_contention(8, load_factor=1.5)
