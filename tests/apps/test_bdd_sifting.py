"""Sifting (dynamic reordering heuristic) tests."""

import pytest

from repro.apps.bdd import (
    achilles_heel,
    bdd_size_under_order,
    best_variable_order,
    sift_order,
    truth_table_from_function,
)


class TestSifting:
    def test_never_worse_than_start(self):
        tt, n = achilles_heel(3)
        bad_start = [0, 2, 4, 1, 3, 5]
        start_size = bdd_size_under_order(tt, n, bad_start)
        _, sifted_size = sift_order(tt, n, initial=bad_start)
        assert sifted_size <= start_size

    def test_finds_achilles_optimum(self):
        """Sifting recovers the paired order's size from the worst start."""
        tt, n = achilles_heel(3)
        _, best_size, _, worst_size = best_variable_order(tt, n)
        worst_order = [0, 2, 4, 1, 3, 5]
        _, sifted_size = sift_order(tt, n, initial=worst_order, passes=3)
        assert sifted_size == best_size < worst_size

    def test_matches_exhaustive_on_random_functions(self, rng):
        """On small random functions sifting should land at (or near) the
        exhaustive optimum; assert within 1 node over a handful."""
        gaps = []
        for seed in range(5):
            tt = int(rng.integers(0, 1 << 16))
            _, best_size, _, _ = best_variable_order(tt, 4)
            _, sifted = sift_order(tt, 4, passes=3)
            gaps.append(sifted - best_size)
        assert max(gaps) <= 1

    def test_returned_order_achieves_reported_size(self):
        tt, n = achilles_heel(2)
        order, size = sift_order(tt, n)
        assert bdd_size_under_order(tt, n, order) == size

    def test_cost_is_polynomial_calls(self):
        """Sifting evaluates O(passes·n²) orders — tractable where the
        exhaustive n! search is not (n = 8: 112 evals vs 40,320)."""
        tt = truth_table_from_function(
            lambda b: int(sum(b) % 3 == 0), 8
        )
        order, size = sift_order(tt, 8, passes=1)
        assert sorted(order) == list(range(8))
        assert size > 0

    def test_invalid_initial_rejected(self):
        with pytest.raises(ValueError):
            sift_order(0b1010, 2, initial=[0, 0])
