"""ROBDD package and variable-ordering search tests."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.bdd import (
    BDD,
    achilles_heel,
    bdd_size_under_order,
    best_variable_order,
    permute_truth_table,
    truth_table_from_function,
)


class TestTruthTables:
    def test_tabulation(self):
        tt = truth_table_from_function(lambda b: b[0] & b[1], 2)
        assert tt == 0b1000  # only assignment 11 (index 3)

    def test_permute_identity(self):
        tt = 0b10110010
        assert permute_truth_table(tt, 3, (0, 1, 2)) == tt

    def test_permute_swap_semantics(self):
        # f = x0 (bit i of index = variable i): assignments 1, 3 -> 0b1010
        tt = 0b1010
        # relabel: new var 0 = old var 1 → g = x1
        g = permute_truth_table(tt, 2, (1, 0))
        assert g == 0b1100

    @given(st.integers(0, 255), st.permutations([0, 1, 2]))
    def test_permute_roundtrip_via_inverse(self, tt, order):
        inv = [0] * 3
        for i, v in enumerate(order):
            inv[v] = i
        once = permute_truth_table(tt, 3, order)
        assert permute_truth_table(once, 3, inv) == tt

    def test_permute_invalid_order(self):
        with pytest.raises(ValueError):
            permute_truth_table(0, 2, (0, 0))


class TestBDDCore:
    def test_terminals(self):
        mgr = BDD(2)
        assert mgr.from_truth_table(0) == BDD.FALSE
        assert mgr.from_truth_table(0b1111) == BDD.TRUE

    def test_reduction_no_redundant_test(self):
        mgr = BDD(1)
        assert mgr.node(0, 5, 5) == 5

    def test_hash_consing(self):
        mgr = BDD(2)
        a = mgr.node(1, BDD.FALSE, BDD.TRUE)
        b = mgr.node(1, BDD.FALSE, BDD.TRUE)
        assert a == b

    def test_variable_function(self):
        mgr = BDD(3)
        x1 = mgr.variable(1)
        assert mgr.evaluate(x1, (0, 1, 0)) == 1
        assert mgr.evaluate(x1, (1, 0, 1)) == 0

    def test_variable_range(self):
        with pytest.raises(ValueError):
            BDD(2).variable(2)

    @given(st.integers(0, 2**16 - 1))
    def test_from_truth_table_evaluates_correctly(self, tt):
        n = 4
        mgr = BDD(n)
        root = mgr.from_truth_table(tt)
        for a in range(1 << n):
            bits = tuple((a >> i) & 1 for i in range(n))
            assert mgr.evaluate(root, bits) == ((tt >> a) & 1)

    def test_oversized_table_rejected(self):
        with pytest.raises(ValueError):
            BDD(2).from_truth_table(1 << 16)

    def test_size_counts_reachable_nodes(self):
        mgr = BDD(2)
        # XOR needs 3 nodes: x0 node + two x1 nodes
        root = mgr.from_truth_table(0b0110)
        assert mgr.size(root) == 3

    def test_size_of_terminal_zero(self):
        mgr = BDD(2)
        assert mgr.size(BDD.TRUE) == 0


class TestApply:
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_apply_matches_truth_tables(self, ta, tb):
        n = 3
        mgr = BDD(n)
        u = mgr.from_truth_table(ta)
        v = mgr.from_truth_table(tb)
        for op, fn in [("and", lambda a, b: a & b), ("or", lambda a, b: a | b), ("xor", lambda a, b: a ^ b)]:
            w = mgr.apply(op, u, v)
            want = mgr.from_truth_table(fn(ta, tb) & 0xFF)
            assert w == want  # canonical: same manager → same node id

    def test_unknown_op(self):
        mgr = BDD(1)
        with pytest.raises(ValueError):
            mgr.apply("nand", BDD.TRUE, BDD.TRUE)

    @given(st.integers(0, 255))
    def test_negate_is_involution(self, tt):
        mgr = BDD(3)
        u = mgr.from_truth_table(tt)
        assert mgr.negate(mgr.negate(u)) == u

    @given(st.integers(0, 255))
    def test_negate_matches_complement(self, tt):
        mgr = BDD(3)
        assert mgr.negate(mgr.from_truth_table(tt)) == mgr.from_truth_table(~tt & 0xFF)


class TestOrderSearch:
    def test_achilles_heel_order_gap(self):
        """The paper's §I example: polynomial vs exponential node count."""
        tt, n = achilles_heel(3)
        paired = bdd_size_under_order(tt, n, list(range(n)))
        split = bdd_size_under_order(tt, n, [0, 2, 4, 1, 3, 5])
        assert split > paired
        assert paired == 2 * 3  # 2 nodes per product term

    def test_achilles_gap_grows_exponentially(self):
        sizes = []
        for k in (2, 3, 4):
            tt, n = achilles_heel(k)
            split = list(range(0, n, 2)) + list(range(1, n, 2))
            sizes.append(bdd_size_under_order(tt, n, split))
        # worst-order size grows like 2^k, paired order like 2k
        assert sizes[1] / sizes[0] > 1.5 and sizes[2] / sizes[1] > 1.5

    def test_best_order_search(self):
        tt, n = achilles_heel(2)
        best, best_size, worst, worst_size = best_variable_order(tt, n)
        assert best_size <= worst_size
        assert best_size == 4  # 2 nodes per term, 2 terms
        # the paired order achieves the optimum
        assert bdd_size_under_order(tt, n, best) == best_size

    def test_search_exhausts_all_orders(self):
        """The search must consider all n! orders — its result equals a
        brute force over itertools.permutations."""
        tt = 0b0110_1001_1100_0011  # some 4-var function
        best, best_size, _, worst_size = best_variable_order(tt, 4)
        brute = [bdd_size_under_order(tt, 4, o) for o in itertools.permutations(range(4))]
        assert best_size == min(brute)
        assert worst_size == max(brute)

    def test_achilles_invalid_k(self):
        with pytest.raises(ValueError):
            achilles_heel(0)
