"""P-equivalence classification tests (ref. [5] workload)."""

import pytest
from hypothesis import given, strategies as st

from repro.apps.bdd import permute_truth_table
from repro.apps.pclass import (
    are_p_equivalent,
    classify_all,
    count_p_classes_burnside,
    p_class,
    p_representative,
)


class TestRepresentative:
    @given(st.integers(0, 255))
    def test_idempotent(self, tt):
        rep = p_representative(tt, 3)
        assert p_representative(rep, 3) == rep

    @given(st.integers(0, 255), st.permutations([0, 1, 2]))
    def test_invariant_under_permutation(self, tt, order):
        permuted = permute_truth_table(tt, 3, order)
        assert p_representative(tt, 3) == p_representative(permuted, 3)

    @given(st.integers(0, 255))
    def test_representative_is_in_class(self, tt):
        assert p_representative(tt, 3) in p_class(tt, 3)

    def test_representative_is_minimum_of_class(self):
        tt = 0b10110100
        assert p_representative(tt, 3) == min(p_class(tt, 3))

    def test_known_equivalences(self):
        # x0 and x1 are P-equivalent; x0 and x0&x1 are not
        x0, x1, conj = 0b1010, 0b1100, 0b1000
        assert are_p_equivalent(x0, x1, 2)
        assert not are_p_equivalent(x0, conj, 2)

    def test_constants_are_singletons(self):
        assert p_class(0, 3) == frozenset({0})
        assert p_class(255, 3) == frozenset({255})


class TestClassification:
    def test_two_variable_class_count(self):
        """Known: 12 P-classes of 2-variable Boolean functions."""
        classes = classify_all(2)
        assert len(classes) == 12
        assert sum(len(m) for m in classes.values()) == 16

    def test_three_variable_class_count(self):
        """Known: 80 P-classes of 3-variable Boolean functions."""
        classes = classify_all(3)
        assert len(classes) == 80
        assert sum(len(m) for m in classes.values()) == 256

    def test_classes_are_disjoint(self):
        classes = classify_all(2)
        members = [tt for ms in classes.values() for tt in ms]
        assert len(members) == len(set(members))

    def test_class_sizes_divide_group_order(self):
        """Orbit-stabiliser: every class size divides n!."""
        for ms in classify_all(3).values():
            assert 6 % len(ms) == 0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            classify_all(0)


class TestBurnside:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_matches_explicit_classification(self, n):
        assert count_p_classes_burnside(n) == len(classify_all(n))

    def test_four_variables_closed_form(self):
        """n = 4 is infeasible to classify explicitly here but Burnside
        gives the count directly: 3984 P-classes (known value)."""
        assert count_p_classes_burnside(4) == 3984
