"""Permutation-based compression tests (refs. [1], [2], [13])."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.apps.compression import (
    PermutationCodec,
    best_channel_order,
    compress_reordered,
    delta_varint_size_bits,
    run_length_code_size_bits,
    runs_of,
)


class TestCodec:
    def test_paper_word_width_example(self):
        """n = 9: naive word is 36 bits (the paper's own figure); the
        succinct rank needs only ceil(log2 9!) = 19."""
        codec = PermutationCodec(9)
        assert codec.naive_bits_per_permutation == 36
        assert codec.bits_per_permutation == 19
        assert codec.savings_ratio == pytest.approx(36 / 19)

    @given(st.lists(st.permutations(list(range(6))), min_size=1, max_size=10))
    def test_roundtrip(self, perms):
        codec = PermutationCodec(6)
        perms = [tuple(p) for p in perms]
        stream, count = codec.encode(perms)
        assert codec.decode(stream, count) == perms

    def test_stream_density(self):
        codec = PermutationCodec(8)
        perms = [tuple(np.random.default_rng(i).permutation(8)) for i in range(100)]
        stream, count = codec.encode(perms)
        assert stream.bit_length() <= 100 * codec.bits_per_permutation

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            PermutationCodec(0)


class TestRuns:
    def test_identity_is_one_run(self):
        assert runs_of(range(8)) == [tuple(range(8))]

    def test_reversal_is_n_runs(self):
        assert len(runs_of([3, 2, 1, 0])) == 4

    def test_runs_partition(self):
        p = [2, 5, 7, 1, 3, 0, 4, 6]
        runs = runs_of(p)
        assert [x for r in runs for x in r] == p

    def test_empty(self):
        assert runs_of([]) == []

    def test_sorted_input_codes_small(self):
        """One run codes far below the Lehmer bound for large n."""
        from repro.core.factorial import index_width

        n = 64
        assert run_length_code_size_bits(range(n)) < index_width(n)

    def test_random_input_codes_larger_than_sorted(self, rng):
        n = 64
        random_bits = run_length_code_size_bits(rng.permutation(n))
        sorted_bits = run_length_code_size_bits(range(n))
        assert random_bits > sorted_bits


class TestDeltaCoder:
    def test_constant_series_is_cheap(self):
        flat = delta_varint_size_bits(np.full(100, 42))
        noisy = delta_varint_size_bits(np.random.default_rng(0).integers(0, 1000, 100))
        assert flat < noisy

    def test_empty(self):
        assert delta_varint_size_bits(np.array([])) == 0

    def test_monotone_in_magnitude(self):
        small = delta_varint_size_bits(np.arange(0, 100, 1))
        large = delta_varint_size_bits(np.arange(0, 10000, 100))
        assert small < large


def _grouped_channels(rng, channels=8, samples=300):
    """Two independent signal groups: ordering that clusters a group
    makes cross-channel residuals small."""
    a = np.cumsum(rng.integers(-5, 6, samples))
    b = np.cumsum(rng.integers(-5, 6, samples)) + 500
    chans = []
    for i in range(channels):
        base = a if i < channels // 2 else b
        chans.append(base + rng.integers(-2, 3, samples))
    return np.array(chans)


class TestReorder:
    def test_greedy_order_groups_similar_channels(self, rng):
        block = _grouped_channels(rng)
        interleave = [0, 4, 1, 5, 2, 6, 3, 7]
        order = best_channel_order(block[interleave])
        # group membership after un-interleaving: first 4 original = group A
        groups = [0 if interleave[j] < 4 else 1 for j in order]
        # the chain should switch groups exactly once
        switches = sum(1 for x, y in zip(groups, groups[1:]) if x != y)
        assert switches == 1

    def test_reordering_improves_interleaved_block(self, rng):
        block = _grouped_channels(rng)
        interleaved = block[[0, 4, 1, 5, 2, 6, 3, 7]]
        report = compress_reordered(interleaved)
        assert report.improvement > 1.1

    def test_explicit_order_respected(self, rng):
        block = _grouped_channels(rng, channels=4)
        report = compress_reordered(block, order=(3, 2, 1, 0))
        assert report.order == (3, 2, 1, 0)

    def test_invalid_order_rejected(self, rng):
        block = _grouped_channels(rng, channels=4)
        with pytest.raises(ValueError):
            compress_reordered(block, order=(0, 0, 1, 2))

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            compress_reordered(np.zeros(5))

    def test_report_accounts_for_permutation_index(self, rng):
        """The decoder needs the order: its index cost is included."""
        block = _grouped_channels(rng, channels=4)
        identity = compress_reordered(block, order=(0, 1, 2, 3))
        from repro.core.factorial import index_width

        assert identity.reordered_bits == identity.original_bits + index_width(4)
