"""Index-to-permutation converter: functional model, netlists, pipeline."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.converter import IndexToPermutationConverter
from repro.core.factorial import factorial
from repro.core.lehmer import unrank_naive
from repro.hdl.simulator import CombinationalSimulator
from repro.rng.source import CounterSource, LFSRIndexSource


class TestFunctional:
    @pytest.mark.parametrize("n", range(1, 8))
    def test_matches_lehmer_unranking(self, n):
        conv = IndexToPermutationConverter(n)
        for i in range(factorial(n)):
            assert conv.convert(i) == unrank_naive(i, n)

    def test_paper_table_one_permutations(self):
        conv = IndexToPermutationConverter(4)
        assert conv.convert(0) == (0, 1, 2, 3)
        assert conv.convert(1) == (0, 1, 3, 2)
        assert conv.convert(23) == (3, 2, 1, 0)

    @given(st.integers(2, 9).flatmap(
        lambda n: st.tuples(st.just(n), st.integers(0, math.factorial(n) - 1))))
    def test_convert_batch_matches_scalar(self, case):
        n, i = case
        conv = IndexToPermutationConverter(n)
        assert tuple(conv.convert_batch([i])[0]) == conv.convert(i)

    def test_out_of_range_rejected(self):
        conv = IndexToPermutationConverter(3)
        with pytest.raises(ValueError):
            conv.convert(6)
        with pytest.raises(ValueError):
            conv.convert(-1)

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            IndexToPermutationConverter(0)

    def test_invalid_input_permutation_rejected(self):
        with pytest.raises(ValueError):
            IndexToPermutationConverter(3, input_permutation=(0, 0, 1))

    def test_custom_input_permutation(self):
        pool = (2, 0, 3, 1)
        conv = IndexToPermutationConverter(4, input_permutation=pool)
        assert conv.convert(0) == pool
        for i in range(24):
            assert conv.convert(i) == unrank_naive(i, 4, pool)

    def test_iteration_yields_all(self):
        conv = IndexToPermutationConverter(4)
        perms = list(conv)
        assert len(perms) == 24 and len(set(perms)) == 24


class TestStages:
    def test_stage_specs(self):
        stages = IndexToPermutationConverter(4).stages
        assert [s.pool_size for s in stages] == [4, 3, 2, 1]
        assert [s.weight for s in stages] == [6, 2, 1, 1]
        assert stages[0].thresholds == (6, 12, 18)
        assert [s.comparators for s in stages] == [3, 2, 1, 0]

    def test_index_width_shrinks_through_stages(self):
        stages = IndexToPermutationConverter(6).stages
        widths = [s.index_bits_in for s in stages]
        assert widths == sorted(widths, reverse=True)

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_comparator_counts(self, n):
        conv = IndexToPermutationConverter(n)
        assert conv.comparator_count() == n * (n - 1) // 2
        assert conv.paper_comparator_count() == n * (n + 1) // 2
        assert sum(s.comparators for s in conv.stages) == conv.comparator_count()

    def test_latency_and_throughput(self):
        conv = IndexToPermutationConverter(7)
        assert conv.latency == 7
        assert conv.pipeline_register_stages == 6
        assert conv.throughput == 1.0


class TestNetlist:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_combinational_exhaustive(self, n):
        conv = IndexToPermutationConverter(n)
        got = conv.simulate_netlist(range(factorial(n)))
        want = conv.convert_batch(range(factorial(n)))
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("n", [6, 8])
    def test_combinational_random_sample(self, n, rng):
        conv = IndexToPermutationConverter(n)
        idx = rng.integers(0, factorial(n), size=64)
        got = conv.simulate_netlist(idx)
        want = conv.convert_batch(idx)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_pipelined_stream_equals_combinational(self, n):
        conv = IndexToPermutationConverter(n)
        idx = list(range(factorial(n)))
        assert np.array_equal(
            conv.simulate_netlist(idx, pipelined=True),
            conv.simulate_netlist(idx, pipelined=False),
        )

    def test_pipelined_register_count_structure(self):
        """One register bank per stage boundary — latency n−1 banks."""
        conv = IndexToPermutationConverter(5)
        nl = conv.build_netlist(pipelined=True)
        assert nl.num_registers > 0
        assert conv.build_netlist(pipelined=False).num_registers == 0

    def test_netlist_is_combinational_when_unpipelined(self):
        nl = IndexToPermutationConverter(6).build_netlist()
        nl.check()
        assert nl.num_registers == 0

    def test_word_output_packs_msb_first(self):
        nl = IndexToPermutationConverter(4).build_netlist()
        sim = CombinationalSimulator(nl)
        outs = sim.run({"index": [23, 0, 1]})
        # 3 2 1 0 -> 228; 0 1 2 3 -> 0b00011011 = 27; 0 1 3 2 -> 30
        assert [int(v) for v in outs["word"]] == [228, 27, 30]

    def test_custom_pool_netlist(self):
        pool = (3, 1, 0, 2)
        conv = IndexToPermutationConverter(4, input_permutation=pool)
        got = conv.simulate_netlist(range(24))
        want = conv.convert_batch(range(24))
        assert np.array_equal(got, want)

    def test_permutation_input_port(self):
        """The LUT-cascade form: the input permutation as a live port."""
        conv = IndexToPermutationConverter(4)
        nl = conv.build_netlist(permutation_input_port=True)
        sim = CombinationalSimulator(nl)
        pool = (1, 3, 2, 0)
        inputs = {"index": 5}
        inputs.update({f"in{j}": pool[j] for j in range(4)})
        outs = sim.run(inputs)
        want = unrank_naive(5, 4, pool)
        got = tuple(int(outs[f"out{t}"][0]) for t in range(4))
        assert got == want

    def test_netlist_depth_grows_with_n(self):
        depths = [IndexToPermutationConverter(n).build_netlist().depth for n in (3, 5, 7)]
        assert depths == sorted(depths)


class TestStreaming:
    def test_counter_source_enumerates(self):
        conv = IndexToPermutationConverter(4)
        out = conv.stream(CounterSource(24), 24)
        assert len({tuple(r) for r in out}) == 24

    def test_lfsr_source_produces_valid_permutations(self):
        conv = IndexToPermutationConverter(5)
        out = conv.stream(LFSRIndexSource(120, m=16), 200)
        assert np.array_equal(np.sort(out, axis=1), np.broadcast_to(np.arange(5), (200, 5)))

    def test_source_limit_checked(self):
        conv = IndexToPermutationConverter(3)
        with pytest.raises(ValueError):
            conv.stream(CounterSource(7), 5)
