"""Full-sequence enumeration tests."""

import itertools

import numpy as np
import pytest

from repro.core.factorial import factorial
from repro.core.sequences import PermutationSequence, all_permutations


class TestAllPermutations:
    @pytest.mark.parametrize("n", range(1, 7))
    def test_matches_itertools(self, n):
        assert list(all_permutations(n)) == list(itertools.permutations(range(n)))

    def test_custom_pool(self):
        pool = (2, 0, 1)
        got = list(all_permutations(3, pool))
        assert got[0] == pool
        assert len(set(got)) == 6


class TestPermutationSequence:
    def test_len(self):
        assert len(PermutationSequence(5)) == 120

    def test_getitem(self):
        seq = PermutationSequence(4)
        assert seq[0] == (0, 1, 2, 3)
        assert seq[23] == (3, 2, 1, 0)
        assert seq[-1] == (3, 2, 1, 0)

    def test_getitem_out_of_range(self):
        with pytest.raises(IndexError):
            PermutationSequence(3)[6]

    def test_slice(self):
        seq = PermutationSequence(4)
        rows = seq[2:5]
        assert rows == [seq[2], seq[3], seq[4]]

    def test_iteration_matches_indexing(self):
        seq = PermutationSequence(4)
        for i, p in enumerate(seq):
            assert p == seq[i]

    def test_batches_cover_everything_in_order(self):
        seq = PermutationSequence(5)
        chunks = list(seq.batches(batch_size=17))
        stacked = np.vstack(chunks)
        assert stacked.shape == (120, 5)
        assert [tuple(r) for r in stacked] == list(itertools.permutations(range(5)))

    def test_batches_bad_size(self):
        with pytest.raises(ValueError):
            next(PermutationSequence(3).batches(0))

    def test_index_of_roundtrip(self):
        seq = PermutationSequence(5)
        for i in (0, 17, 60, 119):
            assert seq.index_of(seq[i]) == i

    def test_index_of_with_pool(self):
        pool = (1, 3, 2, 0)
        seq = PermutationSequence(4, pool=pool)
        for i in (0, 5, 23):
            assert seq.index_of(seq[i]) == i

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            PermutationSequence(0)
        with pytest.raises(ValueError):
            PermutationSequence(3, pool=(0, 0, 1))
