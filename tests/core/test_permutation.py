"""Permutation value-type tests: algebra, structure, encodings."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.permutation import Permutation

perms = st.integers(1, 8).flatmap(
    lambda n: st.permutations(list(range(n))).map(Permutation)
)


class TestConstruction:
    def test_paper_opening_example(self):
        """'2013 is a permutation where 0 maps to 2, 1 maps to 0, …'"""
        p = Permutation((2, 0, 1, 3))
        assert p(0) == 2 and p(1) == 0 and p(2) == 1 and p(3) == 3

    @pytest.mark.parametrize("bad", [(0, 0), (1, 2), (0, 2), (-1, 0)])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ValueError):
            Permutation(bad)

    def test_identity_and_reversal(self):
        assert list(Permutation.identity(4)) == [0, 1, 2, 3]
        assert list(Permutation.reversal(4)) == [3, 2, 1, 0]

    def test_immutable(self):
        p = Permutation.identity(3)
        with pytest.raises(AttributeError):
            p.seq = (0, 1, 2)

    def test_random_is_valid(self, rng):
        for _ in range(20):
            p = Permutation.random(10, rng)
            assert sorted(p) == list(range(10))

    def test_from_cycles(self):
        p = Permutation.from_cycles(4, [(0, 2, 1)])
        assert list(p) == [2, 0, 1, 3]

    def test_from_cycles_overlap_rejected(self):
        with pytest.raises(ValueError):
            Permutation.from_cycles(4, [(0, 1), (1, 2)])

    def test_equality_with_tuples(self):
        assert Permutation((1, 0)) == (1, 0)
        assert Permutation((1, 0)) == [1, 0]
        assert Permutation((1, 0)) != (0, 1)

    def test_hashable(self):
        assert len({Permutation((0, 1)), Permutation((0, 1)), Permutation((1, 0))}) == 2


class TestAlgebra:
    @given(perms)
    def test_inverse_composes_to_identity(self, p):
        assert p * p.inverse() == Permutation.identity(p.n)
        assert p.inverse() * p == Permutation.identity(p.n)

    @given(perms)
    def test_double_inverse(self, p):
        assert p.inverse().inverse() == p

    def test_composition_order(self):
        """(p∘q)(i) = p(q(i)) — apply q first."""
        p = Permutation((1, 2, 0))
        q = Permutation((0, 2, 1))
        assert (p * q)(1) == p(q(1))

    @given(perms)
    def test_power_laws(self, p):
        assert p**0 == Permutation.identity(p.n)
        assert p**1 == p
        assert p**2 == p * p
        assert p**-1 == p.inverse()

    @given(perms)
    def test_order_annihilates(self, p):
        assert p**p.order == Permutation.identity(p.n)

    @given(perms)
    def test_apply_then_scatter_roundtrip(self, p):
        items = [f"x{i}" for i in range(p.n)]
        assert p.scatter(p.apply(items)) == items

    def test_apply_semantics(self):
        p = Permutation((2, 0, 1))
        assert p.apply(["a", "b", "c"]) == ["c", "a", "b"]

    def test_apply_length_mismatch(self):
        with pytest.raises(ValueError):
            Permutation.identity(3).apply([1, 2])

    def test_compose_size_mismatch(self):
        with pytest.raises(ValueError):
            Permutation.identity(3) * Permutation.identity(4)


class TestStructure:
    def test_paper_fixed_point_examples(self):
        """§III-C: 0123 has four fixed points, 0132 has... the paper's
        examples: identity (4), one with one fixed point, a derangement."""
        assert Permutation((0, 1, 2, 3)).fixed_points() == (0, 1, 2, 3)
        assert Permutation((0, 2, 3, 1)).fixed_points() == (0,)
        assert Permutation((1, 0, 3, 2)).is_derangement

    @given(perms)
    def test_derangement_iff_no_fixed_points(self, p):
        assert p.is_derangement == (len(p.fixed_points()) == 0)

    @given(perms)
    def test_cycles_partition(self, p):
        elements = sorted(x for c in p.cycles() for x in c)
        assert elements == list(range(p.n))

    @given(perms)
    def test_cycle_type_is_partition_of_n(self, p):
        assert sum(p.cycle_type()) == p.n

    @given(perms)
    def test_sign_multiplicative(self, p):
        assert (p * p).sign == 1

    def test_sign_of_transposition(self):
        assert Permutation((1, 0, 2)).sign == -1

    @given(perms)
    def test_inversions_range(self, p):
        assert 0 <= p.inversions() <= p.n * (p.n - 1) // 2

    def test_inversions_extremes(self):
        assert Permutation.identity(5).inversions() == 0
        assert Permutation.reversal(5).inversions() == 10

    def test_displacement(self):
        assert Permutation.identity(6).displacement() == 0
        assert Permutation((1, 0)).displacement() == 2


class TestEncodings:
    def test_packed_value_paper_example(self):
        """Fig. 4 caption: 3 2 1 0 → 11 10 01 00 = 228."""
        assert Permutation((3, 2, 1, 0)).packed_value() == 228

    def test_packed_value_second_example(self):
        """Fig. 4: 0 1 3 2 → 00 01 11 10 = 30."""
        assert Permutation((0, 1, 3, 2)).packed_value() == 30

    @given(perms)
    def test_packed_roundtrip(self, p):
        assert Permutation.from_packed(p.packed_value(), p.n) == p

    def test_all_n4_packed_distinct(self):
        vals = {Permutation(p).packed_value() for p in itertools.permutations(range(4))}
        assert len(vals) == 24
        assert all(0 <= v < 256 for v in vals)

    @given(perms)
    def test_index_lehmer_consistency(self, p):
        from repro.core.lehmer import unrank

        assert unrank(p.index, p.n) == tuple(p)

    def test_str_and_repr(self):
        p = Permutation((2, 0, 1))
        assert str(p) == "2 0 1"
        assert "Permutation" in repr(p)
