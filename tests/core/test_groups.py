"""Group-theory toolkit tests."""

import math

import pytest

from repro.core.groups import (
    adjacent_transpositions,
    cayley_diameter,
    cayley_graph,
    conjugacy_class_sizes,
    generated_subgroup,
    generates_symmetric_group,
    is_transitive,
    stage_transpositions,
    subgroup_order,
)
from repro.core.permutation import Permutation


class TestGenerators:
    def test_stage_swap_count(self):
        assert len(stage_transpositions(6)) == 15  # n(n-1)/2

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_shuffle_stage_swaps_generate_sn(self, n):
        """The correctness premise of the Fig.-3 circuit."""
        assert generates_symmetric_group(stage_transpositions(n))

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_adjacent_swaps_generate_sn(self, n):
        """The SJT premise."""
        assert generates_symmetric_group(adjacent_transpositions(n))

    def test_single_cycle_generates_cyclic_group(self):
        rot = Permutation.from_cycles(5, [(0, 1, 2, 3, 4)])
        assert subgroup_order([rot]) == 5

    def test_three_cycles_generate_alternating(self):
        gens = [
            Permutation.from_cycles(4, [(0, 1, 2)]),
            Permutation.from_cycles(4, [(1, 2, 3)]),
        ]
        assert subgroup_order(gens) == 12  # A_4

    def test_limit_enforced(self):
        with pytest.raises(ValueError):
            generated_subgroup(stage_transpositions(4), limit=5)

    def test_empty_generators_rejected(self):
        with pytest.raises(ValueError):
            generated_subgroup([])

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            generated_subgroup([Permutation.identity(3), Permutation.identity(4)])


class TestTransitivity:
    def test_rotation_is_transitive(self):
        assert is_transitive([Permutation.from_cycles(5, [(0, 1, 2, 3, 4)])])

    def test_disjoint_swaps_not_transitive(self):
        assert not is_transitive([Permutation.from_cycles(4, [(0, 1)])])


class TestCayley:
    def test_graph_size(self):
        g = cayley_graph(3, adjacent_transpositions(3))
        assert g.number_of_nodes() == 6

    def test_adjacent_diameter_is_max_inversions(self):
        """Distance under adjacent swaps = inversion count, so the
        diameter is n(n−1)/2 (the reversal)."""
        for n in (3, 4, 5):
            assert cayley_diameter(n, adjacent_transpositions(n)) == n * (n - 1) // 2

    def test_all_transpositions_diameter_is_n_minus_1(self):
        """With every transposition available, any permutation needs at
        most n−1 swaps (cycle decomposition) — the Fig.-3 depth."""
        for n in (3, 4, 5):
            assert cayley_diameter(n, stage_transpositions(n)) == n - 1

    def test_disconnected_subgroup_rejected(self):
        # Generators reach only A_4; the graph over A_4 is connected, so
        # this should *work*; a truly disconnected case cannot arise from
        # generated_subgroup.  Assert the A_4 diameter is finite instead.
        gens = [
            Permutation.from_cycles(4, [(0, 1, 2)]),
            Permutation.from_cycles(4, [(1, 2, 3)]),
        ]
        assert cayley_diameter(4, gens) >= 1


class TestConjugacy:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_sizes_sum_to_group_order(self, n):
        assert sum(conjugacy_class_sizes(n).values()) == math.factorial(n)

    def test_matches_explicit_enumeration(self):
        import itertools
        from collections import Counter

        explicit = Counter(
            Permutation(p).cycle_type() for p in itertools.permutations(range(5))
        )
        assert dict(explicit) == conjugacy_class_sizes(5)

    def test_known_n4_classes(self):
        sizes = conjugacy_class_sizes(4)
        assert sizes[(1, 1, 1, 1)] == 1  # identity
        assert sizes[(1, 1, 2)] == 6  # transpositions
        assert sizes[(4,)] == 6  # 4-cycles
