"""Sorting-network view of the cascades (§IV closing remark)."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.core.sorting import SelectionSortNetwork, sort_via_ranking


class TestSortViaRanking:
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=9))
    def test_sorts_with_duplicates(self, values):
        assert sort_via_ranking(values) == sorted(values)

    def test_already_sorted(self):
        assert sort_via_ranking([1, 2, 3]) == [1, 2, 3]

    def test_reverse(self):
        assert sort_via_ranking([5, 4, 3, 2, 1]) == [1, 2, 3, 4, 5]


class TestSelectionSortNetworkFunctional:
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=8))
    def test_sorts(self, values):
        net = SelectionSortNetwork(len(values), 4)
        assert net.sort(values) == sorted(values)

    def test_value_range_enforced(self):
        net = SelectionSortNetwork(2, 3)
        with pytest.raises(ValueError):
            net.sort([8, 0])

    def test_length_enforced(self):
        with pytest.raises(ValueError):
            SelectionSortNetwork(3, 4).sort([1, 2])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SelectionSortNetwork(0, 4)
        with pytest.raises(ValueError):
            SelectionSortNetwork(4, 0)

    def test_comparator_count_matches_converter_order(self):
        assert SelectionSortNetwork(6, 4).comparator_count() == 15


class TestSelectionSortNetworkStructural:
    def test_exhaustive_small(self):
        """Every 2-bit input triple sorts correctly at gate level."""
        net = SelectionSortNetwork(3, 2)
        for vals in itertools.product(range(4), repeat=3):
            assert net.sort_netlist(list(vals)) == sorted(vals)

    def test_with_duplicates(self):
        net = SelectionSortNetwork(4, 3)
        assert net.sort_netlist([5, 5, 1, 5]) == [1, 5, 5, 5]

    def test_random_wider(self, rng):
        net = SelectionSortNetwork(5, 5)
        for _ in range(10):
            vals = rng.integers(0, 32, size=5).tolist()
            assert net.sort_netlist(vals) == sorted(vals)

    def test_single_element(self):
        assert SelectionSortNetwork(1, 4).sort_netlist([9]) == [9]

    def test_pipelined_netlist_builds(self):
        nl = SelectionSortNetwork(4, 3).build_netlist(pipelined=True)
        nl.check()
        assert nl.num_registers > 0
