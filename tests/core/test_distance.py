"""Permutation metric tests."""

import pytest
from hypothesis import given, strategies as st

from repro.core.distance import (
    cayley_distance,
    hamming_distance,
    kendall_tau,
    normalised,
    spearman_footrule,
)
from repro.core.groups import adjacent_transpositions, stage_transpositions
from repro.core.permutation import Permutation

perm_pairs = st.integers(2, 7).flatmap(
    lambda n: st.tuples(
        st.permutations(list(range(n))).map(Permutation),
        st.permutations(list(range(n))).map(Permutation),
    )
)

ALL_METRICS = [kendall_tau, cayley_distance, hamming_distance, spearman_footrule]


class TestMetricAxioms:
    @given(perm_pairs)
    def test_identity_of_indiscernibles(self, pair):
        a, b = pair
        for metric in ALL_METRICS:
            assert metric(a, a) == 0
            assert (metric(a, b) == 0) == (a == b)

    @given(perm_pairs)
    def test_symmetry(self, pair):
        a, b = pair
        for metric in ALL_METRICS:
            assert metric(a, b) == metric(b, a)

    @given(st.integers(2, 6).flatmap(lambda n: st.tuples(
        st.permutations(list(range(n))).map(Permutation),
        st.permutations(list(range(n))).map(Permutation),
        st.permutations(list(range(n))).map(Permutation))))
    def test_triangle_inequality(self, triple):
        a, b, c = triple
        for metric in ALL_METRICS:
            assert metric(a, c) <= metric(a, b) + metric(b, c)

    @given(perm_pairs)
    def test_left_invariance(self, pair):
        """d(σa, σb) = d(a, b) for all four metrics."""
        a, b = pair
        sigma = Permutation.reversal(a.n)
        for metric in (kendall_tau, cayley_distance, hamming_distance, spearman_footrule):
            assert metric(sigma * a, sigma * b) == metric(a, b)


class TestCharacterisations:
    def test_kendall_is_adjacent_swap_graph_distance(self):
        import networkx as nx

        from repro.core.groups import cayley_graph

        n = 4
        g = cayley_graph(n, adjacent_transpositions(n))
        dist = nx.single_source_shortest_path_length(g, Permutation.identity(n))
        for p, d in dist.items():
            assert kendall_tau(Permutation.identity(n), p) == d

    def test_cayley_is_transposition_graph_distance(self):
        import networkx as nx

        from repro.core.groups import cayley_graph

        n = 4
        g = cayley_graph(n, stage_transpositions(n))
        dist = nx.single_source_shortest_path_length(g, Permutation.identity(n))
        for p, d in dist.items():
            assert cayley_distance(Permutation.identity(n), p) == d

    def test_diameters(self):
        ident, rev = Permutation.identity(5), Permutation.reversal(5)
        assert kendall_tau(ident, rev) == 10
        # odd n: the middle element of the reversal is fixed
        assert hamming_distance(ident, rev) == 4
        assert hamming_distance(Permutation.identity(6), Permutation.reversal(6)) == 6

    def test_hamming_never_one(self):
        """No two permutations differ in exactly one position."""
        import itertools

        ident = Permutation.identity(4)
        for p in itertools.permutations(range(4)):
            assert hamming_distance(ident, Permutation(p)) != 1

    def test_footrule_is_displacement(self):
        p = Permutation((1, 0, 2))
        assert spearman_footrule(Permutation.identity(3), p) == 2

    def test_footrule_bounds_kendall(self):
        """Diaconis–Graham: K ≤ F ≤ 2K."""
        import itertools

        ident = Permutation.identity(5)
        for p in itertools.permutations(range(5)):
            k = kendall_tau(ident, Permutation(p))
            f = spearman_footrule(ident, Permutation(p))
            assert k <= f <= 2 * k

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau((0, 1), (0, 1, 2))


class TestNormalised:
    def test_range_and_extremes(self):
        ident, rev = Permutation.identity(6), Permutation.reversal(6)
        assert normalised("kendall", ident, ident) == 0.0
        assert normalised("kendall", ident, rev) == 1.0

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            normalised("euclid", (0, 1), (1, 0))

    @given(perm_pairs)
    def test_always_unit_interval(self, pair):
        a, b = pair
        for name in ("kendall", "cayley", "hamming", "footrule"):
            assert 0.0 <= normalised(name, a, b) <= 1.0
