"""Satellite property suite: rank∘unrank == identity, exhaustively and sampled.

This invariant is the robustness layer's oracle (see
repro.robustness.checkers), so it gets its own dedicated suite:
exhaustive over every index for n ≤ 7, seeded samples for n = 10 and
n = 20 (the int64 frontier) and n = 52 (a card deck — indices far beyond
64 bits, exercising the object-dtype / Fenwick paths).
"""

import random

import numpy as np
import pytest

from repro.core.converter import IndexToPermutationConverter
from repro.core.factorial import factorial
from repro.core.lehmer import (
    rank,
    rank_batch,
    rank_fenwick,
    rank_naive,
    unrank,
    unrank_batch,
    unrank_fenwick,
    unrank_naive,
)


@pytest.mark.parametrize("n", range(1, 8))
def test_exhaustive_roundtrip_small_n(n):
    for i in range(factorial(n)):
        assert rank(unrank(i, n)) == i


@pytest.mark.parametrize("n", [10, 20, 52])
def test_sampled_roundtrip_large_n(n):
    rng = random.Random(1234 + n)
    limit = factorial(n)
    for _ in range(200):
        i = rng.randrange(limit)
        perm = unrank(i, n)
        assert rank(perm) == i
        # the two unrankers agree everywhere, not just through rank
        assert unrank_naive(i, n) == unrank_fenwick(i, n)


@pytest.mark.parametrize("n", [5, 7])
def test_exhaustive_batch_roundtrip(n):
    idx = np.arange(factorial(n), dtype=np.int64)
    perms = unrank_batch(idx, n)
    assert np.array_equal(rank_batch(perms), idx)


def test_sampled_batch_roundtrip_n20():
    rng = np.random.default_rng(99)
    idx = rng.integers(0, factorial(20), size=128, dtype=np.int64)
    assert np.array_equal(rank_batch(unrank_batch(idx, 20)), idx)


def test_converter_roundtrip_matches_rank():
    """The stage-accurate datapath obeys the same oracle the checker uses."""
    conv = IndexToPermutationConverter(6)
    for i in range(factorial(6)):
        assert rank_naive(list(conv.convert(i))) == i


def test_roundtrip_with_custom_pool():
    pool = (3, 1, 4, 0, 2)
    for i in range(factorial(5)):
        perm = unrank_naive(i, 5, pool)
        assert rank_naive(perm, pool) == i
        assert unrank_fenwick(i, 5, pool) == perm


@pytest.mark.parametrize("n", [10, 52])
def test_rank_frontends_agree(n):
    rng = random.Random(7)
    for _ in range(50):
        i = rng.randrange(factorial(n))
        perm = unrank(i, n)
        assert rank_fenwick(list(perm)) == i
        if n <= 12:
            assert rank_naive(list(perm)) == i
