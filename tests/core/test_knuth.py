"""Knuth-shuffle circuit: validity, equivalence, distribution."""

import math

import numpy as np
import pytest

from repro.core.factorial import factorial
from repro.core.knuth import KnuthShuffleCircuit
from repro.core.lehmer import rank_batch


def assert_all_permutations(arr):
    b, n = arr.shape
    assert np.array_equal(np.sort(arr, axis=1), np.broadcast_to(np.arange(n), (b, n)))


class TestConstruction:
    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            KnuthShuffleCircuit(1)

    def test_seed_count_enforced(self):
        with pytest.raises(ValueError):
            KnuthShuffleCircuit(4, seeds=[1, 2])

    def test_width_count_enforced(self):
        with pytest.raises(ValueError):
            KnuthShuffleCircuit(4, widths=[31])

    def test_invalid_input_permutation(self):
        with pytest.raises(ValueError):
            KnuthShuffleCircuit(3, input_permutation=(0, 0, 1))

    def test_default_widths_distinct_for_moderate_n(self):
        c = KnuthShuffleCircuit(10, m=31)
        assert len(set(c.widths)) == 9

    def test_structure_counts(self):
        c = KnuthShuffleCircuit(6)
        assert c.num_stages == 5
        assert c.latency == 5
        assert c.crossover_count() == 15
        assert c.stage_choices() == (6, 5, 4, 3, 2)


class TestFunctional:
    def test_outputs_are_permutations(self):
        c = KnuthShuffleCircuit(7, m=16)
        for _ in range(50):
            p = c.shuffle_once()
            assert sorted(p) == list(range(7))

    def test_sample_matches_sequential(self):
        a = KnuthShuffleCircuit(5, m=16)
        b = KnuthShuffleCircuit(5, m=16)
        batch = a.sample(200)
        seq = np.array([b.shuffle_once() for _ in range(200)])
        assert np.array_equal(batch, seq)

    def test_sample_valid(self):
        assert_all_permutations(KnuthShuffleCircuit(9).sample(500))

    def test_reset_restarts_stream(self):
        c = KnuthShuffleCircuit(4, m=12)
        first = c.sample(20)
        c.reset()
        again = c.sample(20)
        assert np.array_equal(first, again)

    def test_custom_input_permutation_is_stage0_pool(self):
        pool = (3, 0, 2, 1)
        c = KnuthShuffleCircuit(4, input_permutation=pool)
        out = c.sample(100)
        assert_all_permutations(out)

    def test_sample_ideal_deterministic_for_rng(self):
        c = KnuthShuffleCircuit(5)
        a = c.sample_ideal(50, np.random.default_rng(3))
        b = KnuthShuffleCircuit(5).sample_ideal(50, np.random.default_rng(3))
        assert np.array_equal(a, b)
        assert_all_permutations(a)


class TestDistribution:
    def test_ideal_uniform_all_reachable(self):
        """Fisher–Yates with ideal draws covers all n! permutations."""
        c = KnuthShuffleCircuit(4)
        perms = c.sample_ideal(20000, np.random.default_rng(0))
        counts = np.bincount(rank_batch(perms), minlength=24)
        assert counts.min() > 0
        # each ~833; allow generous spread
        assert counts.max() < 2 * counts.min()

    def test_lfsr_driven_covers_all(self):
        c = KnuthShuffleCircuit(4, m=20)
        perms = c.sample(20000)
        counts = np.bincount(rank_batch(perms), minlength=24)
        assert counts.min() > 0

    def test_exact_distribution_sums_to_one(self):
        d = KnuthShuffleCircuit(4, m=10).exact_distribution()
        assert len(d) == 24
        assert math.isclose(sum(d.values()), 1.0, abs_tol=1e-12)

    def test_exact_distribution_near_uniform_for_wide_lfsr(self):
        d = KnuthShuffleCircuit(3, m=20).exact_distribution()
        for p in d.values():
            assert math.isclose(p, 1 / 6, rel_tol=1e-4)

    def test_exact_distribution_shows_small_m_bias(self):
        """m = 2 per stage is badly biased — the pigeonhole effect."""
        d = KnuthShuffleCircuit(3, widths=[2, 2], seeds=[1, 2]).exact_distribution()
        probs = sorted(d.values())
        assert probs[-1] > 1.5 * probs[0]


class TestNetlist:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_combinational_matches_functional(self, n):
        got = KnuthShuffleCircuit(n, m=10).simulate_netlist(40)
        ref = KnuthShuffleCircuit(n, m=10)
        want = np.array([ref.shuffle_once() for _ in range(40)])
        assert np.array_equal(got, want)

    def test_pipelined_outputs_are_permutations(self):
        out = KnuthShuffleCircuit(4, m=10).simulate_netlist(30, pipelined=True)
        assert_all_permutations(out)

    def test_netlist_register_counts(self):
        """Unpipelined: only the LFSR registers; pipelined adds pool banks."""
        c = KnuthShuffleCircuit(4, m=10)
        plain = c.build_netlist(pipelined=False)
        piped = c.build_netlist(pipelined=True)
        assert plain.num_registers == sum(c.widths)
        assert piped.num_registers > plain.num_registers

    def test_netlist_has_no_primary_inputs(self):
        nl = KnuthShuffleCircuit(3, m=8).build_netlist()
        assert nl.inputs == {}
        assert set(nl.outputs) == {"out0", "out1", "out2", "word"}
