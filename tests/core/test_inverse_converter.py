"""Permutation → index (ranking) circuit tests."""

import itertools
import math

import numpy as np
import pytest

from repro.core.converter import IndexToPermutationConverter
from repro.core.inverse_converter import PermutationToIndexConverter
from repro.core.lehmer import unrank_naive


class TestFunctional:
    @pytest.mark.parametrize("n", range(1, 7))
    def test_ranks_lexicographically(self, n):
        inv = PermutationToIndexConverter(n)
        for i, p in enumerate(itertools.permutations(range(n))):
            assert inv.convert(p) == i

    def test_batch_matches_scalar(self, rng):
        inv = PermutationToIndexConverter(6)
        perms = np.array([np.random.default_rng(i).permutation(6) for i in range(50)])
        batch = inv.convert_batch(perms)
        assert [int(v) for v in batch] == [inv.convert(p) for p in perms]

    def test_custom_pool(self):
        pool = (3, 1, 0, 2)
        inv = PermutationToIndexConverter(4, pool=pool)
        for i in range(24):
            assert inv.convert(unrank_naive(i, 4, pool)) == i

    def test_foreign_elements_rejected(self):
        inv = PermutationToIndexConverter(3)
        with pytest.raises(ValueError):
            inv.convert((0, 1, 5))

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            PermutationToIndexConverter(3).convert((0, 1))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PermutationToIndexConverter(0)
        with pytest.raises(ValueError):
            PermutationToIndexConverter(3, pool=(0, 0, 1))

    def test_structure_counts(self):
        inv = PermutationToIndexConverter(6)
        assert inv.comparator_count == 21  # n(n+1)/2
        assert inv.latency == 6


class TestNetlist:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_combinational_exhaustive(self, n):
        inv = PermutationToIndexConverter(n)
        perms = np.array(list(itertools.permutations(range(n))))
        got = inv.simulate_netlist(perms)
        assert got.tolist() == list(range(math.factorial(n)))

    @pytest.mark.parametrize("n", [3, 4])
    def test_pipelined_matches(self, n):
        inv = PermutationToIndexConverter(n)
        perms = np.array(list(itertools.permutations(range(n))))
        got = inv.simulate_netlist(perms, pipelined=True)
        assert got.tolist() == list(range(math.factorial(n)))

    def test_custom_pool_netlist(self):
        pool = (2, 0, 3, 1)
        inv = PermutationToIndexConverter(4, pool=pool)
        perms = np.array([unrank_naive(i, 4, pool) for i in range(24)])
        assert inv.simulate_netlist(perms).tolist() == list(range(24))

    def test_pipelined_has_registers(self):
        inv = PermutationToIndexConverter(5)
        assert inv.build_netlist(pipelined=True).num_registers > 0
        assert inv.build_netlist(pipelined=False).num_registers == 0


class TestRoundTrip:
    """Forward ∘ inverse = identity — functionally and at gate level."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_gate_level_composition(self, n):
        fwd = IndexToPermutationConverter(n)
        inv = PermutationToIndexConverter(n)
        idx = np.arange(math.factorial(n))
        perms = fwd.simulate_netlist(idx)
        back = inv.simulate_netlist(perms)
        assert np.array_equal(back, idx)

    def test_composition_with_shared_pool(self):
        pool = (1, 3, 0, 2)
        fwd = IndexToPermutationConverter(4, input_permutation=pool)
        inv = PermutationToIndexConverter(4, pool=pool)
        for i in range(24):
            assert inv.convert(fwd.convert(i)) == i
