"""Myrvold–Ruskey and Steinhaus–Johnson–Trotter order tests."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.orders import (
    mr_rank,
    mr_unrank,
    mr_unrank_batch,
    sjt_permutations,
    sjt_transposition_sequence,
)


class TestMyrvoldRuskey:
    @pytest.mark.parametrize("n", range(1, 8))
    def test_bijection(self, n):
        seen = {mr_unrank(i, n) for i in range(math.factorial(n))}
        assert len(seen) == math.factorial(n)

    @pytest.mark.parametrize("n", range(1, 8))
    def test_rank_inverts_unrank(self, n):
        for i in range(math.factorial(n)):
            assert mr_rank(mr_unrank(i, n)) == i

    @given(st.integers(2, 10).flatmap(
        lambda n: st.permutations(list(range(n)))))
    def test_unrank_inverts_rank(self, perm):
        perm = tuple(perm)
        assert mr_unrank(mr_rank(perm), len(perm)) == perm

    def test_order_differs_from_lexicographic(self):
        lex = list(itertools.permutations(range(4)))
        mr = [mr_unrank(i, 4) for i in range(24)]
        assert set(mr) == set(lex) and mr != lex

    def test_index_zero_is_left_rotation(self):
        """MR order's index 0 is NOT the identity: every step swaps slot
        m-1 with slot 0, composing to a rotation — a defining difference
        from the lexicographic converter."""
        assert mr_unrank(0, 6) != tuple(range(6))
        assert sorted(mr_unrank(0, 6)) == list(range(6))

    def test_range_checked(self):
        with pytest.raises(ValueError):
            mr_unrank(24, 4)
        with pytest.raises(ValueError):
            mr_unrank(-1, 4)

    def test_rank_validates(self):
        with pytest.raises(ValueError):
            mr_rank((0, 0, 1))

    def test_large_n_linear_time_path(self):
        p = mr_unrank(math.factorial(50) - 1, 50)
        assert mr_rank(p) == math.factorial(50) - 1

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_batch_matches_scalar(self, n):
        idx = list(range(math.factorial(n)))
        batch = mr_unrank_batch(idx, n)
        assert [tuple(r) for r in batch] == [mr_unrank(i, n) for i in idx]

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            mr_unrank_batch([24], 4)
        with pytest.raises(ValueError):
            mr_unrank_batch(np.zeros((2, 2), dtype=int), 4)

    def test_mr_is_derandomised_fisher_yates(self):
        """mr_unrank's swap schedule IS the Fig.-3 shuffle datapath with
        digits in place of random draws — the link between the paper's
        two circuits.  Feeding the shuffle's swap sequence (right-to-left
        convention) the same digits reproduces the permutation."""
        n, index = 5, 77
        perm = list(range(n))
        r = index
        for m in range(n, 0, -1):
            r, d = divmod(r, m)
            perm[m - 1], perm[d] = perm[d], perm[m - 1]
        assert tuple(perm) == mr_unrank(index, n)


class TestSJT:
    @pytest.mark.parametrize("n", range(1, 7))
    def test_enumerates_all(self, n):
        perms = list(sjt_permutations(n))
        assert len(perms) == math.factorial(n)
        assert len(set(perms)) == math.factorial(n)

    @pytest.mark.parametrize("n", range(2, 7))
    def test_adjacent_transposition_property(self, n):
        prev = None
        for perm in sjt_permutations(n):
            if prev is not None:
                diff = [i for i in range(n) if perm[i] != prev[i]]
                assert len(diff) == 2 and diff[1] == diff[0] + 1
                assert perm[diff[0]] == prev[diff[1]]
            prev = perm

    def test_starts_at_identity(self):
        assert next(iter(sjt_permutations(5))) == (0, 1, 2, 3, 4)

    def test_transposition_sequence_length(self):
        assert len(sjt_transposition_sequence(4)) == 23

    def test_transposition_sequence_replays(self):
        """Applying the recorded swaps regenerates the SJT sequence."""
        n = 5
        seq = sjt_transposition_sequence(n)
        perm = list(range(n))
        regenerated = [tuple(perm)]
        for pos in seq:
            perm[pos], perm[pos + 1] = perm[pos + 1], perm[pos]
            regenerated.append(tuple(perm))
        assert regenerated == list(sjt_permutations(n))

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            list(sjt_permutations(0))
