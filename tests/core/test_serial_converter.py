"""Digit-serial converter tests."""

import math

import numpy as np
import pytest

from repro.core.converter import IndexToPermutationConverter
from repro.core.serial_converter import SerialConverter


class TestFunctional:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_matches_parallel_converter(self, n):
        ser = SerialConverter(n)
        ref = IndexToPermutationConverter(n)
        idx = list(range(min(math.factorial(n), 120)))
        assert np.array_equal(ser.run(idx), ref.convert_batch(idx))

    def test_stream_interface(self):
        ser = SerialConverter(4)
        got = list(ser.stream([0, 23]))
        assert got == [(0, 1, 2, 3), (3, 2, 1, 0)]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SerialConverter(3).run([6])

    def test_n1_rejected(self):
        with pytest.raises(ValueError):
            SerialConverter(1)

    def test_invalid_pool(self):
        with pytest.raises(ValueError):
            SerialConverter(3, input_permutation=(0, 0, 1))


class TestStructure:
    def test_one_shared_comparator_bank(self):
        ser = SerialConverter(8)
        par = IndexToPermutationConverter(8)
        assert ser.comparator_count == 7
        assert par.comparator_count() == 28

    def test_throughput_is_one_over_n(self):
        assert SerialConverter(5).throughput == pytest.approx(0.2)
        assert SerialConverter(5).cycles_per_permutation == 5

    def test_register_cost_linear_not_quadratic(self):
        """The headline saving: state registers are O(n log n), not the
        parallel pipeline's O(n² log n)."""
        regs = {n: SerialConverter(n).build_netlist().num_registers for n in (4, 8, 12)}
        par = {n: IndexToPermutationConverter(n).build_netlist(pipelined=True).num_registers
               for n in (4, 8, 12)}
        assert regs[12] < par[12] / 3
        # quadratic vs near-linear growth
        assert regs[12] / regs[4] < 8
        assert par[12] / par[4] > 15


class TestNetlist:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_exhaustive(self, n):
        ser = SerialConverter(n)
        ref = IndexToPermutationConverter(n)
        idx = list(range(math.factorial(n)))
        assert np.array_equal(ser.simulate_netlist(idx), ref.convert_batch(idx))

    def test_n5_sample(self, rng):
        ser = SerialConverter(5)
        ref = IndexToPermutationConverter(5)
        idx = [int(i) for i in rng.integers(0, 120, size=10)]
        assert np.array_equal(ser.simulate_netlist(idx), ref.convert_batch(idx))

    def test_custom_pool(self):
        pool = (3, 1, 0, 2)
        ser = SerialConverter(4, input_permutation=pool)
        ref = IndexToPermutationConverter(4, input_permutation=pool)
        assert np.array_equal(ser.simulate_netlist(range(24)), ref.convert_batch(range(24)))

    def test_valid_cadence(self):
        """valid rises exactly once per n clocks, starting at cycle n."""
        from repro.hdl.simulator import SequentialSimulator

        n = 4
        nl = SerialConverter(n).build_netlist()
        sim = SequentialSimulator(nl)
        valids = []
        for cycle in range(3 * n):
            outs = sim.step({"index": 7})
            valids.append(int(outs["valid"][0]))
        assert valids[:n] == [0] * n
        assert valids[n] == 1 and valids[2 * n] == 1
        assert sum(valids) == 2

    def test_back_to_back_rounds_are_independent(self):
        ser = SerialConverter(4)
        out = ser.simulate_netlist([23, 0, 11, 11])
        ref = IndexToPermutationConverter(4)
        assert np.array_equal(out, ref.convert_batch([23, 0, 11, 11]))
