"""Index ⇄ combination conversion (the companion-paper module)."""

import itertools
from math import comb

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.combinations import (
    IndexToCombinationConverter,
    RandomCombinationGenerator,
    codeword_to_combination,
    combination_rank,
    combination_to_codeword,
    combination_unrank,
)

nr_cases = st.integers(0, 10).flatmap(
    lambda n: st.integers(0, n).map(lambda r: (n, r))
)


class TestUnrank:
    @pytest.mark.parametrize("n,r", [(5, 2), (6, 3), (7, 0), (7, 7), (8, 4)])
    def test_lexicographic_order(self, n, r):
        expected = list(itertools.combinations(range(n), r))
        got = [combination_unrank(i, n, r) for i in range(comb(n, r))]
        assert got == expected

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            combination_unrank(comb(5, 2), 5, 2)
        with pytest.raises(ValueError):
            combination_unrank(-1, 5, 2)

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            combination_unrank(0, 4, 5)


class TestRank:
    @given(nr_cases)
    def test_roundtrip(self, case):
        n, r = case
        for i in range(comb(n, r)):
            assert combination_rank(combination_unrank(i, n, r), n) == i

    def test_accepts_unsorted_input(self):
        assert combination_rank((4, 1, 2), 6) == combination_rank((1, 2, 4), 6)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            combination_rank((1, 1), 4)

    def test_range_checked(self):
        with pytest.raises(ValueError):
            combination_rank((5,), 5)


class TestCodewords:
    def test_weight_preserved(self):
        word = combination_to_codeword((0, 2, 5), 8)
        assert bin(word).count("1") == 3
        assert word == 0b100101

    @given(nr_cases)
    def test_roundtrip(self, case):
        n, r = case
        for i in range(min(comb(n, r), 20)):
            c = combination_unrank(i, n, r)
            assert codeword_to_combination(combination_to_codeword(c, n), n) == c

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            combination_to_codeword((1, 1), 4)

    def test_oversized_word_rejected(self):
        with pytest.raises(ValueError):
            codeword_to_combination(16, 4)


class TestConverter:
    def test_enumeration(self):
        conv = IndexToCombinationConverter(6, 2)
        assert list(conv) == list(itertools.combinations(range(6), 2))

    def test_batch_shape(self):
        conv = IndexToCombinationConverter(7, 3)
        out = conv.convert_batch([0, 1, 2])
        assert out.shape == (3, 3)

    def test_codeword_method(self):
        conv = IndexToCombinationConverter(4, 2)
        assert conv.codeword(0) == 0b0011

    def test_comparator_count_linear(self):
        assert IndexToCombinationConverter(12, 5).comparator_count() == 12

    def test_index_width(self):
        conv = IndexToCombinationConverter(10, 5)  # C(10,5)=252
        assert conv.index_width == 8


class TestRandomGenerator:
    def test_samples_valid(self):
        gen = RandomCombinationGenerator(8, 3, m=16)
        out = gen.sample(200)
        assert out.shape == (200, 3)
        for row in out:
            assert len(set(row.tolist())) == 3
            assert list(row) == sorted(row)
            assert row.max() < 8

    def test_narrow_lfsr_rejected(self):
        with pytest.raises(ValueError):
            RandomCombinationGenerator(30, 15, m=8)

    def test_next_matches_sample(self):
        a = RandomCombinationGenerator(6, 2, m=12)
        b = RandomCombinationGenerator(6, 2, m=12)
        assert [tuple(r) for r in a.sample(20)] == [b.next_combination() for _ in range(20)]
