"""Indexed random permutation generator (Fig. 2 pipeline)."""

import numpy as np
import pytest

from repro.core.factorial import factorial
from repro.core.lehmer import rank_batch
from repro.core.random_perm import RandomPermutationGenerator, required_index_bits
from repro.rng.lfsr import FibonacciLFSR


class TestIndexWidth:
    def test_small_values(self):
        assert required_index_bits(4) == 5  # 24 indices
        assert required_index_bits(10) == 22

    def test_n64_needs_hundreds_of_bits(self):
        """§III-A's 'disadvantage … the large size of the index'."""
        assert required_index_bits(64) == 296


class TestValidation:
    def test_too_narrow_lfsr_rejected(self):
        # 2^4 - 1 = 15 states < 24 permutations
        with pytest.raises(ValueError, match="never occur"):
            RandomPermutationGenerator(4, m=4)

    def test_boundary_m5_n4_allowed_but_biased(self):
        """The paper's worked example: 31 states over 24 indices."""
        gen = RandomPermutationGenerator(4, m=5)
        report = gen.index_bias()
        assert report.ratio == 2.0


class TestSampling:
    def test_permutations_valid(self):
        gen = RandomPermutationGenerator(5, m=16)
        out = gen.sample(300)
        assert np.array_equal(
            np.sort(out, axis=1), np.broadcast_to(np.arange(5), (300, 5))
        )

    def test_next_matches_sample_stream(self):
        a = RandomPermutationGenerator(4, m=12)
        b = RandomPermutationGenerator(4, m=12)
        batch = a.sample(30)
        seq = [b.next_permutation() for _ in range(30)]
        assert [tuple(r) for r in batch] == seq

    def test_full_period_visits_every_permutation(self):
        """Over one whole LFSR period every index (hence permutation)
        occurs — with the pigeonhole multiplicities of the bias report."""
        gen = RandomPermutationGenerator(3, m=5)
        period = (1 << 5) - 1
        perms = gen.sample(period)
        counts = np.bincount(rank_batch(perms), minlength=6)
        assert counts.tolist() == list(gen.index_bias().counts)
        assert counts.min() >= 1

    def test_custom_lfsr(self):
        gen = RandomPermutationGenerator(4, lfsr=FibonacciLFSR(10, seed=5))
        assert gen.m == 10
        assert sorted(gen.next_permutation()) == [0, 1, 2, 3]

    def test_permutation_probability_sums_to_one(self):
        gen = RandomPermutationGenerator(3, m=8)
        total = sum(gen.permutation_probability(i) for i in range(6))
        assert abs(total - 1.0) < 1e-12

    def test_input_permutation_passthrough(self):
        pool = (2, 0, 1)
        gen = RandomPermutationGenerator(3, m=8, input_permutation=pool)
        assert sorted(gen.next_permutation()) == [0, 1, 2]
