"""Beneš network tests: routing correctness, minimality, gate level."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.benes import BenesNetwork, BenesSettings, route


class TestRoute:
    def test_identity_needs_no_crossing_at_base(self):
        s = route((0, 1))
        assert s.inputs == (False,)

    def test_swap_crosses(self):
        s = route((1, 0))
        assert s.inputs == (True,)

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_settings_shape(self, n):
        s = route(tuple(range(n)))
        assert s.n == n
        assert s.switch_count == BenesNetwork(n).switch_count

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            route((0, 1, 2))

    def test_invalid_permutation_rejected(self):
        with pytest.raises(ValueError):
            route((0, 0, 1, 1))

    def test_flatten_length(self):
        s = route(tuple(range(8)))
        assert len(s.flatten()) == BenesNetwork(8).switch_count


class TestFunctionalRouting:
    def test_every_4_permutation_routes(self):
        net = BenesNetwork(4, width=4)
        data = ["a", "b", "c", "d"]
        for p in itertools.permutations(range(4)):
            assert net.permute(p, data) == [data[p[j]] for j in range(4)]

    @given(st.permutations(list(range(8))))
    def test_random_8_permutations_route(self, p):
        net = BenesNetwork(8)
        data = list(range(100, 108))
        assert net.permute(p, data) == [data[p[j]] for j in range(8)]

    @given(st.permutations(list(range(16))))
    @settings(max_examples=25)
    def test_random_16_permutations_route(self, p):
        net = BenesNetwork(16)
        data = list(range(16))
        assert net.permute(p, data) == [data[p[j]] for j in range(16)]

    def test_size_mismatch_rejected(self):
        net = BenesNetwork(4)
        with pytest.raises(ValueError):
            net.apply(route((0, 1)), [1, 2, 3, 4])


class TestMinimality:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_switch_count_formula(self, n):
        net = BenesNetwork(n)
        k = int(math.log2(n))
        assert net.switch_count == n * k - n // 2
        assert net.stage_count == 2 * k - 1

    def test_rearrangeability_information_bound(self):
        """The switch count must at least encode n! configurations."""
        for n in (4, 8, 16):
            assert BenesNetwork(n).switch_count >= math.log2(math.factorial(n))


class TestGateLevel:
    def test_exhaustive_n4(self):
        net = BenesNetwork(4, width=3)
        data = [5, 1, 7, 2]
        for p in itertools.permutations(range(4)):
            assert net.simulate_netlist(p, data) == [data[p[j]] for j in range(4)]

    def test_random_n8(self, rng):
        net = BenesNetwork(8, width=4)
        data = [int(x) for x in rng.integers(0, 16, size=8)]
        for _ in range(10):
            p = tuple(int(x) for x in rng.permutation(8))
            assert net.simulate_netlist(p, data) == [data[p[j]] for j in range(8)]

    def test_netlist_structure(self):
        net = BenesNetwork(8, width=4)
        nl = net.build_netlist()
        assert nl.inputs["ctrl"].width == net.switch_count
        assert len([k for k in nl.outputs]) == 8
        nl.check()

    def test_control_word_all_zero_is_identity(self):
        """Straight-through switches pass data unchanged."""
        net = BenesNetwork(4, width=3)
        nl = net.build_netlist()
        from repro.hdl.simulator import CombinationalSimulator

        sim = CombinationalSimulator(nl)
        inputs = {"ctrl": 0, "in0": 4, "in1": 5, "in2": 6, "in3": 7}
        outs = sim.run(inputs)
        assert [int(outs[f"out{i}"][0]) for i in range(4)] == [4, 5, 6, 7]


class TestConverterIntegration:
    def test_index_to_wired_reorder(self):
        """The full §I pipeline: index → permutation → switch settings →
        reordered data, entirely through this library."""
        from repro.core.converter import IndexToPermutationConverter

        conv = IndexToPermutationConverter(8)
        net = BenesNetwork(8)
        data = list(range(50, 58))
        for index in (0, 1, 5000, 40319):
            perm = conv.convert(index)
            out = net.permute(perm, data)
            assert out == [data[perm[j]] for j in range(8)]
