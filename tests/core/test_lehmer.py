"""Ranking/unranking: all four implementations must agree everywhere."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.factorial import factorial
from repro.core.lehmer import (
    lehmer_digits,
    permutation_from_lehmer,
    rank,
    rank_batch,
    rank_fenwick,
    rank_naive,
    unrank,
    unrank_batch,
    unrank_fenwick,
    unrank_naive,
)

index_cases = st.integers(1, 8).flatmap(
    lambda n: st.tuples(st.just(n), st.integers(0, math.factorial(n) - 1))
)


class TestAgreement:
    @pytest.mark.parametrize("n", range(1, 7))
    def test_all_unrankers_agree_exhaustively(self, n):
        for i in range(factorial(n)):
            naive = unrank_naive(i, n)
            assert unrank_fenwick(i, n) == naive
            assert unrank(i, n) == naive
        batch = unrank_batch(range(factorial(n)), n)
        assert [tuple(r) for r in batch] == [unrank_naive(i, n) for i in range(factorial(n))]

    @given(index_cases)
    def test_fenwick_equals_naive(self, case):
        n, i = case
        assert unrank_fenwick(i, n) == unrank_naive(i, n)

    @given(index_cases)
    def test_rank_inverts_unrank(self, case):
        n, i = case
        p = unrank_naive(i, n)
        assert rank_naive(p) == i
        assert rank_fenwick(p) == i
        assert rank(p) == i

    def test_large_n_dispatch(self):
        # n = 40 goes through the Fenwick path
        p = unrank(factorial(40) - 1, 40)
        assert p == tuple(range(39, -1, -1))
        assert rank(p) == factorial(40) - 1


class TestLexOrder:
    @pytest.mark.parametrize("n", range(1, 7))
    def test_matches_itertools(self, n):
        expected = list(itertools.permutations(range(n)))
        got = [unrank_naive(i, n) for i in range(factorial(n))]
        assert got == expected

    def test_extremes(self):
        assert unrank_naive(0, 5) == (0, 1, 2, 3, 4)
        assert unrank_naive(119, 5) == (4, 3, 2, 1, 0)


class TestPools:
    def test_custom_pool_applies_digits(self):
        pool = (3, 1, 0, 2)
        assert unrank_naive(0, 4, pool) == pool
        assert unrank_fenwick(0, 4, pool) == pool

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_pool_variants_agree(self, n):
        pool = tuple(reversed(range(n)))
        for i in range(factorial(n)):
            assert unrank_fenwick(i, n, pool) == unrank_naive(i, n, pool)
        batch = unrank_batch(range(factorial(n)), n, pool)
        assert [tuple(r) for r in batch] == [unrank_naive(i, n, pool) for i in range(factorial(n))]

    def test_rank_with_pool_roundtrip(self):
        pool = (2, 0, 3, 1)
        for i in range(24):
            p = unrank_naive(i, 4, pool)
            assert rank_naive(p, pool=pool) == i

    def test_pool_length_mismatch(self):
        with pytest.raises(ValueError):
            unrank_naive(0, 3, pool=(0, 1))

    def test_rank_foreign_elements_rejected(self):
        with pytest.raises(ValueError):
            rank_naive((9, 8, 7))


class TestBatch:
    def test_shapes_and_dtype(self):
        out = unrank_batch([0, 5, 23], 4)
        assert out.shape == (3, 4) and out.dtype == np.int64

    def test_rank_batch_roundtrip(self, rng):
        idx = rng.integers(0, factorial(9), size=500)
        perms = unrank_batch(idx, 9)
        assert np.array_equal(rank_batch(perms), idx)

    def test_rank_batch_rejects_non_permutations(self):
        with pytest.raises(ValueError):
            rank_batch(np.array([[0, 0, 1]]))

    def test_rank_batch_rejects_wide_n(self):
        with pytest.raises(ValueError):
            rank_batch(np.tile(np.arange(21), (2, 1)))

    def test_rank_batch_needs_2d(self):
        with pytest.raises(ValueError):
            rank_batch(np.arange(4))

    def test_unrank_batch_large_n_falls_back(self):
        out = unrank_batch([0, 1], 22)
        assert out.shape == (2, 22)
        assert tuple(out[0]) == tuple(range(22))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            unrank_batch([24], 4)


class TestDigits:
    @given(index_cases)
    def test_lehmer_digits_roundtrip(self, case):
        n, i = case
        p = unrank_naive(i, n)
        digits = lehmer_digits(p)
        assert permutation_from_lehmer(digits) == p

    def test_digit_bounds_validated(self):
        with pytest.raises(ValueError):
            permutation_from_lehmer((0, 2))  # s_1 > 1

    def test_identity_has_zero_digits(self):
        assert lehmer_digits((0, 1, 2, 3)) == (0, 0, 0, 0)

    def test_reversal_has_maximal_digits(self):
        assert lehmer_digits((3, 2, 1, 0)) == (0, 1, 2, 3)


class TestValidation:
    @pytest.mark.parametrize("fn", [unrank_naive, unrank_fenwick, unrank])
    def test_index_range_enforced(self, fn):
        with pytest.raises(ValueError):
            fn(-1, 4)
        with pytest.raises(ValueError):
            fn(24, 4)

    def test_rank_fenwick_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            rank_fenwick((0, 0, 1))
