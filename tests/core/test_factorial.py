"""Factorial number system tests, including the paper's Table I."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.factorial import (
    FactorialDigits,
    digits_from_index,
    digits_from_index_greedy,
    element_width,
    factorial,
    index_from_digits,
    index_width,
    iter_digit_vectors,
    max_index,
    word_width,
)


class TestFactorial:
    @pytest.mark.parametrize("n", range(0, 15))
    def test_matches_math(self, n):
        assert factorial(n) == math.factorial(n)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            factorial(-1)

    def test_exact_for_large_n(self):
        assert factorial(25) == math.factorial(25)  # beyond float precision


class TestWidths:
    def test_max_index(self):
        assert max_index(4) == 23
        # Observation 1: n! − 1 = Σ i·i!
        for n in range(1, 8):
            assert max_index(n) == sum(i * factorial(i) for i in range(n))

    @pytest.mark.parametrize("n,w", [(1, 1), (2, 1), (4, 5), (9, 19), (10, 22)])
    def test_index_width(self, n, w):
        assert index_width(n) == w

    @pytest.mark.parametrize("n,w", [(2, 1), (4, 2), (8, 3), (9, 4), (16, 4), (17, 5)])
    def test_element_width(self, n, w):
        assert element_width(n) == w

    def test_word_width_paper_example(self):
        """§II-C: 'each word has n·log2(n) bits, which is 36 for n = 9'."""
        assert word_width(9) == 36


# Table I of the paper, n = 4: (N, digit vector MSB-first).
TABLE_I = {
    0: (0, 0, 0, 0),
    1: (0, 0, 1, 0),
    2: (0, 1, 0, 0),
    3: (0, 1, 1, 0),
    4: (0, 2, 0, 0),
    5: (0, 2, 1, 0),
    6: (1, 0, 0, 0),
    7: (1, 0, 1, 0),
    11: (1, 2, 1, 0),
    12: (2, 0, 0, 0),
    17: (2, 2, 1, 0),
    18: (3, 0, 0, 0),
    23: (3, 2, 1, 0),
}


class TestDigits:
    @pytest.mark.parametrize("N,msb_digits", sorted(TABLE_I.items()))
    def test_table_one_rows(self, N, msb_digits):
        got = digits_from_index(N, 4)
        assert tuple(reversed(got)) == msb_digits

    @pytest.mark.parametrize("n", range(1, 8))
    def test_greedy_equals_divmod(self, n):
        for N in range(factorial(n)):
            assert digits_from_index(N, n) == digits_from_index_greedy(N, n)

    @given(st.integers(1, 10).flatmap(lambda n: st.tuples(st.just(n), st.integers(0, math.factorial(n) - 1))))
    def test_roundtrip(self, n_and_index):
        n, N = n_and_index
        assert index_from_digits(digits_from_index(N, n)) == N

    def test_digit_bounds_enforced_on_eval(self):
        with pytest.raises(ValueError):
            index_from_digits((0, 2))  # s_1 = 2 > 1

    def test_placeholder_digit_zero(self):
        """s_0 is always 0 (the paper retains it as a placeholder)."""
        for n in range(1, 7):
            for N in range(factorial(n)):
                assert digits_from_index(N, n)[0] == 0

    @pytest.mark.parametrize("bad", [-1, 24])
    def test_out_of_range_index_rejected(self, bad):
        with pytest.raises(ValueError):
            digits_from_index(bad, 4)
        with pytest.raises(ValueError):
            digits_from_index_greedy(bad, 4)

    def test_n_zero_rejected(self):
        with pytest.raises(ValueError):
            digits_from_index(0, 0)


class TestIteration:
    @pytest.mark.parametrize("n", range(1, 7))
    def test_odometer_order_matches_index(self, n):
        for N, digits in enumerate(iter_digit_vectors(n)):
            assert digits == digits_from_index(N, n)
        assert N == max_index(n)

    def test_count(self):
        assert sum(1 for _ in iter_digit_vectors(5)) == 120


class TestFactorialDigits:
    def test_str_is_msb_first(self):
        fd = FactorialDigits.from_index(23, 4)
        assert str(fd) == "3 2 1 0"

    def test_int_roundtrip(self):
        fd = FactorialDigits.from_index(17, 4)
        assert int(fd) == 17

    def test_expansion_format(self):
        fd = FactorialDigits.from_index(5, 3)
        assert fd.expansion() == "2·2! + 1·1! + 0·0!"

    def test_validation(self):
        with pytest.raises(ValueError):
            FactorialDigits((1, 0))  # s_0 must be 0

    def test_n_property_and_iter(self):
        fd = FactorialDigits((0, 1, 2))
        assert fd.n == 3
        assert list(fd) == [0, 1, 2]
