"""Public API surface tests."""

import repro


def test_version():
    assert repro.__version__ == "1.1.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_from_docstring():
    """The README/top-level docstring example must work verbatim."""
    from repro import IndexToPermutationConverter, KnuthShuffleCircuit

    conv = IndexToPermutationConverter(4)
    assert conv.convert(23) == (3, 2, 1, 0)
    assert conv.convert_batch(range(24)).shape == (24, 4)

    shuffle = KnuthShuffleCircuit(8)
    assert shuffle.sample(100).shape == (100, 8)


def test_subpackages_importable():
    import repro.analysis
    import repro.apps
    import repro.core
    import repro.fpga
    import repro.hdl
    import repro.perf
    import repro.rng

    for pkg in (repro.analysis, repro.apps, repro.core, repro.fpga,
                repro.hdl, repro.perf, repro.rng):
        assert pkg.__doc__
