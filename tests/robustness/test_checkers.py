"""CheckedConverter: input validation, bijectivity, dual-rail, rank oracle."""

import numpy as np
import pytest

from repro.core.converter import IndexToPermutationConverter
from repro.core.factorial import factorial
from repro.errors import (
    FaultDetectedError,
    InvalidIndexError,
    SilentCorruptionError,
)
from repro.hdl.components import geq_const
from repro.robustness.checkers import (
    CheckedConverter,
    check_served_batch,
    is_permutation_of,
)
from repro.robustness.faults import FaultOverlay, StuckAtFault, stuck_fault_sites


class TestCleanOperation:
    def test_matches_unchecked(self):
        conv = IndexToPermutationConverter(5)
        checked = CheckedConverter(conv, dual_rail=True)
        for i in (0, 1, 59, 119):
            assert checked.convert(i) == conv.convert(i)
        assert checked.stats.converted == 4
        assert checked.stats.faults_detected == 0

    def test_batch(self):
        conv = IndexToPermutationConverter(4)
        checked = CheckedConverter(conv)
        got = checked.convert_batch(range(24))
        assert np.array_equal(got, conv.convert_batch(range(24)))

    def test_netlist_backend_clean(self):
        conv = IndexToPermutationConverter(4)
        checked = CheckedConverter(conv, use_netlist=True, dual_rail=True)
        assert checked.convert(23) == (3, 2, 1, 0)

    def test_custom_pool(self):
        conv = IndexToPermutationConverter(4, input_permutation=(2, 0, 3, 1))
        checked = CheckedConverter(conv, dual_rail=True)
        for i in range(24):
            assert checked.convert(i) == conv.convert(i)


class TestInputValidation:
    @pytest.mark.parametrize("bad", [-1, 24, 10**6])
    def test_out_of_range(self, bad):
        checked = CheckedConverter(IndexToPermutationConverter(4))
        with pytest.raises(InvalidIndexError):
            checked.convert(bad)
        assert checked.stats.rejected_inputs == 1

    @pytest.mark.parametrize("bad", [1.5, "7", None, True])
    def test_non_integers(self, bad):
        checked = CheckedConverter(IndexToPermutationConverter(4))
        with pytest.raises(InvalidIndexError):
            checked.convert(bad)

    def test_converter_itself_raises_typed(self):
        conv = IndexToPermutationConverter(4)
        with pytest.raises(InvalidIndexError):
            conv.convert(24)
        with pytest.raises(ValueError):  # taxonomy keeps ValueError compat
            conv.convert(-1)


class TestFaultDetection:
    """The acceptance property: no injected fault that changes the output
    escapes a checked conversion."""

    def test_catches_every_corrupting_stuck_fault(self):
        n = 4
        conv = IndexToPermutationConverter(n)
        nl = conv.build_netlist()
        golden = conv.convert_batch(range(factorial(n)))
        escaped = []
        for fault in stuck_fault_sites(nl):
            overlay = FaultOverlay([fault], nl)
            checked = CheckedConverter(conv, use_netlist=True, overlay=overlay)
            try:
                got = checked.convert_batch(range(factorial(n)))
            except FaultDetectedError:
                continue  # caught (SilentCorruptionError is a subclass)
            if not np.array_equal(got, golden):
                escaped.append(fault)
        assert escaped == []

    def test_known_stage_comparator_fault_is_caught(self):
        """Satellite smoke test: stuck-at-1 on the stage-0 ``N >= 1*(n-1)!``
        comparator.  CSE re-derives the existing comparator wire, so the
        fault site is identified structurally, not by magic index."""
        n = 4
        conv = IndexToPermutationConverter(n)
        nl = conv.build_netlist()
        before = len(nl.gates)
        cmp_wire = geq_const(nl, nl.inputs["index"], factorial(n - 1))
        assert len(nl.gates) == before  # pure CSE hit: the real comparator
        overlay = FaultOverlay([StuckAtFault(cmp_wire, True)], nl)
        checked = CheckedConverter(conv, use_netlist=True, overlay=overlay)
        # index 0 now reads digit >= 1: output is a valid but wrong perm
        with pytest.raises(FaultDetectedError):
            checked.convert(0)

    def test_silent_corruption_has_its_own_type(self):
        """A fault yielding a valid-but-wrong permutation must surface as
        SilentCorruptionError specifically (rank oracle, not bijectivity)."""
        n = 4
        conv = IndexToPermutationConverter(n)
        nl = conv.build_netlist()
        cmp_wire = geq_const(nl, nl.inputs["index"], factorial(n - 1))
        overlay = FaultOverlay([StuckAtFault(cmp_wire, True)], nl)
        checked = CheckedConverter(conv, use_netlist=True, overlay=overlay)
        with pytest.raises(SilentCorruptionError):
            checked.convert(0)
        assert checked.stats.silent_caught == 1

    def test_dual_rail_catches_model_divergence(self):
        """Dual-rail compares two independent implementations; a fault in
        the netlist rail trips it even before the rank oracle runs."""
        n = 4
        conv = IndexToPermutationConverter(n)
        nl = conv.build_netlist()
        # pick any corrupting fault
        for fault in stuck_fault_sites(nl):
            overlay = FaultOverlay([fault], nl)
            checked = CheckedConverter(
                conv, use_netlist=True, overlay=overlay, dual_rail=True
            )
            try:
                checked.convert_batch(range(24))
            except FaultDetectedError:
                break
        else:
            pytest.fail("no corrupting fault found")


def test_is_permutation_of():
    assert is_permutation_of([2, 0, 1], [0, 1, 2])
    assert not is_permutation_of([2, 2, 1], [0, 1, 2])
    assert not is_permutation_of([0, 1], [0, 1, 2])


class TestServedBatchOracle:
    """check_served_batch: the supervised serving tier's response check."""

    def _batch(self, n=5, indices=(0, 1, 59, 119)):
        conv = IndexToPermutationConverter(n)
        return np.array([conv.convert(i) for i in indices]), list(indices)

    def test_clean_batch_passes_with_and_without_indices(self):
        perms, indices = self._batch()
        check_served_batch(perms, indices)
        check_served_batch(perms)  # bijectivity-only (shuffle sweeps)

    def test_bit_flip_breaks_bijectivity(self):
        perms, indices = self._batch()
        perms[2, 0] ^= 1
        with pytest.raises(FaultDetectedError):
            check_served_batch(perms, indices)
        with pytest.raises(FaultDetectedError):
            check_served_batch(perms)  # caught even without the oracle

    def test_valid_but_wrong_lane_needs_the_rank_oracle(self):
        perms, indices = self._batch()
        perms[1, 0], perms[1, 1] = perms[1, 1].item(), perms[1, 0].item()
        # still bijective → the structural check alone is blind to it
        check_served_batch(perms)
        with pytest.raises(SilentCorruptionError):
            check_served_batch(perms, indices)

    def test_conviction_names_the_lane(self):
        perms, indices = self._batch()
        perms[3, 0] ^= 1
        with pytest.raises(FaultDetectedError, match="lane 3"):
            check_served_batch(perms, indices)

    def test_bad_shape_rejected(self):
        with pytest.raises(FaultDetectedError):
            check_served_batch(np.arange(5), [0])

    def test_large_n_falls_back_to_naive_ranker(self):
        # n > 20 exceeds the vectorised ranker's factorial range
        n = 24
        identity = np.arange(n)
        perms = np.stack([identity, identity[::-1].copy()])
        check_served_batch(perms, [0, factorial(n) - 1])
        with pytest.raises(SilentCorruptionError):
            check_served_batch(perms, [1, factorial(n) - 1])
