"""Campaign runner: classification, determinism, sharded execution."""

import numpy as np
import pytest

from repro.robustness.campaign import (
    CampaignSpec,
    fault_list,
    run_campaign,
)
from repro.robustness.faults import SEUFault, StuckAtFault


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(circuit="cpu")
        with pytest.raises(ValueError):
            CampaignSpec(model="metastability")
        with pytest.raises(ValueError):
            CampaignSpec(n=1)

    def test_fault_list_deterministic(self):
        spec = CampaignSpec(circuit="converter", n=4, model="bridge", samples=20)
        assert fault_list(spec) == fault_list(spec)

    def test_sampling_caps_the_universe(self):
        full = fault_list(CampaignSpec(n=4, model="stuck"))
        sampled = fault_list(CampaignSpec(n=4, model="stuck", samples=10))
        assert len(sampled) == 10
        assert set(sampled) <= set(full)


class TestConverterCampaign:
    def test_exhaustive_stuck_accounting(self):
        res = run_campaign(CampaignSpec(circuit="converter", n=4, model="stuck"))
        assert res.exhaustive
        assert res.total == len(fault_list(res.spec))
        assert res.benign + res.detected + res.silent == res.total
        assert res.corrupting > 0
        # every corrupting fault is caught by the rank oracle; the
        # bijectivity check alone gets a strict subset
        assert 0.0 < res.bijection_coverage <= 1.0

    def test_seu_campaign_targets_registers(self):
        spec = CampaignSpec(circuit="converter", n=4, model="seu")
        faults = fault_list(spec)
        assert faults and all(isinstance(f, SEUFault) for f in faults)
        res = run_campaign(spec)
        assert res.total == len(faults)

    def test_worker_count_invariance(self):
        spec = CampaignSpec(circuit="converter", n=4, model="stuck", samples=30)
        a = run_campaign(spec, workers=1)
        b = run_campaign(spec, workers=2)
        assert (a.benign, a.detected, a.silent) == (b.benign, b.detected, b.silent)

    def test_render_mentions_key_numbers(self):
        res = run_campaign(CampaignSpec(n=4, model="stuck", samples=16))
        text = res.render()
        assert "bijection-check coverage" in text
        assert "Wilson CI" in text  # sampled campaigns quote the interval
        assert "rank oracle" in text


class TestEngineIdentity:
    """The fault-parallel compiled path must match the per-fault interpreter
    exactly — counts, per-fault classification order and rendered examples."""

    @pytest.mark.parametrize(
        "circuit,model,n",
        [
            ("converter", "stuck", 4),
            ("converter", "seu", 4),
            ("shuffle", "stuck", 4),
            ("shuffle", "seu", 4),
        ],
    )
    def test_compiled_matches_interp(self, circuit, model, n):
        def run(engine):
            return run_campaign(
                CampaignSpec(
                    circuit=circuit, n=n, model=model, samples=24, engine=engine
                )
            )

        a, b = run("interp"), run("compiled")
        assert (a.benign, a.detected, a.silent) == (b.benign, b.detected, b.silent)
        assert a.examples == b.examples
        assert a.engine == "interp" and b.engine == "compiled"
        # fault-parallelism: far fewer sweeps than one-per-fault
        assert 0 < b.sweeps < a.sweeps

    def test_auto_resolves_to_fault_parallel(self):
        res = run_campaign(CampaignSpec(n=4, model="stuck", samples=12))
        assert res.engine == "compiled"
        assert "faults/s" in res.render()

    def test_bridge_model_falls_back_to_interp(self):
        res = run_campaign(CampaignSpec(n=4, model="bridge", samples=12))
        assert res.engine in ("auto", "interp")

    def test_engine_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(engine="verilator")


class TestShuffleCampaign:
    def test_stuck_campaign_runs(self):
        res = run_campaign(
            CampaignSpec(circuit="shuffle", n=4, model="stuck", samples=20)
        )
        assert res.total == 20
        assert res.benign + res.detected + res.silent == 20
        assert "statistical monitoring" in res.render()

    def test_seu_in_lfsr_is_always_silent_or_benign(self):
        """An upset LFSR bit reshuffles the randomness: outputs stay valid
        permutations, so per-sample checking can never catch it."""
        res = run_campaign(
            CampaignSpec(circuit="shuffle", n=4, model="seu", samples=30)
        )
        assert res.detected == 0
        assert res.total == 30
