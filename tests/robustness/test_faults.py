"""Fault-model and overlay semantics on hand-built micro-netlists."""

import numpy as np
import pytest

from repro.hdl.gates import Op
from repro.hdl.netlist import Netlist
from repro.hdl.simulator import CombinationalSimulator, SequentialSimulator
from repro.robustness.faults import (
    BridgingFault,
    FaultOverlay,
    SEUFault,
    StuckAtFault,
    bridging_fault_sites,
    seu_fault_sites,
    stuck_fault_sites,
)


def _and_netlist():
    """out = a AND b, with the AND wire returned for fault targeting."""
    nl = Netlist("tiny")
    a = nl.input("a")
    b = nl.input("b")
    w = nl.gate(Op.AND, a[0], b[0])
    nl.output("out", w)
    return nl, w


class TestStuckAt:
    @pytest.mark.parametrize("value", [False, True])
    def test_forces_wire(self, value):
        nl, w = _and_netlist()
        sim = CombinationalSimulator(nl)
        overlay = FaultOverlay([StuckAtFault(w, value)], nl)
        out = sim.run({"a": [0, 0, 1, 1], "b": [0, 1, 0, 1]}, overlay=overlay)
        assert list(out["out"]) == [int(value)] * 4

    def test_no_overlay_is_healthy(self):
        nl, _ = _and_netlist()
        out = CombinationalSimulator(nl).run({"a": [0, 0, 1, 1], "b": [0, 1, 0, 1]})
        assert list(out["out"]) == [0, 0, 0, 1]

    def test_fault_propagates_downstream(self):
        """A patched wire must poison every consumer, not just the output."""
        nl = Netlist()
        a = nl.input("a")
        b = nl.input("b")
        w1 = nl.gate(Op.AND, a[0], b[0])
        w2 = nl.gate(Op.OR, w1, a[0])
        nl.output("out", w2)
        overlay = FaultOverlay([StuckAtFault(w1, True)], nl)
        out = CombinationalSimulator(nl).run({"a": 0, "b": 0}, overlay=overlay)
        assert int(out["out"][0]) == 1  # OR sees the stuck 1

    def test_input_wire_can_be_stuck(self):
        nl, _ = _and_netlist()
        a_wire = nl.inputs["a"][0]
        overlay = FaultOverlay([StuckAtFault(a_wire, True)], nl)
        out = CombinationalSimulator(nl).run({"a": 0, "b": 1}, overlay=overlay)
        assert int(out["out"][0]) == 1


class TestBridging:
    def test_wired_and_and_or(self):
        nl = Netlist()
        a = nl.input("a")
        b = nl.input("b")
        w1 = nl.gate(Op.XOR, a[0], b[0])
        w2 = nl.gate(Op.OR, a[0], b[0])
        nl.output("x", w1)
        nl.output("y", w2)
        sim = CombinationalSimulator(nl)
        vec = {"a": [0, 0, 1, 1], "b": [0, 1, 0, 1]}
        for mode, expect in (("and", [0, 1 & 1, 1 & 1, 1 & 0]), ("or", [0, 1, 1, 1])):
            overlay = FaultOverlay([BridgingFault(w1, w2, mode)], nl)
            out = sim.run(vec, overlay=overlay)
            assert list(out["x"]) == [0, 1, 1, 0]  # aggressor unharmed
            assert list(out["y"]) == expect

    def test_orders_must_be_topological(self):
        nl, w = _and_netlist()
        with pytest.raises(ValueError):
            FaultOverlay([BridgingFault(aggressor=w, victim=0)], nl)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            FaultOverlay([BridgingFault(0, 1, mode="xor")])


class TestSEU:
    def _pipeline(self):
        """Two-stage shift register on one input bit."""
        nl = Netlist()
        a = nl.input("a")
        q1 = nl.register(a[0], name="r1")
        q2 = nl.register(q1, name="r2")
        nl.output("out", q2)
        return nl, q1, q2

    def test_flip_is_transient(self):
        nl, q1, _ = self._pipeline()
        golden = SequentialSimulator(nl, batch=1)
        clean = [int(golden.step({"a": 0})["out"][0]) for _ in range(6)]
        assert clean == [0] * 6

        overlay = FaultOverlay([SEUFault(register=q1, cycle=2)], nl)
        seq = SequentialSimulator(nl, batch=1, overlay=overlay)
        seen = [int(seq.step({"a": 0})["out"][0]) for _ in range(6)]
        # the flipped bit appears exactly once, one stage (cycle) later
        assert seen == [0, 0, 0, 1, 0, 0]

    def test_seu_target_must_be_register(self):
        nl, q1, _ = self._pipeline()
        with pytest.raises(ValueError):
            FaultOverlay([SEUFault(register=nl.inputs["a"][0], cycle=0)], nl)


class TestSiteEnumeration:
    def test_stuck_sites_cover_live_logic_twice(self):
        from repro.core.converter import IndexToPermutationConverter

        nl = IndexToPermutationConverter(4).build_netlist()
        sites = stuck_fault_sites(nl)
        live_logic = {
            w
            for w in nl.live_wires()
            if nl.gates[w].op
            not in (Op.INPUT, Op.REG, Op.CONST0, Op.CONST1)
        }
        assert len(sites) == 2 * len(live_logic)
        assert {s.wire for s in sites} == live_logic

    def test_seu_sites(self):
        nl, *_ = TestSEU()._pipeline()
        sites = seu_fault_sites(nl, cycles=(1, 5))
        assert len(sites) == 2 * 2  # two registers x two cycles

    def test_bridging_sites_distinct_and_seeded(self):
        from repro.core.converter import IndexToPermutationConverter

        nl = IndexToPermutationConverter(4).build_netlist()
        a = bridging_fault_sites(nl, 10, seed=7)
        b = bridging_fault_sites(nl, 10, seed=7)
        assert a == b  # reproducible
        pairs = {(f.aggressor, f.victim) for f in a}
        assert len(pairs) == 10
        for f in a:
            assert f.aggressor < f.victim

    def test_overlay_rejects_unknown_wire(self):
        nl, _ = _and_netlist()
        with pytest.raises(ValueError):
            FaultOverlay([StuckAtFault(wire=10_000, value=True)], nl)

    def test_overlay_describe(self):
        nl, w = _and_netlist()
        overlay = FaultOverlay([StuckAtFault(w, True)], nl)
        assert "stuck-at-1" in overlay.describe(nl)
