"""CLI subcommand tests (driven through main(argv))."""

import pytest

from repro.cli import main


def test_unrank(capsys):
    assert main(["unrank", "23", "4"]) == 0
    assert capsys.readouterr().out.strip() == "3 2 1 0"


def test_rank(capsys):
    assert main(["rank", "3", "2", "1", "0"]) == 0
    assert capsys.readouterr().out.strip() == "23"


def test_rank_unrank_inverse(capsys):
    main(["unrank", "17", "4"])
    perm = capsys.readouterr().out.split()
    main(["rank", *perm])
    assert capsys.readouterr().out.strip() == "17"


def test_table1(capsys):
    assert main(["table1", "3"]) == 0
    out = capsys.readouterr().out.splitlines()
    assert len(out) == 7  # header + 3! rows
    assert out[-1].endswith("2 1 0")


def test_table1_default_n4(capsys):
    main(["table1"])
    assert len(capsys.readouterr().out.splitlines()) == 25


def test_shuffle(capsys):
    assert main(["shuffle", "5", "7"]) == 0
    rows = capsys.readouterr().out.splitlines()
    assert len(rows) == 7
    for row in rows:
        assert sorted(int(x) for x in row.split()) == list(range(5))


def test_resources(capsys):
    assert main(["resources", "4"]) == 0
    out = capsys.readouterr().out
    assert "Freq" in out and len(out.splitlines()) == 2


def test_fig4_small(capsys):
    assert main(["fig4", "2048"]) == 0
    out = capsys.readouterr().out
    assert "chi2 p=" in out
    assert len(out.splitlines()) >= 24


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["nope"])


def test_no_command_exits():
    with pytest.raises(SystemExit):
        main([])
