"""CLI subcommand tests (driven through main(argv))."""

import pytest

from repro.cli import main


def test_unrank(capsys):
    assert main(["unrank", "23", "4"]) == 0
    assert capsys.readouterr().out.strip() == "3 2 1 0"


def test_rank(capsys):
    assert main(["rank", "3", "2", "1", "0"]) == 0
    assert capsys.readouterr().out.strip() == "23"


def test_rank_unrank_inverse(capsys):
    main(["unrank", "17", "4"])
    perm = capsys.readouterr().out.split()
    main(["rank", *perm])
    assert capsys.readouterr().out.strip() == "17"


def test_table1(capsys):
    assert main(["table1", "3"]) == 0
    out = capsys.readouterr().out.splitlines()
    assert len(out) == 7  # header + 3! rows
    assert out[-1].endswith("2 1 0")


def test_table1_default_n4(capsys):
    main(["table1"])
    assert len(capsys.readouterr().out.splitlines()) == 25


def test_shuffle(capsys):
    assert main(["shuffle", "5", "7"]) == 0
    rows = capsys.readouterr().out.splitlines()
    assert len(rows) == 7
    for row in rows:
        assert sorted(int(x) for x in row.split()) == list(range(5))


def test_resources(capsys):
    assert main(["resources", "4"]) == 0
    out = capsys.readouterr().out
    assert "Freq" in out and len(out.splitlines()) == 2


class TestSynthCommand:
    def test_synth_default_full_pipeline(self, capsys):
        assert main(["synth", "4"]) == 0
        out = capsys.readouterr().out
        for name in ("regprop", "demorgan", "fold", "dedupe", "sweep"):
            assert name in out  # per-pass delta table
        assert "Freq" in out  # resource row

    def test_synth_checked_reports_proof_method(self, capsys):
        assert main(["synth", "3", "--checked"]) == 0
        assert "bdd:" in capsys.readouterr().out

    def test_synth_checked_pipelined_uses_simulation(self, capsys):
        assert main(["synth", "3", "--checked", "--pipelined"]) == 0
        assert "simulation:" in capsys.readouterr().out

    def test_synth_pass_subset(self, capsys):
        assert main(["synth", "4", "--passes", "sweep"]) == 0
        out = capsys.readouterr().out
        assert "sweep" in out and "demorgan" not in out

    def test_synth_no_opt_has_no_pass_table(self, capsys):
        assert main(["synth", "4", "--no-opt"]) == 0
        out = capsys.readouterr().out
        assert "sweep" not in out and "Freq" in out

    def test_synth_shuffle_circuit(self, capsys):
        assert main(["synth", "4", "--circuit", "shuffle"]) == 0
        assert "Freq" in capsys.readouterr().out

    def test_synth_unknown_pass_is_usage_error(self, capsys):
        assert main(["synth", "4", "--passes", "bogus"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("repro-perm: error:")
        assert "unknown pass 'bogus'" in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_synth_no_opt_and_passes_conflict(self, capsys):
        assert main(["synth", "4", "--no-opt", "--passes", "sweep"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_synth_bad_n(self, capsys):
        assert main(["synth", "0"]) == 2
        assert "n must be at least 1" in capsys.readouterr().err


def test_fig4_small(capsys):
    assert main(["fig4", "2048"]) == 0
    out = capsys.readouterr().out
    assert "chi2 p=" in out
    assert len(out.splitlines()) >= 24


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["nope"])


def test_no_command_exits():
    with pytest.raises(SystemExit):
        main([])


class TestInputValidation:
    """Bad input: one-line stderr diagnostic, exit code 2, no traceback."""

    @pytest.mark.parametrize("index", ["-1", "24", "9999"])
    def test_unrank_out_of_range(self, capsys, index):
        assert main(["unrank", index, "4"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith("repro-perm: error:")
        assert len(captured.err.strip().splitlines()) == 1

    def test_unrank_bad_n(self, capsys):
        assert main(["unrank", "0", "0"]) == 2
        assert "error" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "elements",
        [["0", "0", "1"], ["1", "2", "3"], ["5"], ["0", "2"]],
    )
    def test_rank_non_permutation(self, capsys, elements):
        assert main(["rank", *elements]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert len(captured.err.strip().splitlines()) == 1

    @pytest.mark.parametrize(
        "argv",
        [
            ["faults", "1"],
            ["faults", "4", "--samples", "0"],
            ["faults", "4", "--samples", "-5"],
        ],
    )
    def test_faults_bad_spec(self, capsys, argv):
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("repro-perm: error:")
        assert len(captured.err.strip().splitlines()) == 1

    def test_valid_inputs_still_exit_zero(self, capsys):
        assert main(["unrank", "23", "4"]) == 0
        assert main(["rank", "3", "2", "1", "0"]) == 0

    @pytest.mark.parametrize(
        "argv",
        [
            ["synth", "4", "--engine", "warp"],
            ["synth", "4", "--checked", "--engine", "bogus"],
            ["faults", "4", "--engine", "warp"],
            ["--quiet", "faults", "4", "--samples", "8", "--engine", ""],
        ],
    )
    def test_unknown_engine_is_usage_error(self, capsys, argv):
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("repro-perm: error:")
        assert "unknown engine" in captured.err
        assert "auto" in captured.err and "compiled" in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    @pytest.mark.parametrize(
        "argv",
        [
            ["serve", "4", "--workload", "bogus"],
            ["serve", "4", "--workload", "unranks"],
            ["serve", "4", "--batch-size", "0"],
            ["serve", "4", "--batch-size", "-3"],
            ["serve", "4", "--batch-size", "9999"],
            ["serve", "0"],
            ["serve", "1", "--workload", "shuffle"],
            ["serve", "4", "--requests", "0"],
            ["serve", "4", "--clients", "0"],
        ],
    )
    def test_serve_bad_input_is_usage_error(self, capsys, argv):
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith("repro-perm: error:")
        assert len(captured.err.strip().splitlines()) == 1


class TestMetricsFlag:
    def test_metrics_dumps_exposition_to_stderr(self, capsys):
        assert main(["--metrics", "unrank", "5", "42"]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().split()) == 42  # the permutation
        assert "# TYPE repro_cli_commands_total counter" in captured.err
        assert 'repro_cli_commands_total{command="unrank"}' in captured.err
        assert 'repro_convert_total{n="42"}' in captured.err

    def test_without_flag_nothing_is_recorded(self, capsys):
        assert main(["unrank", "23", "4"]) == 0
        assert capsys.readouterr().err == ""

    def test_registry_disabled_again_after_exit(self, capsys):
        from repro.obs.metrics import REGISTRY

        main(["--metrics", "unrank", "0", "3"])
        capsys.readouterr()
        assert not REGISTRY.enabled

    def test_metrics_dump_survives_usage_errors(self, capsys):
        assert main(["--metrics", "unrank", "999", "4"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-perm: error:")
        assert "repro_cli_commands_total" in err


class TestQuietFlag:
    def test_faults_reports_progress_events_by_default(self, capsys):
        assert main(["faults", "3", "--samples", "8"]) == 0
        captured = capsys.readouterr()
        assert "[campaign] plan:" in captured.err
        assert "[campaign] done:" in captured.err
        assert "coverage" in captured.out  # report untouched

    def test_quiet_silences_events_not_the_report(self, capsys):
        assert main(["--quiet", "faults", "3", "--samples", "8"]) == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        assert "coverage" in captured.out


class TestTraceCommand:
    def test_trace_faults_has_one_child_span_per_shard(self, capsys):
        assert main(
            ["--quiet", "trace", "faults", "4", "--model", "stuck",
             "--samples", "16"]
        ) == 0
        captured = capsys.readouterr()
        assert "coverage" in captured.out
        tree = captured.err
        assert "faults" in tree
        for shard in range(4):  # workers=1 -> 4 shards
            assert f"shard{shard}" in tree
        assert "plan" in tree and "done" in tree  # events landed on spans

    def test_trace_vcd_unrank_writes_waveform(self, capsys, tmp_path):
        vcd = tmp_path / "wave.vcd"
        assert main(["trace", "--vcd", str(vcd), "unrank", "3", "3"]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "1 2 0"
        assert "vcd_written" in captured.err
        text = vcd.read_text()
        assert text.startswith("$timescale")
        assert "dbg_digit0" in text

    def test_trace_without_subcommand_is_usage_error(self, capsys):
        assert main(["trace"]) == 2
        assert "trace needs a subcommand" in capsys.readouterr().err

    def test_trace_cannot_nest(self, capsys):
        assert main(["trace", "trace", "unrank", "0", "3"]) == 2
        assert "nested" in capsys.readouterr().err

    def test_vcd_restricted_to_unrank(self, capsys, tmp_path):
        vcd = tmp_path / "wave.vcd"
        assert main(["trace", "--vcd", str(vcd), "rank", "0", "1"]) == 2
        assert "--vcd" in capsys.readouterr().err
        assert not vcd.exists()


class TestServeCommand:
    def test_mixed_load_report(self, capsys):
        assert main(
            ["serve", "6", "--requests", "60", "--clients", "4",
             "--deadline-ms", "0.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "served 60 requests" in out
        assert "throughput" in out and "req/s" in out
        assert "p50=" in out and "p99=" in out
        assert "lanes/sweep" in out
        assert "shed" in out

    def test_single_workload_mix(self, capsys):
        assert main(
            ["serve", "5", "--requests", "40", "--clients", "2",
             "--workload", "unrank", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "workload unrank" in out
        assert "unrank=40" in out
        assert "random_perm" not in out.split("workloads")[1]

    def test_explicit_batch_size_accepted(self, capsys):
        assert main(
            ["serve", "5", "--requests", "20", "--clients", "4",
             "--batch-size", "4", "--queue-depth", "64"]
        ) == 0
        assert "served 20 requests" in capsys.readouterr().out


class TestFaultsCommand:
    def test_stuck_campaign_smoke(self, capsys):
        assert main(["faults", "4", "--model", "stuck"]) == 0
        out = capsys.readouterr().out
        assert "Fault-injection campaign: converter n=4, model=stuck" in out
        assert "bijection-check coverage" in out
        assert "silent (valid but WRONG output)" in out

    def test_sampled_seu_on_shuffle(self, capsys):
        assert (
            main(
                ["faults", "4", "--model", "seu", "--circuit", "shuffle",
                 "--samples", "12"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "model=seu" in out
        assert "statistical monitoring" in out

    def test_campaign_with_workers(self, capsys):
        assert main(["faults", "4", "--samples", "16", "--workers", "2"]) == 0
        assert "coverage" in capsys.readouterr().out


class TestValidateCommand:
    ARGS = ["validate", "--n", "5", "--samples", "4096", "--block", "2048",
            "--engine", "compiled", "--workers", "1", "--battery-draws", "512"]

    def test_smoke_campaign_passes(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "population validation" in out
        assert "verdict            PASS" in out
        assert "expected m-sequence artifact" in out

    def test_ideal_source_p_value_mode(self, capsys):
        assert main(self.ARGS + ["--source", "ideal"]) == 0
        assert "[p_value]" in capsys.readouterr().out

    def test_report_written_and_schema_valid(self, capsys, tmp_path):
        from repro.analysis.checkpoint import load_checkpoint

        report = tmp_path / "report.json"
        assert main(self.ARGS + ["--report", str(report)]) == 0
        payload = load_checkpoint(report, kind="report")
        assert payload["verdict"]["passed"]
        assert payload["summary"]["samples"] == 4096

    def test_checkpoint_resume_roundtrip(self, capsys, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        assert main(self.ARGS + ["--shards", "2", "--checkpoint", str(ckpt)]) == 0
        # everything already complete: resume just replays the verdict
        assert main(self.ARGS + ["--checkpoint", str(ckpt), "--resume"]) == 0
        assert "resumed" in capsys.readouterr().out

    def test_bad_engine_is_usage_error(self):
        assert main(["validate", "--n", "5", "--samples", "64",
                     "--engine", "quantum"]) == 2
