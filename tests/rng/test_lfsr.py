"""LFSR correctness: maximality, linearity, jump-ahead, netlist parity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hdl.simulator import SequentialSimulator
from repro.rng.lfsr import FibonacciLFSR, GaloisLFSR, build_lfsr_netlist, dense_seed
from repro.rng.taps import MAXIMAL_TAPS


@pytest.mark.parametrize("cls", [FibonacciLFSR, GaloisLFSR])
@pytest.mark.parametrize("width", list(range(2, 15)))
def test_maximal_period(cls, width):
    """Every nonzero state appears exactly once per period 2^m − 1."""
    lfsr = cls(width, seed=1)
    seen = set()
    for _ in range(lfsr.period):
        s = lfsr.next_word()
        assert s != 0
        assert s not in seen
        seen.add(s)
    assert len(seen) == (1 << width) - 1
    assert lfsr.state == 1  # back to the seed after one full period


@pytest.mark.parametrize("cls", [FibonacciLFSR, GaloisLFSR])
def test_zero_state_is_forbidden_seed(cls):
    with pytest.raises(ValueError):
        cls(8, seed=0)
    with pytest.raises(ValueError):
        cls(8, seed=256)


def test_width_below_two_rejected():
    with pytest.raises(ValueError):
        FibonacciLFSR(1)


def test_reset_returns_to_seed():
    lfsr = FibonacciLFSR(12, seed=77)
    for _ in range(10):
        lfsr.next_word()
    lfsr.reset()
    assert lfsr.state == 77


def test_words_batch_equals_sequential():
    a = FibonacciLFSR(16, seed=5)
    b = FibonacciLFSR(16, seed=5)
    batch = a.words(50)
    seq = [b.next_word() for _ in range(50)]
    assert [int(x) for x in batch] == seq
    assert a.state == b.state


@pytest.mark.parametrize("width", sorted(MAXIMAL_TAPS))
def test_vectorised_words_bit_exact_every_width(width):
    """The chunked-recurrence fast path must reproduce the scalar clock
    loop bit for bit — including widths whose tap set has a lag-1 term
    (tap position 1), which takes the running-XOR branch."""
    seed = dense_seed(width, salt=3)
    fast = FibonacciLFSR(width, seed=seed)
    slow = FibonacciLFSR(width, seed=seed)
    batch = fast.words(257)
    seq = np.array([slow.next_word() for _ in range(257)], dtype=batch.dtype)
    assert np.array_equal(batch, seq)
    assert fast.state == slow.state


def test_vectorised_words_chunked_calls_continue_stream():
    a = FibonacciLFSR(31, seed=dense_seed(31))
    b = FibonacciLFSR(31, seed=dense_seed(31))
    parts = np.concatenate([a.words(7), a.words(1), a.words(120)])
    assert np.array_equal(parts, b.words(128))
    assert a.state == b.state


def test_words_zero_count():
    lfsr = FibonacciLFSR(31, seed=9)
    assert lfsr.words(0).size == 0
    assert lfsr.state == 9


@pytest.mark.parametrize(
    "width,dtype",
    [(5, np.uint8), (8, np.uint8), (9, np.uint32), (31, np.uint32),
     (33, np.uint64), (64, np.uint64)],
)
def test_words_uses_machine_dtype_tiers(width, dtype):
    """words() must stay vectorisable: a uint tier, never object, <= 64 bits."""
    batch = FibonacciLFSR(width, seed=1).words(16)
    assert batch.dtype == dtype


def test_words_wide_register_falls_back_to_object():
    # widths above 64 are not tabulated; x^65 + x^47 + 1 is primitive
    batch = FibonacciLFSR(65, taps=(65, 47), seed=1).words(4)
    assert batch.dtype == object
    ref = FibonacciLFSR(65, taps=(65, 47), seed=1)
    assert [int(x) for x in batch] == [ref.next_word() for _ in range(4)]


def test_iter_words_stream():
    lfsr = FibonacciLFSR(8, seed=9)
    it = lfsr.iter_words()
    ref = FibonacciLFSR(8, seed=9)
    assert [next(it) for _ in range(5)] == [ref.next_word() for _ in range(5)]


def test_next_fraction_in_open_unit_interval():
    lfsr = FibonacciLFSR(10, seed=1)
    for _ in range(200):
        x = lfsr.next_fraction()
        assert 0.0 < x < 1.0


class TestLinearity:
    """The step map must be GF(2)-linear — jump-ahead relies on it."""

    @given(st.integers(1, (1 << 12) - 1), st.integers(1, (1 << 12) - 1))
    def test_step_is_additive(self, x, y):
        lfsr = FibonacciLFSR(12)
        assert lfsr._step(x ^ y) == lfsr._step(x) ^ lfsr._step(y)

    @given(st.integers(1, (1 << 12) - 1), st.integers(1, (1 << 12) - 1))
    def test_galois_step_is_additive(self, x, y):
        lfsr = GaloisLFSR(12)
        assert lfsr._step(x ^ y) == lfsr._step(x) ^ lfsr._step(y)


class TestJump:
    @pytest.mark.parametrize("cls", [FibonacciLFSR, GaloisLFSR])
    @pytest.mark.parametrize("steps", [0, 1, 2, 17, 1000, 123456])
    def test_jump_equals_stepping(self, cls, steps):
        a = cls(20, seed=31337)
        b = cls(20, seed=31337)
        for _ in range(min(steps, 2000)):
            a.next_word()
        if steps > 2000:
            a.jump(steps - 2000)
        b.jump(steps)
        assert a.state == b.state

    def test_jump_full_period_is_identity(self):
        lfsr = FibonacciLFSR(10, seed=99)
        lfsr.jump(lfsr.period)
        assert lfsr.state == 99

    def test_negative_jump_rejected(self):
        with pytest.raises(ValueError):
            FibonacciLFSR(8).jump(-1)


class TestSubstreams:
    def test_substreams_are_disjoint_blocks(self):
        base = FibonacciLFSR(24, seed=1)
        streams = base.spawn_substreams(count=4, total_draws=1000)
        # stream j starts at offset j * ceil(1000/4) = 250j
        ref = FibonacciLFSR(24, seed=1)
        draws = [ref.next_word() for _ in range(1000)]
        for j, s in enumerate(streams):
            got = [s.next_word() for _ in range(250)]
            assert got == draws[250 * j : 250 * (j + 1)]

    @pytest.mark.parametrize("cls", [FibonacciLFSR, GaloisLFSR])
    def test_parent_window_disjoint_from_every_substream(self, cls):
        """Regression: substream 0 starts at the parent's (pre-spawn)
        state, so a parent left in place and still drawing replays it.
        After spawn_substreams the parent must sit past every handed-out
        block: all count+1 draw windows — parent included — pairwise
        disjoint."""
        parent = cls(20, seed=1234)
        count, total = 3, 90
        block = -(-total // count)  # 30
        streams = parent.spawn_substreams(count=count, total_draws=total)
        windows = [
            [s.next_word() for _ in range(block)] for s in streams
        ]
        windows.append([parent.next_word() for _ in range(block)])
        for i in range(len(windows)):
            for j in range(i + 1, len(windows)):
                assert not set(windows[i]) & set(windows[j]), (
                    f"draw windows {i} and {j} overlap"
                )

    def test_parent_resumes_exactly_after_last_block(self):
        parent = FibonacciLFSR(16, seed=7)
        ref = FibonacciLFSR(16, seed=7)
        parent.spawn_substreams(count=4, total_draws=100)
        ref.jump(4 * 25)
        assert parent.state == ref.state

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            FibonacciLFSR(8).spawn_substreams(0, 10)


class TestNetlist:
    @pytest.mark.parametrize("width", [4, 7, 13])
    def test_netlist_matches_software(self, width):
        nl = build_lfsr_netlist(width, seed=5)
        sim = SequentialSimulator(nl)
        # cycle 0 emits the seed; cycle c ≥ 1 emits step^c(seed)
        assert int(sim.step({})["state"][0]) == 5
        ref = FibonacciLFSR(width, seed=5)
        for _ in range(min(200, (1 << width) - 1)):
            assert int(sim.step({})["state"][0]) == ref.next_word()

    def test_netlist_register_count(self):
        nl = build_lfsr_netlist(16)
        assert nl.num_registers == 16

    def test_netlist_bad_seed_rejected(self):
        with pytest.raises(ValueError):
            build_lfsr_netlist(8, seed=0)


def test_fibonacci_and_galois_differ_but_both_maximal():
    """Same tap table, different forms: different sequences, same period."""
    f = FibonacciLFSR(9, seed=1)
    g = GaloisLFSR(9, seed=1)
    fw = [f.next_word() for _ in range(20)]
    gw = [g.next_word() for _ in range(20)]
    assert fw != gw
