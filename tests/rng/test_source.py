"""Index source tests."""

import numpy as np
import pytest

from repro.rng.source import CounterSource, LFSRIndexSource, ListSource


class TestCounterSource:
    def test_sequential_with_wrap(self):
        src = CounterSource(5)
        assert src.take(12).tolist() == [0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1]

    def test_start_offset(self):
        src = CounterSource(4, start=2)
        assert src.take(4).tolist() == [2, 3, 0, 1]

    def test_state_persists_across_takes(self):
        src = CounterSource(100)
        src.take(10)
        assert src.take(1).tolist() == [10]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            CounterSource(0)
        with pytest.raises(ValueError):
            CounterSource(5, start=5)

    def test_huge_limit_uses_object_dtype(self):
        src = CounterSource(1 << 80)
        out = src.take(3)
        assert out.dtype == object


class TestListSource:
    def test_replays_and_cycles(self):
        src = ListSource([4, 1, 3])
        assert src.take(7).tolist() == [4, 1, 3, 4, 1, 3, 4]

    def test_limit_inferred(self):
        assert ListSource([4, 1, 3]).limit == 5

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ListSource([4], limit=4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ListSource([])


class TestLFSRIndexSource:
    def test_range(self):
        src = LFSRIndexSource(24, m=8)
        out = src.take(500)
        assert out.min() >= 0 and out.max() < 24

    def test_deterministic_for_seed(self):
        a = LFSRIndexSource(10, m=12, seed=7).take(50)
        b = LFSRIndexSource(10, m=12, seed=7).take(50)
        assert np.array_equal(a, b)

    def test_iter_matches_take(self):
        a = LFSRIndexSource(6, m=9, seed=2)
        b = LFSRIndexSource(6, m=9, seed=2)
        it = iter(a)
        assert [next(it) for _ in range(20)] == b.take(20).tolist()
