"""Tap-table sanity checks."""

import pytest

from repro.rng.taps import MAXIMAL_TAPS, feedback_mask, taps_for_width


def test_table_covers_2_to_64():
    assert set(MAXIMAL_TAPS) == set(range(2, 65))


def test_width_is_always_a_tap():
    for width, taps in MAXIMAL_TAPS.items():
        assert width in taps, f"width {width} missing its own tap"


def test_taps_within_range_and_distinct():
    for width, taps in MAXIMAL_TAPS.items():
        assert all(1 <= t <= width for t in taps)
        assert len(set(taps)) == len(taps)


def test_even_tap_count():
    """A primitive polynomial over GF(2) has an even number of feedback
    taps in the XAPP052 convention (odd number of nonzero terms incl. 1)."""
    for width, taps in MAXIMAL_TAPS.items():
        assert len(taps) % 2 == 0, (width, taps)


def test_feedback_mask_bits():
    assert feedback_mask(5) == (1 << 4) | (1 << 2)  # taps (5, 3)


def test_feedback_mask_custom_taps():
    assert feedback_mask(4, (4, 1)) == 0b1001


def test_feedback_mask_rejects_out_of_range():
    with pytest.raises(ValueError):
        feedback_mask(4, (5,))
    with pytest.raises(ValueError):
        feedback_mask(4, (0,))


def test_unknown_width_rejected():
    with pytest.raises(ValueError):
        taps_for_width(65)
    with pytest.raises(ValueError):
        taps_for_width(1)
