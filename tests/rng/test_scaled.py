"""Scaled random-integer generator: exact bias, netlist parity."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hdl.simulator import SequentialSimulator
from repro.rng.lfsr import FibonacciLFSR, GaloisLFSR
from repro.rng.scaled import (
    ScaledRandomInteger,
    bias_profile,
    build_scaled_netlist,
    empirical_bias,
    scale_word,
)


class TestScaleWord:
    @given(st.integers(0, 255), st.integers(1, 300))
    def test_range(self, x, k):
        i = scale_word(x, k, 8)
        assert 0 <= i < k

    def test_rejects_out_of_range_word(self):
        with pytest.raises(ValueError):
            scale_word(32, 4, 5)

    def test_monotone_in_x(self):
        vals = [scale_word(x, 24, 5) for x in range(32)]
        assert vals == sorted(vals)


class TestBiasProfile:
    def test_paper_example_m5_k24(self):
        """§III-A: 'seven of the random integers are generated from two
        random numbers, while 17 are generated from one'."""
        report = bias_profile(24, 5)
        twos = sum(1 for c in report.counts if c == 2)
        ones = sum(1 for c in report.counts if c == 1)
        assert (twos, ones) == (7, 17)
        assert report.ratio == 2.0

    def test_counts_sum_to_period(self):
        for k, m in [(24, 5), (24, 31), (7, 4), (1, 3), (100, 8)]:
            r = bias_profile(k, m)
            assert sum(r.counts) == (1 << m) - 1
            assert r.period == (1 << m) - 1

    def test_bias_shrinks_with_m(self):
        """§III-A: 'choosing a larger m reduces the difference'."""
        errs = [bias_profile(24, m).max_relative_error for m in (5, 8, 16, 31)]
        assert errs == sorted(errs, reverse=True)
        assert errs[-1] < 1e-6

    def test_m31_close_to_uniform(self):
        r = bias_profile(24, 31)
        assert r.max_relative_error < 1e-7
        assert r.ratio < 1.0 + 1e-6

    def test_some_bin_can_be_empty_when_k_near_period(self):
        # k = 2^m: the state 0 never occurs, so integer 0 gets 0 counts...
        # actually k=2^m maps x -> x, so bin 0 is empty.
        r = bias_profile(8, 3)
        assert r.counts[0] == 0
        assert r.ratio == float("inf")

    def test_histogram_dtype(self):
        h = bias_profile(6, 4).histogram()
        assert h.dtype == np.int64 and h.sum() == 15

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            bias_profile(0, 5)
        with pytest.raises(ValueError):
            bias_profile(5, 0)


class TestClosedFormAgainstEmpirical:
    """Audit of the interval arithmetic (all-zeros-state exclusion).

    The closed form claims integer ``i`` is hit by exactly the words in
    ``[ceil(i·2^m/k), ceil((i+1)·2^m/k) − 1] ∩ [1, 2^m − 1]``.  These
    tests hold it — and the derived ``ratio``/``max_relative_error`` —
    to histograms *counted* over an actual full LFSR period, for both
    register forms, so any future drift in the arithmetic (most easily
    around the excluded all-zeros state at bin 0) fails loudly.
    """

    @given(
        k=st.integers(1, 70),
        m=st.integers(2, 9),
        form=st.sampled_from([FibonacciLFSR, GaloisLFSR]),
        seed_salt=st.integers(0, 5),
    )
    def test_profile_matches_counted_period(self, k, m, form, seed_salt):
        seed = 1 + seed_salt % ((1 << m) - 1)
        counted = empirical_bias(k, form(m, seed=seed))
        closed = bias_profile(k, m)
        assert closed.counts == counted.counts
        assert closed.ratio == counted.ratio
        assert closed.max_relative_error == counted.max_relative_error

    @given(k=st.integers(1, 40), m=st.integers(2, 8))
    def test_derived_stats_match_hand_computation(self, k, m):
        r = bias_profile(k, m)
        period = (1 << m) - 1
        probs = [c / period for c in r.counts]
        ideal = 1 / k
        assert r.max_relative_error == pytest.approx(
            max(abs(p - ideal) for p in probs) / ideal
        )
        if min(r.counts) == 0:
            assert r.ratio == float("inf")
        else:
            assert r.ratio == pytest.approx(max(probs) / min(probs))

    def test_zero_state_exclusion_lands_on_bin_zero(self):
        """Exactly one word (the impossible all-zeros state) is missing,
        and it is missing from bin 0: versus the mapping over all 2^m
        words, only counts[0] drops, by exactly one."""
        for k, m in [(24, 5), (7, 4), (10, 6)]:
            r = bias_profile(k, m)
            full = [0] * k
            for x in range(1 << m):
                full[(k * x) >> m] += 1
            assert full[0] - r.counts[0] == 1
            assert tuple(full[1:]) == r.counts[1:]


class TestScaledRandomInteger:
    def test_draws_in_range(self):
        g = ScaledRandomInteger(10, m=8)
        for _ in range(300):
            assert 0 <= g.next_int() < 10

    def test_ints_batch_matches_sequential(self):
        a = ScaledRandomInteger(7, m=12, seed=3)
        b = ScaledRandomInteger(7, m=12, seed=3)
        batch = a.ints(100)
        seq = [b.next_int() for _ in range(100)]
        assert batch.tolist() == seq

    def test_full_period_histogram_matches_bias_profile(self):
        g = ScaledRandomInteger(5, m=7, seed=1)
        draws = g.ints((1 << 7) - 1)
        hist = np.bincount(draws, minlength=5)
        assert hist.tolist() == list(g.bias().counts)

    def test_custom_lfsr(self):
        lfsr = FibonacciLFSR(9, seed=2)
        g = ScaledRandomInteger(4, lfsr=lfsr)
        assert g.m == 9

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ScaledRandomInteger(0)


class TestNetlist:
    @pytest.mark.parametrize("m,k", [(5, 24), (6, 3), (8, 10)])
    def test_gate_level_matches_software(self, m, k):
        nl = build_scaled_netlist(m, k, seed=1)
        sim = SequentialSimulator(nl)
        sim.step({})  # discard the seed-state output (software advances first)
        ref = ScaledRandomInteger(k, m=m, seed=1)
        got = [int(sim.step({})["i"][0]) for _ in range(50)]
        want = [ref.next_int() for _ in range(50)]
        assert got == want

    def test_output_width(self):
        nl = build_scaled_netlist(5, 24)
        assert nl.outputs["i"].width == 5  # ceil(log2 24)
