"""Hardened map-reduce: retries, crash recovery, timeouts, degradation.

Worker callables are module-level classes so they pickle under spawn.
Failure is made *transient* through marker files in a tmp directory: the
first attempt plants the marker and fails, the retry sees it and
succeeds — which is exactly the fault the hardened runner exists to
absorb (resubmit the shard, never the job).
"""

import os
import time

import pytest

from repro.errors import ShardTimeoutError, WorkerFailedError
from repro.parallel.sharding import (
    PartialResult,
    ShardSpec,
    hardened_map_reduce,
    index_shards,
    parallel_map_reduce,
)


def _square_sum(shard: ShardSpec) -> int:
    return sum(i * i for i in shard)


def _add(a: int, b: int) -> int:
    return a + b


class _FlakyOnce:
    """Raises on the first attempt of a chosen shard, succeeds after."""

    def __init__(self, marker_dir: str, bad_shard: int = 1):
        self.marker_dir = marker_dir
        self.bad_shard = bad_shard

    def __call__(self, shard: ShardSpec) -> int:
        marker = os.path.join(self.marker_dir, f"flaky-{shard.shard_id}")
        if shard.shard_id == self.bad_shard and not os.path.exists(marker):
            open(marker, "w").close()
            raise RuntimeError("transient worker failure")
        return _square_sum(shard)


class _CrashOnce:
    """Kills its worker process outright on the first attempt."""

    def __init__(self, marker_dir: str, bad_shard: int = 1):
        self.marker_dir = marker_dir
        self.bad_shard = bad_shard

    def __call__(self, shard: ShardSpec) -> int:
        marker = os.path.join(self.marker_dir, f"crash-{shard.shard_id}")
        if shard.shard_id == self.bad_shard and not os.path.exists(marker):
            open(marker, "w").close()
            os._exit(1)  # simulated segfault: no exception, no cleanup
        return _square_sum(shard)


class _AlwaysFails:
    def __call__(self, shard: ShardSpec) -> int:
        if shard.shard_id == 2:
            raise RuntimeError("shard 2 is cursed")
        return _square_sum(shard)


class _SlowShard:
    def __init__(self, slow_shard: int = 0, delay: float = 1.5):
        self.slow_shard = slow_shard
        self.delay = delay

    def __call__(self, shard: ShardSpec) -> int:
        if shard.shard_id == self.slow_shard:
            time.sleep(self.delay)
        return _square_sum(shard)


EXPECTED_50 = sum(i * i for i in range(50))


class FakeClock:
    """Deterministic stand-in for the module's monotonic/sleep seams."""

    def __init__(self, start: float = 1000.0):
        self.now = start
        self.sleeps: list[float] = []

    def monotonic(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds

    def install(self, monkeypatch) -> "FakeClock":
        monkeypatch.setattr("repro.parallel.sharding._monotonic", self.monotonic)
        monkeypatch.setattr("repro.parallel.sharding._sleep", self.sleep)
        return self


class TestRetry:
    def test_transient_failure_is_retried_inline(self, tmp_path):
        shards = index_shards(50, 4)
        got = hardened_map_reduce(
            _FlakyOnce(str(tmp_path)), shards, _add, workers=1, backoff=0.0, jitter=0.0
        )
        assert got == EXPECTED_50

    def test_transient_failure_is_retried_in_pool(self, tmp_path):
        shards = index_shards(50, 4)
        got = hardened_map_reduce(
            _FlakyOnce(str(tmp_path)), shards, _add, workers=2, backoff=0.0, jitter=0.0
        )
        assert got == EXPECTED_50

    def test_retry_budget_exhaustion_raises_with_shard_id(self):
        shards = index_shards(50, 4)
        with pytest.raises(WorkerFailedError) as err:
            hardened_map_reduce(
                _AlwaysFails(), shards, _add,
                workers=1, retries=2, backoff=0.0, jitter=0.0,
            )
        assert err.value.shard_id == 2
        assert err.value.attempts == 3  # 1 initial + 2 retries

    def test_backoff_grows_exponentially(self, monkeypatch):
        clock = FakeClock().install(monkeypatch)
        shards = index_shards(50, 4)
        with pytest.raises(WorkerFailedError):
            hardened_map_reduce(
                _AlwaysFails(), shards, _add,
                workers=1, retries=3, backoff=0.1, jitter=0.0,
            )
        assert clock.sleeps == pytest.approx([0.1, 0.2, 0.4])


class TestMonotonicClock:
    """Deadline/backoff arithmetic must never consult the wall clock."""

    def test_backoff_immune_to_wall_clock_adjustment(self, monkeypatch):
        clock = FakeClock().install(monkeypatch)

        def wall_clock_is_off_limits():
            raise AssertionError("hardened_map_reduce consulted time.time()")

        monkeypatch.setattr(time, "time", wall_clock_is_off_limits)
        shards = index_shards(50, 4)
        with pytest.raises(WorkerFailedError):
            hardened_map_reduce(
                _AlwaysFails(), shards, _add,
                workers=1, retries=2, backoff=0.1, jitter=0.0,
            )
        # schedule driven purely by the (fake) monotonic clock
        assert clock.sleeps == pytest.approx([0.1, 0.2])

    def test_sleep_until_survives_short_sleeps(self, monkeypatch):
        """An interrupted sleep (returns early) must loop, not give up."""
        from repro.parallel import sharding

        clock = FakeClock()

        def short_sleep(seconds):
            clock.sleeps.append(seconds)
            clock.now += seconds / 2  # OS woke us early every time

        monkeypatch.setattr(sharding, "_monotonic", clock.monotonic)
        monkeypatch.setattr(sharding, "_sleep", short_sleep)
        sharding._sleep_until(clock.now + 1.0)
        assert clock.now >= 1000.0 + 1.0 - 1e-9
        assert len(clock.sleeps) > 1  # it actually had to re-arm

    def test_jitter_is_seeded_and_reproducible(self, monkeypatch):
        def schedule(seed):
            clock = FakeClock().install(monkeypatch)
            with pytest.raises(WorkerFailedError):
                hardened_map_reduce(
                    _AlwaysFails(), index_shards(50, 4), _add,
                    workers=1, retries=2, backoff=0.1, jitter=0.05, seed=seed,
                )
            return clock.sleeps

        first, again, other = schedule(7), schedule(7), schedule(8)
        assert first == again
        assert first != other


class TestCrashRecovery:
    def test_worker_crash_resubmits_shard_not_job(self, tmp_path):
        shards = index_shards(50, 4)
        got = hardened_map_reduce(
            _CrashOnce(str(tmp_path)), shards, _add,
            workers=2, backoff=0.0, jitter=0.0,
        )
        assert got == EXPECTED_50
        # the shard really did crash once: its marker exists
        assert os.path.exists(os.path.join(str(tmp_path), "crash-1"))


class TestTimeout:
    def test_slow_shard_times_out_and_degrades(self):
        shards = index_shards(40, 4)
        partial = hardened_map_reduce(
            _SlowShard(slow_shard=0, delay=1.5), shards, _add,
            workers=2, timeout=0.3, retries=0, degrade=True,
            backoff=0.0, jitter=0.0,
        )
        assert isinstance(partial, PartialResult)
        assert not partial.complete
        assert [f.shard_id for f in partial.failed] == [0]
        assert partial.failed[0].timed_out
        assert partial.completed == 3
        expected = sum(_square_sum(s) for s in shards if s.shard_id != 0)
        assert partial.value == expected

    def test_timeout_without_degrade_raises_typed(self):
        shards = index_shards(40, 4)
        with pytest.raises(ShardTimeoutError) as err:
            hardened_map_reduce(
                _SlowShard(slow_shard=1, delay=1.5), shards, _add,
                workers=2, timeout=0.3, retries=0,
                backoff=0.0, jitter=0.0,
            )
        assert err.value.shard_id == 1
        assert isinstance(err.value, WorkerFailedError)  # taxonomy nesting


class TestDegradedMode:
    def test_partial_result_manifest(self):
        shards = index_shards(50, 4)
        partial = hardened_map_reduce(
            _AlwaysFails(), shards, _add,
            workers=1, retries=1, degrade=True, backoff=0.0, jitter=0.0,
        )
        assert not partial.complete
        assert partial.completed == 3 and partial.total == 4
        assert partial.coverage == pytest.approx(0.75)
        (failure,) = partial.failed
        assert failure.shard_id == 2
        assert failure.attempts == 2
        assert "cursed" in failure.error
        expected = sum(_square_sum(s) for s in shards if s.shard_id != 2)
        assert partial.value == expected

    def test_complete_run_has_empty_manifest(self):
        shards = index_shards(50, 4)
        partial = hardened_map_reduce(
            _square_sum, shards, _add, workers=1, degrade=True
        )
        assert partial.complete
        assert partial.value == EXPECTED_50
        assert partial.coverage == 1.0

    def test_empty_shards_rejected(self):
        with pytest.raises(ValueError):
            hardened_map_reduce(_square_sum, [], _add)


class TestPlainRunnerErrorWrapping:
    """Satellite: parallel_map_reduce surfaces failures as typed errors."""

    def test_inline_exception_wrapped(self):
        shards = index_shards(50, 4)
        with pytest.raises(WorkerFailedError) as err:
            parallel_map_reduce(_AlwaysFails(), shards, _add, workers=1)
        assert err.value.shard_id == 2
        assert isinstance(err.value.__cause__, RuntimeError)

    def test_pool_exception_wrapped(self):
        shards = index_shards(50, 4)
        with pytest.raises(WorkerFailedError) as err:
            parallel_map_reduce(_AlwaysFails(), shards, _add, workers=2)
        assert err.value.shard_id == 2

    def test_total_zero_yields_empty_shards_which_are_rejected(self):
        assert index_shards(0, 3) == []
        with pytest.raises(ValueError):
            parallel_map_reduce(_square_sum, index_shards(0, 3), _add)


class _AlwaysCrashes:
    """Kills its worker process on every attempt of one shard.

    The small delay lets healthy shards in the same wave finish before
    the pool is torn down, keeping the failure isolated to its shard.
    """

    def __init__(self, bad_shard: int = 1, delay: float = 0.25):
        self.bad_shard = bad_shard
        self.delay = delay

    def __call__(self, shard: ShardSpec) -> int:
        if shard.shard_id == self.bad_shard:
            time.sleep(self.delay)
            os._exit(1)
        return _square_sum(shard)


class TestFailureManifest:
    """Satellite: per-shard attempts and final-failure causes surface."""

    def test_worker_crash_mid_campaign_yields_partial_with_coverage(self):
        shards = index_shards(40, 4)
        partial = hardened_map_reduce(
            _AlwaysCrashes(), shards, _add,
            workers=2, retries=2, degrade=True, backoff=0.0, jitter=0.0,
        )
        assert not partial.complete
        failed_ids = {f.shard_id for f in partial.failed}
        assert 1 in failed_ids
        # coverage is accurate: completed + failed account for every shard
        assert partial.completed == 4 - len(failed_ids)
        assert partial.coverage == pytest.approx(partial.completed / 4)
        crash = next(f for f in partial.failed if f.shard_id == 1)
        assert crash.cause_type == "BrokenProcessPool"
        assert crash.attempts == 3  # 1 initial + 2 retries, all consumed
        assert partial.attempts[1] == 3
        assert partial.failure_causes()["BrokenProcessPool"] >= 1
        assert partial.retried_shards >= 1
        # the reduction covers exactly the surviving shards
        expected = sum(
            _square_sum(s) for s in shards if s.shard_id not in failed_ids
        )
        assert partial.value == expected

    def test_attempt_counts_cover_clean_and_retried_shards(self, tmp_path):
        shards = index_shards(50, 4)
        partial = hardened_map_reduce(
            _FlakyOnce(str(tmp_path)), shards, _add,
            workers=1, degrade=True, backoff=0.0, jitter=0.0,
        )
        assert partial.complete
        assert partial.attempts[1] == 2  # the flaky shard needed a retry
        assert all(
            partial.attempts[s.shard_id] == 1 for s in shards if s.shard_id != 1
        )
        assert partial.total_attempts == 5
        assert partial.retried_shards == 1
        assert partial.failure_causes() == {}
