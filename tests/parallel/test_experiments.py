"""Parallel experiment runners: bit-identical to sequential, any workers."""

import numpy as np
import pytest

from repro.analysis.derangements import derangement_experiment
from repro.analysis.distribution import permutation_histogram
from repro.apps.bdd import achilles_heel, best_variable_order
from repro.apps.pclass import classify_all
from repro.core.knuth import KnuthShuffleCircuit
from repro.parallel.experiments import (
    parallel_best_order,
    parallel_classify,
    parallel_derangements,
    parallel_fig4_counts,
)

SAMPLES = 1 << 14


class TestFig4:
    def test_matches_sequential_exactly(self):
        seq = permutation_histogram(KnuthShuffleCircuit(4).sample(SAMPLES))
        par = parallel_fig4_counts(4, samples=SAMPLES, workers=3)
        assert np.array_equal(seq, par)

    @pytest.mark.parametrize("workers", [1, 2, 5])
    def test_worker_invariance(self, workers):
        base = parallel_fig4_counts(4, samples=SAMPLES, workers=1)
        got = parallel_fig4_counts(4, samples=SAMPLES, workers=workers)
        assert np.array_equal(base, got)

    def test_total_count_preserved(self):
        counts = parallel_fig4_counts(4, samples=1000, workers=4)
        assert counts.sum() == 1000


class TestDerangements:
    def test_matches_sequential(self):
        seq = derangement_experiment(4, samples=SAMPLES)
        par = parallel_derangements(4, samples=SAMPLES, workers=4)
        assert par.derangements == seq.derangements
        assert par.samples == seq.samples

    def test_uneven_split(self):
        a = parallel_derangements(5, samples=1001, workers=3)
        b = parallel_derangements(5, samples=1001, workers=7)
        assert a.derangements == b.derangements


class TestOrderSearch:
    def test_matches_sequential_search(self):
        tt, n = achilles_heel(3)
        pb, pbs, pw, pws = parallel_best_order(tt, n, workers=4)
        _, sbs, _, sws = best_variable_order(tt, n)
        assert pbs == sbs and pws == sws

    def test_worker_invariance_with_ties(self):
        """Many orders tie on size; the lexicographic tie-break must make
        the returned order independent of sharding."""
        tt, n = achilles_heel(2)
        results = {parallel_best_order(tt, n, workers=w) for w in (1, 2, 4, 8)}
        assert len(results) == 1


class TestClassify:
    def test_matches_explicit_classification(self):
        reps = parallel_classify(3, workers=4)
        assert reps == set(classify_all(3))

    def test_worker_invariance(self):
        assert parallel_classify(2, workers=1) == parallel_classify(2, workers=3)
