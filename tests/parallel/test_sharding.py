"""Work-decomposition tests."""

import pytest

from repro.parallel.sharding import ShardSpec, index_shards, parallel_map_reduce


class TestIndexShards:
    def test_covers_range_contiguously(self):
        shards = index_shards(100, 7)
        assert shards[0].start == 0
        assert shards[-1].stop == 100
        for a, b in zip(shards, shards[1:]):
            assert a.stop == b.start

    def test_near_equal_sizes(self):
        shards = index_shards(100, 7)
        sizes = [s.size for s in shards]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 100

    def test_extra_goes_to_leading_shards(self):
        shards = index_shards(10, 3)
        assert [s.size for s in shards] == [4, 3, 3]

    def test_more_shards_than_items(self):
        shards = index_shards(2, 5)
        assert len(shards) == 2
        assert all(s.size == 1 for s in shards)

    def test_zero_total(self):
        assert index_shards(0, 3) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            index_shards(-1, 2)
        with pytest.raises(ValueError):
            index_shards(5, 0)

    def test_shard_iteration(self):
        s = ShardSpec(0, 3, 7)
        assert list(s) == [3, 4, 5, 6]
        assert s.size == 4


def _square_sum(shard: ShardSpec) -> int:
    return sum(i * i for i in shard)


def _add(a: int, b: int) -> int:
    return a + b


class TestMapReduce:
    def test_inline_path(self):
        shards = index_shards(50, 4)
        got = parallel_map_reduce(_square_sum, shards, _add, workers=1)
        assert got == sum(i * i for i in range(50))

    def test_process_path(self):
        shards = index_shards(50, 4)
        got = parallel_map_reduce(_square_sum, shards, _add, workers=4)
        assert got == sum(i * i for i in range(50))

    def test_worker_count_invariance(self):
        shards = index_shards(33, 5)
        results = {
            parallel_map_reduce(_square_sum, shards, _add, workers=w)
            for w in (1, 2, 5)
        }
        assert len(results) == 1

    def test_order_sensitive_reduction_is_shard_ordered(self):
        """Reduce must fold in shard order even under a pool: use a
        non-commutative reduction to detect reordering."""
        shards = index_shards(12, 4)

        got = parallel_map_reduce(_first_index, shards, _keep_left_append, workers=4)
        assert got == [0, 3, 6, 9]

    def test_empty_shards_rejected(self):
        with pytest.raises(ValueError):
            parallel_map_reduce(_square_sum, [], _add)


def _first_index(shard: ShardSpec) -> list[int]:
    return [shard.start]


def _keep_left_append(a: list[int], b: list[int]) -> list[int]:
    return a + b
