"""The §II-D / §III-C complexity claims, measured on real netlists."""

import pytest

from repro.analysis.complexity import (
    converter_complexity,
    fit_power_law,
    shuffle_complexity,
)


class TestFormulas:
    @pytest.mark.parametrize("n", [2, 4, 8, 12])
    def test_converter_counts(self, n):
        rep = converter_complexity(n)
        assert rep.unit_count == n * (n - 1) // 2
        assert rep.paper_formula == n * (n + 1) // 2
        assert rep.stages == n

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_shuffle_counts(self, n):
        rep = shuffle_complexity(n, m=10)
        assert rep.unit_count == rep.paper_formula == n * (n - 1) // 2
        assert rep.stages == n - 1

    def test_paper_identity(self):
        """n + (n−1) + … + 1 = n(n+1)/2 as printed in §II-D."""
        for n in range(2, 20):
            assert sum(range(1, n + 1)) == converter_complexity(n).paper_formula


class TestAsymptotics:
    NS = [4, 6, 8, 10, 12, 14]

    def test_comparators_quadratic(self):
        alpha, r2 = fit_power_law(self.NS, [converter_complexity(n).unit_count for n in self.NS])
        assert 1.7 < alpha < 2.3 and r2 > 0.99

    def test_gate_area_polynomial_near_quadratic(self):
        """Gate count is Θ(n²·log²n)-ish: the log-log slope sits a bit
        above 2 but well below cubic growth at these sizes."""
        alpha, r2 = fit_power_law(self.NS, [converter_complexity(n).logic_gates for n in self.NS])
        assert 2.0 < alpha < 4.0 and r2 > 0.98

    def test_stage_delay_linear(self):
        alpha, r2 = fit_power_law(self.NS, [converter_complexity(n).stages for n in self.NS])
        assert 0.9 < alpha < 1.1 and r2 > 0.999

    def test_netlist_depth_superlinear_subquadratic(self):
        """Unit-delay depth: O(n) stages × O(log n!) ripple chains."""
        alpha, r2 = fit_power_law(self.NS, [converter_complexity(n).depth for n in self.NS])
        assert 1.0 < alpha < 2.5 and r2 > 0.95

    def test_shuffle_crossovers_quadratic(self):
        alpha, _ = fit_power_law(self.NS, [shuffle_complexity(n, m=8).unit_count for n in self.NS])
        assert 1.7 < alpha < 2.3


class TestFit:
    def test_exact_power_law(self):
        ns = [2, 4, 8, 16]
        alpha, r2 = fit_power_law(ns, [5 * n**2 for n in ns])
        assert alpha == pytest.approx(2.0)
        assert r2 == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 4])
