"""The scipy-free tail functions against closed forms and each other."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.special import (
    chi2_survival,
    normal_survival,
    regularized_gamma_p,
    regularized_gamma_q,
)


class TestRegularizedGamma:
    def test_boundaries(self):
        assert regularized_gamma_p(3.0, 0.0) == 0.0
        assert regularized_gamma_q(3.0, 0.0) == 1.0

    def test_exponential_special_case(self):
        # a = 1: P(1, x) = 1 − e^−x exactly
        for x in (0.1, 1.0, 3.7, 20.0):
            assert regularized_gamma_p(1.0, x) == pytest.approx(
                1.0 - math.exp(-x), abs=1e-12
            )

    def test_half_special_case(self):
        # a = 1/2: Q(1/2, x) = erfc(√x)
        for x in (0.01, 0.5, 2.0, 9.0):
            assert regularized_gamma_q(0.5, x) == pytest.approx(
                math.erfc(math.sqrt(x)), rel=1e-10
            )

    @given(
        a=st.floats(min_value=0.5, max_value=500.0),
        x=st.floats(min_value=0.0, max_value=1500.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_p_plus_q_is_one(self, a, x):
        p = regularized_gamma_p(a, x)
        q = regularized_gamma_q(a, x)
        assert 0.0 <= p <= 1.0 and 0.0 <= q <= 1.0
        assert p + q == pytest.approx(1.0, abs=1e-9)

    def test_monotone_in_x(self):
        values = [regularized_gamma_p(4.0, x) for x in (0.5, 1, 2, 4, 8, 16)]
        assert values == sorted(values)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            regularized_gamma_p(0.0, 1.0)
        with pytest.raises(ValueError):
            regularized_gamma_q(1.0, -0.5)


class TestChi2Survival:
    def test_zero_statistic(self):
        assert chi2_survival(0.0, 5) == 1.0

    def test_df2_closed_form(self):
        # df = 2: survival is exactly e^{−s/2}
        for s in (0.5, 2.0, 10.0, 40.0):
            assert chi2_survival(s, 2) == pytest.approx(math.exp(-s / 2), rel=1e-10)

    def test_df1_closed_form(self):
        # df = 1: survival is erfc(√(s/2))
        for s in (0.2, 1.0, 4.0, 16.0):
            assert chi2_survival(s, 1) == pytest.approx(
                math.erfc(math.sqrt(s / 2)), rel=1e-10
            )

    def test_median_near_df(self):
        # the chi-square median sits just below df: survival there ≈ 0.5
        assert 0.4 < chi2_survival(99.0, 100) < 0.6

    def test_scipy_agreement_if_available(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        for df in (1, 2, 7, 100, 4092):
            for s in (df * 0.5, float(df), df * 1.5):
                expected = float(scipy_stats.chi2.sf(s, df))
                assert chi2_survival(s, df) == pytest.approx(
                    expected, rel=1e-9, abs=1e-300
                )

    def test_negative_stat_clamped(self):
        assert chi2_survival(-1e-9, 3) == 1.0

    def test_bad_df(self):
        with pytest.raises(ValueError):
            chi2_survival(1.0, 0)


class TestNormalSurvival:
    def test_symmetry_and_known_values(self):
        assert normal_survival(0.0) == 1.0
        assert normal_survival(1.959963985) == pytest.approx(0.05, rel=1e-6)
        assert normal_survival(-3.0) == normal_survival(3.0)
