"""Uniformity statistics tests."""

import numpy as np
import pytest

from repro.analysis.uniformity import (
    DEFAULT_BUCKETS,
    MAX_EXACT_CELLS,
    bucket_null_probabilities,
    chi_square_uniform,
    effective_bucket_count,
    empirical_entropy_bits,
    entropy_deficit_bits,
    rank_bucket_counts,
    total_variation_from_uniform,
    uniformity_report,
)
from repro.core.factorial import factorial
from repro.core.knuth import KnuthShuffleCircuit
from repro.core.lehmer import rank_batch, unrank_batch
from repro.errors import CellBudgetError


class TestChiSquare:
    def test_perfectly_uniform_has_p_one(self):
        stat, p = chi_square_uniform(np.full(24, 1000))
        assert stat == 0.0 and p == pytest.approx(1.0)

    def test_skewed_detected(self):
        counts = np.full(24, 1000)
        counts[0] = 3000
        _, p = chi_square_uniform(counts)
        assert p < 1e-6

    def test_needs_two_cells(self):
        with pytest.raises(ValueError):
            chi_square_uniform(np.array([5]))


class TestTotalVariation:
    def test_uniform_is_zero(self):
        assert total_variation_from_uniform(np.full(10, 7)) == 0.0

    def test_point_mass_close_to_one(self):
        counts = np.zeros(100)
        counts[0] = 1000
        tv = total_variation_from_uniform(counts)
        assert tv == pytest.approx(0.99)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            total_variation_from_uniform(np.zeros(4))


class TestEntropy:
    def test_uniform_is_log_k(self):
        assert empirical_entropy_bits(np.full(16, 5)) == pytest.approx(4.0)

    def test_point_mass_zero(self):
        counts = np.zeros(8)
        counts[3] = 42
        assert empirical_entropy_bits(counts) == 0.0


class TestReport:
    def test_ideal_sampler_looks_uniform(self):
        perms = KnuthShuffleCircuit(4).sample_ideal(30000, np.random.default_rng(1))
        rep = uniformity_report(perms)
        assert rep.n == 4 and rep.samples == 30000
        assert rep.looks_uniform
        assert rep.entropy_bits == pytest.approx(rep.max_entropy_bits, abs=0.01)
        assert rep.tv_distance < 0.05

    def test_constant_sampler_flagged(self):
        perms = np.tile(np.arange(4), (5000, 1))
        rep = uniformity_report(perms)
        assert not rep.looks_uniform
        assert rep.entropy_bits == 0.0
        assert rep.counts.sum() == 5000


class TestSparseHistograms:
    """Regression: sparse/truncated counts must not shrink the support.

    The old signatures used ``len(counts)`` as the cell count, so a
    histogram carrying only the observed cells understated TV distance
    (absent cells each contribute 1/k) and the entropy deficit.
    """

    def test_sparse_point_mass_tv(self):
        # a point mass over 100 true cells, handed over as a 1-cell
        # "sparse histogram": the old code said TV = 0
        sparse = np.array([1000.0])
        assert total_variation_from_uniform(sparse) == 0.0  # the trap
        assert total_variation_from_uniform(sparse, num_cells=100) == pytest.approx(
            0.99
        )

    def test_sparse_matches_dense(self):
        dense = np.zeros(50)
        dense[:5] = [10, 20, 30, 40, 50]
        sparse = dense[:5]
        assert total_variation_from_uniform(sparse, num_cells=50) == pytest.approx(
            total_variation_from_uniform(dense)
        )

    def test_num_cells_below_support_rejected(self):
        with pytest.raises(ValueError):
            total_variation_from_uniform(np.full(10, 3), num_cells=4)
        with pytest.raises(ValueError):
            empirical_entropy_bits(np.full(10, 3), num_cells=4)

    def test_entropy_deficit_uses_true_support(self):
        # uniform over the 5 observed cells of a 50-cell support:
        # entropy is log2(5), the deficit is log2(50) − log2(5) — huge,
        # where the old len()-based reading would have called it 0
        sparse = np.full(5, 100)
        assert entropy_deficit_bits(sparse, num_cells=5) == pytest.approx(0.0)
        assert entropy_deficit_bits(sparse, num_cells=50) == pytest.approx(
            np.log2(50) - np.log2(5)
        )


class TestBucketedReport:
    def test_exact_small_n_unchanged(self):
        perms = KnuthShuffleCircuit(4).sample_ideal(30000, np.random.default_rng(1))
        rep = uniformity_report(perms)
        assert rep.method == "exact" and rep.cells == 24
        assert rep.max_entropy_bits == pytest.approx(np.log2(24))

    def test_large_n_routes_through_buckets(self):
        rng = np.random.default_rng(7)
        n = 12  # 12! ≈ 4.8e8 dense cells would be ~4 GB of counts
        idx = rng.integers(0, factorial(n), size=60000, dtype=np.int64)
        rep = uniformity_report(unrank_batch(idx, n))
        assert rep.method == "buckets"
        assert rep.cells <= DEFAULT_BUCKETS
        assert len(rep.counts) == rep.cells
        assert rep.looks_uniform

    def test_bucketed_detects_point_mass(self):
        perms = np.tile(np.arange(12), (20000, 1))
        rep = uniformity_report(perms)
        assert rep.method == "buckets"
        assert not rep.looks_uniform
        assert rep.tv_distance > 0.9

    def test_forced_exact_past_budget_is_typed_error(self):
        perms = np.tile(np.arange(12), (10, 1))
        with pytest.raises(CellBudgetError) as excinfo:
            uniformity_report(perms, method="exact")
        assert excinfo.value.cells == factorial(12)
        assert excinfo.value.budget == MAX_EXACT_CELLS

    def test_cochran_rule_shrinks_buckets(self):
        # 1000 samples cannot feed 4093 cells at ≥ 5 expected each
        assert effective_bucket_count(1000, DEFAULT_BUCKETS, 12) == 200
        assert effective_bucket_count(3, DEFAULT_BUCKETS, 12) == 2
        assert effective_bucket_count(10**9, DEFAULT_BUCKETS, 4) == 24

    def test_residue_null_is_exact(self):
        # n = 4, 7 buckets: 24 = 3·7 + 3 → three classes hold 4 ranks
        probs = bucket_null_probabilities(4, 7)
        assert probs.sum() == pytest.approx(1.0)
        assert sorted(set(np.round(probs * 24).astype(int))) == [3, 4]

    def test_residue_counts_match_rank_mod(self):
        rng = np.random.default_rng(3)
        n = 7
        idx = rng.integers(0, factorial(n), size=5000, dtype=np.int64)
        perms = unrank_batch(idx, n)
        counts = rank_bucket_counts(perms, 101)
        expected = np.bincount(rank_batch(perms) % 101, minlength=101)
        assert np.array_equal(counts, expected)

    def test_exhaustive_enumeration_is_flat(self):
        # every rank exactly once → bucket counts equal the exact null
        n = 6
        perms = unrank_batch(np.arange(factorial(n)), n)
        counts = rank_bucket_counts(perms, 97)
        null = bucket_null_probabilities(n, 97) * factorial(n)
        assert np.array_equal(counts, null.astype(np.int64))
