"""Uniformity statistics tests."""

import numpy as np
import pytest

from repro.analysis.uniformity import (
    chi_square_uniform,
    empirical_entropy_bits,
    total_variation_from_uniform,
    uniformity_report,
)
from repro.core.knuth import KnuthShuffleCircuit


class TestChiSquare:
    def test_perfectly_uniform_has_p_one(self):
        stat, p = chi_square_uniform(np.full(24, 1000))
        assert stat == 0.0 and p == pytest.approx(1.0)

    def test_skewed_detected(self):
        counts = np.full(24, 1000)
        counts[0] = 3000
        _, p = chi_square_uniform(counts)
        assert p < 1e-6

    def test_needs_two_cells(self):
        with pytest.raises(ValueError):
            chi_square_uniform(np.array([5]))


class TestTotalVariation:
    def test_uniform_is_zero(self):
        assert total_variation_from_uniform(np.full(10, 7)) == 0.0

    def test_point_mass_close_to_one(self):
        counts = np.zeros(100)
        counts[0] = 1000
        tv = total_variation_from_uniform(counts)
        assert tv == pytest.approx(0.99)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            total_variation_from_uniform(np.zeros(4))


class TestEntropy:
    def test_uniform_is_log_k(self):
        assert empirical_entropy_bits(np.full(16, 5)) == pytest.approx(4.0)

    def test_point_mass_zero(self):
        counts = np.zeros(8)
        counts[3] = 42
        assert empirical_entropy_bits(counts) == 0.0


class TestReport:
    def test_ideal_sampler_looks_uniform(self):
        perms = KnuthShuffleCircuit(4).sample_ideal(30000, np.random.default_rng(1))
        rep = uniformity_report(perms)
        assert rep.n == 4 and rep.samples == 30000
        assert rep.looks_uniform
        assert rep.entropy_bits == pytest.approx(rep.max_entropy_bits, abs=0.01)
        assert rep.tv_distance < 0.05

    def test_constant_sampler_flagged(self):
        perms = np.tile(np.arange(4), (5000, 1))
        rep = uniformity_report(perms)
        assert not rep.looks_uniform
        assert rep.entropy_bits == 0.0
        assert rep.counts.sum() == 5000
