"""Derangement combinatorics and the e-estimation experiment."""

import math

import numpy as np
import pytest

from repro.analysis.derangements import (
    DerangementResult,
    derangement_experiment,
    derangement_mask,
    derangement_probability,
    estimate_e,
    fixed_point_counts,
    subfactorial,
)
from repro.core.knuth import KnuthShuffleCircuit


class TestSubfactorial:
    def test_known_values(self):
        assert [subfactorial(n) for n in range(8)] == [1, 0, 1, 2, 9, 44, 265, 1854]

    def test_rounds_to_n_over_e(self):
        """d_n = ⌊n!/e⌉ — the identity the paper quotes."""
        for n in range(1, 12):
            assert subfactorial(n) == round(math.factorial(n) / math.e)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            subfactorial(-1)

    def test_probability_tends_to_inverse_e(self):
        assert derangement_probability(4) == pytest.approx(0.375)
        assert derangement_probability(12) == pytest.approx(1 / math.e, rel=1e-8)


class TestMasks:
    def test_fixed_point_counts(self):
        arr = np.array([[0, 1, 2], [1, 0, 2], [1, 2, 0]])
        assert fixed_point_counts(arr).tolist() == [3, 1, 0]

    def test_derangement_mask(self):
        arr = np.array([[0, 1, 2], [1, 2, 0]])
        assert derangement_mask(arr).tolist() == [False, True]


class TestEstimator:
    def test_estimate_e(self):
        assert estimate_e(1_048_576, 385_811) == pytest.approx(2.7178, abs=1e-3)

    def test_zero_derangements_rejected(self):
        with pytest.raises(ValueError):
            estimate_e(100, 0)

    def test_result_properties(self):
        r = DerangementResult(n=4, samples=1000, derangements=375)
        assert r.e_estimate == pytest.approx(1000 / 375)
        assert r.observed_fraction == pytest.approx(0.375)
        assert r.expected_fraction == pytest.approx(0.375)


class TestExperiment:
    @pytest.mark.parametrize("n", [4, 8])
    def test_estimates_e_to_a_few_percent(self, n):
        r = derangement_experiment(n, samples=1 << 15)
        assert r.samples == 1 << 15
        # At 32k samples the standard error of the fraction is ~0.3 %.
        assert abs(r.observed_fraction - r.expected_fraction) < 0.02
        assert abs(r.e_estimate - math.e) / math.e < 0.05

    def test_batching_equals_single_pass(self):
        a = derangement_experiment(4, samples=5000, batch=256)
        b = derangement_experiment(4, samples=5000, batch=5000)
        assert a.derangements == b.derangements

    def test_custom_circuit(self):
        circ = KnuthShuffleCircuit(5, m=20)
        r = derangement_experiment(5, samples=2000, circuit=circ)
        assert 0 < r.derangements < 2000

    def test_circuit_size_mismatch(self):
        with pytest.raises(ValueError):
            derangement_experiment(4, samples=10, circuit=KnuthShuffleCircuit(5))
