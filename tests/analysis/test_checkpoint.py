"""Checkpoint schema and durability tests."""

import json
import os

import pytest

from repro.analysis.checkpoint import (
    SCHEMA_VERSION,
    checkpoint_payload,
    load_checkpoint,
    save_checkpoint,
    validate_payload,
)
from repro.analysis.stream import CampaignConfig, PopulationStats
from repro.errors import CheckpointError


@pytest.fixture
def payload():
    cfg = CampaignConfig(n=5, samples=4096, engine="compiled").validated()
    state = PopulationStats.fresh(cfg).state_dict()
    return checkpoint_payload(cfg, state, [(0, 1)], 2)


class TestSchema:
    def test_payload_shape(self, payload):
        assert payload["version"] == SCHEMA_VERSION
        assert payload["kind"] == "checkpoint"
        assert payload["shards"] == 2
        assert payload["completed"] == [[0, 1]]
        validate_payload(payload)  # does not raise

    def test_json_round_trippable(self, payload):
        assert json.loads(json.dumps(payload)) == payload

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.pop("fingerprint"),
            lambda p: p.update(version="repro-analysis/0"),
            lambda p: p.update(kind="snapshot"),
            lambda p: p.update(shards=0),
            lambda p: p.update(completed=[[3, 3]]),  # empty range
            lambda p: p.update(completed=[[0]]),  # not a pair
            lambda p: p.update(fingerprint=""),
            lambda p: p.update(state={"no_accumulators": True}),
        ],
    )
    def test_violations_are_typed(self, payload, mutate):
        mutate(payload)
        with pytest.raises(CheckpointError):
            validate_payload(payload)

    def test_report_kind_accepted(self, payload):
        payload["kind"] = "report"
        for key in ("summary", "verdict", "runtime"):
            payload[key] = {}
        with pytest.raises(CheckpointError):
            validate_payload(payload, kind="checkpoint")  # wrong expectation
        validate_payload(payload, kind="report")


class TestDurability:
    def test_save_load_roundtrip(self, tmp_path, payload):
        path = tmp_path / "deep" / "ckpt.json"
        save_checkpoint(path, payload)  # creates parents
        assert load_checkpoint(path) == payload

    def test_save_is_atomic(self, tmp_path, payload):
        """No partially-written checkpoint is ever visible: the write
        goes to a temp file and lands via os.replace."""
        path = tmp_path / "ckpt.json"
        save_checkpoint(path, payload)
        before = load_checkpoint(path)
        bad = dict(payload)
        bad.pop("fingerprint")
        with pytest.raises(CheckpointError):
            save_checkpoint(path, bad)  # rejected *before* touching disk
        assert load_checkpoint(path) == before
        assert [p for p in os.listdir(tmp_path) if p != "ckpt.json"] == []

    def test_missing_file_is_typed(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "absent.json")

    def test_corrupt_json_is_typed(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_wrong_kind_on_load(self, tmp_path, payload):
        path = tmp_path / "ckpt.json"
        save_checkpoint(path, payload)
        with pytest.raises(CheckpointError):
            load_checkpoint(path, kind="report")
