"""Random-transposition mixing tests."""

import numpy as np
import pytest

from repro.analysis.mixing import (
    cutoff_estimate,
    shuffle_vs_walk,
    transposition_walk_tv,
)


class TestWalk:
    def test_tv_decreases_with_steps(self):
        curve = transposition_walk_tv(4, [0, 2, 6, 16], samples=8000)
        assert curve.tv[0] > 0.9  # zero swaps: point mass at identity
        assert list(curve.tv) == sorted(curve.tv, reverse=True)

    def test_mixed_by_well_past_cutoff(self):
        curve = transposition_walk_tv(4, [0, 20], samples=12000)
        # 20 swaps ≫ (1/2)·4·ln4 ≈ 2.8: should be near the noise floor
        assert curve.tv[-1] < 0.05

    def test_steps_to_reach(self):
        curve = transposition_walk_tv(4, [0, 2, 20], samples=8000)
        assert curve.steps_to_reach(0.1) == 20
        assert curve.steps_to_reach(1e-9) is None

    def test_deterministic_for_rng(self):
        a = transposition_walk_tv(4, [3], samples=2000, rng=np.random.default_rng(9))
        b = transposition_walk_tv(4, [3], samples=2000, rng=np.random.default_rng(9))
        assert a.tv == b.tv


class TestCutoff:
    def test_formula(self):
        import math

        assert cutoff_estimate(4) == pytest.approx(2 * math.log(4))

    def test_grows_superlinearly(self):
        assert cutoff_estimate(64) / cutoff_estimate(8) > 8


class TestShuffleVsWalk:
    def test_cascade_beats_equal_budget_walk(self):
        """n−1 structured stages are exactly uniform; n−1 random swaps are
        visibly not — what the Fig.-3 structure buys."""
        result = shuffle_vs_walk(4, samples=12000, rng=np.random.default_rng(3))
        assert result["walk_tv"] > 3 * result["cascade_tv"]
        assert result["cascade_tv"] < 2 * result["noise_floor"]
