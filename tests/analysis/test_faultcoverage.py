"""Wilson interval + sample sizing for fault-coverage estimates."""

import pytest

from repro.analysis.faultcoverage import required_samples, wilson_interval


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(67, 100)
        assert lo < 0.67 < hi
        assert 0.0 <= lo and hi <= 1.0

    def test_degenerate_trials(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_extremes_stay_in_unit_interval(self):
        lo, hi = wilson_interval(0, 50)
        assert lo == pytest.approx(0.0, abs=1e-12)
        assert 0.0 < hi < 0.2
        lo, hi = wilson_interval(50, 50)
        assert 0.8 < lo < 1.0
        assert hi == pytest.approx(1.0, abs=1e-12)

    def test_narrows_with_more_trials(self):
        lo1, hi1 = wilson_interval(30, 100)
        lo2, hi2 = wilson_interval(300, 1000)
        assert hi2 - lo2 < hi1 - lo1

    def test_confidence_widens_interval(self):
        w95 = wilson_interval(40, 100, confidence=0.95)
        w99 = wilson_interval(40, 100, confidence=0.99)
        assert w99[1] - w99[0] > w95[1] - w95[0]

    def test_matches_textbook_z(self):
        # at 95% the implied z should be close to 1.959964
        lo, hi = wilson_interval(500, 1000)
        # invert the Wilson formula's half-width at p=0.5
        half = (hi - lo) / 2
        assert half == pytest.approx(0.0309, abs=2e-3)


class TestRequiredSamples:
    def test_worst_case_proportion(self):
        n = required_samples(0.05)
        assert 350 <= n <= 420  # classic ~385 at 95%/±5%

    def test_smaller_margin_needs_more(self):
        assert required_samples(0.01) > required_samples(0.05)

    def test_known_proportion_needs_fewer(self):
        assert required_samples(0.05, proportion=0.9) < required_samples(0.05)
