"""Fig.-4 experiment tests."""

import numpy as np
import pytest

from repro.analysis.distribution import (
    fig4_experiment,
    packed_histogram,
    packed_values,
    permutation_histogram,
)
from repro.core.knuth import KnuthShuffleCircuit


class TestPacking:
    def test_paper_packed_examples(self):
        """Fig. 4: 30 and 228 are the packed words of 0132 and 3210...
        (paper: '00011110 and 11100100 represent 0 1 3 2 and 3 2 1 0')."""
        arr = np.array([[0, 1, 3, 2], [3, 2, 1, 0]])
        assert packed_values(arr).tolist() == [30, 228]

    def test_histogram_counts(self):
        arr = np.array([[0, 1, 2, 3]] * 3 + [[3, 2, 1, 0]] * 2)
        h = packed_histogram(arr)
        assert h == {27: 3, 228: 2}

    def test_permutation_histogram_indexing(self):
        arr = np.array([[0, 1, 2], [2, 1, 0], [2, 1, 0]])
        h = permutation_histogram(arr)
        assert h.tolist() == [1, 0, 0, 0, 0, 2]


class TestExperiment:
    def test_small_run_structure(self):
        res = fig4_experiment(n=4, samples=4096, batch=1000)
        assert res.counts_by_index.sum() == 4096
        assert len(res.counts_by_index) == 24
        assert sum(res.counts_by_packed.values()) == 4096
        assert res.expected_per_bar == pytest.approx(4096 / 24)
        assert res.min_bar <= res.expected_per_bar <= res.max_bar

    def test_only_permutation_words_appear(self):
        """'Of the 256 possible output values, only 24 represent
        permutations … this bar chart has 24 bars.'"""
        res = fig4_experiment(n=4, samples=2048)
        assert len(res.counts_by_packed) <= 24
        valid = {packed for packed, _, _ in res.bars()}
        assert set(res.counts_by_packed) <= valid

    def test_bars_sorted_by_packed_value(self):
        res = fig4_experiment(n=4, samples=1024)
        packed = [b[0] for b in res.bars()]
        assert packed == sorted(packed)
        assert len(packed) == 24

    def test_render_has_24_lines(self):
        res = fig4_experiment(n=4, samples=1024)
        assert len(res.render().splitlines()) == 24

    def test_full_scale_uniformity(self):
        """The headline: at 2¹⁸+ samples every bar is within a few % of
        samples/24 and the distribution passes a 0.1 % chi-square test."""
        res = fig4_experiment(n=4, samples=1 << 18)
        spread = (res.max_bar - res.min_bar) / res.expected_per_bar
        assert spread < 0.15
        assert res.p_value > 1e-3
        assert res.tv_distance < 0.02

    def test_custom_circuit(self):
        circ = KnuthShuffleCircuit(3, m=16)
        res = fig4_experiment(n=3, samples=600, circuit=circ)
        assert len(res.counts_by_index) == 6
