"""Randomness test battery tests."""

import numpy as np
import pytest

from repro.analysis.randtests import (
    battery,
    monobit_test,
    permutation_chi2,
    runs_test,
    serial_correlation,
)
from repro.core.knuth import KnuthShuffleCircuit
from repro.rng.lfsr import FibonacciLFSR, dense_seed


class TestMonobit:
    def test_balanced_passes(self, rng):
        bits = rng.integers(0, 2, size=10_000)
        assert monobit_test(bits).passed

    def test_biased_fails(self, rng):
        bits = (rng.random(10_000) < 0.6).astype(int)
        assert not monobit_test(bits).passed

    def test_validates_input(self):
        with pytest.raises(ValueError):
            monobit_test(np.array([0, 2]))
        with pytest.raises(ValueError):
            monobit_test(np.array([]))


class TestRuns:
    def test_random_passes(self, rng):
        assert runs_test(rng.integers(0, 2, size=10_000)).passed

    def test_alternating_fails(self):
        bits = np.tile([0, 1], 2_000)
        assert not runs_test(bits).passed

    def test_blocky_fails(self):
        bits = np.repeat(np.arange(40) % 2, 100)
        assert not runs_test(bits).passed

    def test_constant_stream(self):
        assert not runs_test(np.ones(100, dtype=int)).passed


class TestSerial:
    def test_iid_passes(self, rng):
        words = rng.integers(0, 1 << 20, size=5_000)
        assert serial_correlation(words).passed

    def test_trending_fails(self):
        assert not serial_correlation(np.arange(5_000)).passed

    def test_lag_parameter(self, rng):
        words = rng.integers(0, 100, size=1_000)
        r = serial_correlation(words, lag=5)
        assert r.name == "serial_lag5"

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            serial_correlation(np.array([1, 2]), lag=3)

    def test_constant_sequence_flagged(self):
        assert not serial_correlation(np.full(100, 7)).passed


class TestPermutationChi2:
    def test_ideal_sampler_passes(self):
        perms = KnuthShuffleCircuit(4).sample_ideal(30_000, np.random.default_rng(1))
        assert permutation_chi2(perms).passed

    def test_stuck_sampler_fails(self):
        perms = np.tile(np.arange(4), (5_000, 1))
        assert not permutation_chi2(perms).passed

    def test_large_n_does_not_materialise_factorial_cells(self):
        """Regression: n = 12 has 12! ≈ 4.8e8 cells — the old dense
        bincount allocated them all.  The bucketed path must both fit in
        memory and still pass an honest sampler."""
        from repro.core.factorial import factorial
        from repro.core.lehmer import unrank_batch

        rng = np.random.default_rng(5)
        idx = rng.integers(0, factorial(12), size=50_000, dtype=np.int64)
        result = permutation_chi2(unrank_batch(idx, 12))
        assert result.passed

    def test_large_n_stuck_sampler_fails(self):
        perms = np.tile(np.arange(12), (20_000, 1))
        assert not permutation_chi2(perms).passed


class TestBattery:
    def test_dense_seeded_lfsr_balance(self):
        """With dense seeds the m-sequence passes monobit and runs on
        most windows (individual 4k windows fluctuate; require a strong
        majority across independent seeds)."""
        passed_mono = passed_runs = 0
        for salt in range(6):
            lfsr = FibonacciLFSR(31, seed=dense_seed(31, salt))
            results = {r.name: r for r in battery(lfsr, draws=4096)}
            passed_mono += results["monobit"].passed
            passed_runs += results["runs"].passed
        assert passed_mono >= 5
        assert passed_runs >= 5

    def test_sparse_seed_warmup_bias_detected(self):
        """Seed 1 sits in the biased warm-up stretch (library-documented):
        the battery must flag it — that's the point of the battery."""
        results = {r.name: r for r in battery(FibonacciLFSR(31, seed=1), draws=2048)}
        assert not results["monobit"].passed

    def test_warm_up_fixes_sparse_seed(self):
        lfsr = FibonacciLFSR(31, seed=1)
        lfsr.warm_up(20_000)
        results = {r.name: r for r in battery(lfsr, draws=4096)}
        assert results["monobit"].passed

    def test_raw_words_fail_serial_by_design(self):
        """Successive LFSR states are one-bit shifts: raw words are
        serially correlated.  Documented behaviour — consumers draw
        scaled integers, not raw words."""
        results = {r.name: r for r in battery(FibonacciLFSR(31, seed=dense_seed(31)), draws=4096)}
        assert not results["serial_lag1"].passed

    def test_result_fields(self):
        results = battery(FibonacciLFSR(16, seed=dense_seed(16)), draws=512, lags=(1,))
        assert [r.name for r in results] == ["monobit", "runs", "serial_lag1"]
        for r in results:
            assert 0.0 <= r.p_value <= 1.0
