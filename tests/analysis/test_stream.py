"""Population-scale streaming validation tests.

The load-bearing properties: accumulator merges are exactly associative
and commutative (pure-integer state), campaign statistics are invariant
to shard count / engine / interruption, and checkpoint resume after a
mid-campaign kill reproduces the uninterrupted run bit for bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import stream
from repro.analysis.checkpoint import load_checkpoint
from repro.analysis.stream import (
    ACCUMULATOR_KINDS,
    CampaignConfig,
    FirstElementBiasAccumulator,
    FixedPointAccumulator,
    PopulationStats,
    RankBucketAccumulator,
    SerialCorrelationAccumulator,
    campaign_verdict,
    expected_tv_noise,
    merge_states,
    pigeonhole_curve,
    run_population_campaign,
    stream_blocks,
)
from repro.errors import CampaignConfigError, CheckpointMismatchError
from repro.rng.scaled import bias_profile

N = 6
CELLS = 97


def _fresh_accumulators(n=N):
    return {
        "rank_buckets": RankBucketAccumulator(n, CELLS),
        "fixed_points": FixedPointAccumulator(n),
        "serial": SerialCorrelationAccumulator(n, (1, 2)),
        "first_element": FirstElementBiasAccumulator(n, 31, "lfsr"),
    }


def _random_state(seed, n=N, batches=3):
    """A state dict fed from a few random permutation batches."""
    rng = np.random.default_rng(seed)
    accs = _fresh_accumulators(n)
    total = 0
    for _ in range(batches):
        perms = rng.permuted(np.tile(np.arange(n), (rng.integers(1, 50), 1)), axis=1)
        total += len(perms)
        for acc in accs.values():
            acc.update(perms)
    return {
        "version": stream.STATE_VERSION,
        "samples": total,
        "accumulators": {k: a.state_dict() for k, a in accs.items()},
    }


class TestMergeAlgebra:
    @given(seeds=st.lists(st.integers(0, 2**32 - 1), min_size=3, max_size=3))
    @settings(max_examples=25, deadline=None)
    def test_merge_associative_and_commutative(self, seeds):
        a, b, c = (_random_state(s) for s in seeds)
        ab_c = merge_states(merge_states(a, b), c)
        a_bc = merge_states(a, merge_states(b, c))
        ba = merge_states(b, a)
        assert ab_c == a_bc
        assert merge_states(a, b) == ba

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_per_kind_merge_matches_joint_update(self, seed):
        """merge(update(A), update(B)) == update(A ∥ B) for every kind."""
        rng = np.random.default_rng(seed)
        base = np.tile(np.arange(N), (40, 1))
        batch_a = rng.permuted(base, axis=1)
        batch_b = rng.permuted(base, axis=1)
        for kind, cls in ACCUMULATOR_KINDS.items():
            acc_a, acc_b, acc_all = (
                _fresh_accumulators()[kind] for _ in range(3)
            )
            acc_a.update(batch_a)
            acc_b.update(batch_b)
            acc_all.update(batch_a)
            acc_all.update(batch_b)
            merged = cls.merge_state(acc_a.state_dict(), acc_b.state_dict())
            assert merged == acc_all.state_dict(), kind

    def test_state_roundtrip(self):
        for kind, acc in _fresh_accumulators().items():
            acc.update(np.tile(np.arange(N), (17, 1)))
            state = acc.state_dict()
            assert ACCUMULATOR_KINDS[kind].from_state(state).state_dict() == state

    def test_version_and_kind_mismatch_rejected(self):
        a = _random_state(1)
        bad = dict(a, version="repro-analysis/999")
        with pytest.raises(ValueError):
            merge_states(a, bad)
        dropped = dict(a, accumulators={"fixed_points": a["accumulators"]["fixed_points"]})
        with pytest.raises(ValueError):
            merge_states(a, dropped)


class TestConfig:
    def test_validation_errors(self):
        with pytest.raises(CampaignConfigError):
            CampaignConfig(n=1).validated()
        with pytest.raises(CampaignConfigError):
            CampaignConfig(samples=0).validated()
        with pytest.raises(CampaignConfigError):
            CampaignConfig(source="dilithium").validated()
        with pytest.raises(CampaignConfigError):
            CampaignConfig(engine="gpu").validated()
        with pytest.raises(CampaignConfigError):
            CampaignConfig(m=62).validated()
        with pytest.raises(CampaignConfigError):
            CampaignConfig(lags=()).validated()

    def test_roundtrip(self):
        cfg = CampaignConfig(n=5, samples=1234, lags=(1, 3)).validated()
        assert CampaignConfig.from_dict(cfg.to_dict()) == cfg

    def test_fingerprint_ignores_engine_only(self):
        cfg = CampaignConfig()
        assert cfg.fingerprint() == CampaignConfig(engine="interp").fingerprint()
        assert cfg.fingerprint() != CampaignConfig(seed=3).fingerprint()
        assert cfg.fingerprint() != CampaignConfig(block=512).fingerprint()

    def test_block_sizes_tile_samples(self):
        cfg = CampaignConfig(samples=10_000, block=4096)
        sizes = [cfg.block_size(b) for b in range(cfg.total_blocks)]
        assert sizes == [4096, 4096, 1808]
        assert sum(sizes) == cfg.samples


class TestStreamInvariance:
    CFG = CampaignConfig(n=N, samples=12_288, block=2048, engine="compiled")

    def _run(self, **kw):
        kw.setdefault("workers", 1)
        kw.setdefault("battery_draws", 0)
        return run_population_campaign(self.CFG, **kw)

    def test_shard_count_invariant(self):
        one = self._run(shards=1)
        three = self._run(shards=3)
        assert one.stats.state_dict() == three.stats.state_dict()
        assert one.stats.samples == self.CFG.samples

    def test_engine_invariant(self):
        states = []
        for engine in ("interp", "compiled", "vector"):
            cfg = CampaignConfig(n=N, samples=4096, block=2048, engine=engine)
            stats = PopulationStats.fresh(cfg)
            for perms in stream_blocks(cfg, range(cfg.total_blocks)):
                stats.update(perms)
            states.append(stats.state_dict())
        assert states[0] == states[1] == states[2]

    def test_streaming_is_lazy(self):
        """stream_blocks yields per block — no (samples, n) array ever
        materialises."""
        cfg = CampaignConfig(n=N, samples=8192, block=1024, engine="compiled")
        sizes = [len(p) for p in stream_blocks(cfg, range(cfg.total_blocks))]
        assert sizes == [1024] * 8

    def test_ideal_source_passes_p_value_gates(self):
        cfg = CampaignConfig(
            n=N, samples=40_960, block=4096, source="ideal", engine="compiled"
        )
        result = run_population_campaign(cfg, workers=1, battery_draws=0)
        assert result.verdict["mode"] == "p_value"
        assert result.verdict["passed"], result.summary

    def test_lfsr_source_passes_effect_size_gates(self):
        result = self._run()
        assert result.verdict["mode"] == "effect_size"
        assert result.verdict["serial_expected_artifact"]
        assert result.verdict["passed"], result.summary


class TestKillAndResume:
    CFG = CampaignConfig(n=N, samples=16_384, block=2048, engine="compiled")

    def test_kill_then_resume_is_bit_identical(self, tmp_path, monkeypatch):
        ckpt = tmp_path / "campaign.json"

        def die_after_first_round(round_index, state):
            if round_index == 0:
                raise RuntimeError("simulated crash")

        monkeypatch.setattr(stream, "_after_round", die_after_first_round)
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_population_campaign(
                self.CFG,
                shards=4,
                workers=1,
                checkpoint_every=2,
                checkpoint_path=ckpt,
                battery_draws=0,
            )
        # the crash happened *after* the round-0 checkpoint landed
        partial = load_checkpoint(ckpt)
        assert partial["state"]["samples"] < self.CFG.samples
        assert len(partial["completed"]) == 2

        monkeypatch.setattr(stream, "_after_round", lambda i, s: None)
        resumed = run_population_campaign(
            self.CFG,
            shards=99,  # ignored: the checkpoint's decomposition wins
            workers=1,
            checkpoint_path=ckpt,
            resume=True,
            battery_draws=0,
        )
        uninterrupted = run_population_campaign(
            self.CFG, shards=1, workers=1, battery_draws=0
        )
        assert resumed.resumed
        assert resumed.shards == 4
        assert resumed.stats.state_dict() == uninterrupted.stats.state_dict()

    def test_fingerprint_mismatch_refused(self, tmp_path):
        ckpt = tmp_path / "campaign.json"
        run_population_campaign(
            CampaignConfig(n=N, samples=2048, engine="compiled"),
            workers=1,
            checkpoint_path=ckpt,
            battery_draws=0,
        )
        other = CampaignConfig(n=N, samples=2048, seed=999, engine="compiled")
        with pytest.raises(CheckpointMismatchError):
            run_population_campaign(
                other, workers=1, checkpoint_path=ckpt, resume=True, battery_draws=0
            )

    def test_resume_under_different_engine_allowed(self, tmp_path):
        """The fingerprint excludes the engine: a campaign checkpointed
        under one backend may resume under another with identical
        statistics (engines are bit-identical on the same netlist)."""
        cfg = CampaignConfig(n=N, samples=8192, block=2048, engine="compiled")
        ckpt = tmp_path / "campaign.json"
        first = run_population_campaign(
            cfg, shards=4, workers=1, checkpoint_path=ckpt, battery_draws=0
        )
        from dataclasses import replace

        resumed = run_population_campaign(
            replace(cfg, engine="vector"),
            workers=1,
            checkpoint_path=ckpt,
            resume=True,
            battery_draws=0,
        )
        assert resumed.stats.state_dict() == first.stats.state_dict()

    def test_resume_requires_checkpoint_path(self):
        with pytest.raises(CampaignConfigError):
            run_population_campaign(self.CFG, resume=True, workers=1)


class TestVerdictAndReport:
    def test_bucket_tv_measured_against_exact_null_not_uniform(self):
        """Regression: with cells ∤ n! the exact bucket null sits a
        structural ~½·r·(cells−r)/(cells·n!) from uniform (n=8,
        cells=4093 → 1.29e-2).  TV must be measured against the null —
        counts drawn *exactly* from it score 0, not the offset, which
        would fail every unbiased campaign once the noise floor shrinks
        below it (~10⁷ samples)."""
        from repro.analysis.uniformity import bucket_null_probabilities

        n, cells, reps = 8, 4093, 1000
        acc = RankBucketAccumulator(n, cells)
        null = bucket_null_probabilities(n, cells)
        exact = np.rint(null * 40320).astype(np.int64)  # 9s and 10s
        assert int(exact.sum()) == 40320
        acc.counts = exact * reps
        s = acc.summary()
        assert s["tv_distance"] == 0.0
        assert s["chi2"] == pytest.approx(0.0)
        assert s["entropy_bits"] == pytest.approx(s["null_entropy_bits"])
        structural = 0.5 * float(np.abs(null - 1.0 / cells).sum())
        assert structural > 0.012  # the offset the old code reported

    def test_broken_generator_fails_gates(self):
        """A stuck first element must trip the effect-size gates."""
        cfg = CampaignConfig(n=N, samples=4096, engine="compiled").validated()
        stats = PopulationStats.fresh(cfg)
        perms = np.tile(np.arange(N), (4096, 1))  # identity forever
        stats.update(perms)
        verdict = campaign_verdict(cfg, stats.summary())
        assert not verdict["passed"]
        assert not verdict["gates"]["uniformity"]
        assert not verdict["gates"]["derangements"]  # zero derangements

    def test_noise_floor_shrinks_with_samples(self):
        assert expected_tv_noise(CELLS, 10**6) < expected_tv_noise(CELLS, 10**4)
        assert expected_tv_noise(CELLS, 0) == float("inf")

    def test_pigeonhole_curve_matches_closed_form(self):
        points = pigeonhole_curve(8, ms=(16, 31))
        assert [p["m"] for p in points] == [16, 31]
        for p in points:
            profile = bias_profile(8, p["m"])
            assert p["ratio"] == profile.ratio
            assert p["max_relative_error"] == profile.max_relative_error
        # wider modulus → smaller pigeonhole bias
        assert points[1]["ratio"] < points[0]["ratio"]

    def test_report_payload_and_render(self):
        cfg = CampaignConfig(n=N, samples=4096, engine="compiled")
        result = run_population_campaign(cfg, workers=1)
        payload = result.payload()
        assert payload["kind"] == "report"
        assert payload["fingerprint"] == cfg.validated().fingerprint()
        assert payload["battery"]["passed"]
        text = result.render()
        assert "population validation" in text
        assert "verdict" in text

    def test_serial_artifact_present_and_enveloped(self):
        """Raw m-sequence structure shows up at lag 1 (r far from 0) but
        stays inside the documented envelope."""
        cfg = CampaignConfig(n=8, samples=20_480, block=4096, engine="compiled")
        result = run_population_campaign(cfg, workers=1, battery_draws=0)
        lag1 = result.summary["serial"]["lags"]["1"]
        assert abs(lag1["r"]) > 0.2  # the artifact is real
        assert abs(lag1["r"]) <= stream.SERIAL_ENVELOPE
        assert result.verdict["gates"]["serial"]
