"""Load generator accounting: sheds, degraded service, verification.

A scripted stub service stands in for the real one so the accounting
paths are exercised deterministically — each submission's outcome is
decided by a canned per-call schedule, not by timing.
"""

import itertools
import threading

import pytest

from repro.core.converter import IndexToPermutationConverter
from repro.core.factorial import factorial
from repro.errors import ServiceDegradedError, ServiceOverloadedError
from repro.serve import LoadReport, Request, Response, run_closed_loop


class _DoneFuture:
    def __init__(self, response):
        self._response = response

    def result(self, timeout=None):
        return self._response


class _ScriptedService:
    """Yields one scripted outcome per submit, cycling when exhausted.

    Outcomes: ``"ok"``, ``"fallback"``, ``"cached"`` (a served response
    in that mode), ``"shed"`` / ``"degraded"`` (the typed rejection), or
    ``"wrong"`` (a served response carrying a corrupted permutation).
    """

    def __init__(self, outcomes):
        self._outcomes = itertools.cycle(outcomes)
        self._lock = threading.Lock()
        self._ids = itertools.count()
        self.conv = IndexToPermutationConverter(4)

    def submit(self, request: Request):
        with self._lock:
            outcome = next(self._outcomes)
            rid = next(self._ids)
        if outcome == "shed":
            raise ServiceOverloadedError("queue full", queue_depth=1, limit=1)
        if outcome == "degraded":
            raise ServiceDegradedError("cache-only", mode="cache_only")
        index = request.index if request.index is not None else 0
        perm = self.conv.convert(index)
        if outcome == "wrong":
            perm = tuple(perm[1:]) + (perm[0],)  # valid but wrong rank
        return _DoneFuture(
            Response(
                request_id=rid,
                workload=request.workload,
                n=request.n,
                index=index,
                permutation=perm,
                batch_id=None if outcome == "cached" else rid,
                lanes=0 if outcome == "cached" else 4,
                cached=outcome == "cached",
                queued_s=0.0,
                sweep_s=0.0,
                total_s=0.0,
                mode="worker" if outcome in ("ok", "wrong") else outcome,
            )
        )


def drive(outcomes, total=24, verify=False, **kw):
    svc = _ScriptedService(outcomes)
    kw.setdefault("clients", 1)  # one client keeps the schedule exact
    return run_closed_loop(
        svc, n=4, total=total, mix={"unrank": 1.0}, verify=verify, **kw
    )


class TestSeparateAccounting:
    def test_sheds_and_degraded_sheds_are_not_folded_together(self):
        # per request: one overload shed, one degraded shed, then served
        report = drive(["shed", "degraded", "ok"], total=10)
        assert report.completed == 10
        assert report.shed == 10
        assert report.degraded_shed == 10
        assert report.abandoned == 0

    def test_degraded_mode_responses_counted_separately_from_errors(self):
        report = drive(["ok", "fallback", "cached", "fallback"], total=20)
        assert report.completed == 20
        assert report.degraded_responses == 10  # the fallback-mode half
        assert report.modes == {"worker": 5, "fallback": 10, "cached": 5}
        assert report.cache_hits == 5
        assert report.shed == 0 and report.degraded_shed == 0

    def test_availability_counts_every_failed_attempt(self):
        report = drive(["shed", "degraded", "ok"], total=10)
        # 10 completions over 30 attempts
        assert report.availability == pytest.approx(10 / 30)

    def test_availability_is_one_for_clean_runs(self):
        report = drive(["ok"], total=5)
        assert report.availability == 1.0
        assert LoadReport(clients=1, completed=0, shed=0, duration_s=0).availability == 1.0

    def test_permanently_degraded_requests_are_abandoned_not_hung(self):
        report = drive(
            ["degraded"], total=3, max_attempts=5, degraded_backoff_s=0.0
        )
        assert report.completed == 0
        assert report.abandoned == 3
        assert report.degraded_shed == 15  # 3 requests × 5 attempts
        assert report.availability == 0.0


class TestVerification:
    def test_wrong_permutations_are_convicted(self):
        report = drive(["ok", "wrong"], total=10, verify=True)
        assert report.completed == 10
        assert report.incorrect == 5

    def test_clean_responses_pass(self):
        report = drive(["ok", "fallback", "cached"], total=12, verify=True)
        assert report.incorrect == 0

    def test_verification_off_by_default(self):
        report = drive(["wrong"], total=4)
        assert report.incorrect == 0  # nobody looked


class TestRealServiceSmoke:
    def test_unknown_workload_in_mix_rejected(self):
        svc = _ScriptedService(["ok"])
        with pytest.raises(ValueError):
            run_closed_loop(svc, n=4, total=1, mix={"bogus": 1.0})

    def test_shuffle_verification_checks_bijectivity_only(self):
        # shuffles carry no index: any valid permutation must pass
        class _ShuffleService(_ScriptedService):
            def submit(self, request):
                fut = super().submit(Request("unrank", 4, 5))
                resp = fut._response
                object.__setattr__(resp, "workload", "shuffle")
                object.__setattr__(resp, "index", None)
                return fut

        report = run_closed_loop(
            _ShuffleService(["ok"]), n=4, total=6,
            mix={"shuffle": 1.0}, clients=1, verify=True,
        )
        assert report.incorrect == 0
