"""Chaos harness: plan semantics, determinism, and campaign invariants."""

import numpy as np
import pytest

from repro.core.lehmer import rank_naive
from repro.errors import WorkerCrashedError
from repro.serve import (
    BreakerConfig,
    ChaosMonkey,
    ChaosSpec,
    Request,
    ServiceConfig,
    SupervisedService,
    SupervisorConfig,
    SweepPlan,
    run_chaos_campaign,
)
from repro.serve.chaos import _settle_shards


class TestChaosSpec:
    def test_rejects_negative_probabilities(self):
        with pytest.raises(ValueError):
            ChaosSpec(crash_p=-0.1)

    def test_rejects_oversubscribed_probabilities(self):
        with pytest.raises(ValueError):
            ChaosSpec(crash_p=0.5, stall_p=0.3, corrupt_p=0.3)


class TestSweepPlan:
    def test_crash_raises_worker_crash(self):
        with pytest.raises(WorkerCrashedError):
            SweepPlan("crash").before()

    def test_corrupt_breaks_bijectivity_on_a_copy(self):
        perms = np.array([[0, 1, 2, 3], [3, 2, 1, 0]])
        out = SweepPlan("corrupt").apply(perms)
        assert out is not perms  # the engine's buffer is untouched
        assert sorted(out[0]) != [0, 1, 2, 3]  # no longer a permutation
        assert (perms[0] == [0, 1, 2, 3]).all()

    def test_swap_keeps_a_valid_but_wrong_permutation(self):
        perms = np.array([[0, 1, 2, 3]])
        out = SweepPlan("swap").apply(perms)
        assert sorted(out[0]) == [0, 1, 2, 3]  # still a permutation …
        assert rank_naive(out[0]) != rank_naive(perms[0])  # … the wrong one

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError):
            SweepPlan("meteor")


class TestChaosMonkey:
    def test_script_fires_exactly_at_its_ordinals(self):
        monkey = ChaosMonkey(script={1: "crash", 3: "corrupt"})
        events = []
        for _ in range(5):
            plan = monkey.plan_sweep(("converter", 5), 0)
            events.append(None if plan is None else plan.event)
        assert events == [None, "crash", None, "corrupt", None]
        assert monkey.injected["crash"] == 1
        assert monkey.injected["corrupt"] == 1
        assert monkey.total_injected == 2

    def test_same_seed_same_schedule(self):
        def schedule(seed):
            monkey = ChaosMonkey(ChaosSpec(), seed=seed)
            return [
                getattr(monkey.plan_sweep(("converter", 5), 0), "event", None)
                for _ in range(200)
            ]

        assert schedule(11) == schedule(11)
        assert schedule(11) != schedule(12)

    def test_disarm_stops_injection_but_counts_sweeps(self):
        monkey = ChaosMonkey(script={i: "crash" for i in range(10)})
        monkey.disarm()
        assert all(
            monkey.plan_sweep(("converter", 5), 0) is None for _ in range(10)
        )
        assert monkey.sweeps == 10
        assert monkey.total_injected == 0


class TestSettleShards:
    def test_reprobes_a_breaker_that_tripped_at_the_buzzer(self):
        """A breaker tripped by the last chaos sweeps is still OPEN when
        a short campaign ends; the settle loop must wait out recovery_s
        and probe the worker rung back to full instead of reporting a
        stuck shard."""
        monkey = ChaosMonkey(script={i: "crash" for i in range(3)})
        svc = SupervisedService(
            ServiceConfig(cache_capacity=0),
            SupervisorConfig(
                restart_backoff_s=0.0,
                breaker=BreakerConfig(failure_threshold=3, recovery_s=0.05),
            ),
            chaos=monkey,
        )
        try:
            for _ in range(3):  # three crashes trip the breaker OPEN
                svc.convert(Request("unrank", 5, 7))
            key = ("converter", 5)
            assert svc.supervisor.mode_for(key) == "degraded"
            monkey.disarm()
            probes = _settle_shards(svc, timeout_s=5.0)
            assert probes >= 1
            assert svc.supervisor.mode_for(key) == "full"
        finally:
            svc.close()

    def test_no_probes_when_already_full(self):
        svc = SupervisedService(ServiceConfig(cache_capacity=0))
        try:
            svc.convert(Request("unrank", 5, 7))
            assert _settle_shards(svc, timeout_s=1.0) == 0
        finally:
            svc.close()


class TestCampaignInvariants:
    """The acceptance invariants, on a small seeded campaign.

    High injection rates on few requests keep this fast while still
    forcing kills, corruption convictions and failovers.
    """

    @pytest.fixture(scope="class")
    def payload(self):
        return run_chaos_campaign(
            n=5,
            requests=150,
            recovery_requests=60,
            clients=6,
            seed=3,
            spec=ChaosSpec(
                crash_p=0.10, stall_p=0.05, delay_p=0.05, corrupt_p=0.10,
                swap_p=0.05, stall_s=0.3,
            ),
        )

    def test_no_incorrect_response_ever(self, payload):
        assert payload["incorrect_responses"] == 0

    def test_chaos_actually_fired(self, payload):
        assert payload["workers_killed"] >= 1
        assert payload["check_failures"] >= 1

    def test_every_killed_worker_was_replaced(self, payload):
        assert payload["worker_restarts"] >= payload["workers_killed"]
        assert payload["recovered"]
        assert all(m == "full" for m in payload["final_shard_modes"].values())

    def test_availability_floor_holds_under_chaos(self, payload):
        assert payload["availability_chaos"] >= 0.90
        assert payload["availability_recovery"] >= 0.99

    def test_failovers_served_real_traffic(self, payload):
        assert payload["failovers"] >= 1
        assert payload["phases"]["chaos"]["degraded_responses"] >= 1

    def test_recovery_phase_returns_to_the_worker_rung(self, payload):
        # early recovery sweeps may still ride the fallback while the
        # last killed worker respawns (how long depends on scheduler
        # luck); but the worker rung must resume serving real traffic,
        # and the shards must end back at full service
        modes = payload["phases"]["recovery"]["modes"]
        assert modes.get("worker", 0) >= 1
        assert payload["phases"]["recovery"]["incorrect"] == 0

    def test_schema_marker(self, payload):
        assert payload["schema"] == "serving_chaos/v1"
