"""PermutationService end to end: correctness, cache, admission, obs."""

import numpy as np
import pytest

from repro.core.converter import IndexToPermutationConverter
from repro.errors import InvalidRequestError, ServiceOverloadedError
from repro.hdl.compile import SWEEP_LANES
from repro.obs.metrics import REGISTRY
from repro.obs.tracing import Tracer
from repro.serve import (
    PermutationService,
    Request,
    ServiceConfig,
    run_closed_loop,
    serve_bulk,
)


def make_service(**kw) -> PermutationService:
    kw.setdefault("batch_deadline_s", 0.001)
    return PermutationService(ServiceConfig(**kw))


class TestCorrectness:
    def test_unrank_matches_functional_model(self):
        conv = IndexToPermutationConverter(6)
        with make_service() as svc:
            for idx in (0, 1, 100, 719):
                resp = svc.convert(Request("unrank", 6, idx))
                assert resp.permutation == conv.convert(idx)
                assert resp.workload == "unrank" and resp.n == 6
                assert resp.index == idx

    def test_batch_full_executes_inline_as_one_sweep(self):
        conv = IndexToPermutationConverter(7)
        with make_service(batch_deadline_s=60.0, max_batch=SWEEP_LANES) as svc:
            futures = [
                svc.submit(Request("unrank", 7, i)) for i in range(SWEEP_LANES)
            ]
            # the 63rd submission filled the batch and ran it inline on
            # the submitting thread; nothing waits on the 60 s deadline
            responses = [f.result(timeout=1.0) for f in futures]
        ids = {r.batch_id for r in responses}
        assert len(ids) == 1
        assert all(r.lanes == SWEEP_LANES for r in responses)
        for i, r in enumerate(responses):
            assert r.permutation == conv.convert(i)

    def test_deadline_flush_serves_a_lone_request(self):
        with make_service(batch_deadline_s=0.002) as svc:
            resp = svc.submit(Request("unrank", 5, 42)).result(timeout=2.0)
        assert resp.lanes == 1 and not resp.cached

    def test_random_perm_draws_and_unranks(self):
        conv = IndexToPermutationConverter(6)
        with make_service() as svc:
            resp = svc.convert(Request("random_perm", 6))
            assert 0 <= resp.index < conv.index_limit
            assert resp.permutation == conv.convert(resp.index)
            # deterministic per seed: a second service replays the draw
        with make_service() as svc2:
            assert svc2.convert(Request("random_perm", 6)).index == resp.index

    def test_shuffle_yields_valid_permutations(self):
        with make_service() as svc:
            perms = [
                svc.convert(Request("shuffle", 8)).permutation for _ in range(5)
            ]
        for p in perms:
            assert sorted(p) == list(range(8))
        assert len(set(perms)) > 1  # draws advance the LFSR state

    def test_mixed_sizes_batch_separately(self):
        conv5 = IndexToPermutationConverter(5)
        conv6 = IndexToPermutationConverter(6)
        with make_service(batch_deadline_s=60.0, max_batch=2) as svc:
            f5a = svc.submit(Request("unrank", 5, 3))
            f6a = svc.submit(Request("unrank", 6, 9))
            f5b = svc.submit(Request("unrank", 5, 4))  # fills the n=5 group
            f6b = svc.submit(Request("unrank", 6, 10))  # fills the n=6 group
            assert f5a.result(1.0).permutation == conv5.convert(3)
            assert f5b.result(1.0).permutation == conv5.convert(4)
            assert f6a.result(1.0).permutation == conv6.convert(9)
            assert f6b.result(1.0).permutation == conv6.convert(10)
            assert f5a.result(0).batch_id != f6a.result(0).batch_id


class TestCache:
    def test_cache_hit_short_circuits_the_batcher(self):
        with make_service(batch_deadline_s=60.0, max_batch=2) as svc:
            a = svc.submit(Request("unrank", 6, 5))
            b = svc.submit(Request("unrank", 6, 7))  # fills + runs inline
            a.result(1.0), b.result(1.0)
            hit = svc.submit(Request("unrank", 6, 5))
            # resolved immediately: never queued behind the 60 s deadline
            assert hit.done()
            resp = hit.result(0)
            assert resp.cached and resp.batch_id is None
            assert resp.permutation == a.result(0).permutation
            stats = svc.stats()
            assert stats["queued"] == 0
            assert stats["cache_hits"] == 1

    def test_random_perm_results_prime_the_unrank_cache(self):
        with make_service(max_batch=1) as svc:
            rp = svc.convert(Request("random_perm", 6))
            hit = svc.convert(Request("unrank", 6, rp.index))
            assert hit.cached and hit.permutation == rp.permutation

    def test_shuffles_are_never_cached(self):
        with make_service(max_batch=1) as svc:
            svc.convert(Request("shuffle", 6))
            svc.convert(Request("shuffle", 6))
            assert svc.stats()["cache_hits"] == 0
            assert svc.stats()["cache_entries"] == 0

    def test_capacity_zero_disables_caching(self):
        with make_service(max_batch=1, cache_capacity=0) as svc:
            svc.convert(Request("unrank", 5, 9))
            again = svc.convert(Request("unrank", 5, 9))
            assert not again.cached


class TestAdmissionControl:
    def test_overload_sheds_with_bounded_queue_depth(self):
        cfg = dict(batch_deadline_s=60.0, max_batch=SWEEP_LANES, max_queue_depth=3)
        with make_service(**cfg) as svc:
            held = [svc.submit(Request("unrank", 5, i)) for i in range(3)]
            with pytest.raises(ServiceOverloadedError) as exc_info:
                svc.submit(Request("unrank", 5, 99))
            assert exc_info.value.queue_depth == 3
            assert exc_info.value.limit == 3
            assert svc.stats()["queued"] <= 3  # depth stayed bounded
            assert svc.stats()["shed"] == 1
        # close() drained the held batch: every accepted request completes
        conv = IndexToPermutationConverter(5)
        for i, f in enumerate(held):
            assert f.result(timeout=1.0).permutation == conv.convert(i)

    def test_cache_hits_bypass_admission_control(self):
        """The cache lookup precedes the queue-depth check, so a full
        queue sheds only requests that actually need a sweep."""
        cfg = dict(batch_deadline_s=60.0, max_batch=SWEEP_LANES, max_queue_depth=1)
        perm = IndexToPermutationConverter(5).convert(9)
        with make_service(**cfg) as svc:
            svc._cache.put(("unrank", 5, 9), perm)  # white-box prime
            svc.submit(Request("unrank", 5, 0))  # queue now at the limit
            hit = svc.submit(Request("unrank", 5, 9))
            assert hit.result(0).cached and hit.result(0).permutation == perm
            with pytest.raises(ServiceOverloadedError):
                svc.submit(Request("unrank", 5, 10))

    def test_rejects_after_close(self):
        svc = make_service()
        svc.close()
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit(Request("unrank", 5, 0))

    def test_invalid_requests_never_touch_the_queue(self):
        with make_service(batch_deadline_s=60.0) as svc:
            with pytest.raises(InvalidRequestError):
                svc.submit(Request("unrank", 5, -1))
            assert svc.stats()["queued"] == 0
            assert svc.stats()["submitted"] == 0


class TestObservability:
    def test_metrics_recorded_when_enabled(self):
        REGISTRY.enable()
        try:
            with make_service(max_batch=1) as svc:
                svc.convert(Request("unrank", 5, 3))
                svc.convert(Request("unrank", 5, 3))  # cache hit
                svc.convert(Request("shuffle", 5))
            text = REGISTRY.render_exposition()
        finally:
            REGISTRY.disable()
            REGISTRY.reset()
        assert 'repro_serve_requests_total{workload="unrank",outcome="ok"} 2' in text
        assert 'repro_serve_requests_total{workload="shuffle",outcome="ok"} 1' in text
        assert 'repro_serve_cache_total{result="hit"} 1' in text
        assert "repro_serve_batch_lanes_count 2" in text
        assert 'repro_serve_stage_seconds_bucket{stage="sweep"' in text
        assert "repro_serve_queue_depth" in text

    def test_shed_outcome_counted(self):
        REGISTRY.enable()
        try:
            cfg = dict(batch_deadline_s=60.0, max_queue_depth=1)
            with make_service(**cfg) as svc:
                svc.submit(Request("unrank", 5, 0))
                with pytest.raises(ServiceOverloadedError):
                    svc.submit(Request("unrank", 5, 1))
            text = REGISTRY.render_exposition()
        finally:
            REGISTRY.disable()
            REGISTRY.reset()
        assert 'repro_serve_requests_total{workload="unrank",outcome="shed"} 1' in text

    def test_trace_links_requests_to_their_batch(self):
        tracer = Tracer()
        svc = PermutationService(
            ServiceConfig(batch_deadline_s=60.0, max_batch=2), tracer=tracer
        )
        with svc:
            a = svc.submit(Request("unrank", 5, 1))
            b = svc.submit(Request("unrank", 5, 2))
            resp = a.result(1.0)
            b.result(1.0)
        batches = [s for r in tracer.roots for s in r.walk() if s.name == "serve.batch"]
        assert len(batches) == 1
        (batch_span,) = batches
        assert batch_span.attrs["batch_id"] == resp.batch_id
        assert batch_span.attrs["lanes"] == 2
        children = batch_span.find_all("serve.request")
        assert len(children) == 2
        for child in children:
            assert child.attrs["batch_id"] == resp.batch_id


class TestServeBulk:
    def test_matches_convert_batch_in_order(self):
        indices = list(range(0, 5040, 7))
        got = serve_bulk(7, indices, workers=1)
        want = IndexToPermutationConverter(7).convert_batch(indices)
        assert np.array_equal(got, want)

    def test_empty_input(self):
        out = serve_bulk(5, [])
        assert out.shape == (0, 5)

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ValueError, match="outside"):
            serve_bulk(4, [0, 24])

    def test_multi_worker_row_order_is_deterministic(self):
        indices = list(range(200))
        a = serve_bulk(6, indices, workers=1)
        b = serve_bulk(6, indices, workers=2)
        assert np.array_equal(a, b)


class TestLoadGenerator:
    def test_closed_loop_completes_exactly_total(self):
        with make_service() as svc:
            report = run_closed_loop(svc, 6, total=40, clients=4, seed=7)
        assert report.completed == 40
        assert report.latency_digest.count == 40
        assert sum(report.by_workload.values()) == 40
        pct = report.latency_percentiles()
        assert 0 <= pct["p50"] <= pct["p90"] <= pct["p99"] <= pct["max"]
        assert report.throughput_rps > 0

    def test_single_workload_mix(self):
        with make_service() as svc:
            report = run_closed_loop(
                svc, 5, total=20, clients=2, mix={"unrank": 1.0}, seed=1
            )
        assert report.by_workload == {"unrank": 20}

    def test_rejects_bad_mix_and_counts(self):
        with make_service() as svc:
            with pytest.raises(ValueError, match="unknown workload"):
                run_closed_loop(svc, 5, total=5, mix={"bogus": 1.0})
            with pytest.raises(ValueError):
                run_closed_loop(svc, 5, total=0)
            with pytest.raises(ValueError):
                run_closed_loop(svc, 5, total=5, clients=0)


class TestServiceConfig:
    @pytest.mark.parametrize(
        "kw",
        [
            {"max_batch": 0},
            {"max_batch": SWEEP_LANES + 1},
            {"batch_deadline_s": -0.1},
            {"max_queue_depth": 0},
            {"cache_capacity": -1},
            {"max_n": 0},
        ],
    )
    def test_rejects_bad_config(self, kw):
        with pytest.raises(ValueError):
            ServiceConfig(**kw)
