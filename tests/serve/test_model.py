"""Request validation and the result cache."""

import pytest

from repro.errors import InvalidRequestError, ReproError
from repro.serve.cache import ResultCache
from repro.serve.model import WORKLOADS, Request, validate_request


class TestValidateRequest:
    def test_accepts_all_workloads(self):
        validate_request(Request("unrank", 4, 7), max_n=8)
        validate_request(Request("random_perm", 4), max_n=8)
        validate_request(Request("shuffle", 4), max_n=8)

    @pytest.mark.parametrize("workload", ["bogus", "", "UNRANK", "unranks"])
    def test_unknown_workload(self, workload):
        with pytest.raises(InvalidRequestError, match="unknown workload"):
            validate_request(Request(workload, 4, 0), max_n=8)

    def test_error_is_both_repro_and_value_error(self):
        with pytest.raises(ReproError):
            validate_request(Request("bogus", 4, 0), max_n=8)
        with pytest.raises(ValueError):
            validate_request(Request("bogus", 4, 0), max_n=8)

    @pytest.mark.parametrize("n", [0, -1, 13, True, "4"])
    def test_bad_n(self, n):
        with pytest.raises(InvalidRequestError):
            validate_request(Request("unrank", n, 0), max_n=12)

    def test_shuffle_needs_two_elements(self):
        with pytest.raises(InvalidRequestError, match="2..12"):
            validate_request(Request("shuffle", 1), max_n=12)
        validate_request(Request("unrank", 1, 0), max_n=12)  # unrank is fine

    @pytest.mark.parametrize("index", [None, -1, 24, 1.5, True])
    def test_bad_unrank_index(self, index):
        with pytest.raises(InvalidRequestError):
            validate_request(Request("unrank", 4, index), max_n=8)

    @pytest.mark.parametrize("workload", ["random_perm", "shuffle"])
    def test_random_workloads_reject_caller_index(self, workload):
        with pytest.raises(InvalidRequestError, match="draws its own"):
            validate_request(Request(workload, 4, 3), max_n=8)

    def test_workloads_tuple_is_stable(self):
        assert WORKLOADS == ("unrank", "random_perm", "shuffle")


class TestResultCache:
    def test_get_put_and_recency_eviction(self):
        c = ResultCache(2)
        c.put("a", 1)
        c.put("b", 2)
        assert c.get("a") == 1  # refreshes a
        c.put("c", 3)  # evicts b (LRU)
        assert c.get("b") is None
        assert c.get("a") == 1 and c.get("c") == 3
        assert c.evictions == 1

    def test_hit_miss_accounting(self):
        c = ResultCache(4)
        assert c.get("x") is None
        c.put("x", 9)
        assert c.get("x") == 9
        assert (c.hits, c.misses) == (1, 1)

    def test_capacity_zero_disables(self):
        c = ResultCache(0)
        c.put("a", 1)
        assert len(c) == 0 and c.get("a") is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(-1)

    def test_put_refreshes_existing_key(self):
        c = ResultCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 10)  # refresh, not insert
        c.put("c", 3)  # evicts b
        assert c.get("a") == 10 and c.get("b") is None
