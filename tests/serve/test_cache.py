"""ResultCache: LRU semantics and thread-safety under eviction pressure."""

import threading

import pytest

from repro.serve.cache import ResultCache


class TestLruSemantics:
    def test_get_refreshes_recency(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # a is now most recent
        cache.put("c", 3)  # evicts b, not a
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.evictions == 1

    def test_zero_capacity_disables_caching(self):
        cache = ResultCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_counters_are_exact(self):
        cache = ResultCache(4)
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.get("missing") is None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(-1)


class TestConcurrency:
    """Satellite: concurrent get/put during LRU eviction must neither
    raise nor corrupt the hit/miss accounting."""

    def test_hammer_get_put_under_eviction(self):
        # capacity far below the key universe → constant eviction churn
        cache = ResultCache(8)
        threads = 6
        ops = 3000
        errors: list[BaseException] = []
        gets = [0] * threads
        barrier = threading.Barrier(threads)

        def worker(tid: int) -> None:
            try:
                barrier.wait()
                for i in range(ops):
                    key = (tid * 7 + i) % 32  # overlapping key sets
                    if i % 3 == 0:
                        cache.put(key, (tid, i))
                    else:
                        cache.get(key)
                        gets[tid] += 1
            except BaseException as exc:  # pragma: no cover - the failure case
                errors.append(exc)

        ts = [threading.Thread(target=worker, args=(t,)) for t in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert not errors
        # accounting stayed exact: every get was either a hit or a miss
        assert cache.hits + cache.misses == sum(gets)
        assert len(cache) <= 8

    def test_resident_entry_always_hits_under_churn(self):
        # hot + 7 cold keys exactly fill capacity 8, so nothing is ever
        # evicted — but every put reorders the recency list the get is
        # walking.  Every get must hit, no matter how the threads
        # interleave: a lost hit here means an operation was torn
        # mid-reorder (the eviction race itself is the hammer test above)
        cache = ResultCache(8)
        cache.put("hot", 42)
        misses: list[int] = []

        def reader() -> None:
            for _ in range(4000):
                value = cache.get("hot")
                if value != 42:
                    misses.append(1)

        def churner(tid: int) -> None:
            for i in range(4000):
                cache.put(("cold", (tid + i) % 7), i)

        ts = [threading.Thread(target=reader)] + [
            threading.Thread(target=churner, args=(t,)) for t in range(3)
        ]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert not misses
        assert cache.get("hot") == 42
