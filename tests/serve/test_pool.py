"""The multi-process worker pool: correctness, chaos, cache accounting."""

import numpy as np
import pytest

from repro.core.converter import IndexToPermutationConverter
from repro.errors import ServiceOverloadedError
from repro.serve import (
    PermutationService,
    PoolConfig,
    PooledService,
    Request,
    ServiceConfig,
    run_closed_loop,
)


def make_pooled(workers: int = 1, **svc_kw) -> PooledService:
    svc_kw.setdefault("batch_deadline_s", 0.001)
    return PooledService(
        ServiceConfig(**svc_kw),
        PoolConfig(workers=workers, restart_backoff_s=0.01),
    )


class TestCorrectness:
    def test_unrank_matches_functional_model(self):
        conv = IndexToPermutationConverter(6)
        with make_pooled() as svc:
            for idx in (0, 1, 100, 719):
                resp = svc.convert(Request("unrank", 6, idx))
                assert resp.permutation == conv.convert(idx)

    def test_wide_frame_sweeps_once_in_a_worker(self):
        conv = IndexToPermutationConverter(7)
        indices = [0, 11, 317, 5039]
        with make_pooled() as svc:
            resp = svc.submit_wide("unrank", 7, len(indices), indices).result(20.0)
        assert resp.mode == "worker"
        want = conv.convert_batch(indices)
        assert np.array_equal(resp.permutations, want)

    def test_shuffle_rows_are_valid_permutations(self):
        with make_pooled() as svc:
            resp = svc.submit_wide("shuffle", 8, 6).result(20.0)
        for row in resp.permutations:
            assert sorted(row) == list(range(8))

    def test_vector_worker_backend(self):
        """slot_lanes >= 256 flips the auto rule to the vector backend."""
        indices = list(range(500))
        with make_pooled(workers=1, engine="vector") as svc:
            resp = svc.submit_wide("unrank", 6, len(indices), indices).result(30.0)
        want = IndexToPermutationConverter(6).convert_batch(indices)
        assert np.array_equal(resp.permutations, want)

    def test_two_shard_groups_coexist(self):
        with make_pooled() as svc:
            a = svc.convert(Request("unrank", 5, 10))
            b = svc.convert(Request("unrank", 6, 10))
            shards = svc.stats()["pool"]["shards"]
        assert a.n == 5 and b.n == 6
        assert len(shards) == 2


class TestSupervision:
    def test_killed_worker_respawns_and_serves(self):
        conv = IndexToPermutationConverter(6)
        with make_pooled(workers=1) as svc:
            assert svc.convert(Request("unrank", 6, 1)).permutation == conv.convert(1)
            assert svc.pool.kill_worker() is not None
            # the only replica is gone: the next sweep must respawn it
            resp = svc.convert(Request("unrank", 6, 2))
            assert resp.permutation == conv.convert(2)
            stats = svc.stats()["pool"]
        assert stats["restarts"] >= 1

    def test_chaos_kills_never_corrupt_responses(self):
        """Seeded kill storm under closed-loop load: zero wrong results."""
        import threading
        import time

        with make_pooled(workers=2) as svc:
            stop = threading.Event()

            def killer():
                while not stop.is_set():
                    svc.pool.kill_worker()
                    time.sleep(0.02)

            t = threading.Thread(target=killer)
            t.start()
            try:
                report = run_closed_loop(
                    svc, 6, total=60, clients=4, seed=3, verify=True
                )
            finally:
                stop.set()
                t.join()
        assert report.incorrect == 0
        assert report.completed == 60

    def test_worker_rows_shape(self):
        with make_pooled() as svc:
            svc.convert(Request("unrank", 6, 3))
            rows = svc.pool.worker_rows()
        assert rows, "expected at least one worker row"
        for row in rows:
            assert set(row) >= {
                "shard", "replica", "pid", "alive", "busy",
                "sweeps", "cache_hits", "cache_misses", "restarts",
            }
            assert row["pid"] > 0 and row["sweeps"] >= 1


class TestCacheAccounting:
    def test_front_and_worker_tiers_never_double_count(self):
        """Satellite invariant: a lane is accounted in exactly one tier.

        A count-1 repeat hits the *front* cache and must not touch the
        pool; a wide frame skips the front tier entirely and settles its
        lanes against the *worker* cache.
        """
        with make_pooled(workers=1) as svc:
            svc.convert(Request("unrank", 6, 5))
            first = svc.stats()
            assert first["cache_hits"] == 0
            assert first["pool"]["cache_misses"] == 1
            assert first["pool"]["cache_hits"] == 0

            # count-1 repeat: front tier answers, pool never sees it
            again = svc.convert(Request("unrank", 6, 5))
            second = svc.stats()
            assert again.cached
            assert second["cache_hits"] == 1
            assert second["pool"]["cache_hits"] == first["pool"]["cache_hits"]
            assert second["pool"]["cache_misses"] == first["pool"]["cache_misses"]
            assert second["pool"]["served_worker"] == first["pool"]["served_worker"]

            # wide frame: front tier skipped, worker cache splits the lanes
            svc.submit_wide("unrank", 6, 2, [5, 9]).result(20.0)
            third = svc.stats()
            assert third["cache_hits"] == 1  # front untouched by the wide path
            assert third["pool"]["cache_hits"] == 1  # index 5 remembered
            assert third["pool"]["cache_misses"] == 2  # index 9 swept

    def test_worker_cache_disabled_by_zero_capacity(self):
        with PooledService(
            ServiceConfig(batch_deadline_s=0.001, cache_capacity=0),
            PoolConfig(workers=1, worker_cache_capacity=0),
        ) as svc:
            svc.submit_wide("unrank", 6, 2, [5, 5]).result(20.0)
            svc.submit_wide("unrank", 6, 2, [5, 5]).result(20.0)
            stats = svc.stats()["pool"]
        assert stats["cache_hits"] == 0
        assert stats["cache_misses"] == 4


class TestBackpressure:
    def test_saturated_shard_sheds_with_overloaded(self):
        with make_pooled(workers=1) as svc:
            svc.convert(Request("unrank", 6, 0))  # materialise the group
            (group,) = svc.pool._groups.values()
            limit = svc.pool.config.sweep_limit
            group.depth = limit  # white-box: pin the gauge at the ceiling
            try:
                with pytest.raises(ServiceOverloadedError) as exc_info:
                    svc.submit(Request("unrank", 6, 123))
            finally:
                group.depth = 0
            assert exc_info.value.queue_depth == limit
            # a fresh shard admits unconditionally (lazy groups are healthy)
            assert svc.convert(Request("unrank", 5, 0)).permutation is not None

    def test_untouched_pool_admits_everything(self):
        with make_pooled() as svc:
            svc.pool.admission_gate(("converter", 9))  # no group: no veto


class TestLifecycle:
    def test_close_is_idempotent_and_kills_workers(self):
        svc = make_pooled()
        svc.convert(Request("unrank", 5, 1))
        rows = svc.pool.worker_rows()
        assert any(r["alive"] for r in rows)
        svc.close()
        svc.close()
        assert not any(r["alive"] for r in svc.pool.worker_rows())

    def test_stats_shape(self):
        with make_pooled() as svc:
            svc.convert(Request("unrank", 5, 1))
            stats = svc.stats()
        assert "pool" in stats
        pool = stats["pool"]
        for key in (
            "shards", "restarts", "served_worker", "served_fallback",
            "workers_alive", "cache_hits", "cache_misses",
        ):
            assert key in pool

    def test_plain_service_has_no_pool(self):
        # guard the getattr-based health/report branches in the CLI
        with PermutationService(ServiceConfig(batch_deadline_s=0.001)) as svc:
            assert getattr(svc, "pool", None) is None
