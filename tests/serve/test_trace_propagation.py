"""Trace propagation across supervisor failover (satellite of the
telemetry-pipeline PR).

One sampled batch that hits a scripted worker crash must come out as a
*single* trace: the batch root, the failed worker attempt, the restart,
the fallback rung that actually served, and every per-request child —
all sharing one ``trace_id`` with intact parent/child links, surviving a
round trip through the span ring's JSON dump.
"""

import json

from repro.obs.sampling import AlwaysSampler, SpanRing, validate_trace_dump
from repro.obs.tracing import Span, Tracer
from repro.serve import (
    ChaosMonkey,
    Request,
    ServiceConfig,
    SupervisedService,
    SupervisorConfig,
)


def serve_crash_then_recover(tracer: Tracer) -> None:
    """Two converted requests; the first sweep's worker is scripted to crash."""
    svc = SupervisedService(
        ServiceConfig(batch_deadline_s=0.001, cache_capacity=0),
        SupervisorConfig(restart_backoff_s=0.0, restart_backoff_max_s=0.0),
        chaos=ChaosMonkey(script={0: "crash"}),
        tracer=tracer,
    )
    try:
        assert svc.convert(Request("unrank", 5, 6)).mode == "fallback"
        assert svc.convert(Request("unrank", 5, 8)).mode == "worker"
    finally:
        svc.close()


def test_failover_story_is_one_trace_with_intact_links(tmp_path):
    ring = SpanRing(capacity=16)
    tracer = Tracer(sampler=AlwaysSampler(), ring=ring, keep_roots=False)
    serve_crash_then_recover(tracer)

    # the ring dump round-trips through disk and validates as a
    # repro-traces/1 document (the CI smoke step runs the same check)
    path = tmp_path / "traces.json"
    doc = ring.dump(path)
    validate_trace_dump(doc)
    validate_trace_dump(json.loads(path.read_text()))

    roots = [Span.from_export(t) for t in doc["traces"]]
    assert all(r.name == "serve.batch" for r in roots)
    crashed = next(r for r in roots if r.find_all("serve.failover"))

    # the crashed batch's trace tells the whole degradation story: the
    # failed worker attempt, the failover decision, the fallback rung
    # that served, and the per-request children — one trace_id
    names = {s.name for s in crashed.walk()}
    assert {
        "serve.batch",
        "serve.request",
        "serve.worker_sweep",
        "serve.failover",
        "serve.fallback",
    } <= names
    failover = crashed.find_all("serve.failover")[0]
    assert failover.attrs["reason"] == "crash"

    # the failed attempt is a failed *sweep* span in the same trace: the
    # worker thread timed it and the graft restamped it onto the batch
    sweeps = crashed.find_all("serve.worker_sweep")
    assert any(s.status == "error" for s in sweeps)

    # single trace: every span in a tree carries its root's trace_id,
    # and every child's parent_id is its structural parent's span_id
    def check_links(span: Span, trace_id: str) -> None:
        for child in span.children:
            assert child.trace_id == trace_id
            assert child.parent_id == span.span_id
            check_links(child, trace_id)

    assert crashed.trace_id
    check_links(crashed, crashed.trace_id)

    # the next batch acquires a fresh worker: its trace is separate,
    # carries the restart span, and never saw a failover
    recovered = next(r for r in roots if r is not crashed)
    assert recovered.trace_id != crashed.trace_id
    restart = recovered.find_all("serve.worker_restart")
    assert restart and restart[0].trace_id == recovered.trace_id
    assert not recovered.find_all("serve.failover")
    check_links(recovered, recovered.trace_id)


def test_unsampled_batches_record_no_batch_traces():
    # the other half of head sampling: with the sampler declining every
    # batch, no serve.batch trace is ever built — but ladder events
    # (failover, restart) still surface as their own adopted roots, so a
    # rare failure is never lost to the sampling dice
    from repro.obs.sampling import NeverSampler

    ring = SpanRing(capacity=16)
    serve_crash_then_recover(
        Tracer(sampler=NeverSampler(), ring=ring, keep_roots=False)
    )
    names = {t["name"] for t in ring.snapshot()}
    assert "serve.batch" not in names
    assert "serve.request" not in names
    assert "serve.failover" in names
