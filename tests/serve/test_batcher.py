"""Micro-batcher edge cases, driven with a hand-rolled clock.

The batcher is a pure data structure (no threads, no real clock), so
every edge case here is fully deterministic: the empty deadline flush,
the single-request batch, the 64th concurrent request spilling into the
next sweep, group independence, and wide (multi-lane) entries filling
and spilling groups by *lane* count rather than entry count.

``add`` returns the list of batches the arrival closed — empty for a
plain enqueue, one batch when the group fills, and possibly two when a
wide entry both spills the open group and fills a fresh one.
"""

import pytest

from repro.hdl.compile import SWEEP_LANES
from repro.serve.batcher import MicroBatcher, PendingEntry


def entry(tag, at=0.0, lanes=1):
    return PendingEntry(request=tag, future=None, enqueued_at=at, lanes=lanes)


class TestConstruction:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            MicroBatcher(0, 1.0)
        with pytest.raises(ValueError):
            MicroBatcher(4, -1.0)


class TestDeadlineFlush:
    def test_empty_batcher_has_nothing_due(self):
        b = MicroBatcher(63, 0.01)
        assert b.take_due(1e9) == []
        assert b.next_deadline() is None
        assert b.pending == 0

    def test_single_request_batch_flushes_alone_on_deadline(self):
        b = MicroBatcher(63, 0.01)
        assert b.add("k", entry("only", at=5.0), now=5.0) == []
        assert b.next_deadline() == pytest.approx(5.01)
        assert b.take_due(5.005) == []  # not due yet
        (batch,) = b.take_due(5.01)
        assert batch.lanes == 1
        assert batch.entries[0].request == "only"
        assert b.pending == 0
        assert b.next_deadline() is None

    def test_deadline_runs_from_first_entry_of_group(self):
        b = MicroBatcher(63, 0.01)
        b.add("k", entry("a", at=1.0), now=1.0)
        b.add("k", entry("b", at=1.009), now=1.009)
        # the late joiner does not extend the window
        (batch,) = b.take_due(1.01)
        assert [e.request for e in batch.entries] == ["a", "b"]

    def test_groups_flush_independently(self):
        b = MicroBatcher(63, 0.01)
        b.add(("converter", 5), entry("a", at=0.0), now=0.0)
        b.add(("shuffle", 5), entry("b", at=0.008), now=0.008)
        due = b.take_due(0.012)
        assert [batch.key for batch in due] == [("converter", 5)]
        assert b.pending == 1
        assert b.next_deadline() == pytest.approx(0.018)


class TestBatchFull:
    def test_max_batch_th_request_closes_the_batch(self):
        b = MicroBatcher(SWEEP_LANES, 10.0)
        for i in range(SWEEP_LANES - 1):
            assert b.add("k", entry(i), now=0.0) == []
        assert b.pending == SWEEP_LANES - 1
        (full,) = b.add("k", entry(SWEEP_LANES - 1), now=0.0)
        assert full.lanes == SWEEP_LANES
        assert [e.request for e in full.entries] == list(range(SWEEP_LANES))
        assert b.pending == 0

    def test_64th_request_spills_into_a_fresh_group(self):
        b = MicroBatcher(SWEEP_LANES, 10.0)
        for i in range(SWEEP_LANES):
            b.add("k", entry(i, at=0.0), now=0.0)
        # lanes 0..62 left as a closed batch; the 64th arrival opens a
        # new group destined for the *next* sweep
        assert b.add("k", entry("spill", at=1.0), now=1.0) == []
        assert b.pending == 1
        assert b.next_deadline() == pytest.approx(11.0)
        (nxt,) = b.take_due(11.0)
        assert nxt.lanes == 1
        assert nxt.entries[0].request == "spill"

    def test_batch_ids_increase_in_closing_order(self):
        b = MicroBatcher(2, 10.0)
        b.add("x", entry("x0", at=0.0), now=0.0)
        assert b.add("y", entry("y0", at=0.0), now=0.0) == []
        (full_y,) = b.add("y", entry("y1", at=0.0), now=0.0)
        assert full_y.batch_id == 0  # y filled first
        (x_batch,) = b.take_all()
        assert x_batch.batch_id == 1


class TestWideEntries:
    def test_wide_entry_counts_lanes_not_entries(self):
        b = MicroBatcher(16, 0.01)
        assert b.add("k", entry("w", at=0.0, lanes=5), now=0.0) == []
        assert b.pending == 5
        (batch,) = b.take_due(0.01)
        assert batch.lanes == 5
        assert len(batch.entries) == 1

    def test_wide_entry_fills_group_exactly(self):
        b = MicroBatcher(8, 10.0)
        b.add("k", entry("a", at=0.0, lanes=3), now=0.0)
        (full,) = b.add("k", entry("b", at=0.0, lanes=5), now=0.0)
        assert full.lanes == 8
        assert [e.request for e in full.entries] == ["a", "b"]
        assert b.pending == 0

    def test_wide_entry_spills_open_group_when_it_cannot_fit(self):
        b = MicroBatcher(8, 10.0)
        b.add("k", entry("small", at=0.0), now=0.0)
        # 8 lanes cannot join the 1-lane group: the open group closes
        # early and the wide entry both opens *and* fills a fresh one
        closed = b.add("k", entry("wide", at=1.0, lanes=8), now=1.0)
        assert [batch.lanes for batch in closed] == [1, 8]
        assert closed[0].entries[0].request == "small"
        assert closed[1].entries[0].request == "wide"
        assert b.pending == 0

    def test_spilled_wide_entry_can_leave_group_open(self):
        b = MicroBatcher(8, 10.0)
        b.add("k", entry("small", at=0.0, lanes=4), now=0.0)
        (spilled,) = b.add("k", entry("wide", at=1.0, lanes=6), now=1.0)
        assert spilled.lanes == 4
        assert b.pending == 6  # wide entry waits for its own deadline
        assert b.next_deadline() == pytest.approx(11.0)

    def test_entry_wider_than_max_batch_is_rejected(self):
        b = MicroBatcher(4, 10.0)
        with pytest.raises(ValueError):
            b.add("k", entry("huge", lanes=5), now=0.0)
        assert b.pending == 0


class TestDrain:
    def test_take_all_closes_every_group(self):
        b = MicroBatcher(63, 10.0)
        b.add("x", entry("a", at=0.0), now=0.0)
        b.add("y", entry("b", at=0.0), now=0.0)
        batches = b.take_all()
        assert sorted(batch.key for batch in batches) == ["x", "y"]
        assert b.pending == 0
        assert b.take_all() == []
