"""NetServer + ServeConnection: the repro-serve/1 socket front end."""

import socket
import struct

import pytest

from repro.core.converter import IndexToPermutationConverter
from repro.errors import ServiceOverloadedError
from repro.serve import (
    NetServer,
    PermutationService,
    ServeConnection,
    ServiceConfig,
)


@pytest.fixture()
def served():
    """A live socket front end over an in-process service."""
    config = ServiceConfig(batch_deadline_s=0.001)
    with PermutationService(config) as svc:
        with NetServer(svc) as server:
            yield svc, server


def connect(server: NetServer) -> ServeConnection:
    host, port = server.address
    return ServeConnection(host, port, timeout=10.0)


class TestEndToEnd:
    def test_unrank_round_trip_is_correct(self, served):
        _, server = served
        conv = IndexToPermutationConverter(6)
        with connect(server) as conn:
            resp = conn.request("unrank", 6, count=3, indices=[0, 41, 719])
        assert resp.ok and resp.count == 3
        assert resp.indices == (0, 41, 719)
        for row, idx in zip(resp.permutations, resp.indices):
            assert tuple(row) == conv.convert(idx)

    def test_random_perm_echoes_drawn_indices(self, served):
        _, server = served
        conv = IndexToPermutationConverter(7)
        with connect(server) as conn:
            resp = conn.request("random_perm", 7, count=4)
        assert resp.ok and len(resp.indices) == 4
        for row, idx in zip(resp.permutations, resp.indices):
            assert tuple(row) == conv.convert(idx)

    def test_shuffle_rows_are_permutations(self, served):
        _, server = served
        with connect(server) as conn:
            resp = conn.request("shuffle", 8, count=5)
        assert resp.ok and resp.indices is None
        for row in resp.permutations:
            assert sorted(row) == list(range(8))

    def test_pipelined_frames_correlate_by_request_id(self, served):
        _, server = served
        conv = IndexToPermutationConverter(5)
        with connect(server) as conn:
            ids = [conn.send("unrank", 5, count=1, indices=[i]) for i in range(6)]
            by_id = {}
            for _ in ids:
                resp = conn.recv()
                by_id[resp.request_id] = resp
        assert sorted(by_id) == sorted(ids)
        for rid, idx in zip(ids, range(6)):
            assert tuple(by_id[rid].permutations[0]) == conv.convert(idx)

    def test_two_connections_share_one_server(self, served):
        _, server = served
        with connect(server) as a, connect(server) as b:
            ra = a.request("unrank", 5, count=1, indices=[7])
            rb = b.request("unrank", 5, count=1, indices=[8])
        assert ra.ok and rb.ok
        assert server.stats()["connections"] == 2


class TestSemanticErrors:
    def test_zero_count_answers_invalid_and_keeps_the_connection(self, served):
        _, server = served
        with connect(server) as conn:
            resp = conn.request("shuffle", 5, count=0)
            assert resp.status == "invalid" and "count" in resp.message
            # the stream is still frame-aligned: the next request works
            again = conn.request("shuffle", 5, count=1)
            assert again.ok

    def test_out_of_range_index_answers_invalid(self, served):
        _, server = served
        with connect(server) as conn:
            resp = conn.request("unrank", 4, count=1, indices=[24])
            assert resp.status == "invalid"
            assert conn.request("unrank", 4, count=1, indices=[23]).ok

    def test_overload_surfaces_as_overloaded_status(self, served):
        svc, server = served

        def shed(*args, **kwargs):
            raise ServiceOverloadedError(3, 3)

        original = svc.submit_wide
        svc.submit_wide = shed
        try:
            with connect(server) as conn:
                resp = conn.request("shuffle", 5, count=1)
                assert resp.status == "overloaded"
                assert not resp.ok
        finally:
            svc.submit_wide = original


class TestFramingErrors:
    def test_oversized_frame_gets_error_frame_then_close(self, served):
        _, server = served
        host, port = server.address
        with socket.create_connection((host, port), timeout=10.0) as raw:
            raw.sendall(struct.pack("!I", 1 << 24))  # 16 MiB: over the cap
            blob = b""
            while True:
                chunk = raw.recv(1 << 16)
                if not chunk:
                    break  # server closed after the ERROR frame
                blob += chunk
        from repro.serve.net.protocol import FrameDecoder, decode_response

        (body,) = FrameDecoder().feed(blob)
        resp = decode_response(body)
        assert resp.status == "error" and "ProtocolError" in resp.message
        assert server.stats()["protocol_errors"] == 1

    def test_garbage_header_closes_the_connection(self, served):
        _, server = served
        host, port = server.address
        # a plausible length prefix followed by an invalid request body
        body = b"\xff" * 16
        with socket.create_connection((host, port), timeout=10.0) as raw:
            raw.sendall(struct.pack("!I", len(body)) + body)
            blob = b""
            while True:
                chunk = raw.recv(1 << 16)
                if not chunk:
                    break
                blob += chunk
        from repro.serve.net.protocol import FrameDecoder, decode_response

        (frame,) = FrameDecoder().feed(blob)
        assert decode_response(frame).status == "error"

    def test_half_a_frame_then_disconnect_is_harmless(self, served):
        _, server = served
        host, port = server.address
        with socket.create_connection((host, port), timeout=10.0) as raw:
            raw.sendall(struct.pack("!I", 100) + b"\x01" * 10)
        # the server just drops the partial state; a new connection works
        with connect(server) as conn:
            assert conn.request("shuffle", 5, count=1).ok


class TestLifecycle:
    def test_close_is_idempotent(self):
        with PermutationService(ServiceConfig(batch_deadline_s=0.001)) as svc:
            server = NetServer(svc).start()
            server.close()
            server.close()

    def test_port_zero_binds_an_ephemeral_port(self, served):
        _, server = served
        host, port = server.address
        assert host == "127.0.0.1" and port > 0
