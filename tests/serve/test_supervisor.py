"""Supervised serving tier: breakers, restarts, ladder, oracle checks.

The chaos harness's *scripted* mode drives exact failures at exact
sweeps, so these tests assert precise supervisor behaviour — which sweep
crashed, what got quarantined, which rung served — rather than
probabilistic outcomes (the seeded-campaign invariants live in
``test_chaos.py``).
"""

import threading
import time

import pytest

from repro.core.converter import IndexToPermutationConverter
from repro.errors import (
    ServiceDegradedError,
    ServiceShutdownError,
    WorkerCrashedError,
    WorkerStalledError,
)
from repro.obs.metrics import REGISTRY
from repro.obs.tracing import Tracer
from repro.serve import (
    BreakerConfig,
    ChaosMonkey,
    CircuitBreaker,
    Request,
    ServiceConfig,
    SupervisedService,
    SupervisorConfig,
)
from repro.serve.supervisor import ShardWorker
from repro.serve import supervisor as sup_mod


class FakeClock:
    """Deterministic stand-in for the supervisor's monotonic seam."""

    def __init__(self, start: float = 500.0):
        self.now = start

    def monotonic(self) -> float:
        return self.now

    def install(self, monkeypatch) -> "FakeClock":
        monkeypatch.setattr(sup_mod, "_monotonic", self.monotonic)
        return self


def make_supervised(
    script=None, *, fallback=True, breaker=None, deadline=0.5, **svc_kw
) -> SupervisedService:
    svc_kw.setdefault("batch_deadline_s", 0.001)
    chaos = ChaosMonkey(script=script) if script is not None else None
    cfg = SupervisorConfig(
        sweep_deadline_s=deadline,
        restart_backoff_s=0.0,
        restart_backoff_max_s=0.0,
        fallback=fallback,
        breaker=breaker or BreakerConfig(failure_threshold=3, recovery_s=0.05),
    )
    return SupervisedService(ServiceConfig(**svc_kw), cfg, chaos=chaos)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self, monkeypatch):
        FakeClock().install(monkeypatch)
        br = CircuitBreaker(BreakerConfig(failure_threshold=3, recovery_s=10.0))
        assert br.state == "closed" and br.allow()
        br.record_failure()
        br.record_failure()
        assert br.state == "closed"  # under threshold
        br.record_failure()
        assert br.state == "open" and not br.allow()
        assert br.trips == 1

    def test_success_resets_the_failure_streak(self):
        br = CircuitBreaker(BreakerConfig(failure_threshold=2))
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == "closed"  # streak broken; never reached 2

    def test_half_opens_on_the_clock_and_closes_on_probe(self, monkeypatch):
        clock = FakeClock().install(monkeypatch)
        br = CircuitBreaker(BreakerConfig(failure_threshold=1, recovery_s=5.0))
        br.record_failure()
        assert br.state == "open"
        clock.now += 4.9
        assert br.state == "open"
        clock.now += 0.2
        assert br.state == "half_open" and br.allow()
        br.record_success()
        assert br.state == "closed"

    def test_failed_probe_reopens_and_restarts_recovery(self, monkeypatch):
        clock = FakeClock().install(monkeypatch)
        br = CircuitBreaker(BreakerConfig(failure_threshold=1, recovery_s=5.0))
        br.record_failure()
        clock.now += 5.1
        assert br.state == "half_open"
        br.record_failure()
        assert br.state == "open"
        clock.now += 4.9
        assert br.state == "open"  # recovery clock restarted at the probe
        clock.now += 0.2
        assert br.state == "half_open"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(recovery_s=-1.0)
        with pytest.raises(ValueError):
            BreakerConfig(half_open_probes=0)


class _ListEngine:
    """Trivial engine stub: echoes a canned payload, optionally slowly."""

    def __init__(self, value="ok", delay_s: float = 0.0):
        self.value = value
        self.delay_s = delay_s
        self.calls = 0

    def run(self, payload):
        self.calls += 1
        if self.delay_s:
            time.sleep(self.delay_s)
        return self.value


class TestShardWorker:
    def test_runs_sweeps_and_beats_heartbeat(self):
        worker = ShardWorker(("converter", 4), 0, _ListEngine(value=[1, 2]))
        try:
            assert worker.run("payload", deadline_s=2.0) == [1, 2]
            assert worker.alive
            assert worker.heartbeat_age_s < 2.0
        finally:
            worker.kill()

    def test_deadline_miss_raises_stall(self):
        worker = ShardWorker(("converter", 4), 0, _ListEngine(delay_s=0.5))
        try:
            with pytest.raises(WorkerStalledError):
                worker.run("payload", deadline_s=0.05)
        finally:
            worker.kill()

    def test_crash_kills_the_worker(self):
        monkey = ChaosMonkey(script={0: "crash"})
        worker = ShardWorker(("converter", 4), 0, _ListEngine(), chaos=monkey)
        try:
            with pytest.raises(WorkerCrashedError):
                worker.run("payload", deadline_s=2.0)
            assert not worker.alive
            with pytest.raises(WorkerCrashedError):
                worker.run("again", deadline_s=2.0)  # dead workers stay dead
        finally:
            worker.kill()


class TestDegradationLadder:
    def test_clean_sweeps_serve_from_the_worker_rung(self):
        conv = IndexToPermutationConverter(5)
        with make_supervised(cache_capacity=0) as svc:
            resp = svc.convert(Request("unrank", 5, 42))
        assert resp.permutation == conv.convert(42)
        assert resp.mode == "worker"

    def test_crash_fails_over_and_restarts_the_worker(self):
        conv = IndexToPermutationConverter(5)
        with make_supervised(script={0: "crash"}, cache_capacity=0) as svc:
            first = svc.convert(Request("unrank", 5, 10))
            second = svc.convert(Request("unrank", 5, 11))
            stats = svc.supervisor.stats()
        # the crashed sweep still served — from the interp fallback
        assert first.permutation == conv.convert(10)
        assert first.mode == "fallback"
        # the next sweep found a respawned worker
        assert second.permutation == conv.convert(11)
        assert second.mode == "worker"
        assert stats["restarts"] == 1
        shard = stats["shards"]["('converter', 5)"]
        assert shard["worker_alive"] and shard["mode"] == "full"

    def test_stall_fails_over_and_discards_the_late_result(self):
        conv = IndexToPermutationConverter(5)
        with make_supervised(
            script={0: "stall"}, cache_capacity=0, deadline=0.1
        ) as svc:
            resp = svc.convert(Request("unrank", 5, 7), timeout=10.0)
            after = svc.convert(Request("unrank", 5, 8), timeout=10.0)
            stats = svc.supervisor.stats()
        assert resp.permutation == conv.convert(7)
        assert resp.mode == "fallback"
        assert after.mode == "worker"  # replacement worker took over
        assert stats["restarts"] == 1

    def test_delay_inside_deadline_is_not_a_failure(self):
        with make_supervised(script={0: "delay"}, cache_capacity=0) as svc:
            resp = svc.convert(Request("unrank", 5, 3))
            stats = svc.supervisor.stats()
        assert resp.mode == "worker"
        assert stats["restarts"] == 0

    def test_corrupt_payload_is_never_served(self):
        conv = IndexToPermutationConverter(5)
        with make_supervised(script={0: "corrupt"}, cache_capacity=0) as svc:
            resp = svc.convert(Request("unrank", 5, 23))
            after = svc.convert(Request("unrank", 5, 24))
            stats = svc.supervisor.stats()
        # bijectivity conviction: the fallback served the true result
        assert resp.permutation == conv.convert(23)
        assert resp.mode == "fallback"
        # the replacement worker recompiled a clean kernel and took over
        assert after.permutation == conv.convert(24)
        assert after.mode == "worker"
        assert stats["check_failures"] == 1
        assert stats["quarantines"] == 1  # the compiled kernel was evicted
        assert stats["restarts"] == 1

    def test_valid_but_wrong_payload_is_caught_by_the_rank_oracle(self):
        conv = IndexToPermutationConverter(5)
        with make_supervised(script={0: "swap"}, cache_capacity=0) as svc:
            resp = svc.convert(Request("unrank", 5, 99))
            stats = svc.supervisor.stats()
        assert resp.permutation == conv.convert(99)
        assert resp.mode == "fallback"
        assert stats["check_failures"] == 1

    def test_cache_only_mode_sheds_misses_but_serves_hits(self):
        # every worker sweep crashes and there is no fallback rung
        script = {i: "crash" for i in range(50)}
        with make_supervised(
            script=script,
            fallback=False,
            breaker=BreakerConfig(failure_threshold=1, recovery_s=60.0),
        ) as svc:
            warm = None
            with pytest.raises(ServiceDegradedError):
                # first sweep crashes; no fallback → the batch degrades
                svc.convert(Request("unrank", 5, 1))
            # breaker now open → shard pinned cache-only; misses shed at
            # admission with the typed signal …
            with pytest.raises(ServiceDegradedError) as err:
                svc.convert(Request("unrank", 5, 2))
            assert err.value.mode == "cache_only"
            assert svc.stats()["degraded_shed"] == 1
            assert svc.supervisor.mode_for(("converter", 5)) == "cache_only"

    def test_breaker_recloses_after_recovery(self):
        # crash the first sweep only; threshold 1 trips the breaker
        with make_supervised(
            script={0: "crash"},
            breaker=BreakerConfig(failure_threshold=1, recovery_s=0.05),
            cache_capacity=0,
        ) as svc:
            first = svc.convert(Request("unrank", 5, 4))
            assert first.mode == "fallback"
            assert svc.supervisor.mode_for(("converter", 5)) == "degraded"
            time.sleep(0.08)  # recovery window elapses → half-open
            probe = svc.convert(Request("unrank", 5, 5))
            stats = svc.supervisor.stats()
        assert probe.mode == "worker"  # the half-open probe succeeded
        assert stats["shards"]["('converter', 5)"]["breaker"] == "closed"


class TestObservability:
    def test_ladder_metrics_are_exported(self):
        REGISTRY.enable()
        try:
            with make_supervised(script={0: "crash", 1: "corrupt"}) as svc:
                for idx in (1, 2, 3):
                    svc.convert(Request("unrank", 5, idx))
            # render only after close: the telemetry flusher folds batch
            # records asynchronously, and close() is the drain barrier —
            # rendering inside the block races the last batch's record
            text = REGISTRY.render_exposition()
        finally:
            REGISTRY.disable()
            REGISTRY.reset()
        restart_lines = [
            l for l in text.splitlines()
            if l.startswith("repro_serve_worker_restarts_total{")
        ]
        assert any('reason="crash"' in l for l in restart_lines)
        assert any('reason="check_failure"' in l for l in restart_lines)
        assert 'kind="bijectivity"' in text  # check-failure counter
        assert "repro_serve_failovers_total" in text
        assert "repro_serve_kernel_quarantines_total" in text
        # the enum gauge: exactly one state is 1 for the worker path
        lines = [
            l
            for l in text.splitlines()
            if l.startswith("repro_serve_breaker_state")
            and 'path="worker"' in l
            and "converter:5" in l
        ]
        assert len(lines) == 3  # closed / open / half_open all published
        assert sum(float(l.rsplit(" ", 1)[1]) for l in lines) == 1.0
        # degradation-mode counter: both rungs appear
        assert 'repro_serve_mode_total{mode="worker"}' in text
        assert 'repro_serve_mode_total{mode="fallback"}' in text

    def test_failover_and_restart_spans_are_traced(self):
        # ladder events now join the batch's trace as children rather
        # than surfacing as disconnected roots: one trace_id tells the
        # crash → failover → restart story end to end
        tracer = Tracer()
        svc = SupervisedService(
            ServiceConfig(batch_deadline_s=0.001, cache_capacity=0),
            SupervisorConfig(restart_backoff_s=0.0, restart_backoff_max_s=0.0),
            chaos=ChaosMonkey(script={0: "crash"}),
            tracer=tracer,
        )
        try:
            svc.convert(Request("unrank", 5, 6))
            svc.convert(Request("unrank", 5, 8))
        finally:
            svc.close()
        assert all(r.name == "serve.batch" for r in tracer.roots)
        spans = [s for r in tracer.roots for s in r.walk()]
        names = [s.name for s in spans]
        assert "serve.failover" in names
        assert "serve.worker_restart" in names
        failover = next(s for s in spans if s.name == "serve.failover")
        assert failover.attrs["reason"] == "crash"
        # the failover span shares its batch's trace_id
        crashed = next(
            r for r in tracer.roots if r.find_all("serve.failover")
        )
        assert failover.trace_id == crashed.trace_id


class TestCloseSemantics:
    def test_close_under_load_settles_every_future(self):
        # a huge deadline + huge batch: submissions queue and only the
        # close() drain can ever execute them
        svc = make_supervised(batch_deadline_s=60.0, max_batch=63)
        futures = [svc.submit(Request("unrank", 6, i)) for i in range(20)]

        settled = []

        def closer():
            svc.close()

        t = threading.Thread(target=closer)
        t.start()
        for f in futures:
            try:
                settled.append(f.result(timeout=10.0))
            except ServiceShutdownError:
                settled.append(None)
        t.join(timeout=10.0)
        assert not t.is_alive()
        assert len(settled) == 20  # nothing hung
        # the drain executed the queued batch: results are real
        conv = IndexToPermutationConverter(6)
        for i, resp in enumerate(settled):
            if resp is not None:
                assert resp.permutation == conv.convert(i)

    def test_submit_after_close_raises_typed_shutdown(self):
        svc = make_supervised()
        svc.close()
        with pytest.raises(ServiceShutdownError):
            svc.submit(Request("unrank", 5, 0))
        # back-compat: ServiceShutdownError still is a RuntimeError
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit(Request("unrank", 5, 0))

    def test_fail_pending_settles_stranded_entries(self):
        # the dispatcher-death belt: anything still queued is failed,
        # not forgotten
        svc = make_supervised(batch_deadline_s=60.0, max_batch=63)
        future = svc.submit(Request("unrank", 6, 1))
        svc._fail_pending(ServiceShutdownError("dispatcher died"))
        with pytest.raises(ServiceShutdownError):
            future.result(timeout=1.0)
        svc.close()
