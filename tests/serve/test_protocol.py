"""The repro-serve/1 wire codec: framing, round trips, fuzzing."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProtocolError
from repro.serve.net.protocol import (
    MAX_COUNT,
    MAX_REQUEST_FRAME,
    PROTOCOL_VERSION,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_OVERLOADED,
    FrameDecoder,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)


def body_of(frame: bytes) -> bytes:
    """Strip the length prefix off a single encoded frame."""
    (length,) = struct.unpack_from("!I", frame)
    assert len(frame) == 4 + length
    return frame[4:]


class TestRequestRoundTrip:
    def test_unrank_carries_indices(self):
        frame = encode_request("unrank", 8, 3, request_id=7, indices=[0, 41, 40319])
        req = decode_request(body_of(frame))
        assert req.workload == "unrank"
        assert req.n == 8 and req.count == 3 and req.request_id == 7
        assert req.indices == (0, 41, 40319)

    @pytest.mark.parametrize("workload", ["random_perm", "shuffle"])
    def test_generative_workloads_carry_no_indices(self, workload):
        frame = encode_request(workload, 6, 5, request_id=9)
        req = decode_request(body_of(frame))
        assert req.workload == workload
        assert req.count == 5 and req.indices is None

    def test_request_id_wraps_to_u32(self):
        frame = encode_request("shuffle", 6, 1, request_id=0x1_0000_002A)
        assert decode_request(body_of(frame)).request_id == 0x2A

    def test_zero_count_is_well_formed(self):
        # semantic validation (reject count == 0) is the service's job;
        # the codec must pass the frame through intact
        req = decode_request(body_of(encode_request("unrank", 5, 0, indices=[])))
        assert req.count == 0 and req.indices == ()


class TestRequestEncodeErrors:
    def test_unknown_workload(self):
        with pytest.raises(ProtocolError, match="unknown workload"):
            encode_request("bogus", 5, 1)

    def test_count_over_cap(self):
        with pytest.raises(ProtocolError, match="outside"):
            encode_request("shuffle", 5, MAX_COUNT + 1)

    def test_index_count_mismatch(self):
        with pytest.raises(ProtocolError, match="needs 2 indices"):
            encode_request("unrank", 5, 2, indices=[1])

    def test_indices_on_generative_workload(self):
        with pytest.raises(ProtocolError, match="carries no indices"):
            encode_request("shuffle", 5, 1, indices=[3])

    def test_n_must_fit_a_byte(self):
        with pytest.raises(ProtocolError, match="wire format"):
            encode_request("shuffle", 256, 1)


class TestRequestDecodeErrors:
    def test_truncated_header(self):
        with pytest.raises(ProtocolError, match="truncated"):
            decode_request(b"\x01\x00")

    def test_bad_version(self):
        body = bytearray(body_of(encode_request("shuffle", 5, 1)))
        body[0] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="version"):
            decode_request(bytes(body))

    def test_nonzero_reserved(self):
        body = bytearray(body_of(encode_request("shuffle", 5, 1)))
        body[3] = 0xFF
        with pytest.raises(ProtocolError, match="reserved"):
            decode_request(bytes(body))

    def test_unknown_workload_tag(self):
        body = bytearray(body_of(encode_request("shuffle", 5, 1)))
        body[1] = 200
        with pytest.raises(ProtocolError, match="workload tag"):
            decode_request(bytes(body))

    def test_count_over_cap(self):
        body = bytearray(body_of(encode_request("shuffle", 5, 1)))
        struct.pack_into("!H", body, 8, MAX_COUNT + 1)
        with pytest.raises(ProtocolError, match="protocol cap"):
            decode_request(bytes(body))

    def test_unrank_index_block_size_mismatch(self):
        body = body_of(encode_request("unrank", 5, 2, indices=[0, 1]))
        with pytest.raises(ProtocolError, match="index bytes"):
            decode_request(body[:-1])

    def test_trailing_bytes_on_generative_frame(self):
        body = body_of(encode_request("shuffle", 5, 1))
        with pytest.raises(ProtocolError, match="trailing"):
            decode_request(body + b"\x00")


class TestFrameDecoder:
    def test_byte_by_byte_reassembly(self):
        frames = [
            encode_request("unrank", 6, 2, request_id=1, indices=[3, 4]),
            encode_request("shuffle", 6, 1, request_id=2),
        ]
        dec = FrameDecoder()
        got = []
        for byte in b"".join(frames):
            got.extend(dec.feed(bytes([byte])))
        assert got == [body_of(f) for f in frames]
        assert dec.buffered == 0

    def test_many_frames_in_one_feed_plus_partial_tail(self):
        frames = [encode_request("shuffle", 5, 1, request_id=i) for i in range(4)]
        blob = b"".join(frames) + frames[0][:5]  # a fifth frame, cut short
        dec = FrameDecoder()
        got = dec.feed(blob)
        assert [decode_request(b).request_id for b in got] == [0, 1, 2, 3]
        assert dec.buffered == 5
        # completing the tail releases the fifth frame
        assert dec.feed(frames[0][5:]) == [body_of(frames[0])]

    def test_oversized_frame_poisons_the_stream(self):
        dec = FrameDecoder(max_frame=64)
        with pytest.raises(ProtocolError, match="outside"):
            dec.feed(struct.pack("!I", 65))
        # alignment is unrecoverable: every later feed re-raises
        with pytest.raises(ProtocolError):
            dec.feed(b"")

    def test_zero_length_frame_poisons_the_stream(self):
        dec = FrameDecoder()
        with pytest.raises(ProtocolError, match="outside"):
            dec.feed(struct.pack("!I", 0) + b"rest")

    def test_length_prefix_split_across_feeds(self):
        frame = encode_request("shuffle", 7, 1)
        dec = FrameDecoder()
        assert dec.feed(frame[:2]) == []
        assert dec.feed(frame[2:]) == [body_of(frame)]


class TestResponseRoundTrip:
    def test_ok_unrank_response(self):
        perms = np.array([[0, 1, 2, 4, 3], [1, 0, 2, 3, 4]], dtype=np.int64)
        frame = encode_response(
            STATUS_OK, "unrank", 5, 2, request_id=11,
            lanes=2, mode="worker", indices=[1, 24], permutations=perms,
        )
        resp = decode_response(body_of(frame))
        assert resp.ok and resp.status == "ok"
        assert resp.request_id == 11 and resp.lanes == 2 and resp.mode == "worker"
        assert resp.indices == (1, 24)
        assert np.array_equal(resp.permutations, perms)

    def test_ok_shuffle_response_has_no_indices(self):
        perms = np.array([[2, 0, 1]], dtype=np.int64)
        frame = encode_response(
            STATUS_OK, "shuffle", 3, 1, request_id=5,
            lanes=1, mode="direct", permutations=perms,
        )
        resp = decode_response(body_of(frame))
        assert resp.ok and resp.indices is None
        assert np.array_equal(resp.permutations, perms)

    def test_error_response_carries_message(self):
        frame = encode_response(
            STATUS_OVERLOADED, "unrank", 5, 1, request_id=3,
            message="queue full at depth 252",
        )
        resp = decode_response(body_of(frame))
        assert not resp.ok and resp.status == "overloaded"
        assert resp.permutations is None
        assert resp.message == "queue full at depth 252"

    def test_bad_permutation_shape_rejected(self):
        with pytest.raises(ProtocolError, match="shaped"):
            encode_response(
                STATUS_OK, "shuffle", 5, 2, request_id=0,
                permutations=np.zeros((1, 5), dtype=np.int64),
            )

    def test_unknown_status_tag_rejected(self):
        body = bytearray(
            body_of(encode_response(STATUS_ERROR, "unrank", 5, 1, 0, message="x"))
        )
        body[1] = 99
        with pytest.raises(ProtocolError, match="status tag"):
            decode_response(bytes(body))

    def test_truncated_element_block_rejected(self):
        frame = encode_response(
            STATUS_OK, "shuffle", 4, 1, request_id=0,
            permutations=np.array([[0, 1, 2, 3]], dtype=np.int64),
        )
        with pytest.raises(ProtocolError, match="element bytes"):
            decode_response(body_of(frame)[:-1])


class TestFuzz:
    @given(data=st.binary(max_size=256))
    @settings(max_examples=200)
    def test_random_bytes_never_escape_the_taxonomy(self, data):
        """Arbitrary input produces frames or ProtocolError — nothing else."""
        dec = FrameDecoder(max_frame=128)
        try:
            bodies = dec.feed(data)
        except ProtocolError:
            return
        for body in bodies:
            try:
                decode_request(body)
            except ProtocolError:
                pass

    @given(
        workload=st.sampled_from(["unrank", "random_perm", "shuffle"]),
        n=st.integers(min_value=1, max_value=12),
        count=st.integers(min_value=0, max_value=16),
        request_id=st.integers(min_value=0, max_value=0xFFFFFFFF),
        data=st.data(),
    )
    @settings(max_examples=100)
    def test_encode_decode_identity(self, workload, n, count, request_id, data):
        indices = None
        if workload == "unrank":
            indices = data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=2**64 - 1),
                    min_size=count, max_size=count,
                )
            )
        frame = encode_request(workload, n, count, request_id, indices)
        assert len(frame) <= 4 + MAX_REQUEST_FRAME
        req = decode_request(body_of(frame))
        assert req.workload == workload
        assert req.n == n and req.count == count
        assert req.request_id == request_id
        if workload == "unrank":
            assert req.indices == tuple(indices)
        else:
            assert req.indices is None

    @given(chunks=st.lists(st.integers(min_value=1, max_value=7), max_size=40))
    @settings(max_examples=50)
    def test_arbitrary_chunking_preserves_frames(self, chunks):
        frames = [encode_request("shuffle", 6, 1, request_id=i) for i in range(6)]
        blob = b"".join(frames)
        dec = FrameDecoder()
        got, pos = [], 0
        for size in chunks:
            got.extend(dec.feed(blob[pos : pos + size]))
            pos += size
        got.extend(dec.feed(blob[pos:]))
        assert got == [body_of(f) for f in frames]
