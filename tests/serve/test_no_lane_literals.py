"""The serving layer must not hard-code the sweep-lane quantum.

Lane budgets are an *engine capability* — ``resolve_backend(engine)
.capabilities.sweep_lanes`` — not a property of the serving layer.  A
bare ``63`` (the compiled engine's quantum) in serving code would pin
the layer to one backend and silently cap a wide-lane engine; this test
tokenises every module under ``src/repro/serve`` and rejects numeric
literals of the historical quantum outside strings and comments (prose
may still *mention* the numbers when describing engines).
"""

from __future__ import annotations

import io
import pathlib
import tokenize

SERVE_DIR = (
    pathlib.Path(__file__).resolve().parents[2] / "src" / "repro" / "serve"
)

#: Lane-quantum literals that must come from engine capabilities instead.
FORBIDDEN = {"63", "0x3F", "0x3f", "0o77", "0b111111"}


def _numeric_literals(path: pathlib.Path) -> list[tuple[int, str]]:
    source = path.read_text(encoding="utf-8")
    out = []
    for tok in tokenize.generate_tokens(io.StringIO(source).readline):
        if tok.type == tokenize.NUMBER:
            out.append((tok.start[0], tok.string))
    return out


def test_serve_sources_exist():
    assert SERVE_DIR.is_dir()
    assert list(SERVE_DIR.glob("*.py"))


def test_no_bare_lane_quantum_literals_in_serve():
    offenders = []
    for path in sorted(SERVE_DIR.glob("*.py")):
        for line, literal in _numeric_literals(path):
            if literal in FORBIDDEN:
                offenders.append(f"{path.name}:{line}: {literal}")
    assert not offenders, (
        "bare sweep-lane literals in serving code (use "
        "resolve_backend(engine).capabilities.sweep_lanes): "
        + "; ".join(offenders)
    )
