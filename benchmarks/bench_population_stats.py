"""Population-scale streaming validation throughput (perms/s per engine).

The campaign layer's claim is that statistical validation over 10⁸+
permutations is engine-bound, not analysis-bound: the mergeable
accumulators fold each block in O(block) and the three simulation
backends feed them at their native sweep rates.  This bench streams the
same deterministic campaign through ``interp``, ``compiled`` and
``vector`` and records perms/s for each, asserting

1. every engine produces the **bit-identical** accumulator state (the
   invariance the checkpoint/resume contract rests on), and
2. at the population-scale block width the vector engine's perms/s is
   at least the compiled engine's.  NumPy's ~0.5 µs/ufunc dispatch
   only amortises past ~10⁶ lanes per sweep (DESIGN.md §8 — below
   that, CPython big-int ops win), so the throughput comparison runs
   at a 2²⁰-lane block; a 10⁸-permutation campaign would configure
   the same.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) shrinks the campaign
to blocks far below the vector crossover, so it only requires vector
not to *lose badly*; the identity assertion is unconditional.
"""

import os
import time

from conftest import write_report

from repro.analysis.stream import CampaignConfig, PopulationStats, stream_blocks

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N = 6 if SMOKE else 8
SAMPLES = 8_192 if SMOKE else 3_145_728
BLOCK = 2_048 if SMOKE else 1_048_576
TRIALS = 1 if SMOKE else 3
MIN_VECTOR_RATIO = 0.5 if SMOKE else 1.0
ENGINES = ("interp", "compiled", "vector")
# interp walks the gate list per cycle — cap its share of the campaign
INTERP_SAMPLES = min(SAMPLES, 8_192)


def _campaign(engine: str, samples: int) -> tuple[float, PopulationStats]:
    cfg = CampaignConfig(
        n=N, samples=samples, block=BLOCK, engine=engine, source="lfsr"
    ).validated()
    stats = PopulationStats.fresh(cfg)
    t0 = time.perf_counter()
    for perms in stream_blocks(cfg, range(cfg.total_blocks)):
        stats.update(perms)
    return time.perf_counter() - t0, stats


def test_population_stats_throughput(benchmark, results_dir):
    # warm each backend's kernel/entry cache out of the timed region
    for engine in ENGINES:
        _campaign(engine, BLOCK)

    wall: dict[str, float] = {}
    states: dict[str, dict] = {}
    rates: dict[str, float] = {}
    for engine in ENGINES:
        samples = INTERP_SAMPLES if engine == "interp" else SAMPLES
        best = None
        for _ in range(TRIALS):
            wall_s, stats = _campaign(engine, samples)
            if best is None or wall_s < best:
                best = wall_s
        wall[engine] = best
        rates[engine] = stats.samples / best
        states[engine] = stats.state_dict()

    # engine invariance on the common prefix: rerun the interp-sized
    # campaign under the packed engines and require identical state
    for engine in ("compiled", "vector"):
        _, prefix = _campaign(engine, INTERP_SAMPLES)
        assert prefix.state_dict() == states["interp"], engine
    assert states["vector"] == states["compiled"]

    assert rates["vector"] >= MIN_VECTOR_RATIO * rates["compiled"], (
        f"vector {rates['vector']:,.0f} perms/s < "
        f"{MIN_VECTOR_RATIO}x compiled {rates['compiled']:,.0f} perms/s"
    )

    benchmark(lambda: _campaign("vector", SAMPLES // 4))

    lines = [
        f"Population validation throughput (n={N}, lfsr source, "
        f"block={BLOCK})",
        f"{'engine':<10} {'samples':>10} {'wall s':>9} {'perms/s':>12}",
    ]
    for engine in ENGINES:
        samples = INTERP_SAMPLES if engine == "interp" else SAMPLES
        lines.append(
            f"{engine:<10} {samples:>10,} {wall[engine]:>9.3f} "
            f"{rates[engine]:>12,.0f}"
        )
    lines.append(
        f"vector/compiled speedup: {rates['vector'] / rates['compiled']:.2f}x  "
        "(accumulator state bit-identical across all engines)"
    )
    text = "\n".join(lines)
    print("\n" + text)

    write_report(
        results_dir,
        "population_stats",
        text,
        data={
            "n": N,
            "block": BLOCK,
            "smoke": SMOKE,
            "engines": {
                engine: {
                    "samples": INTERP_SAMPLES if engine == "interp" else SAMPLES,
                    "wall_s": wall[engine],
                    "perms_per_s": rates[engine],
                }
                for engine in ENGINES
            },
            "vector_vs_compiled_speedup_x": rates["vector"] / rates["compiled"],
            "state_bit_identical": True,
        },
        benchmark=benchmark,
    )
