"""Figure 3 — the Knuth-shuffle cascade structure.

Fig. 3 draws n−1 stages, each with a random integer generator and a
crossover row; stage t swaps position t with one of the n−t positions to
its right.  We regenerate the inventory and benchmark construction plus a
clocked gate-level run.
"""

import numpy as np
from conftest import write_report

from repro.core.knuth import KnuthShuffleCircuit


def test_fig3_stage_inventory(benchmark, results_dir):
    circ = KnuthShuffleCircuit(4)
    nl = benchmark(circ.build_netlist)

    assert circ.num_stages == 3
    assert circ.stage_choices() == (4, 3, 2)
    assert circ.crossover_count() == 6  # n(n-1)/2
    # unpipelined registers = exactly the embedded LFSR state bits
    assert nl.num_registers == sum(circ.widths)

    lines = [
        "Figure 3 reproduction — Knuth shuffle circuit, n = 4",
        "",
        f"{'stage':>5}  {'choices k':>9}  {'LFSR width':>10}  {'crossovers':>10}",
    ]
    for t in range(circ.num_stages):
        lines.append(
            f"{t:>5}  {circ.n - t:>9}  {circ.widths[t]:>10}  {circ.n - 1 - t:>10}"
        )
    lines += [
        "",
        f"total crossovers n(n-1)/2 = {circ.crossover_count()}",
        f"netlist: {nl.summary()}",
    ]
    write_report(
        results_dir,
        "fig3_structure",
        "\n".join(lines),
        benchmark=benchmark,
        data={
            "n": 4,
            "num_stages": circ.num_stages,
            "stage_choices": list(circ.stage_choices()),
            "lfsr_widths": list(circ.widths),
            "crossovers": circ.crossover_count(),
            "registers": nl.num_registers,
        },
    )


def test_fig3_clocked_run(benchmark):
    """One random permutation per clock out of the gate-level cascade."""
    out = benchmark.pedantic(
        lambda: KnuthShuffleCircuit(4, m=16).simulate_netlist(32), rounds=1, iterations=1
    )
    assert np.array_equal(np.sort(out, axis=1), np.broadcast_to(np.arange(4), (32, 4)))


def test_fig3_functional_throughput(benchmark):
    """The batched functional model (what the big experiments run on)."""
    circ = KnuthShuffleCircuit(16)
    out = benchmark(lambda: circ.sample(10_000))
    assert out.shape == (10_000, 16)
