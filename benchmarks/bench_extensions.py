"""Extension experiments beyond the paper's evaluation.

* The **ranking circuit** (permutation → index): same cascade shape as
  Fig. 1 run backwards; resources and gate-level forward∘inverse
  round-trip.
* The **LUT-cascade** realisation the paper mentions (§II-B, ref. [16]):
  memory-vs-logic crossover against the discrete gate design.
* **Order ablation**: lexicographic (Lehmer) vs Myrvold–Ruskey unranking
  throughput.
"""

import math

import numpy as np
from conftest import write_report

from repro.core.converter import IndexToPermutationConverter
from repro.core.inverse_converter import PermutationToIndexConverter
from repro.core.lehmer import unrank_batch, unrank_naive
from repro.core.orders import mr_unrank, mr_unrank_batch
from repro.fpga import render_resource_table, synthesize
from repro.fpga.cascade import converter_cascade
from repro.fpga.lut_map import map_to_luts
from repro.hdl.optimize import sweep


def test_ranking_circuit_resources(benchmark, results_dir):
    """Table-III-style rows for the inverse (ranking) circuit."""
    ns = [2, 4, 6, 8, 10]

    def job():
        rows = []
        for n in ns:
            nl = PermutationToIndexConverter(n).build_netlist(pipelined=True)
            rows.append(synthesize(nl, n))
        return rows

    rows = benchmark.pedantic(job, rounds=1, iterations=1)
    luts = [r.total_luts for r in rows]
    assert luts == sorted(luts)
    write_report(
        results_dir,
        "ext_ranking_resources",
        "Extension: permutation->index (ranking) circuit resources\n"
        "(same cascade shape as Fig. 1 run backwards)\n\n"
        + render_resource_table(rows),
        benchmark=benchmark,
        data={
            "rows": [
                {"n": n, "luts": r.total_luts, "registers": r.registers,
                 "fmax_mhz": r.fmax_mhz}
                for n, r in zip(ns, rows)
            ]
        },
    )


def test_gate_level_roundtrip(benchmark):
    """forward(index) then inverse(permutation) at gate level = identity."""
    n = 5
    fwd = IndexToPermutationConverter(n)
    inv = PermutationToIndexConverter(n)
    idx = np.arange(0, math.factorial(n), 3)

    def job():
        return inv.simulate_netlist(fwd.simulate_netlist(idx))

    back = benchmark.pedantic(job, rounds=1, iterations=1)
    assert np.array_equal(back, idx)


def test_lut_cascade_crossover(benchmark, results_dir):
    """Memory bits of the §II-B LUT cascade vs the discrete gate design."""
    ns = [3, 4, 5, 6, 7, 8, 9]

    def job():
        rows = []
        for n in ns:
            cas = converter_cascade(n)
            luts = map_to_luts(IndexToPermutationConverter(n).build_netlist(), k=6)
            lut_bits = sum(1 << l.size for l in luts)
            rows.append((n, cas.total_memory_bits, lut_bits, cas.max_cell_address_bits))
        return rows

    rows = benchmark.pedantic(job, rounds=1, iterations=1)
    # the cascade must lose eventually (exponential memory)
    assert rows[-1][1] > rows[-1][2]
    lines = [
        "Extension: LUT-cascade (ref. [16]) vs discrete logic, converter",
        "",
        f"{'n':>3}  {'cascade ROM bits':>16}  {'LUT mask bits':>13}  {'max cell addr':>13}",
    ]
    for n, cas_bits, lut_bits, addr in rows:
        lines.append(f"{n:>3}  {cas_bits:>16}  {lut_bits:>13}  {addr:>13}")
    write_report(
        results_dir,
        "ext_lut_cascade",
        "\n".join(lines),
        benchmark=benchmark,
        data={
            "rows": [
                {"n": n, "cascade_rom_bits": cas_bits, "lut_mask_bits": lut_bits,
                 "max_cell_address_bits": addr}
                for n, cas_bits, lut_bits, addr in rows
            ]
        },
    )


def test_sweep_effectiveness(benchmark, results_dir):
    """Dead-logic elimination on the generated netlists."""
    def job():
        rows = []
        for n in (4, 8, 12):
            nl = IndexToPermutationConverter(n).build_netlist(pipelined=True)
            _, stats = sweep(nl)
            rows.append((n, stats))
        return rows

    rows = benchmark.pedantic(job, rounds=1, iterations=1)
    lines = ["Extension: dead-logic sweep on generated converter netlists", "",
             f"{'n':>3}  {'gates before':>12}  {'gates after':>11}  {'removed':>8}"]
    for n, s in rows:
        assert s.gates_removed >= 0
        lines.append(f"{n:>3}  {s.gates_before:>12}  {s.gates_after:>11}  {s.gates_removed:>8}")
    write_report(
        results_dir,
        "ext_sweep",
        "\n".join(lines),
        benchmark=benchmark,
        data={
            "rows": [
                {"n": n, "gates_before": s.gates_before, "gates_after": s.gates_after,
                 "removed": s.gates_removed}
                for n, s in rows
            ]
        },
    )


def test_serial_vs_parallel_area_time(benchmark, results_dir):
    """The digit-serial converter vs the paper's parallel cascade:
    area (LUTs/registers) against throughput — the classic AT trade."""
    from repro.core.serial_converter import SerialConverter

    ns = [4, 6, 8, 10, 12]

    def job():
        rows = []
        for n in ns:
            ser = synthesize(SerialConverter(n).build_netlist(), n)
            par = synthesize(
                IndexToPermutationConverter(n).build_netlist(pipelined=True), n
            )
            rows.append((n, ser, par))
        return rows

    rows = benchmark.pedantic(job, rounds=1, iterations=1)
    # the serial design always wins registers, and wins LUTs for large n
    for n, ser, par in rows:
        assert ser.registers < par.registers or n <= 4
    assert rows[-1][1].total_luts < rows[-1][2].total_luts

    lines = [
        "Extension: digit-serial vs parallel converter (area-time trade)",
        "serial: 1 permutation per n clocks; parallel: 1 per clock",
        "",
        f"{'n':>3}  {'ser LUTs':>8}  {'ser regs':>8}  {'par LUTs':>8}  {'par regs':>8}  "
        f"{'AT(ser)':>9}  {'AT(par)':>9}",
    ]
    for n, ser, par in rows:
        at_ser = ser.total_luts * n  # LUTs × clocks per permutation
        at_par = par.total_luts * 1
        lines.append(
            f"{n:>3}  {ser.total_luts:>8}  {ser.registers:>8}  "
            f"{par.total_luts:>8}  {par.registers:>8}  {at_ser:>9}  {at_par:>9}"
        )
    write_report(
        results_dir,
        "ext_serial_converter",
        "\n".join(lines),
        benchmark=benchmark,
        data={
            "rows": [
                {
                    "n": n,
                    "serial_luts": ser.total_luts,
                    "serial_registers": ser.registers,
                    "parallel_luts": par.total_luts,
                    "parallel_registers": par.registers,
                    "at_serial": ser.total_luts * n,
                    "at_parallel": par.total_luts,
                }
                for n, ser, par in rows
            ]
        },
    )


def test_formal_verification(benchmark, results_dir):
    """BDD-based proof that sweep preserves the converter's function."""
    from repro.hdl.model_check import prove_equivalent

    def job():
        results = []
        for n in (3, 4, 5):
            nl = IndexToPermutationConverter(n).build_netlist()
            swept, _ = sweep(nl)
            results.append((n, prove_equivalent(nl, swept)))
        return results

    results = benchmark.pedantic(job, rounds=1, iterations=1)
    assert all(ok for _, ok in results)
    write_report(
        results_dir,
        "ext_formal",
        "Extension: BDD-based formal equivalence (converter vs swept form)\n\n"
        + "\n".join(f"n = {n}: PROVED equivalent" for n, _ in results),
        benchmark=benchmark,
        data={"proved": [{"n": n, "equivalent": bool(ok)} for n, ok in results]},
    )


def test_benes_routing(benchmark, results_dir):
    """Beneš network: route throughput and switch-count minimality."""
    from repro.core.benes import BenesNetwork, route

    rng = np.random.default_rng(0)
    perms = [tuple(int(x) for x in rng.permutation(64)) for _ in range(100)]

    def job():
        return [route(p).switch_count for p in perms]

    counts = benchmark(job)
    net = BenesNetwork(64)
    assert all(c == net.switch_count for c in counts)
    write_report(
        results_dir,
        "ext_benes",
        "Extension: Benes permutation network (the wired complement of the\n"
        "converter for the DSP/crypto reorder use-cases)\n\n"
        + "\n".join(
            f"n = {n}: {BenesNetwork(n).switch_count} switches, "
            f"{BenesNetwork(n).stage_count} stages"
            for n in (4, 8, 16, 64, 256)
        ),
        benchmark=benchmark,
        data={
            "routed_permutations": len(perms),
            "networks": [
                {"n": n, "switches": BenesNetwork(n).switch_count,
                 "stages": BenesNetwork(n).stage_count}
                for n in (4, 8, 16, 64, 256)
            ],
        },
    )


def test_order_ablation_lehmer_scalar(benchmark):
    benchmark(lambda: unrank_naive(1_234_567, 12))


def test_order_ablation_mr_scalar(benchmark):
    """Myrvold–Ruskey is O(n): measurably cheaper per call."""
    benchmark(lambda: mr_unrank(1_234_567, 12))


def test_order_ablation_batch(benchmark, results_dir):
    idx = list(range(0, math.factorial(10), 1811))

    def job():
        return unrank_batch(idx, 10), mr_unrank_batch(idx, 10)

    lex, mr = benchmark(job)
    assert lex.shape == mr.shape
    # same multiset of permutations is not expected — different orders —
    # but both must be valid
    for arr in (lex, mr):
        assert np.array_equal(np.sort(arr, axis=1), np.broadcast_to(np.arange(10), arr.shape))
