"""Table I — the factorial number system for n = 4.

Regenerates the paper's 24-row table (index, digit vector, value check,
permutation) and benchmarks digit extraction / unranking throughput.
"""

from conftest import write_report

from repro.core.converter import IndexToPermutationConverter
from repro.core.factorial import FactorialDigits, digits_from_index, index_from_digits


def _build_table():
    conv = IndexToPermutationConverter(4)
    rows = []
    for index in range(24):
        digits = FactorialDigits.from_index(index, 4)
        assert int(digits) == index  # the "Value of N" column checks out
        perm = conv.convert(index)
        rows.append((index, str(digits), digits.expansion(), " ".join(map(str, perm))))
    return rows


def test_table1_regeneration(benchmark, results_dir):
    rows = benchmark(_build_table)

    # Spot-check the rows quoted in the paper's Table I.
    table = {index: (digits, perm) for index, digits, _, perm in rows}
    assert table[0] == ("0 0 0 0", "0 1 2 3")
    assert table[23] == ("3 2 1 0", "3 2 1 0")
    assert table[6][0] == "1 0 0 0"  # 6 = 1·3!
    assert len({perm for _, _, _, perm in rows}) == 24

    lines = [f"{'N':>3}  {'digits':>8}  {'expansion':>28}  permutation"]
    for index, digits, expansion, perm in rows:
        lines.append(f"{index:>3}  {digits:>8}  {expansion:>28}  {perm}")
    write_report(
        results_dir,
        "table1_fns",
        "\n".join(lines),
        benchmark=benchmark,
        data={
            "n": 4,
            "rows": [
                {"index": index, "digits": digits, "permutation": perm}
                for index, digits, _, perm in rows
            ],
        },
    )


def test_digit_extraction_throughput(benchmark):
    """Microbenchmark: the greedy digit chain the hardware implements."""
    benchmark(lambda: [digits_from_index(i, 10) for i in range(0, 3_628_800, 36_288)])


def test_digit_evaluation_throughput(benchmark):
    digit_vectors = [digits_from_index(i, 10) for i in range(500)]
    benchmark(lambda: [index_from_digits(d) for d in digit_vectors])
