"""Multi-process serving benchmark: socket front end over the worker pool.

One measurement campaign, written to ``results/serving_mp.{txt,json}``:

1. **Throughput vs worker count** — the socket load generator drives a
   live ``repro-serve/1`` TCP front end backed by a
   :class:`~repro.serve.pool.PooledService` at 1/2/4/8 replica workers
   per shard.  Every frame is a full 63-lane unrank sweep (one frame =
   one worker sweep, the pool's unit of parallelism) and every response
   is verified client-side against the rank oracle.  The table records
   lane throughput and client-observed latency percentiles per worker
   count.
2. **Seeded worker-crash chaos** — the same load with a killer thread
   hard-crashing a pool worker every few milliseconds.  The supervision
   ladder must absorb every crash: zero incorrect responses, every
   sweep retried to completion, restarts recorded.

The scaling assertion (1 → 4 workers must reach ≥ 2.5×; smoke relaxes
to ≥ 1×) only makes sense when the host actually has cores to scale
onto, so it is gated on ``os.cpu_count() >= 4`` — the recorded ``cores``
field keeps single-core runs honest in the history ledger.  Hosts below
the gate still assert a no-collapse floor: more workers must never cost
more than 60 % of single-worker throughput.

Caches are disabled on both tiers (front result cache and the workers'
per-shard caches) so every lane is a real sweep and the scaling numbers
measure the pool, not cache luck.
"""

import os
import threading
import time

from conftest import write_report

from repro.serve import (
    NetServer,
    PoolConfig,
    PooledService,
    ServiceConfig,
    run_socket_loadgen,
)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N = 8
FRAME_LANES = 63  # one compiled sweep quantum per socket frame
WORKER_COUNTS = (1, 2, 4) if SMOKE else (1, 2, 4, 8)
FRAMES = 48 if SMOKE else 240
CONNECTIONS = 4 if SMOKE else 8
DEPTH = 2
TRIALS = 2 if SMOKE else 3
CHAOS_FRAMES = 32 if SMOKE else 120
CHAOS_WORKERS = 2 if SMOKE else 4
CHAOS_KILL_PERIOD_S = 0.03
CORES = os.cpu_count() or 1
SCALING_GATE_CORES = 4
MIN_SCALING_X = 1.0 if SMOKE else 2.5
MIN_NO_COLLAPSE_X = 0.4  # ungated floor: parallelism must never implode
SEED = 11


def _configs(workers: int) -> tuple[ServiceConfig, PoolConfig]:
    return (
        ServiceConfig(batch_deadline_s=0.002, cache_capacity=0),
        PoolConfig(
            workers=workers,
            worker_cache_capacity=0,
            restart_backoff_s=0.02,
        ),
    )


def _drive(svc: PooledService, server: NetServer, frames: int):
    host, port = server.address
    return run_socket_loadgen(
        host,
        port,
        N,
        total=frames,
        connections=CONNECTIONS,
        depth=DEPTH,
        frame_count=FRAME_LANES,
        mix={"unrank": 1.0},
        seed=SEED,
        verify=True,
    )


def _point(workers: int) -> dict:
    """Best-of-TRIALS socket run at one worker count."""
    best = None
    for _ in range(TRIALS):
        cfg, pool_cfg = _configs(workers)
        with PooledService(cfg, pool_cfg) as svc:
            with NetServer(svc) as server:
                _drive(svc, server, CONNECTIONS * DEPTH)  # warm: spawn + compile
                report = _drive(svc, server, FRAMES)
            stats = svc.stats()["pool"]
        assert report.incorrect == 0, (
            f"{report.incorrect} wrong responses at {workers} workers"
        )
        assert report.completed == FRAMES
        if best is None or report.lanes_per_second > best[0].lanes_per_second:
            best = (report, stats)
    report, stats = best
    pct = report.latency_percentiles()
    return {
        "workers": workers,
        "lanes_per_s": report.lanes_per_second,
        "frames_per_s": report.throughput_rps,
        "p50_ms": pct["p50"] * 1e3,
        "p99_ms": pct["p99"] * 1e3,
        "availability": report.availability,
        "shed": report.shed,
        "restarts": stats["restarts"],
        "served_fallback": stats["served_fallback"],
    }


def _chaos_trial() -> dict:
    """Kill a worker every few ms under verified load; count the carnage."""
    cfg, pool_cfg = _configs(CHAOS_WORKERS)
    killed = 0
    with PooledService(cfg, pool_cfg) as svc:
        with NetServer(svc) as server:
            _drive(svc, server, CONNECTIONS * DEPTH)  # warm
            stop = threading.Event()

            def killer():
                nonlocal killed
                while not stop.is_set():
                    if svc.pool.kill_worker() is not None:
                        killed += 1
                    time.sleep(CHAOS_KILL_PERIOD_S)

            t = threading.Thread(target=killer, name="chaos-killer")
            t.start()
            try:
                report = _drive(svc, server, CHAOS_FRAMES)
            finally:
                stop.set()
                t.join()
        stats = svc.stats()["pool"]
    return {
        "workers": CHAOS_WORKERS,
        "killed": killed,
        "incorrect": report.incorrect,
        "completed": report.completed,
        "availability": report.availability,
        "restarts": stats["restarts"],
        "served_fallback": stats["served_fallback"],
    }


def test_multiprocess_serving_scales_and_survives_chaos(benchmark, results_dir):
    points = [_point(w) for w in WORKER_COUNTS]
    benchmark.pedantic(lambda: _point(1), rounds=1, iterations=1)

    by_workers = {p["workers"]: p for p in points}
    scaling_1_to_4 = (
        by_workers[4]["lanes_per_s"] / by_workers[1]["lanes_per_s"]
        if 4 in by_workers
        else None
    )
    scaling_enforced = scaling_1_to_4 is not None and CORES >= SCALING_GATE_CORES
    if scaling_enforced:
        assert scaling_1_to_4 >= MIN_SCALING_X, (
            f"1→4 workers scaled {scaling_1_to_4:.2f}x on {CORES} cores, "
            f"required {MIN_SCALING_X}x"
        )
    # even on a starved host, more workers must not collapse throughput
    widest = points[-1]
    no_collapse = widest["lanes_per_s"] / by_workers[1]["lanes_per_s"]
    assert no_collapse >= MIN_NO_COLLAPSE_X, (
        f"{widest['workers']} workers ran at {no_collapse:.2f}x the "
        f"single-worker rate — the pool is serialising somewhere"
    )

    chaos = _chaos_trial()
    assert chaos["incorrect"] == 0, (
        f"{chaos['incorrect']} wrong responses under worker-crash chaos"
    )
    assert chaos["completed"] == CHAOS_FRAMES
    assert chaos["killed"] >= 1, "chaos trial never landed a kill"
    assert chaos["restarts"] >= 1, "killed workers were never respawned"

    table = "\n".join(
        f"  {p['workers']:>7}  {p['lanes_per_s']:>12.0f}  "
        f"{p['frames_per_s']:>10.1f}  {p['p50_ms']:>8.3f}  "
        f"{p['p99_ms']:>8.3f}  {p['availability']:>6.4f}  {p['restarts']:>8}"
        for p in points
    )
    scaling_txt = (
        f"{scaling_1_to_4:.2f}x" if scaling_1_to_4 is not None else "n/a"
    )
    gate_txt = (
        f"enforced (>= {MIN_SCALING_X}x)"
        if scaling_enforced
        else f"recorded only ({CORES} cores < {SCALING_GATE_CORES})"
    )
    write_report(
        results_dir,
        "serving_mp",
        f"Multi-process serving (repro-serve/1 over TCP, unrank n={N}, "
        f"{FRAME_LANES} lanes/frame, caches off, verified)\n"
        f"host cores: {CORES}\n\n"
        f"  {'workers':>7}  {'lanes/s':>12}  {'frames/s':>10}  "
        f"{'p50 ms':>8}  {'p99 ms':>8}  {'avail':>6}  {'restarts':>8}\n"
        + table
        + f"\n\nscaling 1→4 workers: {scaling_txt}  [{gate_txt}]\n\n"
        f"worker-crash chaos ({CHAOS_WORKERS} workers, kill every "
        f"{CHAOS_KILL_PERIOD_S * 1e3:.0f} ms):\n"
        f"  killed={chaos['killed']}  restarts={chaos['restarts']}  "
        f"fallback={chaos['served_fallback']}  "
        f"incorrect={chaos['incorrect']}  "
        f"availability={chaos['availability']:.4f}",
        benchmark=benchmark,
        data={
            "n": N,
            "smoke": SMOKE,
            "cores": CORES,
            "frame_lanes": FRAME_LANES,
            "connections": CONNECTIONS,
            "depth": DEPTH,
            "frames": FRAMES,
            "points": points,
            "scaling_1_to_4_x": scaling_1_to_4,
            "scaling_enforced": scaling_enforced,
            "min_scaling_x": MIN_SCALING_X,
            "chaos": chaos,
        },
    )
