"""Ablations — design choices DESIGN.md calls out, measured.

1. Unranking implementations: naive O(n²) vs Fenwick O(n log n) vs NumPy
   batch — where does each win?
2. Pipelining: combinational vs pipelined converter Fmax (the §II-B
   trade: registers buy clock rate).
3. LFSR width m vs index bias (the Fig.-2 knob).
4. LUT size k vs mapped area (technology-mapping knob behind Table III).
5. Per-stage LFSR polynomial reuse: the identical-polynomial shuffle is
   visibly less uniform than the distinct-polynomial default.
6. Pass pipeline: none / sweep-only / full optimisation through the
   unified flow — the gate, LUT and level deltas behind Tables III/IV,
   with the no-regression guarantee asserted.
"""

import numpy as np
from conftest import write_report

from repro.analysis.uniformity import uniformity_report
from repro.core.converter import IndexToPermutationConverter
from repro.core.knuth import KnuthShuffleCircuit
from repro.core.lehmer import unrank_batch, unrank_fenwick, unrank_naive
from repro.flow import FlowTarget, build_circuit
from repro.flow import synthesize as flow_synthesize
from repro.fpga import synthesize
from repro.fpga.lut_map import map_to_luts
from repro.rng.scaled import bias_profile


def test_ablation_unrank_naive_n64(benchmark):
    benchmark(lambda: unrank_naive(12345678901234567890 % 10**18, 64))


def test_ablation_unrank_fenwick_n64(benchmark):
    benchmark(lambda: unrank_fenwick(12345678901234567890 % 10**18, 64))


def test_ablation_unrank_fenwick_n512(benchmark):
    """At n = 512 the O(n log n) pool wins decisively over list.pop."""
    import math

    idx = 98765432123456789 % math.factorial(512)
    benchmark(lambda: unrank_fenwick(idx, 512))


def test_ablation_unrank_batch_n12(benchmark):
    idx = np.arange(0, 479_001_600, 120_000)
    benchmark(lambda: unrank_batch(idx, 12))


def test_ablation_pipeline_fmax(benchmark, results_dir):
    def measure():
        rows = []
        for n in (4, 6, 8, 10):
            comb = synthesize(IndexToPermutationConverter(n).build_netlist(), n)
            pipe = synthesize(IndexToPermutationConverter(n).build_netlist(pipelined=True), n)
            rows.append((n, comb.fmax_mhz, pipe.fmax_mhz, pipe.registers))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    for n, comb_f, pipe_f, regs in rows:
        assert pipe_f > comb_f  # registers buy clock rate
        assert regs > 0

    lines = ["Ablation: pipelining vs combinational Fmax (converter)", "",
             f"{'n':>3}  {'comb MHz':>9}  {'pipe MHz':>9}  {'pipe regs':>9}  {'gain':>6}"]
    for n, comb_f, pipe_f, regs in rows:
        lines.append(f"{n:>3}  {comb_f:>9.1f}  {pipe_f:>9.1f}  {regs:>9}  {pipe_f / comb_f:>6.2f}x")
    write_report(
        results_dir,
        "ablation_pipeline",
        "\n".join(lines),
        benchmark=benchmark,
        data={
            "rows": [
                {"n": n, "comb_mhz": comb_f, "pipe_mhz": pipe_f, "pipe_registers": regs}
                for n, comb_f, pipe_f, regs in rows
            ]
        },
    )


def test_ablation_lfsr_width_vs_bias(benchmark, results_dir):
    ms = [5, 6, 8, 12, 16, 24, 31]
    reports = benchmark(lambda: [bias_profile(24, m) for m in ms])
    errs = [r.max_relative_error for r in reports]
    assert errs == sorted(errs, reverse=True)
    lines = ["Ablation: LFSR width m vs index bias (k = 24)", "",
             f"{'m':>3}  {'max rel err':>12}  {'ratio':>10}"]
    for m, r in zip(ms, reports):
        lines.append(f"{m:>3}  {r.max_relative_error:>12.3e}  {r.ratio:>10.6f}")
    write_report(
        results_dir,
        "ablation_lfsr_width",
        "\n".join(lines),
        benchmark=benchmark,
        data={
            "k": 24,
            "rows": [
                {"m": m, "max_relative_error": r.max_relative_error, "ratio": r.ratio}
                for m, r in zip(ms, reports)
            ],
        },
    )


def test_ablation_lut_k_vs_area(benchmark, results_dir):
    nl = IndexToPermutationConverter(8).build_netlist()

    def measure():
        return {k: len(map_to_luts(nl, k=k)) for k in (3, 4, 5, 6, 7)}

    counts = benchmark(measure)
    sizes = [counts[k] for k in (3, 4, 5, 6, 7)]
    assert sizes == sorted(sizes, reverse=True)  # bigger LUTs -> fewer of them
    lines = ["Ablation: LUT input size k vs mapped LUT count (converter, n = 8)", "",
             f"{'k':>3}  {'LUTs':>6}"]
    for k in (3, 4, 5, 6, 7):
        lines.append(f"{k:>3}  {counts[k]:>6}")
    write_report(
        results_dir,
        "ablation_lut_k",
        "\n".join(lines),
        benchmark=benchmark,
        data={"n": 8, "lut_counts": {str(k): counts[k] for k in (3, 4, 5, 6, 7)}},
    )


#: The pipeline variants the pass ablation compares.
_PASS_VARIANTS = {
    "none": FlowTarget(passes=()),
    "sweep-only": FlowTarget(passes=("sweep",)),
    "full": FlowTarget(),
}

#: Table III/IV circuits the ablation measures (both papers' tables use
#: the pipelined datapaths).
_PASS_CIRCUITS = [("converter", 6), ("converter", 8), ("shuffle", 6), ("shuffle", 8)]


def test_ablation_pass_pipeline(benchmark, results_dir):
    """Pass-pipeline ablation: what each level of optimisation buys.

    Also the acceptance gate for the pipeline itself: on the Table
    III/IV circuits the full pipeline must never *increase* gate count,
    LUT count or LUT levels over the unoptimised flow.
    """

    def measure():
        rows = []
        for circuit, n in _PASS_CIRCUITS:
            nl = build_circuit(circuit, n, pipelined=True)
            per_variant = {}
            for variant, target in _PASS_VARIANTS.items():
                res = flow_synthesize(nl, target, n=n)
                per_variant[variant] = {
                    "gates": res.netlist.num_logic_gates,
                    "registers": res.netlist.num_registers,
                    "luts": res.total_luts,
                    "levels": res.lut_levels,
                    "fmax_mhz": res.fmax_mhz,
                }
            rows.append({"circuit": circuit, "n": n, "variants": per_variant})
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    for row in rows:
        none, swp, full = (
            row["variants"]["none"],
            row["variants"]["sweep-only"],
            row["variants"]["full"],
        )
        # the no-regression guarantee (ISSUE acceptance criterion)
        for key in ("gates", "luts", "levels"):
            assert full[key] <= none[key], (row["circuit"], row["n"], key)
            assert swp[key] <= none[key], (row["circuit"], row["n"], key)
        # sweep reclaims dead logic on every generator-built circuit
        assert swp["gates"] < none["gates"]
        # the full pipeline is at least as strong as sweep alone
        assert full["gates"] <= swp["gates"]

    lines = [
        "Ablation: pass pipeline (none / sweep-only / full) through the",
        "unified synthesis flow, Table III/IV circuits (pipelined).",
        "",
        f"{'circuit':>9}  {'n':>2}  {'variant':>10}  {'gates':>6}  "
        f"{'LUTs':>6}  {'levels':>6}  {'regs':>6}  {'Fmax':>7}",
    ]
    for row in rows:
        for variant, v in row["variants"].items():
            lines.append(
                f"{row['circuit']:>9}  {row['n']:>2}  {variant:>10}  "
                f"{v['gates']:>6}  {v['luts']:>6}  {v['levels']:>6}  "
                f"{v['registers']:>6}  {v['fmax_mhz']:>7.1f}"
            )
    write_report(
        results_dir,
        "ablation_passes",
        "\n".join(lines),
        benchmark=benchmark,
        data={
            "variants": {k: list(t.passes) if t.passes is not None else "default"
                         for k, t in _PASS_VARIANTS.items()},
            "rows": rows,
        },
    )


def test_ablation_polynomial_reuse(benchmark, results_dir):
    """Identical per-stage polynomials couple the stages (each stream is a
    phase shift of the same m-sequence): the joint distribution skews.
    Distinct widths (the default) restore uniformity."""
    samples = 1 << 17

    def measure():
        shared = KnuthShuffleCircuit(4, m=31, widths=[31, 31, 31])
        distinct = KnuthShuffleCircuit(4, m=31)
        return (
            uniformity_report(shared.sample(samples)),
            uniformity_report(distinct.sample(samples)),
        )

    shared_rep, distinct_rep = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert distinct_rep.tv_distance < shared_rep.tv_distance
    write_report(
        results_dir,
        "ablation_polynomial_reuse",
        "Ablation: per-stage LFSR polynomial reuse (n = 4, 2^17 samples)\n\n"
        f"identical polynomials: chi2 p = {shared_rep.p_value:.2e}, "
        f"TV = {shared_rep.tv_distance:.5f}\n"
        f"distinct polynomials : chi2 p = {distinct_rep.p_value:.2e}, "
        f"TV = {distinct_rep.tv_distance:.5f}",
        benchmark=benchmark,
        data={
            "n": 4,
            "samples": samples,
            "shared": {
                "p_value": float(shared_rep.p_value),
                "tv_distance": float(shared_rep.tv_distance),
            },
            "distinct": {
                "p_value": float(distinct_rep.p_value),
                "tv_distance": float(distinct_rep.tv_distance),
            },
        },
    )
