"""Figure 1 — the 4-element converter circuit's structure.

Fig. 1 draws the n = 4 cascade: per stage an A−B subtractor column, a
comparator bank (thresholds 6/12/18, then 2/4, then 1) and a one-hot MUX.
We regenerate that inventory from the StageSpec description and the real
netlist, and benchmark netlist construction and simulation.
"""

import numpy as np
from conftest import write_report

from repro.core.converter import IndexToPermutationConverter
from repro.core.factorial import factorial


def test_fig1_stage_inventory(benchmark, results_dir):
    conv = IndexToPermutationConverter(4)
    nl = benchmark(conv.build_netlist)

    stages = conv.stages
    # Fig. 1's comparator thresholds for n = 4: multiples of 3!, 2!, 1!
    assert stages[0].thresholds == (6, 12, 18)
    assert stages[1].thresholds == (2, 4)
    assert stages[2].thresholds == (1,)
    assert conv.comparator_count() == 6
    assert conv.paper_comparator_count() == 10  # n(n+1)/2 accounting
    assert nl.num_registers == 0  # Fig. 1 is the combinational form

    lines = [
        "Figure 1 reproduction — index-to-permutation converter, n = 4",
        f"index input: {conv.index_width} bits; output: 4 elements x "
        f"{conv.element_width} bits (word = {conv.word_width} bits)",
        "",
        f"{'stage':>5}  {'pool':>4}  {'weight':>6}  {'comparators':>11}  thresholds",
    ]
    for s in stages:
        lines.append(
            f"{s.position:>5}  {s.pool_size:>4}  {s.weight:>6}  "
            f"{s.comparators:>11}  {list(s.thresholds)}"
        )
    lines += [
        "",
        f"netlist: {nl.summary()}",
        f"structural comparators n(n-1)/2 = {conv.comparator_count()}; "
        f"paper accounting n(n+1)/2 = {conv.paper_comparator_count()}",
    ]
    write_report(
        results_dir,
        "fig1_structure",
        "\n".join(lines),
        benchmark=benchmark,
        data={
            "n": 4,
            "index_bits": conv.index_width,
            "element_bits": conv.element_width,
            "word_bits": conv.word_width,
            "structural_comparators": conv.comparator_count(),
            "paper_comparators": conv.paper_comparator_count(),
            "stages": [
                {
                    "position": s.position,
                    "pool_size": s.pool_size,
                    "weight": s.weight,
                    "comparators": s.comparators,
                    "thresholds": list(s.thresholds),
                }
                for s in stages
            ],
        },
    )


def test_fig1_circuit_simulation_throughput(benchmark):
    """Gate-level batch simulation of all 24 indices through the circuit."""
    conv = IndexToPermutationConverter(4)
    out = benchmark(lambda: conv.simulate_netlist(range(24)))
    assert len({tuple(r) for r in out}) == 24


def test_fig1_pipeline_simulation(benchmark):
    conv = IndexToPermutationConverter(4)
    out = benchmark.pedantic(
        lambda: conv.simulate_netlist(range(24), pipelined=True), rounds=1, iterations=1
    )
    assert np.array_equal(out, conv.convert_batch(range(24)))
