"""Table III — FPGA resources of the index-to-permutation converter vs n.

The paper synthesises the converter for a range of n on a Stratix IV and
reports Fmax, a LUT histogram by input count, packed-ALM estimates and
registers.  We regenerate the same columns through the unified synthesis
flow (:func:`repro.flow.synthesize`: the full optimisation pass pipeline,
then the k-LUT mapper and ALM/timing models) and assert the structural
trends: area grows ~quadratically, registers track the pipeline cut
sizes, frequency falls as stages deepen.
"""

from conftest import write_report

from repro.analysis.complexity import fit_power_law
from repro.flow import build_circuit, synthesize
from repro.fpga import render_resource_table

NS = [2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14]


def _synthesize_all():
    rows = []
    for n in NS:
        nl = build_circuit("converter", n, pipelined=True)
        rows.append(synthesize(nl, n=n).report)
    return rows


def test_table3_regeneration(benchmark, results_dir):
    rows = benchmark.pedantic(_synthesize_all, rounds=1, iterations=1)

    luts = [r.total_luts for r in rows]
    regs = [r.registers for r in rows]
    fmax = [r.fmax_mhz for r in rows]

    # monotone growth of area and registers with n
    assert luts == sorted(luts)
    assert regs == sorted(regs)
    # paper: "relatively few resources are used" — thousands, not millions
    assert luts[-1] < 20_000
    # area is low-order polynomial in n (paper: O(n^2) comparators)
    alpha, r2 = fit_power_law(NS[2:], luts[2:])
    assert 1.5 < alpha < 4.0 and r2 > 0.97
    # frequency degrades as stage logic deepens (Table III trend)
    assert fmax[-1] < fmax[1]

    header = (
        "Table III reproduction — converter resources through the unified\n"
        "flow (full pass pipeline, k=6 LUT map, ALM packing and delay model\n"
        "in lieu of Quartus/Stratix IV).\n"
        f"area exponent alpha = {alpha:.2f} (R^2 = {r2:.3f})\n"
    )
    write_report(
        results_dir,
        "table3_converter_resources",
        header + render_resource_table(rows),
        benchmark=benchmark,
        data={
            "ns": NS,
            "area_exponent": alpha,
            "area_fit_r2": r2,
            "rows": [
                {
                    "n": n,
                    "luts": r.total_luts,
                    "registers": r.registers,
                    "fmax_mhz": r.fmax_mhz,
                }
                for n, r in zip(NS, rows)
            ],
        },
    )


def test_synthesis_speed_n8(benchmark):
    """Time one full build + pass-pipeline + map + pack + time flow at n = 8."""
    def job():
        nl = build_circuit("converter", 8, pipelined=True)
        return synthesize(nl, n=8)

    benchmark(job)
