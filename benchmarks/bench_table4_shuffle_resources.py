"""Table IV — FPGA resources of the Knuth-shuffle circuit vs n.

Same columns as Table III but for the Fig.-3 cascade, whose rows include a
scaled-LFSR random integer generator per stage — the paper's 31-bit
generators dominate the register count, which is what distinguishes
Table IV's register column from Table III's.
"""

from conftest import write_report

from repro.analysis.complexity import fit_power_law
from repro.core.knuth import KnuthShuffleCircuit
from repro.flow import build_circuit, synthesize
from repro.fpga import render_resource_table

NS = [2, 3, 4, 5, 6, 7, 8, 10, 12]


def _synthesize_all():
    rows = []
    for n in NS:
        nl = build_circuit("shuffle", n, pipelined=True)
        rows.append(synthesize(nl, n=n).report)
    return rows


def test_table4_regeneration(benchmark, results_dir):
    rows = benchmark.pedantic(_synthesize_all, rounds=1, iterations=1)

    luts = [r.total_luts for r in rows]
    regs = [r.registers for r in rows]
    assert luts == sorted(luts)
    assert regs == sorted(regs)

    # the per-stage LFSRs floor the register count at sum(widths)
    for n, rep in zip(NS, rows):
        assert rep.registers >= sum(KnuthShuffleCircuit(n).widths)

    # Table IV vs Table III: at equal n the shuffle carries far more
    # registers (its RNGs) than the pipelined converter
    conv8 = synthesize(build_circuit("converter", 8, pipelined=True), n=8).report
    shuf8 = rows[NS.index(8)]
    assert shuf8.registers > conv8.registers

    alpha, r2 = fit_power_law(NS[2:], luts[2:])
    header = (
        "Table IV reproduction — Knuth-shuffle circuit resources through\n"
        "the unified flow (full pass pipeline), one scaled-LFSR random\n"
        "integer generator per stage (paper: 31-bit).\n"
        f"area exponent alpha = {alpha:.2f} (R^2 = {r2:.3f})\n"
    )
    write_report(
        results_dir,
        "table4_shuffle_resources",
        header + render_resource_table(rows),
        benchmark=benchmark,
        data={
            "ns": NS,
            "area_exponent": alpha,
            "area_fit_r2": r2,
            "rows": [
                {
                    "n": n,
                    "luts": r.total_luts,
                    "registers": r.registers,
                    "fmax_mhz": r.fmax_mhz,
                }
                for n, r in zip(NS, rows)
            ],
        },
    )


def test_shuffle_synthesis_speed_n8(benchmark):
    def job():
        nl = build_circuit("shuffle", 8, pipelined=True)
        return synthesize(nl, n=8)

    benchmark(job)
