"""Robustness extension: fault-campaign throughput and checked-mode overhead.

Three questions an operator asks before enabling the robustness layer:

1. how fast do campaigns run (faults simulated per second), i.e. what
   does a nightly exhaustive stuck-at sweep cost?
2. how much denser do sweeps pack under the wide-lane vector engine —
   faults per sweep versus the compiled 63-slot quantum, with the
   classification identity that makes the density trustworthy?
3. what does online checking cost per conversion — bijectivity alone,
   and with the rank∘unrank oracle — relative to the bare converter?
"""

import time

from conftest import write_report

from repro.core.converter import IndexToPermutationConverter
from repro.robustness.campaign import CampaignSpec, fault_list, run_campaign
from repro.robustness.checkers import CheckedConverter

N_CAMPAIGN = 5
N_WIDE = 6
N_CHECKED = 8
BATCH = 2048
MIN_FAULTS_PER_SWEEP_RATIO = 8.0


def test_stuck_campaign_throughput(benchmark, results_dir):
    spec = CampaignSpec(circuit="converter", n=N_CAMPAIGN, model="stuck")
    total = len(fault_list(spec))

    def run():
        return run_campaign(spec)

    t0 = time.perf_counter()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    wall = time.perf_counter() - t0
    assert result.total == total
    assert result.benign + result.detected + result.silent == total
    # benchmark.stats is None under --benchmark-disable (smoke mode)
    elapsed = benchmark.stats["mean"] if benchmark.stats else wall
    throughput = total / elapsed
    write_report(
        results_dir,
        "fault_campaign",
        f"Fault-injection campaign throughput (converter n={N_CAMPAIGN}, "
        f"exhaustive stuck-at)\n"
        f"faults: {total}  time: {elapsed:.2f}s  "
        f"throughput: {throughput:.0f} faults/s\n\n" + result.render(),
        benchmark=benchmark,
        data={
            "n": N_CAMPAIGN,
            "model": "stuck",
            "faults": total,
            "elapsed_s": elapsed,
            "faults_per_second": throughput,
            "benign": result.benign,
            "detected": result.detected,
            "silent": result.silent,
        },
    )


def test_vector_campaign_faults_per_sweep(benchmark, results_dir):
    """The vector engine packs a whole campaign into a handful of sweeps.

    Sweep counts are deterministic (pure slot arithmetic, no timing), so
    the ≥ 8× density ratio and the classification identity hold on any
    machine, smoke mode included.
    """
    spec_c = CampaignSpec(
        circuit="converter", n=N_WIDE, model="stuck", engine="compiled"
    )
    spec_v = CampaignSpec(
        circuit="converter", n=N_WIDE, model="stuck", engine="vector"
    )
    total = len(fault_list(spec_c))
    res_c = run_campaign(spec_c)

    def run():
        return run_campaign(spec_v)

    res_v = benchmark.pedantic(run, rounds=1, iterations=1)

    assert (res_c.benign, res_c.detected, res_c.silent) == (
        res_v.benign,
        res_v.detected,
        res_v.silent,
    )
    assert res_c.examples == res_v.examples
    assert res_c.total == res_v.total == total

    per_sweep_c = total / res_c.sweeps
    per_sweep_v = total / res_v.sweeps
    ratio = per_sweep_v / per_sweep_c
    assert ratio >= MIN_FAULTS_PER_SWEEP_RATIO, (
        f"vector packs {per_sweep_v:.0f} faults/sweep vs compiled "
        f"{per_sweep_c:.0f} — {ratio:.1f}x, need "
        f"{MIN_FAULTS_PER_SWEEP_RATIO}x"
    )

    write_report(
        results_dir,
        "fault_campaign_vector",
        f"Wide-lane fault campaign (converter n={N_WIDE}, exhaustive "
        f"stuck-at, {total} faults)\n"
        f"  compiled : {res_c.sweeps:4d} sweeps  "
        f"({per_sweep_c:7.1f} faults/sweep)  {res_c.wall_s:.2f}s\n"
        f"  vector   : {res_v.sweeps:4d} sweeps  "
        f"({per_sweep_v:7.1f} faults/sweep)  {res_v.wall_s:.2f}s\n"
        f"  density  : {ratio:.1f}x, identical classification\n\n"
        + res_v.render(),
        benchmark=benchmark,
        data={
            "n": N_WIDE,
            "model": "stuck",
            "faults": total,
            "compiled_sweeps": res_c.sweeps,
            "vector_sweeps": res_v.sweeps,
            "compiled_faults_per_sweep": per_sweep_c,
            "vector_faults_per_sweep": per_sweep_v,
            "faults_per_sweep_ratio_x": ratio,
            "compiled_wall_s": res_c.wall_s,
            "vector_wall_s": res_v.wall_s,
            "benign": res_v.benign,
            "detected": res_v.detected,
            "silent": res_v.silent,
        },
    )


def test_checked_mode_overhead(benchmark, results_dir):
    conv = IndexToPermutationConverter(N_CHECKED)
    checked = CheckedConverter(conv)
    dual = CheckedConverter(conv, dual_rail=True)
    indices = list(range(BATCH))

    def timed(fn):
        t0 = time.perf_counter()
        for _ in range(5):
            fn(indices)
        return (time.perf_counter() - t0) / 5

    bare = timed(conv.convert_batch)
    plain = timed(checked.convert_batch)
    railed = timed(dual.convert_batch)

    def run():
        return checked.convert_batch(indices)

    benchmark.pedantic(run, rounds=3, iterations=1)
    overhead = plain / bare
    # checking is pure-python O(n·B) next to the vectorised datapath; keep
    # an alarm threshold so a regression (e.g. per-row netlist sim sneaking
    # in) fails loudly rather than silently eating throughput.
    assert overhead < 60.0
    write_report(
        results_dir,
        "checked_overhead",
        f"Checked-mode overhead (n={N_CHECKED}, batch={BATCH})\n"
        f"bare converter      : {1e6 * bare / BATCH:8.2f} us/perm\n"
        f"checked (oracle)    : {1e6 * plain / BATCH:8.2f} us/perm  "
        f"({plain / bare:.1f}x)\n"
        f"checked + dual rail : {1e6 * railed / BATCH:8.2f} us/perm  "
        f"({railed / bare:.1f}x)\n",
        benchmark=benchmark,
        data={
            "n": N_CHECKED,
            "batch": BATCH,
            "bare_us_per_perm": 1e6 * bare / BATCH,
            "checked_us_per_perm": 1e6 * plain / BATCH,
            "dual_rail_us_per_perm": 1e6 * railed / BATCH,
            "checked_overhead_x": plain / bare,
            "dual_rail_overhead_x": railed / bare,
        },
    )
