"""Figure 2 — the scaled random-integer generator and its pigeonhole bias.

The paper's worked example: at m = 5, k = 24, seven integers arise from two
LFSR words and seventeen from one (a 2× probability ratio); at m = 31 the
imbalance is negligible.  The bias is a closed form over one LFSR period —
regenerated exactly here — and the gate-level block is benchmarked.
"""

from conftest import write_report

from repro.hdl.simulator import SequentialSimulator
from repro.rng.scaled import bias_profile, build_scaled_netlist

K = 24
MS = [5, 8, 12, 16, 24, 31]


def test_fig2_bias_profile(benchmark, results_dir):
    reports = benchmark(lambda: [bias_profile(K, m) for m in MS])

    by_m = dict(zip(MS, reports))
    # the paper's m = 5 example, exactly
    assert by_m[5].ratio == 2.0
    assert sorted(by_m[5].counts).count(2) == 7
    assert sorted(by_m[5].counts).count(1) == 17
    # monotone improvement with m; near-uniform at 31 bits
    errs = [by_m[m].max_relative_error for m in MS]
    assert errs == sorted(errs, reverse=True)
    assert by_m[31].max_relative_error < 1e-7

    lines = [
        f"Figure 2 reproduction — index bias of i = (k*x) >> m for k = {K}",
        "(exact over one maximal-LFSR period; paper quotes the m=5 case:",
        " 7 integers from two words, 17 from one, ratio 2x)",
        "",
        f"{'m':>3}  {'period':>12}  {'min#':>5}  {'max#':>5}  {'ratio':>8}  {'max rel err':>12}",
    ]
    for m in MS:
        r = by_m[m]
        lines.append(
            f"{m:>3}  {r.period:>12}  {r.min_count:>5}  {r.max_count:>5}  "
            f"{r.ratio:>8.5f}  {r.max_relative_error:>12.3e}"
        )
    write_report(
        results_dir,
        "fig2_bias",
        "\n".join(lines),
        benchmark=benchmark,
        data={
            "k": K,
            "rows": [
                {
                    "m": m,
                    "period": by_m[m].period,
                    "min_count": by_m[m].min_count,
                    "max_count": by_m[m].max_count,
                    "ratio": by_m[m].ratio,
                    "max_relative_error": by_m[m].max_relative_error,
                }
                for m in MS
            ],
        },
    )


def test_fig2_gate_level_block(benchmark):
    """Clock the full hardware block (LFSR + k·x multiplier + truncate)."""
    nl = build_scaled_netlist(16, K)
    sim = SequentialSimulator(nl)

    def run():
        return [int(sim.step({})["i"][0]) for _ in range(64)]

    draws = benchmark(run)
    assert all(0 <= d < K for d in draws)


def test_fig2_bias_profile_large_k(benchmark):
    """Closed-form bias stays exact for k = 10! (index generator regime)."""
    report = benchmark.pedantic(lambda: bias_profile(3_628_800, 31), rounds=1, iterations=1)
    assert sum(report.counts) == (1 << 31) - 1
