"""Shared helpers for the benchmark/reproduction harness.

Each ``bench_*`` module regenerates one table or figure of the paper:
it times the underlying computation with pytest-benchmark, asserts the
qualitative claims (who wins, growth orders, uniformity), and writes the
regenerated artefact to ``results/<name>.txt`` so the numbers survive the
run (pytest captures stdout).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_report(results_dir: pathlib.Path, name: str, text: str) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
