"""Shared helpers for the benchmark/reproduction harness.

Each ``bench_*`` module regenerates one table or figure of the paper:
it times the underlying computation with pytest-benchmark, asserts the
qualitative claims (who wins, growth orders, uniformity), and writes the
regenerated artefact to ``results/<name>.txt`` so the numbers survive the
run (pytest captures stdout).

Every report additionally emits a machine-readable twin,
``results/<name>.json``, through the :mod:`repro.obs.bench` telemetry
harness — schema ``repro-bench/1``, carrying an environment fingerprint,
the benchmark's structured ``data`` payload, and iteration statistics
when a pytest-benchmark fixture is handed in.  ``python -m
repro.obs.bench validate results/*.json`` checks them in CI.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.obs import bench as obs_bench

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_report(
    results_dir: pathlib.Path,
    name: str,
    text: str,
    *,
    data: dict | None = None,
    timing: dict | None = None,
    benchmark=None,
) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    obs_bench.emit_report(
        results_dir,
        name,
        data=data,
        timing=timing,
        benchmark=benchmark,
        text_report=f"results/{name}.txt",
    )
