"""Shared helpers for the benchmark/reproduction harness.

Each ``bench_*`` module regenerates one table or figure of the paper:
it times the underlying computation with pytest-benchmark, asserts the
qualitative claims (who wins, growth orders, uniformity), and writes the
regenerated artefact to ``results/<name>.txt`` so the numbers survive the
run (pytest captures stdout).

Every report additionally emits a machine-readable twin,
``results/<name>.json``, through the :mod:`repro.obs.bench` telemetry
harness — schema ``repro-bench/1``, carrying an environment fingerprint,
the benchmark's structured ``data`` payload, and iteration statistics
when a pytest-benchmark fixture is handed in.  ``python -m
repro.obs.bench validate results/*.json`` checks them in CI.

Each emitted report is also ingested into the append-only bench-history
ledger (``results/history/<name>.jsonl``, schema
``repro-bench-history/1``) keyed by the current git SHA, so ``python -m
repro.obs.bench regress`` can compare this run against the trailing
window.  Smoke runs (``REPRO_BENCH_SMOKE=1``) are flagged and only ever
compared against other smoke entries.  Ingestion is best-effort: a
ledger failure must not fail the benchmark that produced the numbers.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.obs import bench as obs_bench
from repro.obs import history as obs_history

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
HISTORY_DIR = RESULTS_DIR / "history"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_report(
    results_dir: pathlib.Path,
    name: str,
    text: str,
    *,
    data: dict | None = None,
    timing: dict | None = None,
    benchmark=None,
) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    json_path = obs_bench.emit_report(
        results_dir,
        name,
        data=data,
        timing=timing,
        benchmark=benchmark,
        text_report=f"results/{name}.txt",
    )
    try:
        obs_history.ingest_report(
            json.loads(json_path.read_text()),
            HISTORY_DIR,
            smoke=bool(os.environ.get("REPRO_BENCH_SMOKE")),
        )
    except (OSError, ValueError) as exc:
        print(f"bench-history ingest skipped for {name}: {exc}")
