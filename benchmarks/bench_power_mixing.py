"""Extension experiments: switching activity / power, and shuffle mixing.

* **Toggle order ablation** — enumerating all n! permutations in SJT
  (minimal-change) order vs counter order: total and worst-step output
  toggling, the di/dt argument for plain-changes hardware generators.
* **Vector-based power** — switching activity of the pipelined converter
  under a counter workload, turned into a first-order dynamic-power
  figure.
* **Mixing** — the Fig.-3 cascade vs an equal-swap-budget random
  transposition walk: structured stages reach uniformity in n−1 swaps,
  the unstructured walk needs ~(1/2)·n·ln n and is visibly unmixed at
  the same budget.
"""

import numpy as np
from conftest import write_report

from repro.analysis.mixing import cutoff_estimate, shuffle_vs_walk, transposition_walk_tv
from repro.core.converter import IndexToPermutationConverter
from repro.fpga.power import (
    estimate_dynamic_power_mw,
    measure_activity,
    output_toggle_comparison,
)


def test_toggle_order_ablation(benchmark, results_dir):
    ns = [4, 5, 6, 7]
    rows = benchmark.pedantic(
        lambda: [output_toggle_comparison(n) for n in ns], rounds=1, iterations=1
    )
    for r in rows:
        assert r.mean_reduction > 1.0
        assert r.worst_step_reduction >= 1.5
    lines = [
        "Extension: output toggling, counter order vs SJT minimal-change order",
        "",
        f"{'n':>3}  {'steps':>6}  {'counter total':>13}  {'SJT total':>9}  "
        f"{'counter worst':>13}  {'SJT worst':>9}",
    ]
    for r in rows:
        lines.append(
            f"{r.n:>3}  {r.steps:>6}  {r.counter_order_toggles:>13}  "
            f"{r.sjt_order_toggles:>9}  {r.counter_worst_step:>13}  {r.sjt_worst_step:>9}"
        )
    write_report(
        results_dir,
        "ext_toggles",
        "\n".join(lines),
        benchmark=benchmark,
        data={
            "rows": [
                {
                    "n": r.n,
                    "steps": r.steps,
                    "counter_total": r.counter_order_toggles,
                    "sjt_total": r.sjt_order_toggles,
                    "counter_worst_step": r.counter_worst_step,
                    "sjt_worst_step": r.sjt_worst_step,
                    "mean_reduction": r.mean_reduction,
                }
                for r in rows
            ]
        },
    )


def test_vector_based_power(benchmark, results_dir):
    def job():
        rows = []
        for n in (4, 6, 8):
            nl = IndexToPermutationConverter(n).build_netlist(pipelined=True)
            stream = [{"index": i % IndexToPermutationConverter(n).index_limit}
                      for i in range(64)]
            rep = measure_activity(nl, stream)
            rows.append((n, rep.mean_activity, estimate_dynamic_power_mw(rep, 100.0)))
        return rows

    rows = benchmark.pedantic(job, rounds=1, iterations=1)
    powers = [p for _, _, p in rows]
    assert powers == sorted(powers)  # bigger circuit, more power
    lines = ["Extension: vector-based switching activity / dynamic power",
             "(pipelined converter, counter workload, 100 MHz)", "",
             f"{'n':>3}  {'mean activity':>13}  {'dynamic mW':>10}"]
    for n, act, p in rows:
        lines.append(f"{n:>3}  {act:>13.3f}  {p:>10.4f}")
    write_report(
        results_dir,
        "ext_power",
        "\n".join(lines),
        benchmark=benchmark,
        data={
            "clock_mhz": 100.0,
            "rows": [
                {"n": n, "mean_activity": act, "dynamic_mw": p}
                for n, act, p in rows
            ],
        },
    )


def test_mixing_curve(benchmark, results_dir):
    n = 4
    steps = [0, 1, 2, 3, 4, 6, 8, 12, 20]
    curve = benchmark.pedantic(
        lambda: transposition_walk_tv(n, steps, samples=30_000), rounds=1, iterations=1
    )
    # strictly decreasing until the empirical noise floor (~0.011 at 30k
    # samples over 24 cells); past that the values jitter
    assert list(curve.tv[:6]) == sorted(curve.tv[:6], reverse=True)
    assert curve.tv[0] > 0.9 and max(curve.tv[-2:]) < 0.03
    contrast = shuffle_vs_walk(n, samples=30_000)
    assert contrast["walk_tv"] > contrast["cascade_tv"]
    lines = [
        f"Extension: random-transposition mixing, n = {n} "
        f"(Diaconis-Shahshahani cutoff ~ {cutoff_estimate(n):.1f} swaps)",
        "",
        f"{'swaps':>6}  {'TV to uniform':>13}",
    ]
    for s, tv in zip(curve.steps, curve.tv):
        lines.append(f"{s:>6}  {tv:>13.4f}")
    lines += [
        "",
        f"one-pass cascade (n-1 = {n - 1} structured swaps): "
        f"TV = {contrast['cascade_tv']:.4f} (noise floor ~{contrast['noise_floor']:.4f})",
        f"random walk with the same {n - 1} swaps: TV = {contrast['walk_tv']:.4f}",
    ]
    write_report(
        results_dir,
        "ext_mixing",
        "\n".join(lines),
        benchmark=benchmark,
        data={
            "n": n,
            "samples": 30_000,
            "cutoff_estimate": cutoff_estimate(n),
            "curve": [
                {"swaps": int(s), "tv": float(tv)}
                for s, tv in zip(curve.steps, curve.tv)
            ],
            "cascade_tv": float(contrast["cascade_tv"]),
            "walk_tv": float(contrast["walk_tv"]),
            "noise_floor": float(contrast["noise_floor"]),
        },
    )
