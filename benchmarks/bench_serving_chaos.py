"""Chaos campaign artefact: fault-injection invariants for the serving tier.

Runs the seeded chaos campaign from :mod:`repro.serve.chaos` against the
supervised serving tier — crash / stall / delay / corrupt / swap events
injected into worker sweeps while a closed-loop client population drives
load, then a clean recovery phase — and writes the full campaign payload
(schema ``serving_chaos/v1``) to ``results/serving_chaos.{txt,json}``.

The asserted invariants are the PR's acceptance criteria:

- **zero incorrect responses** — every response that reached a client
  passed the independent rank oracle, no matter what was injected;
- **every killed worker was replaced** — restarts ≥ kills, and every
  shard is back on the worker rung (mode ``full``) after recovery;
- **availability floor** — ≥ 90 % of attempts complete during chaos
  (the ladder degrades, it does not collapse), ≥ 99 % during recovery;
- **failovers happened and served real traffic** — the fallback rung
  was exercised, not just configured.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) shrinks the campaign
but keeps every invariant: chaos that is only tested at full scale is
chaos that regresses silently.
"""

import os

from conftest import write_report

from repro.serve import ChaosSpec, run_chaos_campaign

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N = 5 if SMOKE else 6
REQUESTS = 150 if SMOKE else 500
RECOVERY = 60 if SMOKE else 200
CLIENTS = 6 if SMOKE else 8
SEED = 3
SPEC = ChaosSpec(
    crash_p=0.10, stall_p=0.05, delay_p=0.05, corrupt_p=0.10, swap_p=0.05,
    stall_s=0.3,
)


def test_chaos_campaign_invariants(results_dir):
    payload = run_chaos_campaign(
        n=N,
        requests=REQUESTS,
        recovery_requests=RECOVERY,
        clients=CLIENTS,
        seed=SEED,
        spec=SPEC,
    )

    # -- the acceptance invariants --------------------------------------- #
    assert payload["incorrect_responses"] == 0, "a wrong response was served"
    assert payload["workers_killed"] >= 1, "chaos never killed a worker"
    assert payload["worker_restarts"] >= payload["workers_killed"]
    assert payload["failovers"] >= 1, "the fallback rung was never exercised"
    assert payload["availability_chaos"] >= 0.90
    assert payload["availability_recovery"] >= 0.99
    assert payload["recovered"], f"shards stuck: {payload['final_shard_modes']}"

    chaos, recovery = payload["phases"]["chaos"], payload["phases"]["recovery"]
    write_report(
        results_dir,
        "serving_chaos",
        f"Chaos campaign (n={N}, seed={SEED}, {REQUESTS}+{RECOVERY} requests, "
        f"{CLIENTS} clients)\n"
        f"injected: {payload['chaos']['injected']}\n"
        f"  incorrect responses : {payload['incorrect_responses']}\n"
        f"  workers killed      : {payload['workers_killed']}"
        f" -> restarts {payload['worker_restarts']}\n"
        f"  check failures      : {payload['check_failures']}"
        f" -> kernel quarantines {payload['kernel_quarantines']}\n"
        f"  failovers served    : {payload['failovers']}"
        f"  (breaker trips {payload['breaker_trips']})\n"
        f"  availability        : chaos {payload['availability_chaos']:.3f}, "
        f"recovery {payload['availability_recovery']:.3f}\n"
        f"  response modes      : chaos {chaos['modes']}, "
        f"recovery {recovery['modes']}\n"
        f"  recovered           : {payload['recovered']} "
        f"{payload['final_shard_modes']}",
        data=payload,
    )
