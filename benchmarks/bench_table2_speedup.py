"""Table II — hardware (pipelined circuit @ 100 MHz) vs software, n = 2..10.

The paper's SRC-6 column is a constant 10 ns (one clock per permutation);
the Xeon column grows with n, giving a speedup of ~2,800× at n = 10 for
their C code.  We model the hardware identically (cycle counts × the SRC-6
clock) and *measure* the software on this machine — a scalar Python
unranker standing in for the C program, plus the vectorised NumPy unranker
as the strongest software baseline.  The reproduced claim is the shape:
constant hardware cost, growing software cost, speedup rising with n.

This module also owns the observability acceptance check: disabled
telemetry must cost ≤ 2 % on the scalar-unrank hot path, measured by
:func:`repro.obs.bench.measure_disabled_metrics_overhead` and recorded
in ``results/table2_speedup.json``.
"""

from conftest import write_report

from repro.core.lehmer import unrank_batch, unrank_naive
from repro.obs.bench import measure_disabled_metrics_overhead

from repro.perf.speedup import render_table2, table2_rows

NS = list(range(2, 11))
ITERS = 20_000

#: Acceptance bound: disabled instrumentation on the hot path (ISSUE 2).
MAX_DISABLED_OVERHEAD_PCT = 2.0


def test_table2_regeneration(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: table2_rows(ns=NS, iterations=ITERS), rounds=1, iterations=1
    )

    # hardware column: constant one clock period, independent of n
    assert len({r.hw_ns for r in rows}) == 1
    assert rows[0].hw_ns == 10.0
    # software column grows with n … (Python call overhead compresses the
    # dynamic range relative to the paper's C baseline, so we assert the
    # direction and a ≥30 % end-to-end rise rather than the paper's ~30×)
    assert rows[-1].sw_ns > rows[0].sw_ns
    assert rows[-1].speedup > 1.3 * rows[0].speedup
    # hardware beats even the vectorised software at every n
    assert all(r.speedup_vs_batch > 1 for r in rows)

    # Observability acceptance: what would one disabled metric update per
    # scalar unrank cost on this hot path?  Must stay within 2 %.
    overhead = measure_disabled_metrics_overhead(
        lambda: unrank_naive(1_234_567, 10), instrumented_sites_per_op=1.0
    )
    assert overhead["overhead_pct"] <= MAX_DISABLED_OVERHEAD_PCT, overhead

    header = (
        "Table II reproduction — hardware model (100 MHz pipelined circuit)\n"
        "vs measured software on this host.  Paper: SRC-6 = 10 ns at all n;\n"
        "Xeon time grows with n; speedup ~2,800x at n = 10 (C baseline).\n"
    )
    write_report(
        results_dir,
        "table2_speedup",
        header + render_table2(rows),
        benchmark=benchmark,
        data={
            "hw_clock_ns": rows[0].hw_ns,
            "iterations": ITERS,
            "rows": [
                {
                    "n": r.n,
                    "hw_ns": r.hw_ns,
                    "sw_ns": r.sw_ns,
                    "speedup": r.speedup,
                    "speedup_vs_batch": r.speedup_vs_batch,
                }
                for r in rows
            ],
            "disabled_metrics_overhead": overhead,
            "max_disabled_overhead_pct": MAX_DISABLED_OVERHEAD_PCT,
        },
    )


def test_scalar_unrank_n10(benchmark):
    """The software baseline inner loop at the paper's largest n."""
    benchmark(lambda: unrank_naive(1_234_567, 10))


def test_batch_unrank_n10(benchmark):
    idx = list(range(0, 3_628_800, 907))  # 4002 indices
    benchmark(lambda: unrank_batch(idx, 10))
