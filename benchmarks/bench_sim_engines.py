"""Engine shoot-out: compiled bit-packed kernels vs the boolean interpreter.

Two claims the compiled engine makes (DESIGN.md §8), each asserted here
with the bit-identity guarantee that makes the speed worth trusting:

1. a pipelined batch sweep — every index of the n=8 converter pushed
   through the gate-level pipeline in one packed batch — runs ≥ 20×
   faster compiled than interpreted, with bit-identical outputs that
   also match the stage-accurate functional model;
2. an exhaustive stuck-at campaign runs ≥ 10× faster end to end under
   the fault-parallel compiled path than one-fault-per-run
   interpretation, with identical classification counts and examples.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) shrinks to n=6 and
only requires the compiled engine not to lose: the container running CI
is too noisy for ratio thresholds, but identity must still hold.
"""

import os
import time

import numpy as np

from conftest import write_report

from repro.core.converter import IndexToPermutationConverter
from repro.hdl import SequentialSimulator
from repro.robustness.campaign import CampaignSpec, fault_list, run_campaign

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N = 6 if SMOKE else 8
TRIALS = 1 if SMOKE else 3
MIN_SWEEP_SPEEDUP = 1.0 if SMOKE else 20.0
MIN_CAMPAIGN_SPEEDUP = 1.0 if SMOKE else 10.0


def _sweep(nl, stream, batch, backend, materialize):
    """One full pipeline sweep; returns (wall seconds, final-cycle words)."""
    sim = SequentialSimulator(nl, batch=batch, backend=backend)
    t0 = time.perf_counter()
    outs = sim.run_stream(stream, materialize=materialize)
    final = {name: np.asarray(vals) for name, vals in outs[-1].items()}
    return time.perf_counter() - t0, final


def test_engine_speedup_and_identity(benchmark, results_dir):
    conv = IndexToPermutationConverter(N)
    nl = conv.build_netlist(pipelined=True)
    batch = conv.index_limit
    indices = np.arange(batch, dtype=np.int64)
    # fill the pipeline with the held batch, plus one cycle so the last
    # mapping read is genuine steady-state output
    cycles = conv.pipeline_register_stages + 1
    stream = [{"index": indices}] * cycles

    # -- pipelined batch sweep ------------------------------------------ #
    _sweep(nl, stream, batch, "compiled", False)  # warm the kernel cache
    interp_s, interp_out = min(
        (_sweep(nl, stream, batch, "interp", True) for _ in range(TRIALS)),
        key=lambda r: r[0],
    )
    compiled_s, compiled_out = min(
        (_sweep(nl, stream, batch, "compiled", False) for _ in range(TRIALS)),
        key=lambda r: r[0],
    )
    benchmark.pedantic(
        lambda: _sweep(nl, stream, batch, "compiled", False),
        rounds=1,
        iterations=1,
    )

    assert interp_out.keys() == compiled_out.keys()
    for name in interp_out:
        assert np.array_equal(interp_out[name], compiled_out[name]), name
    golden = conv.convert_batch(indices)
    for pos in range(N):
        assert np.array_equal(compiled_out[f"out{pos}"], golden[:, pos])

    sweep_speedup = interp_s / compiled_s
    assert sweep_speedup >= MIN_SWEEP_SPEEDUP, (
        f"sweep speedup {sweep_speedup:.1f}x below {MIN_SWEEP_SPEEDUP}x "
        f"(interp {interp_s * 1e3:.1f}ms, compiled {compiled_s * 1e3:.1f}ms)"
    )

    # -- exhaustive stuck-at campaign ----------------------------------- #
    spec = CampaignSpec(circuit="converter", n=N, model="stuck")
    faults = len(fault_list(spec))
    res_i = run_campaign(CampaignSpec(circuit="converter", n=N, model="stuck", engine="interp"))
    res_c = run_campaign(CampaignSpec(circuit="converter", n=N, model="stuck", engine="compiled"))
    counts_i = (res_i.benign, res_i.detected, res_i.silent)
    counts_c = (res_c.benign, res_c.detected, res_c.silent)
    assert counts_i == counts_c
    assert res_i.examples == res_c.examples
    assert res_i.total == res_c.total == faults

    campaign_speedup = res_i.wall_s / res_c.wall_s
    assert campaign_speedup >= MIN_CAMPAIGN_SPEEDUP, (
        f"campaign speedup {campaign_speedup:.1f}x below "
        f"{MIN_CAMPAIGN_SPEEDUP}x ({res_i.wall_s:.2f}s vs {res_c.wall_s:.2f}s)"
    )

    write_report(
        results_dir,
        "sim_engines",
        f"Simulation engines: compiled bit-packed vs interpreter "
        f"(converter n={N}, pipelined)\n"
        f"batch sweep ({batch} lanes x {cycles} cycles):\n"
        f"  interp   : {interp_s * 1e3:9.1f} ms\n"
        f"  compiled : {compiled_s * 1e3:9.1f} ms   "
        f"({sweep_speedup:.1f}x, bit-identical, matches functional model)\n"
        f"exhaustive stuck-at campaign ({faults} faults):\n"
        f"  interp   : {res_i.wall_s:9.2f} s   ({res_i.sweeps} sweeps)\n"
        f"  compiled : {res_c.wall_s:9.2f} s   ({res_c.sweeps} sweeps, "
        f"{campaign_speedup:.1f}x, identical classification)\n\n"
        + res_c.render(),
        benchmark=benchmark,
        data={
            "n": N,
            "smoke": SMOKE,
            "batch": batch,
            "cycles": cycles,
            "sweep_interp_s": interp_s,
            "sweep_compiled_s": compiled_s,
            "sweep_speedup_x": sweep_speedup,
            "campaign_faults": faults,
            "campaign_interp_s": res_i.wall_s,
            "campaign_compiled_s": res_c.wall_s,
            "campaign_speedup_x": campaign_speedup,
            "campaign_counts": {
                "benign": res_c.benign,
                "detected": res_c.detected,
                "silent": res_c.silent,
            },
        },
    )
