"""Engine shoot-out: compiled bigints vs NumPy vector vs the interpreter.

Three claims the packed engines make (DESIGN.md §8), each asserted here
with the bit-identity guarantee that makes the speed worth trusting:

1. a pipelined batch sweep — every index of the n=8 converter pushed
   through the gate-level pipeline in one packed batch — runs ≥ 20×
   faster compiled than interpreted, with bit-identical outputs that
   also match the stage-accurate functional model;
2. the vector engine (the same kernels over NumPy ``uint64`` word
   arrays) stays bit-identical to compiled on that sweep, and its
   relative speed is recorded as ``vector_vs_compiled_speedup_x``;
3. an exhaustive stuck-at campaign runs ≥ 10× faster end to end under
   the fault-parallel compiled path than one-fault-per-run
   interpretation, with identical classification counts and examples —
   and identical again under the vector engine's wide sweeps.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) shrinks to n=6 and
only requires the packed engines not to lose: the container running CI
is too noisy for ratio thresholds, but identity must still hold.
"""

import os
import time

import numpy as np

from conftest import write_report

from repro.core.converter import IndexToPermutationConverter
from repro.hdl import SequentialSimulator
from repro.robustness.campaign import CampaignSpec, fault_list, run_campaign

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N = 6 if SMOKE else 8
TRIALS = 1 if SMOKE else 3
MIN_SWEEP_SPEEDUP = 1.0 if SMOKE else 20.0
MIN_CAMPAIGN_SPEEDUP = 1.0 if SMOKE else 10.0


def _sweep(nl, stream, batch, backend, materialize):
    """One full pipeline sweep; returns (wall seconds, final-cycle words)."""
    sim = SequentialSimulator(nl, batch=batch, backend=backend)
    t0 = time.perf_counter()
    outs = sim.run_stream(stream, materialize=materialize)
    final = {name: np.asarray(vals) for name, vals in outs[-1].items()}
    return time.perf_counter() - t0, final


def test_engine_speedup_and_identity(benchmark, results_dir):
    conv = IndexToPermutationConverter(N)
    nl = conv.build_netlist(pipelined=True)
    batch = conv.index_limit
    indices = np.arange(batch, dtype=np.int64)
    # fill the pipeline with the held batch, plus one cycle so the last
    # mapping read is genuine steady-state output
    cycles = conv.pipeline_register_stages + 1
    stream = [{"index": indices}] * cycles

    # -- pipelined batch sweep ------------------------------------------ #
    _sweep(nl, stream, batch, "compiled", False)  # warm the kernel cache
    _sweep(nl, stream, batch, "vector", False)
    interp_s, interp_out = min(
        (_sweep(nl, stream, batch, "interp", True) for _ in range(TRIALS)),
        key=lambda r: r[0],
    )
    compiled_s, compiled_out = min(
        (_sweep(nl, stream, batch, "compiled", False) for _ in range(TRIALS)),
        key=lambda r: r[0],
    )
    vector_s, vector_out = min(
        (_sweep(nl, stream, batch, "vector", False) for _ in range(TRIALS)),
        key=lambda r: r[0],
    )
    benchmark.pedantic(
        lambda: _sweep(nl, stream, batch, "compiled", False),
        rounds=1,
        iterations=1,
    )

    assert interp_out.keys() == compiled_out.keys() == vector_out.keys()
    for name in interp_out:
        assert np.array_equal(interp_out[name], compiled_out[name]), name
        assert np.array_equal(compiled_out[name], vector_out[name]), name
    golden = conv.convert_batch(indices)
    for pos in range(N):
        assert np.array_equal(compiled_out[f"out{pos}"], golden[:, pos])

    sweep_speedup = interp_s / compiled_s
    vector_vs_compiled = compiled_s / vector_s
    assert sweep_speedup >= MIN_SWEEP_SPEEDUP, (
        f"sweep speedup {sweep_speedup:.1f}x below {MIN_SWEEP_SPEEDUP}x "
        f"(interp {interp_s * 1e3:.1f}ms, compiled {compiled_s * 1e3:.1f}ms)"
    )

    # -- exhaustive stuck-at campaign ----------------------------------- #
    spec = CampaignSpec(circuit="converter", n=N, model="stuck")
    faults = len(fault_list(spec))
    res_i = run_campaign(CampaignSpec(circuit="converter", n=N, model="stuck", engine="interp"))
    res_c = run_campaign(CampaignSpec(circuit="converter", n=N, model="stuck", engine="compiled"))
    res_v = run_campaign(CampaignSpec(circuit="converter", n=N, model="stuck", engine="vector"))
    counts_i = (res_i.benign, res_i.detected, res_i.silent)
    counts_c = (res_c.benign, res_c.detected, res_c.silent)
    counts_v = (res_v.benign, res_v.detected, res_v.silent)
    assert counts_i == counts_c == counts_v
    assert res_i.examples == res_c.examples == res_v.examples
    assert res_i.total == res_c.total == res_v.total == faults

    campaign_speedup = res_i.wall_s / res_c.wall_s
    assert campaign_speedup >= MIN_CAMPAIGN_SPEEDUP, (
        f"campaign speedup {campaign_speedup:.1f}x below "
        f"{MIN_CAMPAIGN_SPEEDUP}x ({res_i.wall_s:.2f}s vs {res_c.wall_s:.2f}s)"
    )

    write_report(
        results_dir,
        "sim_engines",
        f"Simulation engines: interpreter vs compiled bigints vs NumPy "
        f"vector (converter n={N}, pipelined)\n"
        f"batch sweep ({batch} lanes x {cycles} cycles):\n"
        f"  interp   : {interp_s * 1e3:9.1f} ms\n"
        f"  compiled : {compiled_s * 1e3:9.1f} ms   "
        f"({sweep_speedup:.1f}x, bit-identical, matches functional model)\n"
        f"  vector   : {vector_s * 1e3:9.1f} ms   "
        f"({vector_vs_compiled:.2f}x vs compiled, bit-identical)\n"
        f"exhaustive stuck-at campaign ({faults} faults):\n"
        f"  interp   : {res_i.wall_s:9.2f} s   ({res_i.sweeps} sweeps)\n"
        f"  compiled : {res_c.wall_s:9.2f} s   ({res_c.sweeps} sweeps, "
        f"{campaign_speedup:.1f}x, identical classification)\n"
        f"  vector   : {res_v.wall_s:9.2f} s   ({res_v.sweeps} sweeps, "
        f"identical classification)\n\n"
        + res_c.render(),
        benchmark=benchmark,
        data={
            "n": N,
            "smoke": SMOKE,
            "batch": batch,
            "cycles": cycles,
            "sweep_interp_s": interp_s,
            "sweep_compiled_s": compiled_s,
            "sweep_vector_s": vector_s,
            "sweep_speedup_x": sweep_speedup,
            "vector_vs_compiled_speedup_x": vector_vs_compiled,
            "campaign_faults": faults,
            "campaign_interp_s": res_i.wall_s,
            "campaign_compiled_s": res_c.wall_s,
            "campaign_vector_s": res_v.wall_s,
            "campaign_sweeps_compiled": res_c.sweeps,
            "campaign_sweeps_vector": res_v.sweeps,
            "campaign_speedup_x": campaign_speedup,
            "campaign_counts": {
                "benign": res_c.benign,
                "detected": res_c.detected,
                "silent": res_c.silent,
            },
        },
    )
