"""§II-D / §III-C — the complexity claims measured on real netlists.

Paper: converter has n(n+1)/2 comparators (structural: n(n−1)/2 after
folding the trivial line), shuffle has n(n−1)/2 crossovers; both are
O(n²) in area and O(n) in stage delay.  We fit log-log exponents over a
range of n on the actual gate-level circuits.
"""

from conftest import write_report

from repro.analysis.complexity import (
    converter_complexity,
    fit_power_law,
    shuffle_complexity,
)

NS = [4, 6, 8, 10, 12, 14, 16]


def test_complexity_exponents(benchmark, results_dir):
    conv, shuf = benchmark.pedantic(
        lambda: (
            [converter_complexity(n) for n in NS],
            [shuffle_complexity(n) for n in NS],
        ),
        rounds=1,
        iterations=1,
    )

    a_cmp, r_cmp = fit_power_law(NS, [c.unit_count for c in conv])
    a_gates, r_gates = fit_power_law(NS, [c.logic_gates for c in conv])
    a_stage, _ = fit_power_law(NS, [c.stages for c in conv])
    a_cross, _ = fit_power_law(NS, [s.unit_count for s in shuf])

    # the paper's orders: O(n^2) units, O(n) stages
    assert 1.7 < a_cmp < 2.3 and r_cmp > 0.99
    assert 1.7 < a_cross < 2.3
    assert 0.9 < a_stage < 1.1
    assert a_gates < 4.0  # low-order polynomial area

    lines = [
        "Complexity verification on gate-level netlists",
        "",
        f"{'n':>3}  {'conv comparators':>16}  {'conv gates':>10}  {'conv depth':>10}  "
        f"{'shuffle crossovers':>18}  {'shuffle gates':>13}",
    ]
    for c, s in zip(conv, shuf):
        lines.append(
            f"{c.n:>3}  {c.unit_count:>16}  {c.logic_gates:>10}  {c.depth:>10}  "
            f"{s.unit_count:>18}  {s.logic_gates:>13}"
        )
    lines += [
        "",
        f"comparator exponent  = {a_cmp:.2f}  (paper: 2, formula n(n-1)/2; "
        f"paper accounting n(n+1)/2)",
        f"crossover exponent   = {a_cross:.2f}  (paper: 2, formula n(n-1)/2)",
        f"gate-area exponent   = {a_gates:.2f}",
        f"stage-delay exponent = {a_stage:.2f}  (paper: 1)",
    ]
    write_report(
        results_dir,
        "complexity",
        "\n".join(lines),
        benchmark=benchmark,
        data={
            "ns": NS,
            "exponents": {
                "comparators": a_cmp,
                "crossovers": a_cross,
                "gate_area": a_gates,
                "stage_delay": a_stage,
            },
            "fit_r2": {"comparators": r_cmp, "gate_area": r_gates},
            "converter": [
                {"n": c.n, "units": c.unit_count, "gates": c.logic_gates, "depth": c.depth}
                for c in conv
            ],
            "shuffle": [
                {"n": s.n, "units": s.unit_count, "gates": s.logic_gates}
                for s in shuf
            ],
        },
    )


def test_netlist_build_scaling(benchmark):
    """Constructing the n = 16 converter netlist (the heavy structural op)."""
    from repro.core.converter import IndexToPermutationConverter

    benchmark(lambda: IndexToPermutationConverter(16).build_netlist(pipelined=True))
