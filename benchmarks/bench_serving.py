"""Serving-layer benchmark: what micro-batching buys the hot path.

Two measurements, written to ``results/serving.{txt,json}``:

1. **Batched vs unbatched** — the same stream of distinct unrank
   requests (n=8, cache disabled) served (a) one compiled sweep per
   request (``max_batch=1``) and (b) coalesced into 63-lane sweeps
   (``max_batch=63``, submitted in full waves so every batch closes on
   the batch-full path with no deadline waits).  The per-request cost
   must drop by ≥ 10×: one packed sweep costs barely more than one
   single-lane sweep, so 63 lanes amortise it 63-fold minus the
   per-request packing/admission overhead.  The same stream is also
   served with ``engine="vector"`` at its wider quantum (waves of
   ``VEC_LANES`` riding single wide sweeps) and the per-request cost
   recorded next to the compiled columns.
2. **Closed-loop load vs batch size** — the synthetic load generator
   (8 clients, unrank-only mix) against services configured with
   increasing lane budgets; the table records throughput and latency
   percentiles per batch size.
3. **Supervised-tier overhead** — the same full-wave batched stream
   served through the fault-tolerant supervised tier (worker thread
   handoff + end-to-end response oracle, no faults injected).  The
   insurance must cost ≤ 20 % over the in-process path: the per-batch
   check is vectorised and the handoff is one queue put + event wait
   per 63-request sweep.
4. **Telemetry overhead** — the supervised stream again with the full
   telemetry pipeline on (metrics registry enabled, latency digests,
   10 % head-sampled tracing into the span ring) versus telemetry off.
   The whole point of batch-granularity counters, precomputed label
   handles and head sampling is that observability must cost ≤ 5 %
   throughput; this is the assertion that keeps it true.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) shrinks the request
counts and — because CI containers are too noisy for ratio thresholds —
only requires batching not to *lose* (ratio ≥ 1) and relaxes the
supervised-overhead bound.
"""

import os
import time

from conftest import write_report

from repro.core.converter import IndexToPermutationConverter
from repro.serve import (
    PermutationService,
    Request,
    ServiceConfig,
    SupervisedService,
    run_closed_loop,
)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N = 8
LANES = 63
WAVES = 4 if SMOKE else 24
SINGLES = 40 if SMOKE else 400
LOAD_TOTAL = 80 if SMOKE else 400
LOAD_CLIENTS = 4 if SMOKE else 8
MIN_BATCH_SPEEDUP = 1.0 if SMOKE else 10.0
MAX_SUPERVISED_OVERHEAD_X = 2.0 if SMOKE else 1.2
MAX_TELEMETRY_OVERHEAD_X = 1.5 if SMOKE else 1.05
TRACE_SAMPLE_RATE = 0.1
TRIALS = 1 if SMOKE else 3
BATCH_SIZES = (1, 4, 16, LANES)
# the vector engine lifts the sweep quantum past the compiled 63-lane
# ceiling; full waves at these widths ride single wide sweeps
VEC_LANES = 256 if SMOKE else 1024
VEC_WAVES = 2 if SMOKE else 8
VECTOR_BATCH_SIZES = () if SMOKE else (128, 512)


def _no_cache(max_batch: int, engine: str = "auto") -> ServiceConfig:
    return ServiceConfig(
        max_batch=max_batch,
        batch_deadline_s=60.0,
        cache_capacity=0,
        engine=engine,
    )


def _warm(svc: PermutationService) -> None:
    """One throwaway wave so engine construction is outside the timing."""
    futs = [
        svc.submit(Request("unrank", N, i)) for i in range(svc.config.max_batch)
    ]
    for f in futs:
        f.result(timeout=10.0)


def _time_unbatched(count: int) -> float:
    """Per-request seconds with one sweep per request."""
    with PermutationService(_no_cache(1)) as svc:
        _warm(svc)
        t0 = time.perf_counter()
        for i in range(count):
            svc.submit(Request("unrank", N, 1 + i)).result(timeout=10.0)
        return (time.perf_counter() - t0) / count


def _drive_waves(svc, waves: int, lanes: int = LANES) -> float:
    """Per-request seconds over full ``lanes``-wide waves on ``svc``."""
    _warm(svc)
    t0 = time.perf_counter()
    for w in range(waves):
        base = 1 + lanes * (w + 1)
        futs = [
            svc.submit(Request("unrank", N, base + i)) for i in range(lanes)
        ]
        for f in futs:
            f.result(timeout=30.0)
    return (time.perf_counter() - t0) / (waves * lanes)


def _time_batched(waves: int) -> float:
    """Per-request seconds with full 63-lane waves (batch-full path)."""
    with PermutationService(_no_cache(LANES)) as svc:
        return _drive_waves(svc, waves)


def _time_vector(waves: int) -> float:
    """Per-request seconds with wide waves on the vector engine."""
    with PermutationService(_no_cache(VEC_LANES, engine="vector")) as svc:
        return _drive_waves(svc, waves, lanes=VEC_LANES)


def _time_supervised(waves: int) -> float:
    """The same full waves through the supervised tier (checks on)."""
    with SupervisedService(_no_cache(LANES)) as svc:
        return _drive_waves(svc, waves)


def _time_supervised_telemetry(waves: int) -> float:
    """Supervised waves with the telemetry pipeline fully enabled."""
    from repro.obs import metrics as obs_metrics
    from repro.obs.sampling import ProbabilisticSampler, SpanRing
    from repro.obs.tracing import Tracer

    tracer = Tracer(
        sampler=ProbabilisticSampler(TRACE_SAMPLE_RATE, seed=1),
        ring=SpanRing(256),
        keep_roots=False,
    )
    obs_metrics.REGISTRY.enable()
    try:
        with SupervisedService(_no_cache(LANES), tracer=tracer) as svc:
            return _drive_waves(svc, waves)
    finally:
        obs_metrics.REGISTRY.disable()
        obs_metrics.REGISTRY.reset()


def test_batched_serving_speedup_and_load_profile(benchmark, results_dir):
    conv = IndexToPermutationConverter(N)

    # -- correctness spot check through the batched path ----------------- #
    with PermutationService(_no_cache(LANES)) as svc:
        futs = [svc.submit(Request("unrank", N, i * 7)) for i in range(LANES)]
        for i, f in enumerate(futs):
            assert f.result(timeout=10.0).permutation == conv.convert(i * 7)

    # -- and through a single wide vector sweep -------------------------- #
    with PermutationService(_no_cache(VEC_LANES, engine="vector")) as svc:
        assert svc.config.max_batch == VEC_LANES > LANES
        futs = [
            svc.submit(Request("unrank", N, i * 5)) for i in range(VEC_LANES)
        ]
        for i, f in enumerate(futs):
            assert f.result(timeout=30.0).permutation == conv.convert(i * 5)

    # -- batched vs unbatched (best of TRIALS: scheduler noise only ever
    #    slows a trial down, so min() is the honest per-path cost) ------- #
    single_s = min(_time_unbatched(SINGLES) for _ in range(TRIALS))
    batched_s = min(_time_batched(WAVES) for _ in range(TRIALS))
    vector_s = min(_time_vector(VEC_WAVES) for _ in range(TRIALS))
    benchmark.pedantic(lambda: _time_batched(1), rounds=1, iterations=1)
    speedup = single_s / batched_s
    vector_speedup = single_s / vector_s
    assert speedup >= MIN_BATCH_SPEEDUP, (
        f"batched serving {speedup:.1f}x below {MIN_BATCH_SPEEDUP}x "
        f"(single {single_s * 1e6:.1f}us/req, batched {batched_s * 1e6:.1f}us/req)"
    )

    # -- supervised-tier overhead on the no-fault workload --------------- #
    # Paired trials: each ratio compares back-to-back runs so shared
    # scheduler noise cancels; min() keeps the cleanest observation, the
    # same logic as the min() above.
    pairs = [(_time_batched(WAVES), _time_supervised(WAVES)) for _ in range(TRIALS)]
    overhead_x = min(s / b for b, s in pairs)
    supervised_s = min(s for _, s in pairs)
    assert overhead_x <= MAX_SUPERVISED_OVERHEAD_X, (
        f"supervised tier costs {overhead_x:.2f}x the in-process path "
        f"(supervised {supervised_s * 1e6:.1f}us/req, "
        f"batched {batched_s * 1e6:.1f}us/req), "
        f"budget {MAX_SUPERVISED_OVERHEAD_X}x"
    )

    # -- telemetry overhead on the supervised path ----------------------- #
    # Paired trials, telemetry-on vs -off back to back.  The overhead
    # estimate is the smaller of two one-sided statistics — the best
    # paired ratio (shared noise cancels within a pair) and the ratio of
    # best-observed costs (each side's min is its honest clean-machine
    # cost, the same logic as the min() calls above).  Scheduler noise
    # only ever inflates either one, so their min is still an upper
    # bound on the true overhead.
    tel_trials = TRIALS if SMOKE else max(TRIALS, 5)
    tel_pairs = [
        (_time_supervised(WAVES), _time_supervised_telemetry(WAVES))
        for _ in range(tel_trials)
    ]
    telemetry_x = min(
        min(t / b for b, t in tel_pairs),
        min(t for _, t in tel_pairs) / min(b for b, _ in tel_pairs),
    )
    telemetry_s = min(t for _, t in tel_pairs)
    assert telemetry_x <= MAX_TELEMETRY_OVERHEAD_X, (
        f"telemetry pipeline costs {telemetry_x:.3f}x the dark supervised "
        f"path (on {telemetry_s * 1e6:.1f}us/req), "
        f"budget {MAX_TELEMETRY_OVERHEAD_X}x"
    )

    # -- closed-loop load vs batch size ---------------------------------- #
    rows = []
    sized = [(size, "auto") for size in BATCH_SIZES]
    sized += [(size, "vector") for size in VECTOR_BATCH_SIZES]
    for size, engine in sized:
        cfg = ServiceConfig(
            max_batch=size,
            batch_deadline_s=0.001,
            cache_capacity=0,
            engine=engine,
        )
        with PermutationService(cfg) as svc:
            report = run_closed_loop(
                svc,
                N,
                total=LOAD_TOTAL,
                clients=LOAD_CLIENTS,
                mix={"unrank": 1.0},
                seed=7,
            )
        pct = report.latency_percentiles()
        rows.append(
            {
                "batch_size": size,
                "engine": engine,
                "throughput_rps": report.throughput_rps,
                "p50_ms": pct["p50"] * 1e3,
                "p99_ms": pct["p99"] * 1e3,
                "mean_lanes": report.mean_lanes,
                "shed": report.shed,
            }
        )

    table = "\n".join(
        f"  {r['batch_size']:>10}  {r['engine']:>8}  "
        f"{r['throughput_rps']:>12.0f}  "
        f"{r['p50_ms']:>8.3f}  {r['p99_ms']:>8.3f}  {r['mean_lanes']:>10.1f}"
        for r in rows
    )
    write_report(
        results_dir,
        "serving",
        f"Batch serving layer (unrank n={N}, cache disabled)\n"
        f"per-request cost:\n"
        f"  unbatched (1 lane/sweep)  : {single_s * 1e6:9.1f} us/req\n"
        f"  batched  ({LANES} lanes/sweep) : {batched_s * 1e6:9.1f} us/req   "
        f"({speedup:.1f}x)\n"
        f"  vector ({VEC_LANES} lanes/sweep): {vector_s * 1e6:9.1f} us/req   "
        f"({vector_speedup:.1f}x)\n"
        f"  supervised tier (checks on): {supervised_s * 1e6:9.1f} us/req   "
        f"({overhead_x:.2f}x overhead, budget {MAX_SUPERVISED_OVERHEAD_X}x)\n"
        f"  telemetry on (metrics+{TRACE_SAMPLE_RATE:.0%} traces): "
        f"{telemetry_s * 1e6:9.1f} us/req   "
        f"({telemetry_x:.3f}x overhead, budget {MAX_TELEMETRY_OVERHEAD_X}x)\n\n"
        f"closed-loop load, {LOAD_CLIENTS} clients x {LOAD_TOTAL} requests:\n"
        f"  {'batch size':>10}  {'engine':>8}  {'req/s':>12}  {'p50 ms':>8}  "
        f"{'p99 ms':>8}  {'mean lanes':>10}\n" + table,
        benchmark=benchmark,
        data={
            "n": N,
            "smoke": SMOKE,
            "single_us_per_req": single_s * 1e6,
            "batched_us_per_req": batched_s * 1e6,
            "batched_speedup_x": speedup,
            "vector_us_per_req": vector_s * 1e6,
            "vector_lanes": VEC_LANES,
            "vector_speedup_x": vector_speedup,
            "min_required_speedup_x": MIN_BATCH_SPEEDUP,
            "supervised_us_per_req": supervised_s * 1e6,
            "supervised_overhead_x": overhead_x,
            "max_supervised_overhead_x": MAX_SUPERVISED_OVERHEAD_X,
            "telemetry_us_per_req": telemetry_s * 1e6,
            "telemetry_overhead_x": telemetry_x,
            "max_telemetry_overhead_x": MAX_TELEMETRY_OVERHEAD_X,
            "trace_sample_rate": TRACE_SAMPLE_RATE,
            "load_profile": rows,
        },
    )
