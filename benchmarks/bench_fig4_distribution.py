"""Figure 4 — distribution of 2^20 Knuth-shuffle 4-element permutations.

The paper plots 24 bars of ≈43,690 occurrences each (quoting 43,399 and
43,897 for two of them) and concludes uniformity.  We run the same 2^20
samples through the LFSR-driven shuffle, write the full bar chart, and
assert flatness quantitatively (bar spread, chi-square, total variation).
"""

from conftest import write_report

from repro.analysis.distribution import fig4_experiment

SAMPLES = 1 << 20


def test_fig4_regeneration(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: fig4_experiment(n=4, samples=SAMPLES), rounds=1, iterations=1
    )

    assert result.counts_by_index.sum() == SAMPLES
    expected = result.expected_per_bar  # 43,690.67
    # paper's two quoted bars sit within ±0.7 % of expected; we allow ±2.5 %
    assert result.min_bar > expected * 0.975
    assert result.max_bar < expected * 1.025
    # quantitative uniformity
    assert result.p_value > 1e-3
    assert result.tv_distance < 0.01

    header = (
        f"Figure 4 reproduction — {SAMPLES} Knuth-shuffle permutations, n = 4\n"
        f"expected per bar = {expected:.1f} (paper quotes bars 43,399 and 43,897)\n"
        f"measured min = {result.min_bar}, max = {result.max_bar}, "
        f"chi2 p = {result.p_value:.4f}, TV = {result.tv_distance:.5f}\n"
    )
    write_report(
        results_dir,
        "fig4_distribution",
        header + result.render(),
        benchmark=benchmark,
        data={
            "samples": SAMPLES,
            "n": 4,
            "expected_per_bar": expected,
            "min_bar": int(result.min_bar),
            "max_bar": int(result.max_bar),
            "chi2_p_value": float(result.p_value),
            "tv_distance": float(result.tv_distance),
            "counts_by_index": [int(c) for c in result.counts_by_index],
        },
    )


def test_fig4_sampling_throughput(benchmark):
    """Raw sampling rate of the vectorised shuffle at n = 4."""
    from repro.core.knuth import KnuthShuffleCircuit

    circ = KnuthShuffleCircuit(4)
    benchmark(lambda: circ.sample(65_536))
