"""§III-C — counting derangements to estimate e, n = 4 / 8 / 16.

The paper: 1,048,576 random 4-element permutations contained 385,811
derangements, estimating e ≈ 2.718; repeated at n = 8 and n = 16.  (The
derangement fraction at n = 4 is exactly 9/24 = 0.375, so the ideal count
is 393,216; the paper's figure deviates by ~1.9 %.)  We regenerate all
three rows and additionally verify the parallel jump-ahead decomposition
is bit-identical to the sequential run.
"""

import math

from conftest import write_report

from repro.analysis.derangements import derangement_experiment
from repro.apps.montecarlo import parallel_derangement_estimate

SAMPLES = 1 << 20


def test_derangement_rows(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: [derangement_experiment(n, samples=SAMPLES) for n in (4, 8, 16)],
        rounds=1,
        iterations=1,
    )

    lines = [
        f"Derangement experiment — {SAMPLES} Knuth-shuffle samples per n",
        "(paper: n=4 gave 385,811 derangements -> e ~ 2.718)",
        "",
        f"{'n':>3}  {'derangements':>12}  {'e estimate':>10}  {'exact d_n/n!':>12}  {'rel err vs e':>12}",
    ]
    for r in results:
        lines.append(
            f"{r.n:>3}  {r.derangements:>12}  {r.e_estimate:>10.5f}  "
            f"{r.expected_fraction:>12.6f}  {r.e_error:>12.2e}"
        )
        # at 2^20 samples the fraction estimate is good to ~0.2 %
        assert abs(r.observed_fraction - r.expected_fraction) < 0.005
        assert abs(r.e_estimate - math.e) / math.e < 0.02
    write_report(
        results_dir,
        "derangements",
        "\n".join(lines),
        benchmark=benchmark,
        data={
            "samples": SAMPLES,
            "rows": [
                {
                    "n": r.n,
                    "derangements": int(r.derangements),
                    "e_estimate": r.e_estimate,
                    "expected_fraction": r.expected_fraction,
                    "e_error": r.e_error,
                }
                for r in results
            ],
        },
    )


def test_parallel_decomposition_exact(benchmark, results_dir):
    """Jump-ahead sharding reproduces the sequential count bit for bit."""
    samples = 1 << 16
    seq = derangement_experiment(4, samples=samples)
    par = benchmark.pedantic(
        lambda: parallel_derangement_estimate(4, samples=samples, workers=8),
        rounds=1,
        iterations=1,
    )
    assert par.derangements == seq.derangements
    write_report(
        results_dir,
        "derangements_parallel",
        f"sequential={seq.derangements} parallel(8 workers)={par.derangements} "
        f"identical={par.derangements == seq.derangements}",
        benchmark=benchmark,
        data={
            "n": 4,
            "samples": samples,
            "sequential": int(seq.derangements),
            "parallel": int(par.derangements),
            "identical": par.derangements == seq.derangements,
        },
    )


def test_derangement_scan_throughput(benchmark):
    """The vectorised fixed-point scan on a large block."""
    import numpy as np

    from repro.analysis.derangements import derangement_mask
    from repro.core.knuth import KnuthShuffleCircuit

    perms = KnuthShuffleCircuit(8).sample(100_000)
    count = benchmark(lambda: int(derangement_mask(perms).sum()))
    assert 0 < count < 100_000
