"""Extension: strong scaling of the process-parallel experiment runners.

Fixed problems, growing worker counts; results are asserted bit-identical
across counts (the harness refuses otherwise) and the wall-clock table is
written out.  Speedup depends on the host's core count (this container
exposes a single CPU, so expect flat times here); the *determinism* of the
decomposition — the property a cluster deployment actually relies on — is
host-independent and is what the assertions check.
"""

import os

from conftest import write_report

from repro.parallel.experiments import parallel_derangements, parallel_fig4_counts
from repro.perf.scaling import render_scaling_table, strong_scaling

SAMPLES = 1 << 18


def test_derangement_strong_scaling(benchmark, results_dir):
    def run():
        return strong_scaling(
            lambda w: parallel_derangements(8, samples=SAMPLES, workers=w).derangements,
            worker_counts=(1, 2, 4),
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len({p.result_digest for p in points}) == 1
    write_report(
        results_dir,
        "ext_scaling_derangements",
        f"Strong scaling: derangement count, n = 8, {SAMPLES} samples\n"
        f"(host exposes {os.cpu_count()} CPU(s); result bit-identical at "
        "every worker count)\n\n"
        + render_scaling_table(points),
        benchmark=benchmark,
        data={
            "experiment": "derangements",
            "n": 8,
            "samples": SAMPLES,
            "points": [
                {"workers": p.workers, "seconds": p.seconds,
                 "speedup": p.speedup_vs(points[0])}
                for p in points
            ],
            "bit_identical": len({p.result_digest for p in points}) == 1,
        },
    )


def test_fig4_strong_scaling(benchmark, results_dir):
    def run():
        return strong_scaling(
            lambda w: parallel_fig4_counts(4, samples=SAMPLES, workers=w),
            worker_counts=(1, 2, 4),
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len({p.result_digest for p in points}) == 1
    write_report(
        results_dir,
        "ext_scaling_fig4",
        f"Strong scaling: Fig.-4 histogram, n = 4, {SAMPLES} samples\n"
        f"(host exposes {os.cpu_count()} CPU(s))\n\n"
        + render_scaling_table(points),
        benchmark=benchmark,
        data={
            "experiment": "fig4_counts",
            "n": 4,
            "samples": SAMPLES,
            "points": [
                {"workers": p.workers, "seconds": p.seconds,
                 "speedup": p.speedup_vs(points[0])}
                for p in points
            ],
            "bit_identical": len({p.result_digest for p in points}) == 1,
        },
    )
