"""repro — reproduction of Butler & Sasao, *Hardware Index to Permutation
Converter* (RAW @ IPDPS 2012).

The package builds the paper's two circuits — the factorial-number-system
index-to-permutation converter and the Knuth-shuffle random permutation
generator — both as fast functional models and as gate-level netlists on a
simulated hardware substrate, together with the FPGA resource/timing models
and the statistical experiments of the paper's evaluation.

Quick start::

    from repro import IndexToPermutationConverter, KnuthShuffleCircuit

    conv = IndexToPermutationConverter(4)
    conv.convert(23)               # -> (3, 2, 1, 0)
    conv.convert_batch(range(24))  # all 24 permutations, NumPy-batched

    shuffle = KnuthShuffleCircuit(8)
    shuffle.sample(1000)           # 1000 uniform random permutations

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import (
    FactorialDigits,
    IndexToPermutationConverter,
    KnuthShuffleCircuit,
    Permutation,
    PermutationSequence,
    RandomPermutationGenerator,
    SelectionSortNetwork,
    all_permutations,
    factorial,
    rank,
    unrank,
)
from repro.errors import (
    FaultDetectedError,
    InvalidIndexError,
    InvalidPermutationError,
    ReproError,
    SilentCorruptionError,
    WorkerFailedError,
)
from repro.rng import FibonacciLFSR, GaloisLFSR, ScaledRandomInteger
from repro.robustness import CheckedConverter

__version__ = "1.1.0"

__all__ = [
    "CheckedConverter",
    "FaultDetectedError",
    "InvalidIndexError",
    "InvalidPermutationError",
    "ReproError",
    "SilentCorruptionError",
    "WorkerFailedError",
    "FactorialDigits",
    "IndexToPermutationConverter",
    "KnuthShuffleCircuit",
    "Permutation",
    "PermutationSequence",
    "RandomPermutationGenerator",
    "SelectionSortNetwork",
    "all_permutations",
    "factorial",
    "rank",
    "unrank",
    "FibonacciLFSR",
    "GaloisLFSR",
    "ScaledRandomInteger",
    "__version__",
]
