"""LUT-cascade realisation of the converter (paper §II-B, ref. [16]).

"Note that this circuit can be implemented as an LUT cascade.  At each
stage of the LUT cascade, there are inputs and outputs that carry a
partially completed output.  Also, there are inputs and outputs that carry
index reduced by the values contributed by higher order digits."

A cascade cell is a single memory: its address is the stage's rail input
(the reduced running index plus the partial output assembled so far) and
its word is the rail output (further-reduced index, the partial output
extended by one element).  This module sizes that realisation exactly —
per-cell address/word widths and memory bits — and exposes the classic
memory-vs-logic trade-off against the discrete gate implementation of
:mod:`repro.core.converter`: cascade memory grows like ``2^(n log n)``
while discrete logic grows polynomially, so cells win only for small
stages (which is precisely how LUT-cascade synthesis mixes the two).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.converter import IndexToPermutationConverter
from repro.core.factorial import element_width

__all__ = ["CascadeCell", "converter_cascade", "CascadeReport"]


@dataclass(frozen=True)
class CascadeCell:
    """One memory cell of the cascade."""

    stage: int
    index_bits_in: int  #: reduced-index rail entering the cell
    partial_bits_in: int  #: partially completed output entering
    index_bits_out: int
    partial_bits_out: int

    @property
    def address_bits(self) -> int:
        return self.index_bits_in + self.partial_bits_in

    @property
    def word_bits(self) -> int:
        return self.index_bits_out + self.partial_bits_out

    @property
    def memory_bits(self) -> int:
        """ROM size: ``2^address × word``."""
        return (1 << self.address_bits) * self.word_bits


@dataclass(frozen=True)
class CascadeReport:
    """The full cascade and its totals."""

    n: int
    cells: tuple[CascadeCell, ...]

    @property
    def total_memory_bits(self) -> int:
        return sum(c.memory_bits for c in self.cells)

    @property
    def max_cell_address_bits(self) -> int:
        return max(c.address_bits for c in self.cells)

    @property
    def levels(self) -> int:
        """Cascade delay in cells — O(n), matching the discrete design."""
        return len(self.cells)


def converter_cascade(n: int) -> CascadeReport:
    """Size the LUT-cascade realisation of the n-element converter.

    The partial output carried between cells is the elements emitted so
    far (``t`` elements × ⌈log2 n⌉ bits entering cell ``t``); with a fixed
    input permutation the remaining pool is a function of those elements,
    so no separate pool rail is needed — exactly the paper's description.
    """
    conv = IndexToPermutationConverter(n)
    ew = element_width(n)
    cells = []
    for spec in conv.stages:
        t = spec.position
        cells.append(
            CascadeCell(
                stage=t,
                index_bits_in=spec.index_bits_in if spec.pool_size > 1 else 0,
                partial_bits_in=t * ew,
                index_bits_out=spec.index_bits_out if spec.pool_size > 2 else 0,
                partial_bits_out=(t + 1) * ew,
            )
        )
    return CascadeReport(n=n, cells=tuple(cells))
