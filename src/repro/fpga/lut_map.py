"""Technology mapping: cover a gate netlist with k-input LUTs.

The mapper uses greedy cone packing: sweeping the netlist in topological
order, each logic gate merges the cuts of its single-fanout logic fanins
while the merged leaf set stays within ``k`` inputs; multi-fanout gates and
leaves (primary inputs, register outputs) terminate cones.  The LUT network
is then the set of cones rooted at observable wires (primary outputs and
register D pins) plus every cone leaf that is itself a logic gate.

This is the classical heuristic underlying production mappers (duplication
-free mapping); it will not match Quartus II LUT-for-LUT, but it yields a
faithful LUT *histogram by input count* — the quantity Tables III and IV
tabulate — and a LUT-level depth for the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdl.gates import Op
from repro.hdl.netlist import Netlist, Wire

__all__ = ["LUT", "map_to_luts", "lut_histogram"]

_LEAF_OPS = frozenset({Op.INPUT, Op.REG, Op.CONST0, Op.CONST1})
_CONST_OPS = frozenset({Op.CONST0, Op.CONST1})


@dataclass(frozen=True)
class LUT:
    """One mapped lookup table: its root wire and its input wires."""

    root: Wire
    inputs: tuple[Wire, ...]

    @property
    def size(self) -> int:
        return len(self.inputs)


def _observable_roots(nl: Netlist) -> list[Wire]:
    roots = {w for bus in nl.outputs.values() for w in bus}
    roots.update(r.d for r in nl.registers)
    return sorted(roots)


def map_to_luts(nl: Netlist, k: int = 6) -> list[LUT]:
    """Cover the live logic of ``nl`` with LUTs of at most ``k`` inputs.

    Constants are folded into LUT masks and never count as inputs; a
    wire driven by a leaf (input/register/constant) maps to no LUT even
    when it feeds an output directly.
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    live = nl.live_wires()
    # effective fanout among live sinks only
    fanout = [0] * len(nl.gates)
    for w, g in enumerate(nl.gates):
        if w not in live:
            continue
        for f in g.fanin:
            fanout[f] += 1
    for r in nl.registers:
        fanout[r.d] += 1
    for bus in nl.outputs.values():
        for w in bus:
            fanout[w] += 1

    # cuts[w] = leaf set of the cone greedily grown at w
    cuts: dict[Wire, frozenset[Wire]] = {}
    for w in sorted(live):
        g = nl.gates[w]
        if g.op in _LEAF_OPS:
            continue
        leaves: set[Wire] = set()
        for f in g.fanin:
            fg = nl.gates[f]
            if fg.op in _CONST_OPS:
                continue  # absorbed into the LUT mask
            if fg.op in _LEAF_OPS or fanout[f] > 1:
                leaves.add(f)
            else:
                merged = leaves | cuts[f]
                if len(merged) <= k:
                    leaves = merged
                else:
                    leaves.add(f)
        if len(leaves) > k:
            # degenerate (arity > k with no absorbable fanins); split by
            # keeping raw fanins — cannot happen with 3-input primitives
            # and k ≥ 3, guarded for safety.
            leaves = {f for f in g.fanin if nl.gates[f].op not in _CONST_OPS}
        cuts[w] = frozenset(leaves)

    luts: list[LUT] = []
    emitted: set[Wire] = set()
    stack = [w for w in _observable_roots(nl) if nl.gates[w].op not in _LEAF_OPS]
    while stack:
        root = stack.pop()
        if root in emitted:
            continue
        emitted.add(root)
        cut = cuts[root]
        luts.append(LUT(root=root, inputs=tuple(sorted(cut))))
        for leaf in cut:
            if nl.gates[leaf].op not in _LEAF_OPS and leaf not in emitted:
                stack.append(leaf)
    return luts


def lut_histogram(luts: list[LUT], k: int = 6) -> dict[int, int]:
    """Count LUTs by input arity: ``{size: count}`` for sizes 1..k."""
    hist = {size: 0 for size in range(1, k + 1)}
    for lut in luts:
        hist[max(1, lut.size)] = hist.get(max(1, lut.size), 0) + 1
    return hist
