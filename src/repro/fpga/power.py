"""Switching activity and dynamic power estimation.

FPGA dynamic power follows ``P = Σ α_i · C · V² · f`` over nets, with
``α_i`` the per-net toggle rate.  We measure α directly by running the
cycle-accurate simulator and counting transitions on every live wire —
the vector-based power-estimation flow of the vendor tools.

This quantifies a design point the permutation-generation literature
cares about: enumerating permutations in a *minimal-change* order
(Steinhaus–Johnson–Trotter, :mod:`repro.core.orders`) toggles far fewer
output bits per step than counter-order enumeration, because successive
outputs differ by one adjacent transposition instead of an arbitrary
rearrangement.  :func:`output_toggle_comparison` measures exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.core.factorial import element_width, factorial
from repro.core.orders import sjt_permutations
from repro.core.sequences import all_permutations
from repro.hdl.netlist import Netlist
from repro.hdl.simulator import SequentialSimulator

__all__ = [
    "ActivityReport",
    "measure_activity",
    "estimate_dynamic_power_mw",
    "word_toggles",
    "output_toggle_comparison",
]


@dataclass(frozen=True)
class ActivityReport:
    """Per-netlist switching statistics over a simulated run."""

    cycles: int
    live_wires: int
    total_toggles: int
    per_wire_rate: np.ndarray  #: toggles/cycle for each live wire (sorted ids)

    @property
    def mean_activity(self) -> float:
        """Average toggle probability per wire per cycle (the α of the
        power model)."""
        if self.cycles == 0 or self.live_wires == 0:
            return 0.0
        return self.total_toggles / (self.cycles * self.live_wires)

    @property
    def peak_activity(self) -> float:
        return float(self.per_wire_rate.max()) if self.per_wire_rate.size else 0.0


def measure_activity(
    netlist: Netlist, input_stream: Sequence[Mapping[str, int]]
) -> ActivityReport:
    """Clock the netlist through ``input_stream``, counting wire toggles."""
    if not input_stream:
        raise ValueError("need at least one input vector")
    # Interpreter pinned: activity counting reads the per-wire value
    # table, which the compiled engine never materialises.
    sim = SequentialSimulator(netlist, batch=1, backend="interp")
    live = sorted(netlist.live_wires())
    toggles = np.zeros(len(live), dtype=np.int64)
    prev: np.ndarray | None = None
    for inputs in input_stream:
        sim.step(inputs)
        values = sim.comb._wire_values
        current = np.array([bool(values[w][0]) for w in live])
        if prev is not None:
            toggles += current != prev
        prev = current
    return ActivityReport(
        cycles=len(input_stream),
        live_wires=len(live),
        total_toggles=int(toggles.sum()),
        per_wire_rate=toggles / max(1, len(input_stream) - 1),
    )


def estimate_dynamic_power_mw(
    report: ActivityReport,
    clock_mhz: float,
    c_eff_pf: float = 0.015,
    vdd: float = 0.9,
) -> float:
    """First-order dynamic power: ``Σα · C_eff · V² · f`` in milliwatts.

    Defaults approximate a 40 nm FPGA net (15 fF effective, 0.9 V core).
    """
    alpha_sum = float(report.per_wire_rate.sum())
    watts = alpha_sum * (c_eff_pf * 1e-12) * vdd * vdd * (clock_mhz * 1e6)
    return watts * 1e3


def word_toggles(perm_sequence: Iterator[tuple[int, ...]], n: int) -> tuple[int, int]:
    """``(total, worst_step)`` output-word bit flips across a sequence."""
    ew = element_width(n)
    total = 0
    worst = 0
    prev: int | None = None
    for perm in perm_sequence:
        word = 0
        for v in perm:
            word = (word << ew) | v
        if prev is not None:
            step = bin(word ^ prev).count("1")
            total += step
            worst = max(worst, step)
        prev = word
    return total, worst


@dataclass(frozen=True)
class ToggleComparison:
    """Output switching of the two enumeration orders."""

    n: int
    steps: int
    counter_order_toggles: int
    sjt_order_toggles: int
    counter_worst_step: int
    sjt_worst_step: int

    @property
    def mean_reduction(self) -> float:
        """counter/SJT total-toggle ratio (> 1: minimal-change wins).

        Modest in the mean — lexicographic successors usually rewrite
        only a short suffix too."""
        return self.counter_order_toggles / max(1, self.sjt_order_toggles)

    @property
    def worst_step_reduction(self) -> float:
        """Worst single-step toggle ratio — the di/dt headline: SJT is
        bounded by one adjacent pair (≤ 2·⌈log2 n⌉ bits) while counter
        order periodically rewrites the whole word."""
        return self.counter_worst_step / max(1, self.sjt_worst_step)


def output_toggle_comparison(n: int) -> ToggleComparison:
    """Enumerate all n! permutations both ways; compare word toggling.

    SJT changes exactly one adjacent pair per step; counter order (index
    i → i+1) rewrites whole suffixes whenever low factorial digits carry
    — e.g. the wrap from the reversal back toward identity-like prefixes
    flips a large fraction of the word at once.
    """
    counter_total, counter_worst = word_toggles(all_permutations(n), n)
    sjt_total, sjt_worst = word_toggles(sjt_permutations(n), n)
    return ToggleComparison(
        n=n,
        steps=factorial(n) - 1,
        counter_order_toggles=counter_total,
        sjt_order_toggles=sjt_total,
        counter_worst_step=counter_worst,
        sjt_worst_step=sjt_worst,
    )
