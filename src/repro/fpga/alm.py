"""Adaptive Logic Module (ALM) packing estimate.

A Stratix-IV ALM contains one fracturable 8-input structure that can
implement a single 6- or 7-input function or a pair of smaller functions
(two independent 4-input LUTs, or a 5-input plus a 3-input sharing
inputs).  The paper's Tables III/IV report "Est. # of Packed ALMs"; we use
the standard first-order packing estimate:

* every LUT of 5+ inputs occupies its own ALM;
* LUTs of ≤ 4 inputs pack two per ALM.

This matches the estimate Quartus prints pre-fit ("Estimate of Logic
utilization (ALMs needed)") to first order.
"""

from __future__ import annotations

from repro.fpga.lut_map import LUT

__all__ = ["pack_alms"]


def pack_alms(luts: list[LUT]) -> int:
    """Estimated ALM count for a mapped LUT list."""
    large = sum(1 for l in luts if l.size >= 5)
    small = sum(1 for l in luts if l.size <= 4)
    return large + (small + 1) // 2
