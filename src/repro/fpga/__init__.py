"""FPGA resource and timing model (stand-in for Quartus II synthesis).

Tables III and IV of the paper report, per circuit size ``n``: achievable
frequency, a histogram of LUTs by input count, an estimate of packed ALMs,
and the register total on an Altera Stratix IV EP4SE530.  This package
produces the same columns from our gate-level netlists:

* :mod:`repro.fpga.lut_map` — covers the logic with k-input LUTs using
  greedy single-fanout cone packing (the textbook heuristic behind real
  mappers);
* :mod:`repro.fpga.alm` — packs LUTs pairwise into Stratix-IV-style ALMs;
* :mod:`repro.fpga.timing` — unit-delay LUT levels → Fmax through a
  simple calibrated delay-per-level model;
* :mod:`repro.fpga.report` — a :class:`ResourceReport` per circuit and a
  paper-style table renderer.

Absolute LUT counts from a heuristic mapper will not equal Quartus's, but
the *columns* and the growth trends versus ``n`` — the content of the
paper's tables — are reproduced structurally.
"""

from repro.fpga.lut_map import LUT, map_to_luts, lut_histogram
from repro.fpga.alm import pack_alms
from repro.fpga.timing import lut_levels, estimate_fmax_mhz, DelayModel
from repro.fpga.report import ResourceReport, synthesize, render_resource_table
from repro.fpga.cascade import CascadeCell, CascadeReport, converter_cascade
from repro.fpga.power import (
    ActivityReport,
    measure_activity,
    estimate_dynamic_power_mw,
    output_toggle_comparison,
)

__all__ = [
    "LUT",
    "map_to_luts",
    "lut_histogram",
    "pack_alms",
    "lut_levels",
    "estimate_fmax_mhz",
    "DelayModel",
    "ResourceReport",
    "synthesize",
    "render_resource_table",
    "CascadeCell",
    "CascadeReport",
    "converter_cascade",
    "ActivityReport",
    "measure_activity",
    "estimate_dynamic_power_mw",
    "output_toggle_comparison",
]
