"""Timing model: LUT levels → achievable frequency.

Real static timing analysis is a place-and-route product; the reproducible
part is the *level count* of the mapped LUT network (unit-delay critical
path) and a first-order delay-per-level model calibrated to Stratix IV
class silicon:

    period = t_reg + levels · (t_lut + t_route)

with defaults ``t_reg = 0.65 ns``, ``t_lut = 0.40 ns``, ``t_route =
0.65 ns``.  A single-LUT-level pipeline then clocks near 590 MHz and a
20-level cone near 47 MHz, bracketing the frequency spread the paper's
tables show across n.  The *trend* — frequency degrading as the
combinational cascade deepens, pipelined versions holding frequency flat —
is structural and is what the benchmarks assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.lut_map import LUT
from repro.hdl.gates import Op
from repro.hdl.netlist import Netlist

__all__ = ["DelayModel", "lut_levels", "estimate_fmax_mhz"]


@dataclass(frozen=True)
class DelayModel:
    """Per-element delays in nanoseconds."""

    t_reg_ns: float = 0.65  #: clock-to-Q plus setup
    t_lut_ns: float = 0.40  #: LUT propagation
    t_route_ns: float = 0.65  #: average interconnect per level

    def period_ns(self, levels: int) -> float:
        return self.t_reg_ns + levels * (self.t_lut_ns + self.t_route_ns)

    def fmax_mhz(self, levels: int) -> float:
        return 1e3 / self.period_ns(levels)


def lut_levels(nl: Netlist, luts: list[LUT]) -> int:
    """Critical path length in LUT levels of the mapped network."""
    by_root = {l.root: l for l in luts}
    level: dict[int, int] = {}

    order = sorted(by_root)  # wire ids are topological
    for root in order:
        lut = by_root[root]
        depth = 0
        for leaf in lut.inputs:
            if nl.gates[leaf].op in (Op.INPUT, Op.REG, Op.CONST0, Op.CONST1):
                continue
            depth = max(depth, level.get(leaf, 0))
        level[root] = depth + 1
    return max(level.values(), default=0)


def estimate_fmax_mhz(
    nl: Netlist, luts: list[LUT], model: DelayModel | None = None
) -> float:
    """Achievable clock frequency of the mapped netlist in MHz."""
    model = model if model is not None else DelayModel()
    return model.fmax_mhz(lut_levels(nl, luts))
