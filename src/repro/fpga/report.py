"""Resource reports in the shape of the paper's Tables III and IV.

:func:`synthesize` here is the *raw* map-pack-time primitive: it reports
the netlist exactly as handed in, with no optimisation.  Consumers that
want the paper-honest numbers — optimised through the pass pipeline,
reproducibly, with equivalence gating available — should go through the
:func:`repro.flow.synthesize` facade, which runs the
:class:`repro.hdl.passes.PassManager` first and returns this module's
:class:`ResourceReport` as part of its ``FlowResult``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.alm import pack_alms
from repro.fpga.lut_map import lut_histogram, map_to_luts
from repro.fpga.timing import DelayModel, estimate_fmax_mhz, lut_levels
from repro.hdl.netlist import Netlist

__all__ = ["ResourceReport", "synthesize", "render_resource_table"]


@dataclass(frozen=True)
class ResourceReport:
    """One row of a Table-III/IV-style resource table."""

    name: str
    n: int
    fmax_mhz: float
    lut_hist: dict[int, int]  #: input-count → LUT count
    total_luts: int
    packed_alms: int
    registers: int
    lut_levels: int

    def luts_of_size(self, size: int) -> int:
        return self.lut_hist.get(size, 0)


def synthesize(
    nl: Netlist, n: int, k: int = 6, model: DelayModel | None = None
) -> ResourceReport:
    """Map, pack and time a netlist; returns one report row."""
    luts = map_to_luts(nl, k=k)
    hist = lut_histogram(luts, k=k)
    levels = lut_levels(nl, luts)
    return ResourceReport(
        name=nl.name,
        n=n,
        fmax_mhz=estimate_fmax_mhz(nl, luts, model),
        lut_hist=hist,
        total_luts=len(luts),
        packed_alms=pack_alms(luts),
        registers=nl.num_registers,
        lut_levels=levels,
    )


def render_resource_table(rows: list[ResourceReport], k: int = 6) -> str:
    """ASCII rendering with the paper's column layout."""
    sizes = list(range(2, k + 1))
    header = (
        ["n", "Freq(MHz)"]
        + [f"{s}-LUT" for s in sizes]
        + ["LUTs", "ALMs", "Regs", "Levels"]
    )
    lines = ["  ".join(f"{h:>9}" for h in header)]
    for r in sorted(rows, key=lambda x: x.n):
        cells = [str(r.n), f"{r.fmax_mhz:.1f}"]
        cells += [str(r.luts_of_size(s) + (r.luts_of_size(1) if s == 2 else 0)) for s in sizes]
        cells += [str(r.total_luts), str(r.packed_alms), str(r.registers), str(r.lut_levels)]
        lines.append("  ".join(f"{c:>9}" for c in cells))
    return "\n".join(lines)
