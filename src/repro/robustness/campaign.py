"""Fault-injection campaigns over the paper's circuits.

A campaign enumerates (or samples) fault sites in a gate-level netlist,
simulates the circuit once per fault through a non-invasive
:class:`~repro.robustness.faults.FaultOverlay`, and classifies each
fault by comparing against the golden (fault-free) run:

* **benign** — every output matches the golden run: the fault was never
  excited, or its effect never propagated to an output;
* **detected** — some output is *not a valid permutation*: a cheap O(n)
  bijectivity self-check catches it online;
* **silent** — outputs differ from golden yet every one is still a
  valid permutation.  This is the dangerous class: structural checking
  passes, and only the rank∘unrank oracle (converter) or statistical
  monitoring (shuffle) can expose it.

The campaign is itself sharded over the fault list via
:func:`~repro.parallel.sharding.hardened_map_reduce`, so a slow or
crashed worker costs a resubmitted shard, not the campaign.  Fault
lists are rebuilt deterministically inside each worker from the
campaign spec — nothing heavyweight crosses the pickle boundary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.analysis.faultcoverage import wilson_interval
from repro.errors import CampaignConfigError
from repro.core.factorial import factorial
from repro.hdl.compile import SWEEP_LANES, PackedFaultPlan
from repro.hdl.engine import BACKENDS, engine_capability
from repro.hdl.netlist import Netlist
from repro.hdl.simulator import CombinationalSimulator, SequentialSimulator
from repro.obs import metrics as _metrics
from repro.obs.events import EventSink
from repro.parallel.sharding import ShardSpec, hardened_map_reduce, index_shards
from repro.robustness.faults import (
    Fault,
    FaultOverlay,
    SEUFault,
    StuckAtFault,
    bridging_fault_sites,
    seu_fault_sites,
    stuck_fault_sites,
)

__all__ = ["CampaignSpec", "CampaignResult", "fault_list", "run_campaign"]

MODELS = ("stuck", "seu", "bridge")
CIRCUITS = ("converter", "shuffle")

#: Class labels, in report order.
_CLASSES = ("benign", "detected", "silent")

_FAULTS_TOTAL = _metrics.REGISTRY.counter(
    "repro_campaign_faults_total",
    "fault sites evaluated, by classification",
    ("klass",),
)
_CAMPAIGN_COVERAGE = _metrics.REGISTRY.gauge(
    "repro_campaign_bijection_coverage",
    "bijection-check coverage of the last campaign",
    ("circuit", "model"),
)


@dataclass(frozen=True)
class CampaignSpec:
    """Everything needed to reproduce a campaign bit for bit."""

    circuit: str = "converter"  #: "converter" or "shuffle"
    n: int = 6  #: permutation size
    model: str = "stuck"  #: "stuck", "seu" or "bridge"
    samples: int | None = None  #: sample this many sites (None = exhaustive)
    seed: int = 0  #: drives site sampling and test-vector choice
    test_count: int = 64  #: converter test indices (capped at n!)
    stream_length: int = 16  #: shuffle output rows compared per fault
    optimized: bool = False  #: attack the pass-pipeline-optimised netlist
    engine: str = "auto"  #: registered backend name or "auto" (see BACKENDS)

    def __post_init__(self):
        if self.circuit not in CIRCUITS:
            raise CampaignConfigError(f"circuit must be one of {CIRCUITS}")
        if self.model not in MODELS:
            raise CampaignConfigError(f"model must be one of {MODELS}")
        if self.n < 2:
            raise CampaignConfigError("campaigns need n >= 2")
        if self.samples is not None and self.samples < 1:
            raise CampaignConfigError("samples must be >= 1 (or omitted)")
        if self.engine not in BACKENDS:
            raise CampaignConfigError(f"engine must be one of {BACKENDS}")


@dataclass
class CampaignResult:
    """Coverage statistics of one campaign."""

    spec: CampaignSpec
    total: int
    benign: int
    detected: int
    silent: int
    test_vectors: int
    exhaustive: bool
    examples: dict[str, list[str]] = field(default_factory=dict)
    failed_shards: int = 0
    engine: str = "auto"  #: backend that actually ran the campaign
    sweeps: int = 0  #: combinational sweeps executed across all workers
    wall_s: float = 0.0  #: end-to-end campaign wall time

    @property
    def corrupting(self) -> int:
        """Faults whose effect reached an output."""
        return self.detected + self.silent

    @property
    def bijection_coverage(self) -> float:
        """Fraction of corrupting faults a bijectivity self-check catches."""
        return self.detected / self.corrupting if self.corrupting else 1.0

    def render(self) -> str:
        s = self.spec
        head = f"Fault-injection campaign: {s.circuit} n={s.n}, model={s.model}"
        mode = "exhaustive" if self.exhaustive else f"sampled (seed={s.seed})"
        lines = [
            head,
            "=" * len(head),
            f"fault sites: {self.total} ({mode}); "
            f"test vectors per fault: {self.test_vectors}",
        ]
        for name, count in (
            ("benign (output unchanged)", self.benign),
            ("detected (invalid permutation)", self.detected),
            ("silent (valid but WRONG output)", self.silent),
        ):
            pct = 100.0 * count / self.total if self.total else 0.0
            lines.append(f"  {name:<34} {count:>7}  {pct:5.1f}%")
        lines.append(
            f"corrupting faults: {self.corrupting}; "
            f"bijection-check coverage: {100.0 * self.bijection_coverage:.1f}%"
        )
        lines.append(
            "rank oracle coverage: 100.0% of corrupting faults "
            "(any output change breaks rank(unrank(N)) == N)"
            if s.circuit == "converter"
            else "shuffle outputs have no per-sample oracle: silent faults "
            "need statistical monitoring (see analysis.uniformity)"
        )
        if not self.exhaustive and self.corrupting:
            lo, hi = wilson_interval(self.detected, self.corrupting)
            lines.append(
                f"95% Wilson CI on bijection coverage: [{100 * lo:.1f}%, {100 * hi:.1f}%]"
            )
        if self.wall_s > 0 and self.total:
            lines.append(
                f"throughput: {self.total / self.wall_s:,.0f} faults/s, "
                f"{self.sweeps / self.wall_s:,.0f} sweeps/s "
                f"({self.sweeps} sweeps in {self.wall_s:.2f}s, "
                f"engine={self.engine})"
            )
        if self.failed_shards:
            lines.append(
                f"WARNING: {self.failed_shards} shard(s) failed permanently; "
                "counts cover completed shards only"
            )
        for klass in _CLASSES:
            for desc in self.examples.get(klass, [])[:3]:
                lines.append(f"  e.g. {klass}: {desc}")
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# deterministic circuit / fault-list construction (worker-side too)


def _build_netlist(spec: CampaignSpec) -> Netlist:
    from repro.flow import build_circuit
    from repro.hdl.passes import PassManager

    # SEUs need registers to hit: use the pipelined converter datapath.
    pipelined = spec.circuit == "converter" and spec.model == "seu"
    nl = build_circuit(spec.circuit, spec.n, pipelined=pipelined)
    if spec.optimized:
        # Fault sites on the shipped (optimised) netlist: the same pass
        # pipeline the synthesis flow applies, so coverage numbers match
        # the circuit whose resources Tables III/IV report.
        nl = PassManager().run(nl).netlist
    return nl


def _test_indices(spec: CampaignSpec) -> list[int]:
    """Converter test vectors: exhaustive for small n!, else seeded sample.

    The corner indices 0 and n!−1 are always included — they exercise
    the all-zeros and all-maximal comparator patterns.
    """
    limit = factorial(spec.n)
    if limit <= spec.test_count:
        return list(range(limit))
    rng = np.random.default_rng(spec.seed)
    picks = rng.integers(0, limit, size=spec.test_count - 2, dtype=np.int64)
    return [0, limit - 1] + [int(x) for x in picks]


def _seu_cycles(spec: CampaignSpec, nl: Netlist) -> tuple[int, ...]:
    """Upset cycles: early, mid-stream and late — the pipeline (or LFSR
    warm-up) behaves differently at each."""
    if spec.circuit == "converter":
        horizon = len(_test_indices(spec)) + max(0, spec.n - 1)
    else:
        horizon = spec.stream_length
    return tuple(sorted({1, horizon // 2, max(1, horizon - 2)}))


def fault_list(spec: CampaignSpec) -> list[Fault]:
    """The campaign's fault universe, deterministic in ``spec`` alone."""
    nl = _build_netlist(spec)
    if spec.model == "stuck":
        sites: list[Fault] = list(stuck_fault_sites(nl))
    elif spec.model == "seu":
        sites = list(seu_fault_sites(nl, _seu_cycles(spec, nl)))
    else:
        budget = spec.samples if spec.samples is not None else 256
        sites = list(bridging_fault_sites(nl, budget, seed=spec.seed))
    if spec.samples is not None and len(sites) > spec.samples:
        rng = np.random.default_rng(spec.seed)
        keep = rng.choice(len(sites), size=spec.samples, replace=False)
        sites = [sites[int(i)] for i in sorted(keep)]
    return sites


#: Lane budget per fault slot in a fault-parallel sweep: the slot count
#: is capped so combinational campaigns with huge test-vector sets do
#: not explode one sweep's memory.  The packed engine's capability sets
#: the slot ceiling — 63 faults + 1 golden slot into 4096 lanes on the
#: compiled engine (one 64-bit word per packed lane-set), 4096 faults +
#: 1 golden on the vector engine.
_LANES_PER_SLOT = 64


class _Evaluator:
    """Runs the circuit under a fault overlay and returns ``(B, n)`` rows.

    Two evaluation modes share one classification path:

    * **per-fault** (:meth:`run`) — one simulation per overlay, on
      whichever backend ``spec.engine`` selects;
    * **fault-parallel** (:meth:`run_packed`) — a mask-patching engine
      packs one fault per bit-lane next to a golden lane
      (:class:`~repro.hdl.compile.PackedFaultPlan`), so a single sweep
      evaluates up to ``chunk_faults`` stuck-at/SEU sites at once.
      ``spec.engine="vector"`` runs the packed sweeps on the wide-lane
      NumPy engine (4096 fault slots per sweep); every other
      fault-parallel selection uses the compiled bigint engine (63).

    Both produce bit-identical rows (the engines are equivalence-tested
    property-style), so campaign counts and example lists match exactly
    regardless of mode.
    """

    def __init__(self, spec: CampaignSpec):
        self.spec = spec
        self.netlist = _build_netlist(spec)
        self.backend = spec.engine
        if spec.circuit == "converter":
            self.indices = _test_indices(spec)
            self.fill = (spec.n - 1) if spec.model == "seu" else 0
        else:
            self.indices = []
            self.fill = 1  # cycle 0 emits seed-state garbage (see knuth.py)
        self.combinational = spec.circuit == "converter" and spec.model != "seu"
        if spec.circuit == "converter":
            self.stream_len = len(self.indices) + self.fill
        else:
            self.stream_len = spec.stream_length + self.fill
        #: sweeps one per-fault evaluation costs
        self.sweeps_per_run = 1 if self.combinational else self.stream_len
        # Fault-parallel needs per-lane masks: stuck-at and SEU compile,
        # bridging reads aggressor values mid-sweep and cannot.
        self.fault_parallel = spec.engine != "interp" and spec.model in (
            "stuck",
            "seu",
        )
        # Which mask-patching engine carries the packed sweeps: vector
        # when explicitly requested, else the compiled bigint engine.
        self.packed_backend = "vector" if spec.engine == "vector" else "compiled"
        slots_cap = engine_capability(self.packed_backend).sweep_lanes + 1
        if self.combinational:
            per_fault = max(1, len(self.indices))
            budget = _LANES_PER_SLOT * slots_cap
            slots = max(2, min(slots_cap, budget // per_fault))
        else:
            slots = slots_cap
        self.chunk_faults = slots - 1

    def run(self, overlay: FaultOverlay | None) -> np.ndarray:
        spec, nl = self.spec, self.netlist
        if self.combinational:
            sim = CombinationalSimulator(nl, backend=self.backend)
            outs = sim.run({"index": self.indices}, overlay=overlay)
            rows = np.empty((len(self.indices), spec.n), dtype=np.int64)
            for t in range(spec.n):
                rows[:, t] = [int(v) for v in outs[f"out{t}"]]
            return rows
        # sequential paths: pipelined converter or the shuffle cascade
        seq = SequentialSimulator(nl, batch=1, overlay=overlay, backend=self.backend)
        if spec.circuit == "converter":
            stream = self.indices + [0] * self.fill
        else:
            stream = [None] * (spec.stream_length + self.fill)
        rows = []
        for cycle, value in enumerate(stream):
            outs = seq.step({} if value is None else {"index": value})
            if cycle >= self.fill:
                rows.append([int(outs[f"out{t}"][0]) for t in range(spec.n)])
        return np.asarray(rows, dtype=np.int64)

    def run_packed(
        self, chunk: Sequence[Fault]
    ) -> tuple[list[np.ndarray], np.ndarray, int]:
        """One fault-parallel evaluation of up to ``chunk_faults`` sites.

        Returns ``(per-fault rows, golden rows, sweeps)``: slot 0 of the
        packed batch carries the fault-free circuit, slot ``s`` carries
        ``chunk[s-1]``.
        """
        spec, nl = self.spec, self.netlist
        n, slots = spec.n, len(chunk) + 1
        if self.combinational:
            per_fault = len(self.indices)
            lanes = slots * per_fault
            plan = PackedFaultPlan(lanes)
            for s, fault in enumerate(chunk, start=1):
                assert isinstance(fault, StuckAtFault)
                plan.stick(
                    fault.wire, fault.value, slice(s * per_fault, (s + 1) * per_fault)
                )
            sim = CombinationalSimulator(nl, backend=self.packed_backend)
            outs = sim.run({"index": list(self.indices) * slots}, overlay=plan)
            cols = np.empty((lanes, n), dtype=np.int64)
            for t in range(n):
                cols[:, t] = outs[f"out{t}"].astype(np.int64)
            cube = cols.reshape(slots, per_fault, n)
            return [cube[s] for s in range(1, slots)], cube[0], 1
        # sequential: one lane per slot, whole stream in one pass
        plan = PackedFaultPlan(slots)
        for s, fault in enumerate(chunk, start=1):
            if isinstance(fault, StuckAtFault):
                plan.stick(fault.wire, fault.value, [s])
            else:
                assert isinstance(fault, SEUFault)
                plan.upset(fault.register, fault.cycle, [s])
        seq = SequentialSimulator(
            nl, batch=slots, overlay=plan, backend=self.packed_backend
        )
        if spec.circuit == "converter":
            stream = self.indices + [0] * self.fill
        else:
            stream = [None] * (spec.stream_length + self.fill)
        frames = []
        for cycle, value in enumerate(stream):
            outs = seq.step({} if value is None else {"index": value})
            if cycle >= self.fill:
                frame = np.empty((slots, n), dtype=np.int64)
                for t in range(n):
                    frame[:, t] = outs[f"out{t}"].astype(np.int64)
                frames.append(frame)
        cube = np.stack(frames)  # (cycles, slots, n)
        return [cube[:, s, :] for s in range(1, slots)], cube[:, 0, :], len(stream)


def _classify(golden: np.ndarray, faulty: np.ndarray, n: int) -> str:
    if np.array_equal(golden, faulty):
        return "benign"
    expected = np.arange(n, dtype=np.int64)
    valid = np.array_equal(
        np.sort(faulty, axis=1), np.broadcast_to(expected, faulty.shape)
    )
    return "silent" if valid else "detected"


# --------------------------------------------------------------------- #
# the sharded runner


class _CampaignWork:
    """Picklable per-shard worker: rebuilds everything from the spec."""

    def __init__(self, spec: CampaignSpec):
        self.spec = spec

    def __call__(self, shard: ShardSpec) -> dict:
        faults = fault_list(self.spec)
        ev = _Evaluator(self.spec)
        counts = {k: 0 for k in _CLASSES}
        examples: dict[str, list[str]] = {k: [] for k in _CLASSES}
        sweeps = 0

        def record(fault: Fault, klass: str) -> None:
            counts[klass] += 1
            if len(examples[klass]) < 3:
                examples[klass].append(fault.describe(ev.netlist))

        shard_faults = [faults[i] for i in shard]
        if ev.fault_parallel:
            size = ev.chunk_faults
            for off in range(0, len(shard_faults), size):
                chunk = shard_faults[off : off + size]
                faulty_rows, golden, cost = ev.run_packed(chunk)
                sweeps += cost
                for fault, rows in zip(chunk, faulty_rows):
                    record(fault, _classify(golden, rows, self.spec.n))
        else:
            golden = ev.run(None)
            sweeps += ev.sweeps_per_run
            for fault in shard_faults:
                overlay = FaultOverlay([fault], ev.netlist)
                klass = _classify(golden, ev.run(overlay), self.spec.n)
                sweeps += ev.sweeps_per_run
                record(fault, klass)
        return {"counts": counts, "examples": examples, "sweeps": sweeps}


def _merge(a: dict, b: dict) -> dict:
    counts = {k: a["counts"][k] + b["counts"][k] for k in _CLASSES}
    examples = {
        k: (a["examples"][k] + b["examples"][k])[:3] for k in _CLASSES
    }
    return {
        "counts": counts,
        "examples": examples,
        "sweeps": a.get("sweeps", 0) + b.get("sweeps", 0),
    }


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    degrade: bool = False,
    timeout: float | None = None,
    events: EventSink | None = None,
    tracer=None,
) -> CampaignResult:
    """Execute a campaign, sharded and hardened.

    ``degrade=True`` keeps partial statistics when shards fail
    permanently (the report then carries a warning); otherwise a failed
    shard aborts with :class:`~repro.errors.WorkerFailedError`.

    Progress is reported through the structured event API: ``events``
    receives ``plan`` / ``shard_*`` / ``done`` events (render them with a
    :class:`~repro.obs.events.StderrSink`, collect them in tests with a
    :class:`~repro.obs.events.CollectingSink`, or pass ``None`` for
    silence).  ``tracer`` threads the caller's trace through the sharded
    runner, so every shard attempt becomes a child span.
    """
    t0 = time.perf_counter()
    faults = fault_list(spec)
    if not faults:
        raise ValueError(f"no {spec.model} fault sites in the {spec.circuit} netlist")
    ev = _Evaluator(spec)
    test_vectors = len(ev.indices) if spec.circuit == "converter" else spec.stream_length
    engine_used = ev.packed_backend if ev.fault_parallel else spec.engine
    # Never cut the fault list finer than one packed chunk per shard
    # when a wide-lane engine could fit the whole campaign in one sweep
    # — dicing it into per-worker slivers would waste its lanes.  The
    # compiled engine keeps the historical 4-shards-per-worker split
    # (its 63-fault chunks already align with it).
    want = max(1, workers) * 4
    if ev.fault_parallel and ev.chunk_faults > SWEEP_LANES:
        want = min(want, -(-len(faults) // ev.chunk_faults))
    shards = index_shards(len(faults), want)
    if events is not None:
        events.emit(
            "plan",
            circuit=spec.circuit,
            model=spec.model,
            engine=engine_used,
            fault_sites=len(faults),
            test_vectors=test_vectors,
            shards=len(shards),
            workers=workers,
        )
    partial = hardened_map_reduce(
        _CampaignWork(spec),
        shards,
        _merge,
        workers=workers,
        timeout=timeout,
        degrade=True,
        events=events,
        tracer=tracer,
    )
    if not degrade and not partial.complete:
        # hardened_map_reduce already retried; surface the first failure.
        f = partial.failed[0]
        from repro.errors import WorkerFailedError

        raise WorkerFailedError(
            f"campaign shard {f.shard_id} failed permanently: {f.error}",
            shard_id=f.shard_id,
            attempts=f.attempts,
        )
    merged = partial.value or {
        "counts": {k: 0 for k in _CLASSES},
        "examples": {k: [] for k in _CLASSES},
        "sweeps": 0,
    }
    counted = sum(merged["counts"].values())
    result_coverage = (
        merged["counts"]["detected"]
        / (merged["counts"]["detected"] + merged["counts"]["silent"])
        if merged["counts"]["detected"] + merged["counts"]["silent"]
        else 1.0
    )
    if _metrics.REGISTRY.enabled:
        for klass in _CLASSES:
            if merged["counts"][klass]:
                _FAULTS_TOTAL.inc(merged["counts"][klass], klass=klass)
        _CAMPAIGN_COVERAGE.set(
            result_coverage, circuit=spec.circuit, model=spec.model
        )
    wall_s = time.perf_counter() - t0
    if events is not None:
        events.emit(
            "done",
            evaluated=counted,
            benign=merged["counts"]["benign"],
            detected=merged["counts"]["detected"],
            silent=merged["counts"]["silent"],
            failed_shards=len(partial.failed),
            sweeps=merged.get("sweeps", 0),
            wall_s=round(wall_s, 3),
        )
    return CampaignResult(
        spec=spec,
        total=counted,
        benign=merged["counts"]["benign"],
        detected=merged["counts"]["detected"],
        silent=merged["counts"]["silent"],
        test_vectors=test_vectors,
        exhaustive=spec.samples is None and spec.model != "bridge",
        examples=merged["examples"],
        failed_shards=len(partial.failed),
        engine=engine_used,
        sweeps=merged.get("sweeps", 0),
        wall_s=wall_s,
    )
