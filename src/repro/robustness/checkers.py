"""Online self-checking wrappers (concurrent error detection).

A permutation output is nearly self-validating: checking that it is a
bijection costs O(n) and catches every fault that knocks an output off
the permutation group.  It does **not** catch a *valid but wrong*
permutation — for that, the exact end-to-end oracle is inversion:
``rank(unrank(N)) == N``, computed by the independent Lehmer-code
implementation in :mod:`repro.core.lehmer` (a different algorithm and
different code path from the stage-accurate datapath, so a common-mode
bug cannot hide).  The same invertibility trick underpins hardware
self-checking in the unranking literature (Blekos; Vaez et al.).

:class:`CheckedConverter` layers these checks over any converter
backend, in escalating strength:

1. **input validation** — indices outside ``0..n!−1`` raise
   :class:`~repro.errors.InvalidIndexError` before touching hardware;
2. **bijectivity** — every output must permute the input pool, else
   :class:`~repro.errors.FaultDetectedError`;
3. **dual-rail** (optional) — a second, independent evaluation is
   compared element-wise; any disagreement raises
   :class:`~repro.errors.FaultDetectedError`;
4. **rank oracle** — ``rank(output) != index`` raises
   :class:`~repro.errors.SilentCorruptionError` (the output passed
   every structural check yet is the wrong permutation).

The wrapper can drive the *gate-level netlist* instead of the
functional model (``use_netlist=True``), optionally with a
:class:`~repro.robustness.faults.FaultOverlay` attached — which is how
the test-suite proves the checker catches injected hardware faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.converter import IndexToPermutationConverter
from repro.core.lehmer import rank_batch, rank_naive, unrank_fenwick
from repro.errors import FaultDetectedError, InvalidIndexError, SilentCorruptionError
from repro.hdl.simulator import CombinationalSimulator

__all__ = [
    "CheckStats",
    "CheckedConverter",
    "is_permutation_of",
    "check_served_batch",
]


def check_served_batch(perms, indices: Sequence[int] | None = None) -> None:
    """End-to-end oracle for a served sweep: bijectivity, then rank.

    The supervised serving tier (:mod:`repro.serve.supervisor`) runs
    every worker-produced batch through this before resolving any
    future — the serving-layer analogue of :class:`CheckedConverter`'s
    per-conversion checks, vectorised so a full 63-lane batch costs a
    small fraction of its sweep:

    1. every row of ``perms`` (a ``(B, n)`` array over the identity
       pool) must be a permutation of ``0..n−1``, else
       :class:`~repro.errors.FaultDetectedError` — this catches any
       corruption that knocks a result off the permutation group
       (bit-flips, stuck lanes);
    2. with ``indices`` given (converter sweeps; shuffles have no
       index), ``rank(perms[i]) == indices[i]`` is checked through the
       independent Lehmer-code ranker, else
       :class:`~repro.errors.SilentCorruptionError` — the
       valid-but-wrong class a structural check cannot see.

    A failure means the batch must **not** be served: the supervisor
    quarantines the producing worker's kernel and fails the sweep over
    to the next ladder rung.
    """
    p = np.asarray(perms, dtype=np.int64)
    if p.ndim != 2:
        raise FaultDetectedError(f"served batch has shape {p.shape}, expected (B, n)")
    b, n = p.shape
    expected = np.arange(n, dtype=np.int64)
    sorted_rows = np.sort(p, axis=1)
    bad_rows = np.nonzero((sorted_rows != expected).any(axis=1))[0]
    if bad_rows.size:
        lane = int(bad_rows[0])
        idx = None if indices is None else int(indices[lane])
        raise FaultDetectedError(
            f"served lane {lane} is not a permutation: {p[lane].tolist()}",
            index=idx,
            output=tuple(int(x) for x in p[lane]),
        )
    if indices is None:
        return
    # indices stay Python ints until the vectorised branch: n! overflows
    # int64 from n = 21, and the serving layer's max_n is a config knob
    want = [int(i) for i in indices]
    if n <= 20:
        got = rank_batch(p, validate=False)  # bijectivity already held
        mismatch = np.nonzero(got != np.asarray(want, dtype=np.int64))[0]
        lane = int(mismatch[0]) if mismatch.size else None
    else:
        lane = None
        pool = list(range(n))
        for k, (i, row) in enumerate(zip(want, p)):
            if rank_naive([int(x) for x in row], pool) != i:
                lane = k
                break
    if lane is not None:
        raise SilentCorruptionError(
            f"rank oracle: served lane {lane} is the valid permutation "
            f"{p[lane].tolist()}, but not the one for index {want[lane]}",
            index=want[lane],
            output=tuple(int(x) for x in p[lane]),
        )


def is_permutation_of(row: Sequence[int], pool: Sequence[int]) -> bool:
    """True when ``row`` is a rearrangement of ``pool``."""
    return sorted(row) == sorted(pool)


@dataclass
class CheckStats:
    """Counters kept by a :class:`CheckedConverter` instance."""

    converted: int = 0  #: outputs that passed every check
    rejected_inputs: int = 0  #: indices refused by validation
    faults_detected: int = 0  #: bijectivity / dual-rail failures
    silent_caught: int = 0  #: rank-oracle failures (valid-but-wrong)

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


@dataclass
class CheckedConverter:
    """Self-checking front-end over :class:`IndexToPermutationConverter`.

    Parameters
    ----------
    converter:
        The wrapped converter (defines ``n`` and the input pool).
    dual_rail:
        Evaluate twice through independent paths and compare.  With the
        model backend the second rail is the Fenwick-tree unranker; with
        the netlist backend it is the functional model — either way the
        rails share no code with the primary evaluation.
    use_netlist:
        Drive the gate-level combinational netlist instead of the
        functional model (slower; used to exercise simulated hardware).
    overlay:
        Optional fault overlay forwarded to the netlist simulator —
        only meaningful with ``use_netlist=True``.
    """

    converter: IndexToPermutationConverter
    dual_rail: bool = False
    use_netlist: bool = False
    overlay: object = None
    stats: CheckStats = field(default_factory=CheckStats)

    def __post_init__(self):
        self._sim = None
        if self.use_netlist:
            self._netlist = self.converter.build_netlist(pipelined=False)
            self._sim = CombinationalSimulator(self._netlist)
        pool = self.converter.input_permutation
        self._identity_pool = pool == tuple(range(self.converter.n))

    # ------------------------------------------------------------------ #
    # evaluation rails

    def _evaluate(self, indices: list[int]) -> np.ndarray:
        if self._sim is not None:
            outs = self._sim.run({"index": indices}, overlay=self.overlay)
            return self.converter._unpack(outs, len(indices))
        return self.converter.convert_batch(indices)

    def _second_rail(self, indices: list[int]) -> np.ndarray:
        n, pool = self.converter.n, self.converter.input_permutation
        if self._sim is not None:
            return self.converter.convert_batch(indices)
        return np.asarray(
            [unrank_fenwick(i, n, pool) for i in indices], dtype=np.int64
        )

    # ------------------------------------------------------------------ #
    # public API

    def convert(self, index: int) -> tuple[int, ...]:
        """Convert one index with every configured check applied."""
        return tuple(int(x) for x in self.convert_batch([index])[0])

    def convert_batch(self, indices: Sequence[int]) -> np.ndarray:
        """Convert a batch; raises on the first failed check."""
        idx = self._validate(indices)
        perms = self._evaluate(idx)
        self._check_bijectivity(idx, perms)
        if self.dual_rail:
            self._check_dual_rail(idx, perms)
        self._check_rank_oracle(idx, perms)
        self.stats.converted += len(idx)
        return perms

    # ------------------------------------------------------------------ #
    # the checks

    def _validate(self, indices: Sequence[int]) -> list[int]:
        limit = self.converter.index_limit
        out = []
        for i in indices:
            if isinstance(i, bool) or not isinstance(i, (int, np.integer)):
                self.stats.rejected_inputs += 1
                raise InvalidIndexError(f"index {i!r} is not an integer")
            i = int(i)
            if not (0 <= i < limit):
                self.stats.rejected_inputs += 1
                raise InvalidIndexError(
                    f"index {i} outside 0..{limit - 1} (n = {self.converter.n})"
                )
            out.append(i)
        return out

    def _check_bijectivity(self, idx: list[int], perms: np.ndarray) -> None:
        pool = self.converter.input_permutation
        for i, row in zip(idx, perms):
            if not is_permutation_of(row, pool):
                self.stats.faults_detected += 1
                raise FaultDetectedError(
                    f"output for index {i} is not a permutation: {list(row)}",
                    index=i,
                    output=tuple(int(x) for x in row),
                )

    def _check_dual_rail(self, idx: list[int], perms: np.ndarray) -> None:
        other = self._second_rail(idx)
        if perms.shape != other.shape or not np.array_equal(perms, other):
            bad = next(
                i for i, (a, b) in enumerate(zip(perms, other)) if not np.array_equal(a, b)
            )
            self.stats.faults_detected += 1
            raise FaultDetectedError(
                f"dual-rail mismatch for index {idx[bad]}: "
                f"{list(perms[bad])} vs {list(other[bad])}",
                index=idx[bad],
                output=tuple(int(x) for x in perms[bad]),
            )

    def _check_rank_oracle(self, idx: list[int], perms: np.ndarray) -> None:
        if self._identity_pool and self.converter.n <= 20:
            got = rank_batch(perms)
            mismatch = np.nonzero(got != np.asarray(idx, dtype=np.int64))[0]
            bad = int(mismatch[0]) if mismatch.size else None
        else:
            pool = self.converter.input_permutation
            bad = None
            for k, (i, row) in enumerate(zip(idx, perms)):
                if rank_naive([int(x) for x in row], pool) != i:
                    bad = k
                    break
        if bad is not None:
            self.stats.silent_caught += 1
            raise SilentCorruptionError(
                f"rank oracle: output for index {idx[bad]} is the valid "
                f"permutation {list(perms[bad])}, but it is the wrong one",
                index=idx[bad],
                output=tuple(int(x) for x in perms[bad]),
            )
