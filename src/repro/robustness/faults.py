"""Hardware fault models and the non-invasive injection overlay.

Three classic fault models, matching what an FPGA reliability study
exercises:

* :class:`StuckAtFault` — a gate output permanently at 0 or 1 (the
  manufacturing-defect model; also how a configuration-memory upset in
  an SRAM FPGA typically manifests);
* :class:`SEUFault` — a transient single-event upset: one register bit
  flips at the start of one chosen clock cycle, then the circuit runs on
  (the radiation model);
* :class:`BridgingFault` — two wires shorted together; the later wire in
  topological order (the *victim*) takes the wired-AND or wired-OR of
  the two signals (the dominant-bridging model).

Faults are injected through a :class:`FaultOverlay`, which the
simulators in :mod:`repro.hdl.simulator` consult during their sweep.
The netlist itself is never mutated — the same netlist object serves the
golden run and every faulty run of a campaign, and structural hashing /
resource accounting are unaffected.

Site enumeration lives here too: :func:`stuck_fault_sites` (every live
logic-gate output, both polarities), :func:`seu_fault_sites` (every
register × chosen cycles) and :func:`bridging_fault_sites` (sampled
live-wire pairs — the exhaustive set is quadratic in wire count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

import numpy as np

from repro.hdl.gates import Op
from repro.hdl.netlist import Netlist

__all__ = [
    "StuckAtFault",
    "SEUFault",
    "BridgingFault",
    "Fault",
    "FaultOverlay",
    "stuck_fault_sites",
    "seu_fault_sites",
    "bridging_fault_sites",
]

#: Leaf ops that are not logic-gate outputs (not stuck-at candidates).
_LEAF_OPS = (Op.INPUT, Op.REG, Op.CONST0, Op.CONST1)


@dataclass(frozen=True)
class StuckAtFault:
    """Wire ``wire`` permanently reads ``value`` regardless of its driver."""

    wire: int
    value: bool

    def describe(self, nl: Netlist) -> str:
        name = nl.gates[self.wire].name or f"{nl.gates[self.wire].op.value}@{self.wire}"
        return f"stuck-at-{int(self.value)} on {name}"


@dataclass(frozen=True)
class SEUFault:
    """Register Q wire ``register`` flips at the start of ``cycle``."""

    register: int
    cycle: int

    def describe(self, nl: Netlist) -> str:
        name = nl.gates[self.register].name or f"reg@{self.register}"
        return f"SEU in {name} at cycle {self.cycle}"


@dataclass(frozen=True)
class BridgingFault:
    """Victim wire shorted to an earlier aggressor wire.

    ``mode`` is ``"and"`` (dominant-AND: the short pulls the victim low
    whenever the aggressor is low) or ``"or"`` (dominant-OR).  The
    aggressor must precede the victim topologically so its healthy value
    exists when the victim is patched.
    """

    aggressor: int
    victim: int
    mode: str = "and"

    def describe(self, nl: Netlist) -> str:
        return f"bridge-{self.mode} {self.aggressor}->{self.victim}"


Fault = Union[StuckAtFault, SEUFault, BridgingFault]


class FaultOverlay:
    """One or more faults packaged for the simulator sweep.

    Implements the overlay protocol documented in
    :mod:`repro.hdl.simulator`: ``wires`` / ``patch`` for combinational
    patching and ``seu`` for cycle-scheduled register upsets.
    """

    def __init__(self, faults: Iterable[Fault], netlist: Netlist | None = None):
        self.faults = tuple(faults)
        self._stuck: dict[int, bool] = {}
        self._bridges: dict[int, tuple[int, str]] = {}
        self._seu: dict[int, list[int]] = {}
        for f in self.faults:
            if isinstance(f, StuckAtFault):
                self._stuck[f.wire] = f.value
            elif isinstance(f, BridgingFault):
                if f.aggressor >= f.victim:
                    raise ValueError(
                        f"bridge aggressor {f.aggressor} must precede victim {f.victim}"
                    )
                if f.mode not in ("and", "or"):
                    raise ValueError(f"unknown bridge mode {f.mode!r}")
                self._bridges[f.victim] = (f.aggressor, f.mode)
            elif isinstance(f, SEUFault):
                self._seu.setdefault(f.cycle, []).append(f.register)
            else:
                raise TypeError(f"unknown fault {f!r}")
        if netlist is not None:
            n_wires = len(netlist.gates)
            regs = {r.q for r in netlist.registers}
            for w in (*self._stuck, *self._bridges):
                if not (0 <= w < n_wires):
                    raise ValueError(f"fault wire {w} outside netlist")
            for qs in self._seu.values():
                for q in qs:
                    if q not in regs:
                        raise ValueError(f"SEU target {q} is not a register Q wire")
        self.wires = frozenset(self._stuck) | frozenset(self._bridges)

    def patch(self, wire: int, value: np.ndarray, values) -> np.ndarray:
        """Return the faulty lane for ``wire`` (healthy lane: ``value``)."""
        if wire in self._stuck:
            fill = np.ones if self._stuck[wire] else np.zeros
            return fill(value.shape, dtype=bool)
        aggressor, mode = self._bridges[wire]
        other = values[aggressor]
        return (value & other) if mode == "and" else (value | other)

    def seu(self, cycle: int) -> Sequence[int]:
        """Register Q wires whose state flips at the start of ``cycle``."""
        return self._seu.get(cycle, ())

    def stuck_assignments(self) -> dict[int, bool] | None:
        """Wire → forced value, when the overlay is pure stuck-at.

        The compiled simulation engine (:mod:`repro.hdl.compile`) turns
        such assignments into per-lane masks; bridging faults read the
        aggressor's healthy value mid-sweep and cannot be expressed that
        way, so their presence returns ``None`` (interpreter fallback).
        """
        if self._bridges:
            return None
        return dict(self._stuck)

    def describe(self, nl: Netlist) -> str:
        return "; ".join(f.describe(nl) for f in self.faults)


# --------------------------------------------------------------------- #
# site enumeration


def _live_logic_wires(nl: Netlist) -> list[int]:
    live = nl.live_wires()
    return [w for w in sorted(live) if nl.gates[w].op not in _LEAF_OPS]


def stuck_fault_sites(nl: Netlist) -> list[StuckAtFault]:
    """Both stuck-at polarities on every *live* logic-gate output.

    Dead gates (outside the observable cone) cannot affect any output,
    so injecting there only inflates the benign count; they are pruned
    up front and reported as such by the campaign runner.
    """
    sites = []
    for w in _live_logic_wires(nl):
        sites.append(StuckAtFault(wire=w, value=False))
        sites.append(StuckAtFault(wire=w, value=True))
    return sites


def seu_fault_sites(nl: Netlist, cycles: Sequence[int]) -> list[SEUFault]:
    """One SEU per (register, cycle) pair, registers in creation order."""
    return [SEUFault(register=r.q, cycle=c) for r in nl.registers for c in cycles]


def bridging_fault_sites(
    nl: Netlist, count: int, seed: int = 0, modes: Sequence[str] = ("and", "or")
) -> list[BridgingFault]:
    """Sample ``count`` distinct bridges between live logic wires.

    The exhaustive pair set is O(W²); a seeded sample keeps campaigns
    tractable while remaining reproducible.  Each sampled pair yields
    one fault per requested mode.
    """
    wires = _live_logic_wires(nl)
    if len(wires) < 2:
        return []
    rng = np.random.default_rng(seed)
    pairs: set[tuple[int, int]] = set()
    limit = len(wires) * (len(wires) - 1) // 2
    while len(pairs) < min(count, limit):
        a, b = rng.choice(len(wires), size=2, replace=False)
        lo, hi = sorted((wires[int(a)], wires[int(b)]))
        pairs.add((lo, hi))
    return [
        BridgingFault(aggressor=lo, victim=hi, mode=m)
        for lo, hi in sorted(pairs)
        for m in modes
    ]
