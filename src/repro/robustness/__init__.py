"""Robustness layer: fault injection, online checking, hardened execution.

The paper's circuits target FPGAs, where stuck-at defects and
radiation-induced single-event upsets are first-class concerns.  This
subpackage asks — and answers — "what happens when a gate or register
bit is wrong?":

* :mod:`repro.robustness.faults` — stuck-at / SEU / bridging fault
  models injected into the simulators through a non-invasive overlay;
* :mod:`repro.robustness.campaign` — campaign runner that sweeps fault
  sites over the converter and shuffle netlists and reports
  detected / silent / benign coverage statistics;
* :mod:`repro.robustness.checkers` — :class:`CheckedConverter`, the
  self-checking runtime wrapper (bijectivity, dual-rail, rank oracle).

The error taxonomy lives in :mod:`repro.errors`; the fault-tolerant
shard runner in :mod:`repro.parallel.sharding`.
"""

from repro.robustness.campaign import (
    CampaignResult,
    CampaignSpec,
    fault_list,
    run_campaign,
)
from repro.robustness.checkers import CheckedConverter, CheckStats, is_permutation_of
from repro.robustness.faults import (
    BridgingFault,
    Fault,
    FaultOverlay,
    SEUFault,
    StuckAtFault,
    bridging_fault_sites,
    seu_fault_sites,
    stuck_fault_sites,
)

__all__ = [
    "BridgingFault",
    "CampaignResult",
    "CampaignSpec",
    "CheckStats",
    "CheckedConverter",
    "Fault",
    "FaultOverlay",
    "SEUFault",
    "StuckAtFault",
    "bridging_fault_sites",
    "fault_list",
    "is_permutation_of",
    "run_campaign",
    "seu_fault_sites",
    "stuck_fault_sites",
]
