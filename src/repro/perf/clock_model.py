"""Hardware timing from the simulated pipeline's cycle counts.

The pipelined converter produces one permutation per clock after a fill of
``n − 1`` register stages (verified cycle-accurately by
``IndexToPermutationConverter.simulate_netlist``).  Total time for ``count``
permutations is therefore ``(fill + count) · T_clk``; the marginal cost —
the paper's "SRC-6 time (ns)" column — is exactly one clock period,
independent of ``n``.  The clock can be pinned to the SRC-6's 100 MHz or
derived from the :mod:`repro.fpga` timing model of the actual netlist.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.converter import IndexToPermutationConverter
from repro.fpga.report import synthesize
from repro.fpga.timing import DelayModel

__all__ = ["SRC6_CLOCK_MHZ", "HardwareEstimate", "HardwareTimingModel"]

#: The SRC-6's fixed user-logic clock (the paper: "one clock period of a
#: 100 MHz clock" → the 10 ns entries of Table II).
SRC6_CLOCK_MHZ = 100.0


@dataclass(frozen=True)
class HardwareEstimate:
    """Timing of a pipelined run of ``count`` permutations."""

    n: int
    clock_mhz: float
    fill_cycles: int
    count: int

    @property
    def period_ns(self) -> float:
        return 1e3 / self.clock_mhz

    @property
    def total_ns(self) -> float:
        return (self.fill_cycles + self.count) * self.period_ns

    @property
    def ns_per_permutation(self) -> float:
        """Amortised cost; tends to one clock period as count grows."""
        return self.total_ns / self.count

    @property
    def marginal_ns_per_permutation(self) -> float:
        """Steady-state cost — the Table-II "SRC-6 time" entry."""
        return self.period_ns


class HardwareTimingModel:
    """Clock-accurate throughput/latency model of the pipelined converter."""

    def __init__(self, n: int, clock_mhz: float | None = SRC6_CLOCK_MHZ):
        """With ``clock_mhz=None`` the clock comes from the FPGA timing
        model applied to the actual pipelined netlist."""
        self.n = n
        self.converter = IndexToPermutationConverter(n)
        if clock_mhz is None:
            nl = self.converter.build_netlist(pipelined=True)
            clock_mhz = synthesize(nl, n, model=DelayModel()).fmax_mhz
        self.clock_mhz = float(clock_mhz)

    @property
    def latency_cycles(self) -> int:
        return self.converter.pipeline_register_stages

    @property
    def latency_ns(self) -> float:
        return self.latency_cycles * 1e3 / self.clock_mhz

    def estimate(self, count: int) -> HardwareEstimate:
        if count < 1:
            raise ValueError("count must be positive")
        return HardwareEstimate(
            n=self.n,
            clock_mhz=self.clock_mhz,
            fill_cycles=self.latency_cycles,
            count=count,
        )
