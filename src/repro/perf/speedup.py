"""Assemble the Table-II comparison: hardware vs software per-permutation time."""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.clock_model import SRC6_CLOCK_MHZ, HardwareTimingModel
from repro.perf.software_baseline import (
    default_iterations,
    software_batch_unrank_ns,
    software_unrank_ns,
)

__all__ = ["Table2Row", "table2_rows", "render_table2"]


@dataclass(frozen=True)
class Table2Row:
    """One Table-II row (with our extra vectorised-software column)."""

    n: int
    hw_ns: float  #: hardware marginal time per permutation (one clock)
    sw_ns: float  #: scalar software time per permutation
    sw_batch_ns: float  #: vectorised software time per permutation
    iterations: int

    @property
    def speedup(self) -> float:
        """Hardware rate ÷ scalar software rate — the paper's headline
        (≈2,800× at n = 10 against their C code)."""
        return self.sw_ns / self.hw_ns

    @property
    def speedup_vs_batch(self) -> float:
        return self.sw_batch_ns / self.hw_ns


def table2_rows(
    ns: list[int] | None = None,
    clock_mhz: float | None = SRC6_CLOCK_MHZ,
    iterations: int | None = None,
) -> list[Table2Row]:
    """Measure software and model hardware for each n (default 2..10)."""
    ns = ns if ns is not None else list(range(2, 11))
    rows = []
    for n in ns:
        iters = iterations if iterations is not None else default_iterations(n)
        hw = HardwareTimingModel(n, clock_mhz=clock_mhz)
        rows.append(
            Table2Row(
                n=n,
                hw_ns=hw.estimate(iters).marginal_ns_per_permutation,
                sw_ns=software_unrank_ns(n, iters),
                sw_batch_ns=software_batch_unrank_ns(n, iters),
                iterations=iters,
            )
        )
    return rows


def render_table2(rows: list[Table2Row]) -> str:
    """ASCII table in the paper's layout plus the speedup columns."""
    header = f"{'n':>3}  {'HW ns':>8}  {'SW ns':>10}  {'SWbatch ns':>11}  {'iters':>9}  {'speedup':>9}  {'vs batch':>9}"
    lines = [header]
    for r in rows:
        lines.append(
            f"{r.n:>3}  {r.hw_ns:>8.1f}  {r.sw_ns:>10.1f}  {r.sw_batch_ns:>11.1f}"
            f"  {r.iterations:>9}  {r.speedup:>9.1f}  {r.speedup_vs_batch:>9.1f}"
        )
    return "\n".join(lines)
