"""Strong-scaling measurement of the parallel experiment runners.

Measures wall-clock of a fixed problem at increasing worker counts and
reports speedup/efficiency — the standard strong-scaling table.  Results
are deterministic in *value* (the runners are bit-exact under sharding);
only the timing varies with the machine, so the harness asserts values
and reports times.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["ScalingPoint", "strong_scaling", "render_scaling_table"]


@dataclass(frozen=True)
class ScalingPoint:
    workers: int
    seconds: float
    result_digest: int  #: hash of the result, for cross-point validation

    def speedup_vs(self, baseline: "ScalingPoint") -> float:
        return baseline.seconds / self.seconds

    def efficiency_vs(self, baseline: "ScalingPoint") -> float:
        return self.speedup_vs(baseline) / max(1, self.workers)


def strong_scaling(
    job: Callable[[int], object],
    worker_counts: Sequence[int] = (1, 2, 4),
    repeats: int = 1,
) -> list[ScalingPoint]:
    """Run ``job(workers)`` at each worker count; best-of-``repeats`` time.

    Raises if any worker count produces a different result — scaling runs
    that change answers are bugs, not performance data.
    """
    if not worker_counts:
        raise ValueError("need at least one worker count")
    points = []
    for w in worker_counts:
        best = float("inf")
        digest: int | None = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            result = job(w)
            dt = time.perf_counter() - t0
            best = min(best, dt)
            d = hash(_freeze(result))
            if digest is None:
                digest = d
            elif digest != d:
                raise AssertionError(f"job not deterministic at workers={w}")
        points.append(ScalingPoint(workers=w, seconds=best, result_digest=digest or 0))
    digests = {p.result_digest for p in points}
    if len(digests) != 1:
        raise AssertionError("result differs across worker counts")
    return points


def _freeze(obj: object) -> object:
    """Make common result shapes hashable."""
    import numpy as np

    if isinstance(obj, np.ndarray):
        return (obj.shape, obj.tobytes())
    if isinstance(obj, (list, tuple)):
        return tuple(_freeze(x) for x in obj)
    if isinstance(obj, set):
        return frozenset(obj)
    if isinstance(obj, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in obj.items()))
    return obj


def render_scaling_table(points: list[ScalingPoint]) -> str:
    base = points[0]
    lines = [f"{'workers':>7}  {'seconds':>8}  {'speedup':>7}  {'efficiency':>10}"]
    for p in points:
        lines.append(
            f"{p.workers:>7}  {p.seconds:>8.3f}  {p.speedup_vs(base):>7.2f}"
            f"  {p.efficiency_vs(base):>10.2f}"
        )
    return "\n".join(lines)
