"""Measured software baselines (the role of the paper's Xeon C program).

The paper's methodology, §II-C: "we repeatedly (redundantly) did the
computations for many iterations and divided the time durations by the
number of iterations" — exactly what these helpers do with
``time.perf_counter_ns``.  Iteration counts scale down as ``n`` grows,
mirroring the paper's "# iterations" column.

Two software paths are timed:

* :func:`software_unrank_ns` — the scalar greedy algorithm on sequential
  indices, one permutation per call (the direct C-program analogue);
* :func:`software_batch_unrank_ns` — the vectorised NumPy unranker, the
  best software can do on this substrate (an ablation row showing the
  hardware claim survives an optimised baseline).
"""

from __future__ import annotations

import time
from typing import Callable

from repro.core.factorial import factorial
from repro.core.knuth import KnuthShuffleCircuit
from repro.core.lehmer import unrank_batch, unrank_naive

__all__ = [
    "software_unrank_ns",
    "software_batch_unrank_ns",
    "software_shuffle_ns",
    "default_iterations",
]


def default_iterations(n: int) -> int:
    """Iteration counts in the spirit of Table II's right column —
    millions for small n, tens of thousands for n = 10."""
    if n <= 5:
        return 200_000
    if n <= 7:
        return 100_000
    return 50_000


def _time_loop(fn: Callable[[], None], iterations: int, repeats: int = 3) -> float:
    """Best-of-``repeats`` mean ns per call (timeit's convention: the
    minimum suppresses scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter_ns()
        fn()
        dt = time.perf_counter_ns() - t0
        best = min(best, dt / iterations)
    return best


def software_unrank_ns(n: int, iterations: int | None = None) -> float:
    """Mean ns per permutation, scalar greedy unranking, sequential indices."""
    iterations = iterations if iterations is not None else default_iterations(n)
    limit = factorial(n)

    def body() -> None:
        idx = 0
        for _ in range(iterations):
            unrank_naive(idx, n)
            idx += 1
            if idx == limit:
                idx = 0

    return _time_loop(body, iterations)


def software_batch_unrank_ns(n: int, iterations: int | None = None, batch: int = 4096) -> float:
    """Mean ns per permutation through the vectorised NumPy unranker."""
    iterations = iterations if iterations is not None else default_iterations(n)
    limit = factorial(n)
    batches, rem = divmod(iterations, batch)

    def body() -> None:
        start = 0
        for _ in range(batches):
            idx = [(start + i) % limit for i in range(batch)]
            unrank_batch(idx, n)
            start += batch
        if rem:
            unrank_batch([(start + i) % limit for i in range(rem)], n)

    return _time_loop(body, iterations)


def software_shuffle_ns(n: int, iterations: int | None = None) -> float:
    """Mean ns per random permutation via the software Knuth shuffle."""
    iterations = iterations if iterations is not None else default_iterations(n)
    circuit = KnuthShuffleCircuit(n, m=31)

    def body() -> None:
        for _ in range(iterations):
            circuit.shuffle_once()

    return _time_loop(body, iterations)
