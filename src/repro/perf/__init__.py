"""Performance harness reproducing Table II.

Table II compares the SRC-6 circuit (one permutation per 10 ns clock) with
a sequential C program on a Xeon.  Here:

* :mod:`repro.perf.clock_model` — hardware time from first principles:
  cycle counts of the simulated pipeline × a clock period, the period
  coming either from the paper's platform (100 MHz SRC-6) or from the
  :mod:`repro.fpga` timing model;
* :mod:`repro.perf.software_baseline` — measured per-permutation cost of
  the same greedy algorithm in scalar Python (the role of the paper's C
  code) plus the vectorised NumPy batch variant as an ablation;
* :mod:`repro.perf.speedup` — assembles the Table-II rows and the speedup
  column.

As DESIGN.md §2 notes, absolute numbers shift with the software substrate
(Python vs C); the reproduced claim is the *shape*: constant hardware cost
per permutation versus per-element-growing software cost, hence a speedup
that grows with n into the thousands.
"""

from repro.perf.clock_model import HardwareTimingModel, HardwareEstimate, SRC6_CLOCK_MHZ
from repro.perf.software_baseline import (
    software_unrank_ns,
    software_batch_unrank_ns,
    software_shuffle_ns,
)
from repro.perf.speedup import Table2Row, table2_rows, render_table2
from repro.perf.scaling import ScalingPoint, strong_scaling, render_scaling_table

__all__ = [
    "HardwareTimingModel",
    "HardwareEstimate",
    "SRC6_CLOCK_MHZ",
    "software_unrank_ns",
    "software_batch_unrank_ns",
    "software_shuffle_ns",
    "Table2Row",
    "table2_rows",
    "render_table2",
    "ScalingPoint",
    "strong_scaling",
    "render_scaling_table",
]
