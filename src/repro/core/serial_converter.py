"""A digit-serial index-to-permutation converter (area–time trade-off).

The paper's Fig.-1 cascade instantiates every stage: O(n²) comparators,
one permutation per clock.  The natural resource-shared alternative — one
stage's datapath reused across ``n`` clocks under a stage counter — costs
O(n) comparators plus a small weight ROM, at 1/n of the throughput.  This
module builds that design, making the area×time product comparison
concrete (see ``benchmarks/bench_extensions.py``).

Operation (one permutation per ``n``-clock round):

* cycle ``T = 0`` *loads*: the running index takes the ``index`` input and
  the pool registers take the fixed input permutation, while stage 0 is
  processed in the same cycle;
* cycles ``T = 1..n−1`` process stages 1..n−1 against the registered
  state; element ``T`` is written into output register ``T``;
* when ``T`` wraps to 0 the output registers hold the complete
  permutation of the index loaded ``n`` cycles earlier (``valid`` rises),
  and the next index is absorbed in the same cycle — full utilisation,
  no dead cycles.

The per-stage comparator thresholds ``j·(n−1−T)!`` vary with the stage,
so they come from a constant ROM (a mux over ``T``) — the one structure
the parallel design hard-wires per stage.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.factorial import element_width, factorial, index_width
from repro.hdl.components import (
    equals_const,
    mux2_bus,
    onehot_mux,
    reduce_or,
    ripple_sub,
    thermometer_to_onehot,
)
from repro.hdl.gates import Op
from repro.hdl.netlist import Bus, Netlist, Register
from repro.hdl.simulator import SequentialSimulator

__all__ = ["SerialConverter"]


class SerialConverter:
    """Resource-shared index → permutation converter.

    Parameters mirror :class:`~repro.core.converter.
    IndexToPermutationConverter`; the difference is purely
    architectural: one shared stage datapath, ``n`` clocks per result.
    """

    def __init__(self, n: int, input_permutation: Sequence[int] | None = None):
        if n < 2:
            raise ValueError("the serial design needs n ≥ 2")
        self.n = n
        if input_permutation is None:
            self.input_permutation = tuple(range(n))
        else:
            pool = tuple(int(x) for x in input_permutation)
            if sorted(pool) != list(range(n)):
                raise ValueError("input permutation must permute 0..n-1")
            self.input_permutation = pool
        self.index_width = index_width(n)
        self.element_width = element_width(n)
        self.index_limit = factorial(n)

    # ------------------------------------------------------------------ #
    # structure

    @property
    def cycles_per_permutation(self) -> int:
        return self.n

    @property
    def comparator_count(self) -> int:
        """One shared bank: n−1 comparators (the parallel design's
        n(n−1)/2)."""
        return self.n - 1

    @property
    def throughput(self) -> float:
        """Permutations per clock: 1/n."""
        return 1.0 / self.n

    # ------------------------------------------------------------------ #
    # functional model (cycle-accurate FSM mirror)

    def run(self, indices: Sequence[int]) -> np.ndarray:
        """Feed indices back-to-back; returns the ``(B, n)`` results.

        Index ``b`` is absorbed on cycle ``b·n`` and its permutation
        completes at cycle ``(b+1)·n − 1``.
        """
        out = []
        for index in indices:
            if not (0 <= int(index) < self.index_limit):
                raise ValueError(f"index {index} outside 0..{self.index_limit - 1}")
            remaining = int(index)
            pool = list(self.input_permutation)
            result = []
            for t in range(self.n):
                m = self.n - t
                w = factorial(self.n - 1 - t)
                s = 0
                for j in range(1, m):
                    if remaining >= j * w:
                        s = j
                remaining -= s * w
                result.append(pool.pop(s))
            out.append(result)
        return np.asarray(out, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # structural model

    def build_netlist(self) -> Netlist:
        """The shared-datapath FSM as a gate-level netlist.

        Inputs: ``index``.  Outputs: ``out0..out{n-1}``, ``valid`` (high
        on the load cycle of the *next* round, when the previous round's
        outputs are complete) and ``stage`` (the counter, for test
        visibility).
        """
        n = self.n
        ew = self.element_width
        tw = max(1, (n - 1).bit_length())
        nl = Netlist(name=f"serial_idx2perm_n{n}")
        index_in = nl.input("index", self.index_width)

        # state registers (Q wires allocated first; D bound at the end)
        t_q = [nl._new_wire(Op.REG, (), name=f"T[{b}]") for b in range(tw)]
        r_q = [nl._new_wire(Op.REG, (), name=f"R[{b}]") for b in range(self.index_width)]
        pool_q = [
            [nl._new_wire(Op.REG, (), name=f"pool{j}[{b}]") for b in range(ew)]
            for j in range(n)
        ]
        out_q = [
            [nl._new_wire(Op.REG, (), name=f"out{t}[{b}]") for b in range(ew)]
            for t in range(n)
        ]
        seen_first_q = nl._new_wire(Op.REG, (), name="seen_first")

        t_bus = Bus(t_q)
        loading = equals_const(nl, t_bus, 0)

        # current-round state: on the load cycle, substitute the inputs
        cur_r = mux2_bus(nl, loading, Bus(r_q), index_in)
        cur_pool = [
            mux2_bus(nl, loading, Bus(pool_q[j]), nl.const_bus(self.input_permutation[j], ew))
            for j in range(n)
        ]

        # stage parameters from the weight ROM: threshold_j(T) = j·(n−1−T)!
        stage_onehot = [equals_const(nl, t_bus, t) for t in range(n)]
        therm = []
        lane_threshold: list[Bus] = []  # j·w(T), reused for the subtract
        for j in range(1, n):
            # lane j is valid while j ≤ (n − T − 1)  ⇔  T ≤ n − 1 − j
            valid = reduce_or(nl, stage_onehot[: n - j])
            thresholds = [
                nl.const_bus(j * factorial(n - 1 - t), self.index_width)
                for t in range(n)
            ]
            threshold = onehot_mux(nl, stage_onehot, thresholds)
            lane_threshold.append(threshold)
            _, borrow = ripple_sub(nl, cur_r, threshold)
            geq = nl.gate(Op.NOT, borrow)
            therm.append(nl.gate(Op.AND, valid, geq))
        onehot = thermometer_to_onehot(nl, therm)

        # element select and output register write (addressed by T)
        element = onehot_mux(nl, onehot, cur_pool)
        out_d = []
        for t in range(n):
            write = stage_onehot[t]
            out_d.append(mux2_bus(nl, write, Bus(out_q[t]), element))

        # running index update: R' = cur_R − s·w(T); the subtrahend is the
        # digit's lane threshold (already formed above), 0 for digit 0
        subtrahend = onehot_mux(nl, onehot[1:], lane_threshold)
        r_next, _ = ripple_sub(nl, cur_r, subtrahend)

        # pool compaction (lane j keeps while j < digit)
        pool_next = []
        for j in range(n - 1):
            pool_next.append(mux2_bus(nl, therm[j], cur_pool[j + 1], cur_pool[j]))
        pool_next.append(cur_pool[n - 1])  # top lane: don't care once dead

        # counter: T' = T + 1 mod n
        t_next_options = [nl.const_bus((t + 1) % n, tw) for t in range(n)]
        t_next = onehot_mux(nl, stage_onehot, t_next_options)

        # bind register Ds
        for q, d in zip(t_q, t_next):
            nl.registers.append(Register(q=q, d=d, init=False))
        for q, d in zip(r_q, r_next):
            nl.registers.append(Register(q=q, d=d, init=False))
        for j in range(n):
            for q, d in zip(pool_q[j], pool_next[j]):
                nl.registers.append(Register(q=q, d=d, init=False))
        for t in range(n):
            for q, d in zip(out_q[t], out_d[t]):
                nl.registers.append(Register(q=q, d=d, init=False))
        # valid: a full round has completed and T wrapped to 0
        nl.registers.append(Register(q=seen_first_q, d=nl.const(1), init=False))

        for t in range(n):
            nl.output(f"out{t}", Bus(out_q[t]))
        nl.output("valid", Bus([nl.gate(Op.AND, loading, seen_first_q)]))
        nl.output("stage", t_bus)
        return nl

    def simulate_netlist(self, indices: Sequence[int]) -> np.ndarray:
        """Clock the FSM through a back-to-back index stream.

        Index ``b`` is presented (held) during its round's cycles; results
        are captured on each ``valid`` cycle.
        """
        idx = [int(i) for i in indices]
        nl = self.build_netlist()
        sim = SequentialSimulator(nl, batch=1)
        results = []
        stream = idx + [0]  # one extra round-start to flush the last result
        for b, value in enumerate(stream):
            for _ in range(self.n if b < len(idx) else 1):
                outs = sim.step({"index": value})
                if int(outs["valid"][0]):
                    results.append([int(outs[f"out{t}"][0]) for t in range(self.n)])
        return np.asarray(results, dtype=np.int64)

    def stream(self, indices: Sequence[int]) -> Iterator[tuple[int, ...]]:
        """Functional streaming interface (one result per n model-cycles)."""
        for row in self.run(list(indices)):
            yield tuple(int(x) for x in row)
