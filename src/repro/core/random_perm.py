"""The indexed random permutation generator (paper §III-A, Fig. 2).

The first of the paper's two random-permutation approaches: draw a random
*index* with the scaled LFSR block (``k = n!``) and feed it to the
index-to-permutation converter.  Its two documented trade-offs are modelled
exactly:

* **bias** — with an ``m``-bit LFSR the index distribution deviates from
  uniform per the pigeonhole principle; :meth:`RandomPermutationGenerator.
  index_bias` returns the closed-form profile (§III-A's 2×-at-m=5
  example);
* **index width** — the index needs ``ceil(log2 n!)`` bits, which grows
  superlinearly (e.g. 296 bits for n = 64); :func:`required_index_bits`
  quantifies the paper's "disadvantage … the large size of the index".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.converter import IndexToPermutationConverter
from repro.core.factorial import factorial, index_width
from repro.rng.lfsr import FibonacciLFSR, LFSRBase, dense_seed
from repro.rng.scaled import BiasReport, ScaledRandomInteger, bias_profile

__all__ = ["RandomPermutationGenerator", "required_index_bits"]


def required_index_bits(n: int) -> int:
    """Index width in bits for n-element permutations: ``ceil(log2 n!)``."""
    return index_width(n)


class RandomPermutationGenerator:
    """Random permutations via random index → converter (Fig. 2).

    Parameters
    ----------
    n:
        Permutation size.
    m:
        LFSR width.  Must satisfy ``2^m > n!`` for every permutation to be
        reachable; a :class:`ValueError` explains the pigeonhole violation
        otherwise (the paper's "m = 5 is too small for n = 4" caveat is the
        boundary case: 31 states over 24 indices is allowed but biased —
        what is rejected is ``2^m − 1 < n!``).
    """

    def __init__(
        self,
        n: int,
        m: int = 31,
        lfsr: LFSRBase | None = None,
        input_permutation: Sequence[int] | None = None,
    ):
        self.n = n
        self.k = factorial(n)
        self.converter = IndexToPermutationConverter(n, input_permutation)
        src_lfsr = lfsr if lfsr is not None else FibonacciLFSR(m, seed=dense_seed(m))
        self.m = src_lfsr.width
        if (1 << self.m) - 1 < self.k:
            raise ValueError(
                f"m={self.m} gives only {(1 << self.m) - 1} LFSR states for "
                f"{self.k} permutations: some permutations would never occur"
            )
        self.index_generator = ScaledRandomInteger(self.k, lfsr=src_lfsr)

    def next_permutation(self) -> tuple[int, ...]:
        """Draw one random permutation."""
        return self.converter.convert(self.index_generator.next_int())

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` permutations as a ``(B, n)`` array (vectorised)."""
        indices = self.index_generator.ints(count)
        return self.converter.convert_batch(indices)

    def index_bias(self) -> BiasReport:
        """Exact index distribution over one LFSR period (pigeonhole)."""
        return bias_profile(self.k, self.m)

    def permutation_probability(self, index: int) -> float:
        """Long-run probability of the permutation at ``index``."""
        report = self.index_bias()
        return report.counts[index] / report.period
