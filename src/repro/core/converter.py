"""The index-to-permutation converter circuit (paper §II, Fig. 1).

The converter is a cascade of ``n`` stages.  Stage ``t`` (0-based, left to
right) sees the running index ``N_t`` and the pool of ``m = n − t``
still-unassigned elements.  With ``w = (m−1)!``:

1. a bank of ``m − 1`` constant comparators computes the thermometer code
   ``[N_t ≥ 1·w, N_t ≥ 2·w, …, N_t ≥ (m−1)·w]`` — the factorial digit
   ``s`` is the number of true lines (the Fig.-1 ``>`` column);
2. a one-hot MUX routes ``pool[s]`` to output position ``t``;
3. an ``A−B`` subtractor forms ``N_{t+1} = N_t − s·w`` (the subtrahend is
   itself a one-hot MUX over the constant multiples ``j·w``);
4. a row of 2:1 muxes compacts the pool by squeezing out slot ``s``.

The final stage has one comparator and either swaps or passes the last two
elements — exactly the paper's description.

Pipelining (``pipelined=True``) inserts a register bank at every stage
boundary, giving latency ``n`` clocks and throughput one permutation per
clock (§II-B).  Both the combinational and pipelined netlists are verified
against the functional model in the test suite, and the functional model
against :mod:`repro.core.lehmer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.factorial import element_width, factorial, index_width, word_width
from repro.core.lehmer import unrank_batch
from repro.errors import InvalidIndexError, InvalidPermutationError
from repro.hdl.components import (
    geq_const,
    mux2_bus,
    onehot_mux,
    ripple_sub,
    thermometer_to_onehot,
    zero_extend,
)
from repro.hdl.netlist import Bus, Netlist
from repro.hdl.simulator import CombinationalSimulator, SequentialSimulator
from repro.obs import metrics as _metrics
from repro.rng.source import IndexSource

__all__ = ["StageSpec", "IndexToPermutationConverter"]

#: Functional-model conversions served, by permutation size.  Guarded by
#: the registry's enabled flag; a no-op unless telemetry is switched on.
_CONVERT_TOTAL = _metrics.REGISTRY.counter(
    "repro_convert_total", "index->permutation conversions served", ("n",)
)


@dataclass(frozen=True)
class StageSpec:
    """Static description of one cascade stage."""

    position: int  #: 0-based stage number (left = 0)
    pool_size: int  #: elements still unassigned at the stage input
    weight: int  #: factorial weight (pool_size − 1)!
    comparators: int  #: structural comparator count: pool_size − 1
    thresholds: tuple[int, ...]  #: the constants j·weight compared against
    index_bits_in: int  #: running-index width entering the stage
    index_bits_out: int  #: running-index width leaving the stage


class IndexToPermutationConverter:
    """Index → permutation converter: functional + structural models.

    Parameters
    ----------
    n:
        Number of permutation elements (n ≥ 1).
    input_permutation:
        The Fig.-1 "input permutation" applied at the pool inputs.  The
        default identity makes index order lexicographic.
    """

    def __init__(self, n: int, input_permutation: Sequence[int] | None = None):
        if n < 1:
            raise ValueError("n must be at least 1")
        self.n = n
        if input_permutation is None:
            self.input_permutation = tuple(range(n))
        else:
            pool = tuple(int(x) for x in input_permutation)
            if sorted(pool) != list(range(n)):
                raise InvalidPermutationError("input permutation must permute 0..n-1")
            self.input_permutation = pool
        self.index_limit = factorial(n)
        self.index_width = index_width(n)
        self.element_width = element_width(n)
        self.word_width = word_width(n)

    # ------------------------------------------------------------------ #
    # static structure

    @property
    def stages(self) -> list[StageSpec]:
        """Per-stage structural description (drives Fig.-1/Table-III rows)."""
        out = []
        bits_in = self.index_width
        for t in range(self.n):
            m = self.n - t
            w = factorial(m - 1)
            bits_out = max(1, (w - 1).bit_length()) if m > 1 else 1
            out.append(
                StageSpec(
                    position=t,
                    pool_size=m,
                    weight=w,
                    comparators=m - 1,
                    thresholds=tuple(j * w for j in range(1, m)),
                    index_bits_in=bits_in,
                    index_bits_out=bits_out,
                )
            )
            bits_in = bits_out
        return out

    def comparator_count(self) -> int:
        """Structural comparators: Σ (m−1) = n(n−1)/2."""
        return self.n * (self.n - 1) // 2

    def paper_comparator_count(self) -> int:
        """The paper's §II-D accounting: n + (n−1) + … + 1 = n(n+1)/2.

        The paper counts one comparator per *choice* (including the
        always-true ``N ≥ 0`` line we constant-fold away); both counts are
        Θ(n²).
        """
        return self.n * (self.n + 1) // 2

    @property
    def latency(self) -> int:
        """Pipeline latency in clocks: one per stage (§II-B)."""
        return self.n

    @property
    def pipeline_register_stages(self) -> int:
        """Register banks in the pipelined netlist: one after each of the
        first n−1 stages (the last stage feeds outputs directly)."""
        return max(0, self.n - 1)

    @property
    def throughput(self) -> float:
        """Permutations per clock once the pipeline is full."""
        return 1.0

    # ------------------------------------------------------------------ #
    # functional model (stage-accurate software reference)

    def convert(self, index: int) -> tuple[int, ...]:
        """Unrank one index through the stage-accurate datapath.

        Raises :class:`~repro.errors.InvalidIndexError` (a
        :class:`ValueError` subclass) for non-integers and indices
        outside ``0..n!−1``.
        """
        if isinstance(index, bool) or not isinstance(index, (int, np.integer)):
            raise InvalidIndexError(f"index {index!r} is not an integer")
        if not (0 <= index < self.index_limit):
            raise InvalidIndexError(
                f"index {index} outside 0..{self.index_limit - 1}"
            )
        if _metrics.REGISTRY.enabled:
            _CONVERT_TOTAL.inc(n=self.n)
        pool = list(self.input_permutation)
        remaining = index
        out = []
        for m in range(self.n, 0, -1):
            w = factorial(m - 1)
            # thermometer of comparators; digit = number of true lines
            s = 0
            for j in range(1, m):
                if remaining >= j * w:
                    s = j
            remaining -= s * w
            out.append(pool.pop(s))
        assert remaining == 0
        return tuple(out)

    def convert_batch(self, indices: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorised conversion of a batch of indices → ``(B, n)`` array."""
        return unrank_batch(indices, self.n, pool=self.input_permutation)

    def stream(self, source: IndexSource, count: int) -> np.ndarray:
        """Pull ``count`` indices from a source and convert them."""
        if source.limit > self.index_limit:
            raise ValueError("source limit exceeds n!")
        return self.convert_batch(source.take(count))

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        """All n! permutations in index order."""
        for i in range(self.index_limit):
            yield self.convert(i)

    # ------------------------------------------------------------------ #
    # structural model (gate-level netlist)

    def build_netlist(
        self,
        pipelined: bool = False,
        permutation_input_port: bool = False,
        with_stage_probes: bool = False,
    ) -> Netlist:
        """Construct the Fig.-1 circuit as a gate-level netlist.

        Parameters
        ----------
        pipelined:
            Insert a register bank at every stage boundary (§II-B).
        permutation_input_port:
            Expose the input permutation as a primary input bus instead of
            hard-wiring :attr:`input_permutation` as constants.  The fixed
            form is what the paper synthesises; the port form is the LUT
            cascade generalisation.
        with_stage_probes:
            Additionally expose each stage's factorial digit as a debug
            output bus ``dbg_digit{t}`` (a binary encoding of the
            thermometer column), giving waveform-level visibility into
            the stage-by-stage digit extraction.  Off by default: the
            encoder gates would otherwise perturb resource counts.

        Outputs: ``out0..out{n-1}`` (element buses) and ``word`` — the
        packed MSB-first word of :meth:`Permutation.packed_value` — plus
        the ``dbg_digit*`` buses when ``with_stage_probes`` is set.
        """
        n = self.n
        ew = self.element_width
        nl = Netlist(
            name=f"idx2perm_n{n}" + ("_pipe" if pipelined else "")
        )
        index = nl.input("index", self.index_width)
        if permutation_input_port:
            pool = [nl.input(f"in{j}", ew) for j in range(n)]
        else:
            pool = [nl.const_bus(self.input_permutation[j], ew) for j in range(n)]

        assigned: list[Bus] = []
        debug_buses: list[tuple[str, Bus]] = []
        running = index
        for spec in self.stages:
            m = spec.pool_size
            w = spec.weight
            if m == 1:
                assigned.append(pool[0])
                break
            # 1. comparator bank → thermometer code of the digit
            therm = [geq_const(nl, running, j * w) for j in range(1, m)]
            onehot = thermometer_to_onehot(nl, therm)
            if with_stage_probes:
                # binary-encode the digit for the waveform probe taps
                dw = max(1, (m - 1).bit_length())
                digit = onehot_mux(
                    nl, onehot, [nl.const_bus(j, dw) for j in range(m)]
                )
                debug_buses.append((f"dbg_digit{spec.position}", digit))
            # 2. element select
            assigned.append(onehot_mux(nl, onehot, pool))
            # 3. subtract s·w from the running index
            subtrahend = onehot_mux(
                nl, onehot, [nl.const_bus(j * w, running.width) for j in range(m)]
            )
            diff, _ = ripple_sub(nl, running, subtrahend)
            running = diff[: spec.index_bits_out]
            # 4. pool compaction: squeeze out slot s.  Slot j keeps its
            # element while j < s (therm[j] high), else shifts j+1 down.
            pool = [
                mux2_bus(nl, therm[j], pool[j + 1], pool[j]) for j in range(m - 1)
            ]
            if pipelined:
                running = nl.register_bus(running, name=f"s{spec.position}.idx")
                pool = [
                    nl.register_bus(b, name=f"s{spec.position}.pool{j}")
                    for j, b in enumerate(pool)
                ]
                assigned = [
                    nl.register_bus(b, name=f"s{spec.position}.out{j}")
                    for j, b in enumerate(assigned)
                ]

        word_bits: list[int] = []
        for t, bus in enumerate(assigned):
            nl.output(f"out{t}", bus)
        # MSB-first packing: out0 occupies the top element slot
        for bus in reversed(assigned):
            word_bits.extend(zero_extend(nl, bus, ew))
        nl.output("word", Bus(word_bits))
        for name, bus in debug_buses:
            nl.output(name, bus)
        return nl

    # ------------------------------------------------------------------ #
    # structural simulation helpers

    def simulate_netlist(
        self, indices: Sequence[int], pipelined: bool = False
    ) -> np.ndarray:
        """Run indices through the gate-level circuit; returns ``(B, n)``.

        For the pipelined netlist this performs a cycle-accurate run and
        strips the ``latency``-cycle fill; the caller sees the same
        permutation stream the combinational circuit would produce, which
        is exactly the §II-B claim being demonstrated.
        """
        nl = self.build_netlist(pipelined=pipelined)
        idx = [int(i) for i in indices]
        if not pipelined:
            sim = CombinationalSimulator(nl)
            outs = sim.run({"index": idx})
            return self._unpack(outs, len(idx))
        # Cycle-accurate pipeline run: one new index per clock.  Register
        # banks sit after stages 0..n−2, so every output path crosses
        # exactly n−1 registers and the first permutation emerges after
        # n−1 fill cycles; thereafter one per clock.
        seq = SequentialSimulator(nl, batch=1)
        fill = self.pipeline_register_stages
        results = []
        stream = idx + [0] * fill
        for cycle, value in enumerate(stream):
            outs = seq.step({"index": value})
            if cycle >= fill:
                results.append([int(outs[f"out{t}"][0]) for t in range(self.n)])
        return np.asarray(results, dtype=np.int64)

    def _unpack(self, outs: dict, batch: int) -> np.ndarray:
        arr = np.empty((batch, self.n), dtype=np.int64)
        for t in range(self.n):
            arr[:, t] = [int(v) for v in outs[f"out{t}"]]
        return arr
