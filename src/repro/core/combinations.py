"""Index → combination conversion (the companion paper, ref. [4]).

The paper presents itself as "a companion to [4] which describes the
high-speed generation of combinations … together the two papers cover a
subset of circuits that produce combinatorial objects."  This module
implements that companion function in the same style: the *combinadic*
(combinatorial number system) maps an index ``0 ≤ N < C(n, r)`` to the
``N``-th ``r``-subset of ``{0..n−1}`` in lexicographic order, and a
greedy comparator cascade realises it in hardware terms.

The constant-weight-codeword view: a combination is an ``n``-bit word of
weight ``r`` (bit ``i`` set iff ``i`` is chosen).
"""

from __future__ import annotations

from math import comb
from typing import Iterator, Sequence

import numpy as np

from repro.rng.lfsr import FibonacciLFSR, LFSRBase
from repro.rng.scaled import ScaledRandomInteger

__all__ = [
    "combination_unrank",
    "combination_rank",
    "combination_to_codeword",
    "codeword_to_combination",
    "IndexToCombinationConverter",
    "RandomCombinationGenerator",
]


def combination_unrank(index: int, n: int, r: int) -> tuple[int, ...]:
    """The ``index``-th ``r``-subset of ``{0..n−1}`` in lexicographic order.

    Greedy digit extraction, mirroring the permutation converter: choose
    the smallest feasible first element, charge the skipped blocks against
    the index, recurse on the suffix.  O(n) comparator steps.
    """
    if not (0 <= r <= n):
        raise ValueError(f"need 0 ≤ r ≤ n, got r={r}, n={n}")
    total = comb(n, r)
    if not (0 <= index < max(total, 1)):
        raise ValueError(f"index {index} outside 0..{total - 1}")
    out = []
    x = 0  # candidate element
    remaining = index
    k = r
    while k > 0:
        block = comb(n - x - 1, k - 1)  # combinations starting with x
        if remaining < block:
            out.append(x)
            k -= 1
        else:
            remaining -= block
        x += 1
    return tuple(out)


def combination_rank(combo: Sequence[int], n: int) -> int:
    """Lexicographic rank of an ``r``-subset of ``{0..n−1}``."""
    c = sorted(int(x) for x in combo)
    if c and not (0 <= c[0] and c[-1] < n):
        raise ValueError("elements outside 0..n-1")
    if len(set(c)) != len(c):
        raise ValueError("duplicate elements")
    r = len(c)
    index = 0
    prev = -1
    k = r
    for x in c:
        for skipped in range(prev + 1, x):
            index += comb(n - skipped - 1, k - 1)
        prev = x
        k -= 1
    return index


def combination_to_codeword(combo: Sequence[int], n: int) -> int:
    """Constant-weight codeword: bit ``i`` set iff ``i`` is chosen."""
    word = 0
    for x in combo:
        if not (0 <= x < n):
            raise ValueError(f"element {x} outside 0..{n - 1}")
        if word >> x & 1:
            raise ValueError(f"duplicate element {x}")
        word |= 1 << x
    return word


def codeword_to_combination(word: int, n: int) -> tuple[int, ...]:
    """Inverse of :func:`combination_to_codeword`."""
    if word < 0 or word >> n:
        raise ValueError(f"word does not fit in {n} bits")
    return tuple(i for i in range(n) if (word >> i) & 1)


class IndexToCombinationConverter:
    """Index → r-combination converter with batch and codeword outputs."""

    def __init__(self, n: int, r: int):
        if not (0 <= r <= n):
            raise ValueError(f"need 0 ≤ r ≤ n, got r={r}, n={n}")
        self.n = n
        self.r = r
        self.index_limit = comb(n, r)
        self.index_width = max(1, (self.index_limit - 1).bit_length())

    def convert(self, index: int) -> tuple[int, ...]:
        return combination_unrank(index, self.n, self.r)

    def convert_batch(self, indices: Sequence[int]) -> np.ndarray:
        idx = [int(i) for i in indices]
        rows = [combination_unrank(i, self.n, self.r) for i in idx]
        return np.asarray(rows, dtype=np.int64).reshape(len(idx), self.r)

    def codeword(self, index: int) -> int:
        return combination_to_codeword(self.convert(index), self.n)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        for i in range(self.index_limit):
            yield self.convert(i)

    def comparator_count(self) -> int:
        """One feasibility comparator per candidate element: n (O(n))."""
        return self.n


class RandomCombinationGenerator:
    """Random r-subsets via a scaled-LFSR index (the companion's §III)."""

    def __init__(self, n: int, r: int, m: int = 31, lfsr: LFSRBase | None = None):
        self.converter = IndexToCombinationConverter(n, r)
        src = lfsr if lfsr is not None else FibonacciLFSR(m)
        if (1 << src.width) - 1 < self.converter.index_limit:
            raise ValueError("LFSR state space smaller than C(n, r)")
        self.index_generator = ScaledRandomInteger(self.converter.index_limit, lfsr=src)

    def next_combination(self) -> tuple[int, ...]:
        return self.converter.convert(self.index_generator.next_int())

    def sample(self, count: int) -> np.ndarray:
        indices = self.index_generator.ints(count)
        return self.converter.convert_batch(list(indices))
