"""The paper's primary contribution: index ⇄ permutation conversion.

Modules
-------
factorial
    The factorial number system (§II): digit vectors, greedy extraction,
    odometer iteration, bit-width accounting.
permutation
    A :class:`~repro.core.permutation.Permutation` value type with the
    algebra the applications need (compose/invert/apply, cycles, fixed
    points, the paper's packed-word encoding).
lehmer
    Index→permutation (*unranking*) and permutation→index (*ranking*) in
    four interchangeable implementations: naive O(n²), Fenwick-tree
    O(n log n), vectorised NumPy batch, and the gate-level circuit.
converter
    The §II index-to-permutation converter: a stage-accurate functional
    model plus a structural netlist builder (combinational or pipelined).
knuth
    The §III Knuth-shuffle random permutation circuit.
random_perm
    The §III-A indexed random permutation generator (scaled LFSR → converter).
sequences
    Streaming enumeration of all n! permutations in index order.
sorting
    The §IV closing remark: the same cascades used as sorting networks.
combinations
    The companion index-to-combination converter (ref. [4], combinadics).
"""

from repro.core.factorial import (
    factorial,
    max_index,
    index_width,
    element_width,
    word_width,
    FactorialDigits,
    digits_from_index,
    digits_from_index_greedy,
    index_from_digits,
    iter_digit_vectors,
)
from repro.core.permutation import Permutation
from repro.core.lehmer import (
    unrank,
    rank,
    unrank_naive,
    rank_naive,
    unrank_fenwick,
    rank_fenwick,
    unrank_batch,
    rank_batch,
    lehmer_digits,
    permutation_from_lehmer,
)
from repro.core.converter import IndexToPermutationConverter, StageSpec
from repro.core.inverse_converter import PermutationToIndexConverter
from repro.core.serial_converter import SerialConverter
from repro.core.orders import (
    mr_rank,
    mr_unrank,
    mr_unrank_batch,
    sjt_permutations,
    sjt_transposition_sequence,
)
from repro.core.benes import BenesNetwork, BenesSettings, route as benes_route
from repro.core.distance import (
    cayley_distance,
    hamming_distance,
    kendall_tau,
    spearman_footrule,
)
from repro.core.groups import (
    adjacent_transpositions,
    cayley_diameter,
    cayley_graph,
    conjugacy_class_sizes,
    generated_subgroup,
    generates_symmetric_group,
    stage_transpositions,
    subgroup_order,
)
from repro.core.knuth import KnuthShuffleCircuit
from repro.core.random_perm import RandomPermutationGenerator
from repro.core.sequences import PermutationSequence, all_permutations
from repro.core.sorting import SelectionSortNetwork, sort_via_ranking
from repro.core.combinations import (
    combination_unrank,
    combination_rank,
    IndexToCombinationConverter,
    RandomCombinationGenerator,
)

__all__ = [
    "factorial",
    "max_index",
    "index_width",
    "element_width",
    "word_width",
    "FactorialDigits",
    "digits_from_index",
    "digits_from_index_greedy",
    "index_from_digits",
    "iter_digit_vectors",
    "Permutation",
    "unrank",
    "rank",
    "unrank_naive",
    "rank_naive",
    "unrank_fenwick",
    "rank_fenwick",
    "unrank_batch",
    "rank_batch",
    "lehmer_digits",
    "permutation_from_lehmer",
    "IndexToPermutationConverter",
    "StageSpec",
    "PermutationToIndexConverter",
    "SerialConverter",
    "mr_rank",
    "mr_unrank",
    "mr_unrank_batch",
    "sjt_permutations",
    "sjt_transposition_sequence",
    "BenesNetwork",
    "BenesSettings",
    "benes_route",
    "cayley_distance",
    "hamming_distance",
    "kendall_tau",
    "spearman_footrule",
    "adjacent_transpositions",
    "cayley_diameter",
    "cayley_graph",
    "conjugacy_class_sizes",
    "generated_subgroup",
    "generates_symmetric_group",
    "stage_transpositions",
    "subgroup_order",
    "KnuthShuffleCircuit",
    "RandomPermutationGenerator",
    "PermutationSequence",
    "all_permutations",
    "SelectionSortNetwork",
    "sort_via_ranking",
    "combination_unrank",
    "combination_rank",
    "IndexToCombinationConverter",
    "RandomCombinationGenerator",
]
