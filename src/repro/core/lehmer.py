"""Ranking and unranking permutations (Lehmer codes).

The converter's defining function is *unranking*: index ``N`` ↦ the ``N``-th
permutation in lexicographic order (paper Table I).  Four interchangeable
implementations exist in this repo, all proven equal by tests:

========================  =======================  =========================
implementation            complexity               where
========================  =======================  =========================
``unrank_naive``          O(n²)                    here — mirrors the paper's
                                                   C baseline stage for stage
``unrank_fenwick``        O(n log n)               here — Fenwick-tree pool
``unrank_batch``          O(n²·B) vectorised       here — NumPy, B at a time
gate-level circuit        O(n) delay, O(n²) area   :mod:`repro.core.converter`
========================  =======================  =========================

All accept an optional *input pool* — the "input permutation" port of
Fig. 1 — defaulting to the identity, in which case index order coincides
with lexicographic order: index 0 ↦ identity, index n!−1 ↦ reversal.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.factorial import factorial, digits_from_index, max_index
from repro.errors import InvalidIndexError, InvalidPermutationError

#: np.bitwise_count arrived in NumPy 2.0; older installs use the
#: (B, n, n) comparison-cube path below (same results, more memory).
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

__all__ = [
    "unrank",
    "rank",
    "unrank_naive",
    "rank_naive",
    "unrank_fenwick",
    "rank_fenwick",
    "unrank_batch",
    "rank_batch",
    "lehmer_digit_batch",
    "lehmer_digits",
    "permutation_from_lehmer",
]

#: Above this size the dispatching front-ends switch to the Fenwick path.
_FENWICK_THRESHOLD = 32


def _validated_pool(n: int, pool: Sequence[int] | None) -> list[int]:
    if pool is None:
        return list(range(n))
    p = [int(x) for x in pool]
    if len(p) != n:
        raise InvalidPermutationError(f"pool has {len(p)} elements, expected {n}")
    return p


def unrank_naive(index: int, n: int, pool: Sequence[int] | None = None) -> tuple[int, ...]:
    """O(n²) unranking by digit extraction + list pop.

    This is the algorithm of the paper's software baseline: compute the
    factorial digits high-to-low and pick the ``s``-th remaining element
    of the pool at each step.
    """
    if not (0 <= index < factorial(n)):
        raise InvalidIndexError(f"index {index} outside 0..{max_index(n)}")
    remaining = _validated_pool(n, pool)
    digits = digits_from_index(index, n)
    out = []
    for i in range(n - 1, -1, -1):
        out.append(remaining.pop(digits[i]))
    return tuple(out)


def rank_naive(perm: Sequence[int], pool: Sequence[int] | None = None) -> int:
    """O(n²) ranking: invert the pool selection to recover each digit."""
    p = list(perm)
    n = len(p)
    remaining = _validated_pool(n, pool)
    index = 0
    for i, v in enumerate(p):
        try:
            d = remaining.index(v)
        except ValueError:
            raise InvalidPermutationError(
                f"{perm!r} is not drawn from the pool"
            ) from None
        index += d * factorial(n - 1 - i)
        remaining.pop(d)
    return index


class _Fenwick:
    """Fenwick (binary indexed) tree over unit counts, with an O(log n)
    'find the k-th live slot' descent."""

    def __init__(self, n: int):
        self.n = n
        # initialise to all-ones counts in O(n)
        self.tree = [0] * (n + 1)
        for i in range(1, n + 1):
            self.tree[i] += 1
            j = i + (i & -i)
            if j <= n:
                self.tree[j] += self.tree[i]
        self.log = max(1, n.bit_length())

    def prefix(self, i: int) -> int:
        """Count of live slots with position < i (positions are 0-based)."""
        s = 0
        while i > 0:
            s += self.tree[i]
            i -= i & -i
        return s

    def remove(self, pos: int) -> None:
        i = pos + 1
        while i <= self.n:
            self.tree[i] -= 1
            i += i & -i

    def kth(self, k: int) -> int:
        """0-based position of the (k+1)-th live slot."""
        pos = 0
        rem = k + 1
        for step in range(self.log, -1, -1):
            nxt = pos + (1 << step)
            if nxt <= self.n and self.tree[nxt] < rem:
                pos = nxt
                rem -= self.tree[pos]
        return pos  # 0-based because pos counts fully-skipped slots


def unrank_fenwick(index: int, n: int, pool: Sequence[int] | None = None) -> tuple[int, ...]:
    """O(n log n) unranking via a Fenwick tree over the live pool."""
    if not (0 <= index < factorial(n)):
        raise InvalidIndexError(f"index {index} outside 0..{max_index(n)}")
    base = _validated_pool(n, pool)
    digits = digits_from_index(index, n)
    tree = _Fenwick(n)
    out = []
    for i in range(n - 1, -1, -1):
        pos = tree.kth(digits[i])
        tree.remove(pos)
        out.append(base[pos])
    return tuple(out)


def rank_fenwick(perm: Sequence[int]) -> int:
    """O(n log n) ranking (identity pool): digit_i = live slots below p[i]."""
    p = [int(x) for x in perm]
    n = len(p)
    if sorted(p) != list(range(n)):
        raise InvalidPermutationError(f"{perm!r} is not a permutation of 0..{n - 1}")
    tree = _Fenwick(n)
    index = 0
    for i, v in enumerate(p):
        index += tree.prefix(v) * factorial(n - 1 - i)
        tree.remove(v)
    return index


def unrank_batch(
    indices: Sequence[int] | np.ndarray, n: int, pool: Sequence[int] | None = None
) -> np.ndarray:
    """Vectorised unranking: B indices → a ``(B, n)`` int array.

    All digit extraction and pool compaction is NumPy array arithmetic —
    this is the software throughput champion used by the Table-II harness
    and the Monte-Carlo applications.  Falls back to the Fenwick path for
    ``n > 20`` where indices exceed int64.
    """
    idx_list = [int(i) for i in np.asarray(indices, dtype=object).ravel()]
    limit = factorial(n)
    for i in idx_list:
        if not (0 <= i < limit):
            raise InvalidIndexError(f"index {i} outside 0..{limit - 1}")
    if n > 20:
        return np.array([unrank_fenwick(i, n, pool) for i in idx_list], dtype=np.int64)

    b = len(idx_list)
    idx = np.asarray(idx_list, dtype=np.int64)
    digits = np.zeros((b, n), dtype=np.int64)  # digits[:, i] = s_i
    for i in range(1, n):
        digits[:, i] = idx % (i + 1)
        idx //= i + 1

    base = np.asarray(_validated_pool(n, pool), dtype=np.int64)
    pool_arr = np.broadcast_to(base, (b, n)).copy()
    rows = np.arange(b)
    out = np.empty((b, n), dtype=np.int64)
    for position in range(n):
        d = digits[:, n - 1 - position]
        out[:, position] = pool_arr[rows, d]
        width = n - 1 - position
        if width:
            cols = np.arange(width)
            shifted = cols[None, :] + (cols[None, :] >= d[:, None])
            pool_arr = pool_arr[rows[:, None], shifted]
    return out


_RANK_CONSTANTS: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def _rank_constants(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-n constants for :func:`rank_batch`: tril mask and weights."""
    cached = _RANK_CONSTANTS.get(n)
    if cached is None:
        strictly_before = np.tri(n, k=-1, dtype=bool)  # [i, j] = j < i
        weights = np.array(
            [factorial(n - 1 - i) for i in range(n)], dtype=np.int64
        )
        cached = _RANK_CONSTANTS[n] = (strictly_before, weights)
    return cached


def lehmer_digit_batch(perms: np.ndarray, *, validate: bool = True) -> np.ndarray:
    """Vectorised Lehmer digits of a ``(B, n)`` array → ``(B, n)`` int64.

    ``out[b, i]`` is the digit at *position* ``i`` (the paper's
    high-to-low order: ``out[:, 0]`` weighs ``(n−1)!``), i.e. ``p_i``
    minus the count of earlier elements smaller than ``p_i``.  All B·n
    digits come from one ``(B, n, n)`` pairwise comparison masked to the
    strict lower triangle — a handful of NumPy calls regardless of
    ``n``; the cube is ≤ 400·B bytes of bools for n ≤ 20.  Unlike
    :func:`rank_batch` the digits themselves never overflow (each is
    < n), so this works for any ``n`` — the streaming analysis layer
    buckets digits at n where the rank would not fit an int64.

    ``validate=False`` skips the rows-are-permutations precheck for
    callers that have already established it; on arbitrary input the
    digits would still be computed but mean nothing.
    """
    p = np.asarray(perms, dtype=np.int64)
    if p.ndim != 2:
        raise ValueError("expected a (B, n) array")
    b, n = p.shape
    if validate:
        expected = np.arange(n, dtype=np.int64)
        if not np.array_equal(np.sort(p, axis=1), np.broadcast_to(expected, (b, n))):
            raise InvalidPermutationError("rows are not permutations of 0..n-1")
    if _HAS_BITWISE_COUNT and n <= 64:
        # O(B·n) popcount sweep: a running bitmask of seen elements per
        # row; the digit is p_i minus the count of seen elements below
        # it.  ~3× the (B, n, n) cube's throughput at population-scale
        # batch sizes (and n² → n memory), bit-identical output.
        dtype = np.uint32 if n <= 32 else np.uint64
        one = dtype(1)
        seen = np.zeros(b, dtype=dtype)
        out = np.empty((b, n), dtype=np.int64)
        for i in range(n):
            col = p[:, i].astype(dtype)
            bit = one << col
            out[:, i] = p[:, i] - np.bitwise_count(seen & (bit - one))
            seen |= bit
        return out
    strictly_before = np.tri(n, k=-1, dtype=bool)  # [i, j] = j < i
    # smaller_used[b, i] = |{j < i : p[b, j] < p[b, i]}|
    earlier_smaller = p[:, None, :] < p[:, :, None]  # [b, i, j] = p_j < p_i
    return p - (earlier_smaller & strictly_before).sum(axis=2)


def rank_batch(perms: np.ndarray, *, validate: bool = True) -> np.ndarray:
    """Vectorised ranking of a ``(B, n)`` array (identity pool, n ≤ 20).

    The digits come from :func:`lehmer_digit_batch`; ranking is then one
    matrix–vector product against the factorial weights — a handful of
    NumPy calls regardless of ``n``, which is what keeps the serving
    tier's per-batch rank oracle a small fraction of a sweep (a
    per-column Python loop costs ~10× more in dispatch overhead at
    n = 8).

    ``validate=False`` skips the rows-are-permutations precheck for
    callers that have already established it (the served-batch oracle
    checks bijectivity first to classify the failure).
    """
    p = np.asarray(perms, dtype=np.int64)
    if p.ndim != 2:
        raise ValueError("expected a (B, n) array")
    n = p.shape[1]
    if n > 20:
        raise ValueError("rank_batch supports n ≤ 20 (int64 indices); use rank_fenwick")
    _, weights = _rank_constants(n)
    digits = lehmer_digit_batch(p, validate=validate)
    return digits @ weights


def lehmer_digits(perm: Sequence[int]) -> tuple[int, ...]:
    """Factorial digit vector (LSB first) of a permutation of 0..n−1."""
    p = list(perm)
    n = len(p)
    index = rank_fenwick(p) if n > _FENWICK_THRESHOLD else rank_naive(p)
    return digits_from_index(index, n)


def permutation_from_lehmer(
    digits: Sequence[int], pool: Sequence[int] | None = None
) -> tuple[int, ...]:
    """Apply a digit vector (LSB first) directly to a pool."""
    n = len(digits)
    remaining = _validated_pool(n, pool)
    out = []
    for i in range(n - 1, -1, -1):
        d = digits[i]
        if not (0 <= d <= i):
            raise ValueError(f"digit s_{i}={d} violates 0 ≤ s_i ≤ i")
        out.append(remaining.pop(d))
    return tuple(out)


def unrank(index: int, n: int, pool: Sequence[int] | None = None) -> tuple[int, ...]:
    """Size-dispatching unranking front-end."""
    if n > _FENWICK_THRESHOLD:
        return unrank_fenwick(index, n, pool)
    return unrank_naive(index, n, pool)


def rank(perm: Sequence[int]) -> int:
    """Size-dispatching ranking front-end (identity pool)."""
    if len(perm) > _FENWICK_THRESHOLD:
        return rank_fenwick(perm)
    return rank_naive(perm)
