"""The §IV closing remark: the converter/shuffle cascades as sorting networks.

"The alert reader will note that the factorial number system circuit and
the Knuth shuffle circuit can also serve as a sorting network."

The observation: replace each stage's digit/random-integer input with a
*minimum finder* over the remaining pool and the same select-and-compact
(or swap) datapath performs selection sort.  :class:`SelectionSortNetwork`
builds exactly that circuit — stage ``t`` compares every remaining pool
word, one-hot-selects the minimum into position ``t`` and compacts — and a
functional model mirrors it.

:func:`sort_via_ranking` demonstrates the converse arithmetic identity:
unranking the index of a permutation's inverse through the converter
reproduces sorted order, i.e. ``unrank(rank(argsort(x)), pool=x)`` sorts
``x``.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.lehmer import rank_naive, unrank_naive
from repro.hdl.components import (
    mux2_bus,
    onehot_mux,
    reduce_and,
    reduce_or,
    ripple_sub,
)
from repro.hdl.gates import Op
from repro.hdl.netlist import Bus, Netlist
from repro.hdl.simulator import CombinationalSimulator

__all__ = ["SelectionSortNetwork", "sort_via_ranking"]


def sort_via_ranking(values: Sequence[int]) -> list[int]:
    """Sort by the converter's own arithmetic: rank then unrank.

    ``argsort`` gives the permutation carrying sorted positions to input
    positions; unranking the rank of its inverse over the pool ``values``
    routes each element to its sorted slot through exactly the converter
    datapath.  Duplicates are stable-sorted.
    """
    order = sorted(range(len(values)), key=lambda i: (values[i], i))
    index = rank_naive(order)
    routed = unrank_naive(index, len(values), pool=list(values))
    return list(routed)


class SelectionSortNetwork:
    """A gate-level selection-sort cascade with the converter's datapath.

    Parameters
    ----------
    n:
        Number of input words.
    width:
        Bit width of each word (unsigned).
    """

    def __init__(self, n: int, width: int):
        if n < 1:
            raise ValueError("n must be at least 1")
        if width < 1:
            raise ValueError("width must be at least 1")
        self.n = n
        self.width = width

    def comparator_count(self) -> int:
        """Word comparators across all stages: n(n−1)/2 — same O(n²) as
        the converter (§IV)."""
        return self.n * (self.n - 1) // 2

    # -- functional ------------------------------------------------------ #

    def sort(self, values: Sequence[int]) -> list[int]:
        """Stage-accurate selection sort (mirrors the netlist)."""
        pool = [int(v) for v in values]
        if len(pool) != self.n:
            raise ValueError(f"expected {self.n} values")
        for v in pool:
            if not (0 <= v < (1 << self.width)):
                raise ValueError(f"value {v} exceeds {self.width} bits")
        out = []
        while pool:
            # the hardware picks the first minimum (lowest slot wins ties)
            s = min(range(len(pool)), key=lambda i: (pool[i], i))
            out.append(pool.pop(s))
        return out

    # -- structural -------------------------------------------------------- #

    def build_netlist(self, pipelined: bool = False) -> Netlist:
        """Stage ``t``: find the pool minimum, select it, compact the pool.

        The min-finder computes, per slot ``i``, the flag "pool[i] is
        strictly less than every earlier slot and not greater than every
        later slot"; ties resolve to the lowest slot, matching
        :meth:`sort`.
        """
        nl = Netlist(name=f"selsort_n{self.n}_w{self.width}" + ("_pipe" if pipelined else ""))
        pool: list[Bus] = [nl.input(f"in{i}", self.width) for i in range(self.n)]
        outputs: list[Bus] = []

        for t in range(self.n):
            m = self.n - t
            if m == 1:
                outputs.append(pool[0])
                break
            # pairwise "a < b" via subtractor borrow: borrow(a − b) = a < b
            onehot = []
            for i in range(m):
                conditions = []
                for j in range(m):
                    if i == j:
                        continue
                    _, borrow = ripple_sub(nl, pool[i], pool[j])
                    if j < i:
                        conditions.append(borrow)  # strictly less than earlier
                    else:
                        _, rev = ripple_sub(nl, pool[j], pool[i])
                        conditions.append(nl.gate(Op.NOT, rev))  # not greater later
                onehot.append(reduce_and(nl, conditions))
            selected = onehot_mux(nl, onehot, pool)
            outputs.append(selected)
            # compact: slot j keeps pool[j] while the minimum is at a
            # higher slot, else takes pool[j+1] — thermometer of the one-hot
            new_pool = []
            for j in range(m - 1):
                # min already found at or below slot j → shift pool[j+1] in
                passed = reduce_or(nl, onehot[: j + 1])
                new_pool.append(mux2_bus(nl, passed, pool[j], pool[j + 1]))
            pool = new_pool
            if pipelined:
                pool = [nl.register_bus(b, name=f"s{t}.pool{j}") for j, b in enumerate(pool)]
                outputs = [
                    nl.register_bus(b, name=f"s{t}.out{j}") for j, b in enumerate(outputs)
                ]

        for i, bus in enumerate(outputs):
            nl.output(f"out{i}", bus)
        return nl

    def sort_netlist(self, values: Sequence[int]) -> list[int]:
        """Run one input vector through the combinational netlist."""
        nl = self.build_netlist(pipelined=False)
        sim = CombinationalSimulator(nl)
        outs = sim.run({f"in{i}": int(v) for i, v in enumerate(values)})
        return [int(outs[f"out{i}"][0]) for i in range(self.n)]
