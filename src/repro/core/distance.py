"""Metrics on the symmetric group.

The sortedness and mixing studies need a vocabulary of permutation
distances; the four classical ones are implemented with their textbook
characterisations (each pinned down by property tests):

=================  ==============================================  =========
metric             definition                                      diameter
=================  ==============================================  =========
Kendall tau        inversions of σ⁻¹π (adjacent-swap distance)     n(n−1)/2
Cayley             n − #cycles of σ⁻¹π (any-swap distance)         n − 1
Hamming            positions where σ, π differ                     n
Spearman footrule  Σ |σ⁻¹(i) − π⁻¹(i)| (total displacement)        ⌊n²/2⌋
=================  ==============================================  =========

Kendall tau and Cayley are exactly the Cayley-graph distances under the
adjacent-transposition and all-transposition generator sets of
:mod:`repro.core.groups` — asserted in the tests, linking the metric and
group views.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.permutation import Permutation

__all__ = [
    "kendall_tau",
    "cayley_distance",
    "hamming_distance",
    "spearman_footrule",
    "normalised",
]


def _as_perms(a: Sequence[int], b: Sequence[int]) -> tuple[Permutation, Permutation]:
    pa = a if isinstance(a, Permutation) else Permutation(a)
    pb = b if isinstance(b, Permutation) else Permutation(b)
    if pa.n != pb.n:
        raise ValueError("permutations act on different sizes")
    return pa, pb


def kendall_tau(a: Sequence[int], b: Sequence[int]) -> int:
    """Minimum adjacent transpositions turning ``a`` into ``b``.

    Equals the inversion count of ``a⁻¹∘b`` (0 when equal, n(n−1)/2 for
    a reversal pair).
    """
    pa, pb = _as_perms(a, b)
    return (pa.inverse() * pb).inversions()


def cayley_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Minimum (arbitrary) transpositions turning ``a`` into ``b``:
    ``n − #cycles(a⁻¹∘b)``."""
    pa, pb = _as_perms(a, b)
    rel = pa.inverse() * pb
    return rel.n - len(rel.cycles())


def hamming_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Positions at which the one-line forms differ (never exactly 1)."""
    pa, pb = _as_perms(a, b)
    return sum(1 for x, y in zip(pa, pb) if x != y)


def spearman_footrule(a: Sequence[int], b: Sequence[int]) -> int:
    """Total displacement ``Σ_i |pos_a(i) − pos_b(i)|``."""
    pa, pb = _as_perms(a, b)
    inv_a, inv_b = pa.inverse(), pb.inverse()
    return sum(abs(inv_a(i) - inv_b(i)) for i in range(pa.n))


_DIAMETERS = {
    "kendall": lambda n: n * (n - 1) // 2,
    "cayley": lambda n: n - 1,
    "hamming": lambda n: n,
    "footrule": lambda n: (n * n) // 2,
}

_METRICS = {
    "kendall": kendall_tau,
    "cayley": cayley_distance,
    "hamming": hamming_distance,
    "footrule": spearman_footrule,
}


def normalised(metric: str, a: Sequence[int], b: Sequence[int]) -> float:
    """Distance scaled into [0, 1] by the metric's diameter."""
    if metric not in _METRICS:
        raise ValueError(f"unknown metric {metric!r}; choose from {sorted(_METRICS)}")
    pa, pb = _as_perms(a, b)
    diameter = _DIAMETERS[metric](pa.n)
    if diameter == 0:
        return 0.0
    return _METRICS[metric](pa, pb) / diameter
