"""Streaming enumeration of all n! permutations in index order.

The hardware use-case behind Table II: feed the converter a counter and
collect one permutation per clock.  In software the amortised-O(1) way is
the mixed-radix odometer over factorial digits plus incremental pool
updates; :class:`PermutationSequence` also exposes NumPy-batched chunks so
downstream analytics (derangement scans, P-class searches) stay vectorised.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.factorial import factorial, iter_digit_vectors
from repro.core.lehmer import permutation_from_lehmer, unrank_batch

__all__ = ["all_permutations", "PermutationSequence"]


def all_permutations(
    n: int, pool: Sequence[int] | None = None
) -> Iterator[tuple[int, ...]]:
    """Yield every permutation of ``n`` elements in increasing index order.

    With the identity pool this is lexicographic order, matching both the
    paper's Table I and ``itertools.permutations(range(n))``.
    """
    for digits in iter_digit_vectors(n):
        yield permutation_from_lehmer(digits, pool)


class PermutationSequence:
    """The full index-ordered sequence with batch and slice access."""

    def __init__(self, n: int, pool: Sequence[int] | None = None):
        if n < 1:
            raise ValueError("n must be at least 1")
        self.n = n
        self.pool = tuple(pool) if pool is not None else tuple(range(n))
        if sorted(self.pool) != list(range(n)):
            raise ValueError("pool must permute 0..n-1")
        self.length = factorial(n)

    def __len__(self) -> int:
        return self.length

    def __getitem__(self, index: int) -> tuple[int, ...]:
        if isinstance(index, slice):
            start, stop, step = index.indices(self.length)
            idx = list(range(start, stop, step))
            return [tuple(r) for r in unrank_batch(idx, self.n, self.pool)]
        if index < 0:
            index += self.length
        if not (0 <= index < self.length):
            raise IndexError(f"index {index} out of range")
        from repro.core.lehmer import unrank

        return unrank(index, self.n, self.pool)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return all_permutations(self.n, self.pool)

    def batches(self, batch_size: int = 4096) -> Iterator[np.ndarray]:
        """Yield ``(≤batch_size, n)`` arrays covering the whole sequence.

        Streams with bounded memory — iterating 10! = 3.6 M permutations
        never materialises more than one chunk.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        for start in range(0, self.length, batch_size):
            stop = min(start + batch_size, self.length)
            yield unrank_batch(range(start, stop), self.n, self.pool)

    def index_of(self, perm: Sequence[int]) -> int:
        """Position of ``perm`` in this sequence (inverse of indexing)."""
        from repro.core.lehmer import rank_naive

        return rank_naive(perm, pool=self.pool)
