"""The Knuth-shuffle random permutation circuit (paper §III, Fig. 3).

An ``n``-element shuffle is a cascade of ``n − 1`` stages.  Stage ``t``
(0-based) holds positions ``0..t−1`` fixed and swaps position ``t`` with a
uniformly random position in ``t..n−1`` — ``n − t`` choices, drawn by a
per-stage scaled-LFSR random integer generator (Fig. 2 with ``k = n − t``).
With ideal uniform draws every permutation of the input appears with
probability exactly ``1/n!`` (Fisher–Yates).

Three views are provided:

* :meth:`KnuthShuffleCircuit.shuffle_once` / :meth:`sample` — functional
  model driven by the same LFSR bitstreams as the hardware (used for the
  Fig.-4 histogram and the derangement experiment);
* :meth:`sample_ideal` — draws from a NumPy ``Generator`` instead, to
  separate shuffle-structure effects from LFSR bias in the analysis;
* :meth:`build_netlist` — the gate-level Fig.-3 cascade, each stage with
  its own embedded LFSR + shift-and-add scaler, one register bank per
  stage when pipelined.  This netlist feeds the Table-IV resource model.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.factorial import element_width
from repro.hdl.components import equals_const, mux2_bus, onehot_mux, shift_add_mult_const, zero_extend
from repro.hdl.netlist import Bus, Netlist
from repro.hdl.simulator import SequentialSimulator
from repro.rng.lfsr import FibonacciLFSR, add_lfsr
from repro.rng.scaled import ScaledRandomInteger

__all__ = ["KnuthShuffleCircuit"]


class KnuthShuffleCircuit:
    """Knuth (Fisher–Yates) shuffle as an ``n−1``-stage hardware cascade.

    Parameters
    ----------
    n:
        Permutation size.
    m:
        Nominal LFSR width of the per-stage random integer generators.
        The paper uses 31-bit generators ("a 31-bit random integer
        generator similar to that shown in Fig. 2 was included in each
        stage").  Stages are assigned *distinct* widths stepping down
        from ``m`` (see ``widths``): two maximal LFSRs with the same
        feedback polynomial emit phase shifts of one and the same
        m-sequence, making every stage a deterministic function of stage
        0 and visibly skewing the joint permutation distribution; giving
        each stage its own primitive polynomial (here: its own width)
        decorrelates them, which is what a careful hardware design does.
    seeds:
        Optional per-stage LFSR seeds (defaults to distinct values).
    widths:
        Optional explicit per-stage LFSR widths, overriding the default
        descending assignment.  Passing ``[m]*(n−1)`` reproduces the
        naive identical-polynomial design (useful for the ablation bench
        that demonstrates the correlation artefact).
    input_permutation:
        The fixed input applied at the left of the cascade (identity by
        default, as in the Fig.-4 experiment).
    """

    def __init__(
        self,
        n: int,
        m: int = 31,
        seeds: Sequence[int] | None = None,
        input_permutation: Sequence[int] | None = None,
        widths: Sequence[int] | None = None,
    ):
        if n < 2:
            raise ValueError("shuffle needs n ≥ 2")
        self.n = n
        self.m = m
        if input_permutation is None:
            self.input_permutation = tuple(range(n))
        else:
            pool = tuple(int(x) for x in input_permutation)
            if sorted(pool) != list(range(n)):
                raise ValueError("input permutation must permute 0..n-1")
            self.input_permutation = pool
        if widths is None:
            widths = self._default_widths(n, m)
        if len(widths) != n - 1:
            raise ValueError(f"need {n - 1} widths, got {len(widths)}")
        self.widths = tuple(int(w) for w in widths)
        if seeds is None:
            seeds = [
                (0x9E3779B9 * (t + 1)) % ((1 << self.widths[t]) - 1) + 1
                for t in range(n - 1)
            ]
        if len(seeds) != n - 1:
            raise ValueError(f"need {n - 1} seeds, got {len(seeds)}")
        self.seeds = tuple(int(s) for s in seeds)
        self.generators = [
            ScaledRandomInteger(
                n - t, lfsr=FibonacciLFSR(self.widths[t], seed=self.seeds[t])
            )
            for t in range(n - 1)
        ]

    @staticmethod
    def _default_widths(n: int, m: int) -> list[int]:
        """Distinct widths ``m, m−1, …`` per stage (cycling if n is huge).

        Distinct widths mean distinct primitive polynomials, so stage
        streams are genuinely independent m-sequences rather than phase
        shifts of one another.
        """
        lo = max(8, m - 15)
        span = list(range(m, lo - 1, -1))
        return [span[t % len(span)] for t in range(n - 1)]

    # ------------------------------------------------------------------ #
    # structure

    @property
    def num_stages(self) -> int:
        return self.n - 1

    def crossover_count(self) -> int:
        """Crossover cells: Σ_{t} (n−1−t) = n(n−1)/2 — the §III-C count."""
        return self.n * (self.n - 1) // 2

    def stage_choices(self) -> tuple[int, ...]:
        """Number of swap choices per stage: n, n−1, …, 2."""
        return tuple(self.n - t for t in range(self.num_stages))

    @property
    def latency(self) -> int:
        """Pipelined latency in clocks: one per stage."""
        return self.num_stages

    # ------------------------------------------------------------------ #
    # functional model

    def reset(self) -> None:
        """Rewind every per-stage LFSR to its seed."""
        for g in self.generators:
            g.lfsr.reset()

    def shuffle_once(self) -> tuple[int, ...]:
        """Produce one random permutation (advances every stage LFSR)."""
        perm = list(self.input_permutation)
        for t, gen in enumerate(self.generators):
            r = gen.next_int()
            j = t + r
            perm[t], perm[j] = perm[j], perm[t]
        return tuple(perm)

    def sample(self, count: int) -> np.ndarray:
        """Vectorised sampling: ``count`` permutations as ``(B, n)``.

        Each stage's LFSR sequence is drawn as a batch, then the swaps are
        applied column-parallel with fancy indexing — the batched analogue
        of the pipeline processing one shuffle per clock.
        """
        perms = np.broadcast_to(
            np.asarray(self.input_permutation, dtype=np.int64), (count, self.n)
        ).copy()
        rows = np.arange(count)
        for t, gen in enumerate(self.generators):
            r = gen.ints(count)
            j = t + r
            left = perms[rows, t].copy()
            perms[rows, t] = perms[rows, j]
            perms[rows, j] = left
        return perms

    def sample_ideal(self, count: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Sampling with ideal uniform stage draws (no LFSR bias)."""
        rng = rng if rng is not None else np.random.default_rng(0)
        perms = np.broadcast_to(
            np.asarray(self.input_permutation, dtype=np.int64), (count, self.n)
        ).copy()
        rows = np.arange(count)
        for t in range(self.num_stages):
            j = t + rng.integers(0, self.n - t, size=count)
            left = perms[rows, t].copy()
            perms[rows, t] = perms[rows, j]
            perms[rows, j] = left
        return perms

    def exact_distribution(self) -> dict[tuple[int, ...], float]:
        """Exact output law under the *actual* per-period LFSR biases.

        Convolves the per-stage :class:`~repro.rng.scaled.BiasReport`
        distributions through the swap network; feasible for small n.
        """
        dist: dict[tuple[int, ...], float] = {self.input_permutation: 1.0}
        for t, gen in enumerate(self.generators):
            bias = gen.bias()
            total = bias.period
            nxt: dict[tuple[int, ...], float] = {}
            for perm, p in dist.items():
                for r, c in enumerate(bias.counts):
                    if c == 0:
                        continue
                    q = list(perm)
                    j = t + r
                    q[t], q[j] = q[j], q[t]
                    key = tuple(q)
                    nxt[key] = nxt.get(key, 0.0) + p * (c / total)
            dist = nxt
        return dist

    # ------------------------------------------------------------------ #
    # structural model

    def build_netlist(self, pipelined: bool = False) -> Netlist:
        """The Fig.-3 cascade as a gate-level netlist.

        Every stage embeds its own Fibonacci LFSR and shift-and-add scaler
        (``k·x >> m``), decodes the random integer to one-hot, and swaps
        position ``t`` with position ``t + r`` through a crossover row.
        The LFSRs advance every clock; outputs are ``out0..out{n-1}`` and
        the packed ``word``.
        """
        n = self.n
        ew = element_width(n)
        nl = Netlist(name=f"knuth_shuffle_n{n}" + ("_pipe" if pipelined else ""))
        pool: list[Bus] = [nl.const_bus(self.input_permutation[j], ew) for j in range(n)]

        for t in range(self.num_stages):
            k = n - t
            mw = self.widths[t]
            state = add_lfsr(nl, mw, seed=self.seeds[t], name=f"s{t}.lfsr")
            product = shift_add_mult_const(nl, state, k)
            r_bus = product[mw:]  # right shift & truncate
            r_width = max(1, (k - 1).bit_length())
            r_bus = r_bus[:r_width] if r_bus.width >= r_width else zero_extend(nl, r_bus, r_width)
            onehot = [equals_const(nl, r_bus, r) for r in range(k)]
            # element landing at position t: pool[t + r]
            new_t = onehot_mux(nl, onehot, pool[t:])
            # each position j > t receives pool[t] when r selects it
            new_rest = [
                mux2_bus(nl, onehot[j - t], pool[j], pool[t]) for j in range(t + 1, n)
            ]
            pool = pool[:t] + [new_t] + new_rest
            if pipelined:
                pool = [
                    nl.register_bus(b, name=f"s{t}.pool{j}") for j, b in enumerate(pool)
                ]

        for j, bus in enumerate(pool):
            nl.output(f"out{j}", bus)
        word_bits: list[int] = []
        for bus in reversed(pool):
            word_bits.extend(zero_extend(nl, bus, ew))
        nl.output("word", Bus(word_bits))
        return nl

    def simulate_netlist(self, count: int, pipelined: bool = False) -> np.ndarray:
        """Clock the gate-level circuit ``count`` times; one perm per clock.

        The circuit's embedded LFSRs step each clock, so successive clocks
        yield successive random permutations.  For the pipelined variant
        the first :attr:`latency` outputs are fill and are discarded.

        Alignment: the functional model advances each LFSR *before*
        reading, so the combinational netlist's cycle-0 output (seed
        states) is discarded and cycles 1.. match :meth:`shuffle_once`
        draw for draw.  The pipelined netlist needs ``n−1`` fill cycles
        for real data to traverse the register banks; each stage then
        consumes its own LFSR stream at a different pipeline depth, so
        the stream is equidistributed but not clock-aligned with the
        functional model.
        """
        nl = self.build_netlist(pipelined=pipelined)
        sim = SequentialSimulator(nl, batch=1)
        fill = self.num_stages if pipelined else 1
        out = []
        for cycle in range(count + fill):
            outs = sim.step({})
            if cycle >= fill:
                out.append([int(outs[f"out{j}"][0]) for j in range(self.n)])
        return np.asarray(out, dtype=np.int64)
