"""Alternative permutation orders: Myrvold–Ruskey and Johnson–Trotter.

The paper's converter fixes *lexicographic* order because the factorial
number system digits select pool positions high-to-low.  The literature it
draws on (Knuth Vol. 4 Fasc. 2/3, refs. [8]–[10]) standardises two other
orders, both provided here as drop-in comparisons and ablation baselines:

* **Myrvold–Ruskey** ("ranking in linear time"): unranking costs O(n)
  swaps instead of O(n²)/O(n log n) pool compaction — the fastest known
  software unranker, at the price of a non-lexicographic order.  Its swap
  recurrence is, not coincidentally, a derandomised Fisher–Yates: the
  Fig.-3 shuffle circuit with digits instead of random draws computes
  exactly this order, linking the paper's two circuits.
* **Steinhaus–Johnson–Trotter** (plain changes): enumerates all n!
  permutations so that successive permutations differ by one adjacent
  transposition — the minimal-change property hardware generators use to
  cut output toggling.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.factorial import factorial

__all__ = [
    "mr_unrank",
    "mr_rank",
    "mr_unrank_batch",
    "sjt_permutations",
    "sjt_transposition_sequence",
]


def mr_unrank(index: int, n: int) -> tuple[int, ...]:
    """Myrvold–Ruskey unranking: O(n) time, O(1) extra space.

    Order differs from lexicographic; ``mr_rank`` is its exact inverse.
    """
    if not (0 <= index < factorial(n)):
        raise ValueError(f"index {index} outside 0..{factorial(n) - 1}")
    perm = list(range(n))
    r = index
    for m in range(n, 0, -1):
        r, d = divmod(r, m)
        perm[m - 1], perm[d] = perm[d], perm[m - 1]
    return tuple(perm)


def mr_rank(perm: Sequence[int]) -> int:
    """Myrvold–Ruskey ranking: O(n) with the inverse-permutation trick.

    The classic recursion made iterative: the digit for radix ``m`` is the
    value at slot ``m−1``; value ``m−1`` is then swapped home so the
    prefix is again a permutation of ``0..m−2``.
    """
    p = list(perm)
    n = len(p)
    if sorted(p) != list(range(n)):
        raise ValueError(f"{perm!r} is not a permutation of 0..{n - 1}")
    inv = [0] * n
    for i, v in enumerate(p):
        inv[v] = i
    digits = []  # d_n first
    for m in range(n, 0, -1):
        s = p[m - 1]
        digits.append(s)
        # swap value m−1 into slot m−1 (undo the unranking swap)
        i = inv[m - 1]
        p[m - 1], p[i] = p[i], p[m - 1]
        inv[s], inv[m - 1] = inv[m - 1], inv[s]
    rank = 0
    for m, d in zip(range(1, n + 1), reversed(digits)):
        rank = rank * m + d
    return rank


def mr_unrank_batch(indices: Sequence[int], n: int) -> np.ndarray:
    """Vectorised Myrvold–Ruskey unranking over a batch (n ≤ 20)."""
    idx = np.asarray(list(indices), dtype=np.int64)
    if idx.ndim != 1:
        raise ValueError("indices must be one-dimensional")
    limit = factorial(n)
    if (idx < 0).any() or (idx >= limit).any():
        raise ValueError(f"indices outside 0..{limit - 1}")
    b = idx.size
    perms = np.broadcast_to(np.arange(n, dtype=np.int64), (b, n)).copy()
    rows = np.arange(b)
    r = idx.copy()
    for m in range(n, 0, -1):
        d = r % m
        r //= m
        right = perms[rows, m - 1].copy()
        perms[rows, m - 1] = perms[rows, d]
        perms[rows, d] = right
    return perms


def sjt_permutations(n: int) -> Iterator[tuple[int, ...]]:
    """All permutations by plain changes (adjacent transpositions only).

    Classic directed-integer (Even's speedup) implementation: amortised
    O(1) per output after O(n) setup.
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    perm = list(range(n))
    # direction: -1 = looking left, +1 = looking right
    direction = [-1] * n
    yield tuple(perm)
    while True:
        # find the largest mobile element
        mobile = -1
        mobile_pos = -1
        for i, v in enumerate(perm):
            j = i + direction[v]
            if 0 <= j < n and perm[j] < v and v > mobile:
                mobile, mobile_pos = v, i
        if mobile < 0:
            return
        j = mobile_pos + direction[mobile]
        perm[mobile_pos], perm[j] = perm[j], perm[mobile_pos]
        # reverse direction of all elements larger than the mobile one
        for v in range(mobile + 1, n):
            direction[v] = -direction[v]
        yield tuple(perm)


def sjt_transposition_sequence(n: int) -> list[int]:
    """Positions ``i`` such that step k swaps slots ``i, i+1``.

    Length n!−1; feeding these to an adjacent-swap network enumerates all
    permutations with single-crossover transitions (minimal toggling).
    """
    seq = []
    prev = None
    for perm in sjt_permutations(n):
        if prev is not None:
            diff = [i for i in range(n) if perm[i] != prev[i]]
            assert len(diff) == 2 and diff[1] == diff[0] + 1
            seq.append(diff[0])
        prev = perm
    return seq
