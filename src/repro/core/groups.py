"""Permutation-group machinery over the circuits' swap structures.

The shuffle circuit's correctness rests on a group fact: its per-stage
swaps generate all of S_n, so with uniform stage draws every permutation
is reachable with probability 1/n!.  This module provides the small
group-theoretic toolkit to *check* such facts mechanically rather than
assume them:

* :func:`generated_subgroup` — BFS closure of a generator set (with a
  safety cap), used to verify generator sets reach all n! elements;
* :func:`subgroup_order` / :func:`is_transitive`;
* :func:`cayley_graph` — the Cayley graph as a :mod:`networkx` graph, so
  diameters (worst-case network depth to realise a permutation) and
  distance distributions come from standard graph algorithms;
* conjugacy-class utilities keyed on cycle type.
"""

from __future__ import annotations

from collections import deque
from math import factorial
from typing import Iterable, Sequence

import networkx as nx

from repro.core.permutation import Permutation

__all__ = [
    "generated_subgroup",
    "subgroup_order",
    "is_transitive",
    "generates_symmetric_group",
    "cayley_graph",
    "cayley_diameter",
    "conjugacy_class_sizes",
    "stage_transpositions",
    "adjacent_transpositions",
]


def stage_transpositions(n: int) -> list[Permutation]:
    """The Knuth-shuffle stage swaps: ``(t, j)`` for every stage ``t`` and
    target ``j > t`` — the circuit's generator set."""
    out = []
    for t in range(n - 1):
        for j in range(t + 1, n):
            out.append(Permutation.from_cycles(n, [(t, j)]))
    return out


def adjacent_transpositions(n: int) -> list[Permutation]:
    """The SJT generator set ``(i, i+1)``."""
    return [Permutation.from_cycles(n, [(i, i + 1)]) for i in range(n - 1)]


def generated_subgroup(
    generators: Sequence[Permutation], limit: int | None = None
) -> set[Permutation]:
    """BFS closure of a generator set.

    ``limit`` caps the element count (default n!, the maximum possible);
    exceeding an explicit smaller cap raises, which makes "does this set
    generate more than expected?" checks cheap.
    """
    gens = list(generators)
    if not gens:
        raise ValueError("need at least one generator")
    n = gens[0].n
    if any(g.n != n for g in gens):
        raise ValueError("generators act on different sizes")
    cap = limit if limit is not None else factorial(n)
    identity = Permutation.identity(n)
    seen = {identity}
    frontier = deque([identity])
    while frontier:
        g = frontier.popleft()
        for s in gens:
            h = s * g
            if h not in seen:
                if len(seen) >= cap:
                    raise ValueError(f"subgroup exceeds limit {cap}")
                seen.add(h)
                frontier.append(h)
    return seen


def subgroup_order(generators: Sequence[Permutation]) -> int:
    """Order of the generated subgroup (BFS; fine for n ≤ 8)."""
    return len(generated_subgroup(generators))


def is_transitive(generators: Sequence[Permutation]) -> bool:
    """Does the generated group act transitively on the points?"""
    gens = list(generators)
    n = gens[0].n
    seen = {0}
    frontier = deque([0])
    while frontier:
        x = frontier.popleft()
        for g in gens:
            y = g(x)
            if y not in seen:
                seen.add(y)
                frontier.append(y)
    return len(seen) == n


def generates_symmetric_group(generators: Sequence[Permutation]) -> bool:
    """True when the generators produce all n! permutations."""
    n = generators[0].n
    return subgroup_order(generators) == factorial(n)


def cayley_graph(n: int, generators: Sequence[Permutation]) -> nx.Graph:
    """Cayley graph of ⟨generators⟩ ≤ S_n (undirected: involutions or
    inverse-closed sets give the usual graph)."""
    elements = generated_subgroup(generators)
    g = nx.Graph()
    g.add_nodes_from(elements)
    for x in elements:
        for s in generators:
            g.add_edge(x, s * x)
    return g


def cayley_diameter(n: int, generators: Sequence[Permutation]) -> int:
    """Worst-case generator-steps to reach any group element.

    For adjacent transpositions this is n(n−1)/2 (sorting-network depth
    in single swaps); for the full stage-swap set it is much smaller —
    the trade the two circuits make between wiring and depth.
    """
    graph = cayley_graph(n, generators)
    lengths = nx.single_source_shortest_path_length(graph, Permutation.identity(n))
    if len(lengths) != graph.number_of_nodes():
        raise ValueError("generators do not connect the subgroup")
    return max(lengths.values())


def conjugacy_class_sizes(n: int) -> dict[tuple[int, ...], int]:
    """Size of each conjugacy class of S_n, keyed by cycle type.

    Computed from the standard formula ``n! / Π (k^{m_k} · m_k!)`` over
    partitions; validated in tests against explicit enumeration.
    """

    def partitions(total: int, most: int) -> Iterable[tuple[int, ...]]:
        if total == 0:
            yield ()
            return
        for first in range(min(total, most), 0, -1):
            for rest in partitions(total - first, first):
                yield (first,) + rest

    out: dict[tuple[int, ...], int] = {}
    for part in partitions(n, n):
        size = factorial(n)
        mult: dict[int, int] = {}
        for k in part:
            mult[k] = mult.get(k, 0) + 1
        for k, m in mult.items():
            size //= (k**m) * factorial(m)
        out[tuple(sorted(part))] = size
    return out
