"""Beneš rearrangeable permutation networks.

The converter *generates* permutations from indices; a Beneš network
*applies* an arbitrary permutation to live data with the provably minimal
switch budget — ``n·log2(n) − n/2`` two-by-two crossovers in ``2·log2(n)
− 1`` stages.  It is the standard fabric behind the data-reordering
engines of the paper's DSP motivation (ref. [15]) and the permutation
layers of its crypto motivation, so a complete release pairs the two:
index → permutation (converter) → switch settings (this module) → wired
reorder.

:func:`route` computes switch settings with the classical looping
algorithm; :class:`BenesNetwork` applies them functionally or as a
gate-level netlist whose control inputs are the setting bits (making the
fabric run-time programmable, one permutation per reconfiguration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.permutation import Permutation
from repro.hdl.components import crossover
from repro.hdl.netlist import Bus, Netlist
from repro.hdl.simulator import CombinationalSimulator

__all__ = ["BenesSettings", "route", "BenesNetwork"]


@dataclass(frozen=True)
class BenesSettings:
    """Switch states of one n-port network (recursive layout).

    ``inputs``/``outputs`` are the outer columns (n/2 bits each, True =
    crossed); ``upper``/``lower`` are the two half-size subnetworks
    (None at the n = 2 base, where the single switch lives in
    ``inputs`` and ``outputs`` is empty).
    """

    n: int
    inputs: tuple[bool, ...]
    outputs: tuple[bool, ...]
    upper: "BenesSettings | None"
    lower: "BenesSettings | None"

    @property
    def switch_count(self) -> int:
        count = len(self.inputs) + len(self.outputs)
        if self.upper is not None:
            count += self.upper.switch_count + self.lower.switch_count
        return count

    def flatten(self) -> list[bool]:
        """All switch bits in a fixed depth-first order (for netlists)."""
        bits = list(self.inputs)
        if self.upper is not None:
            bits += self.upper.flatten()
            bits += self.lower.flatten()
        bits += list(self.outputs)
        return bits


def _validate_size(n: int) -> None:
    if n < 2 or n & (n - 1):
        raise ValueError("Beneš networks need n a power of two, n ≥ 2")


def route(perm: Sequence[int]) -> BenesSettings:
    """Switch settings realising ``perm`` (output j carries input perm[j]).

    The looping algorithm: the two inputs of each outer input switch must
    enter different subnetworks, and likewise the two outputs of each
    output switch must leave different subnetworks; following these
    constraints around their cycles 2-colours the edges, the colours fix
    the outer switches, and the halves recurse.
    """
    p = list(Permutation(perm))  # validates
    n = len(p)
    _validate_size(n)
    if n == 2:
        return BenesSettings(
            n=2, inputs=(p[0] == 1,), outputs=(), upper=None, lower=None
        )

    # output j carries input p[j]; input i appears at output inv[i]
    inv = [0] * n
    for j, i in enumerate(p):
        inv[i] = j

    # Colour each *input* with its subnetwork (0 = upper, 1 = lower).
    # Constraint graph on inputs: every input has exactly two neighbours —
    # its input-switch partner (i ^ 1) and its output-switch partner (the
    # input feeding the other output of its output switch).  The graph is
    # a union of even cycles, so walking each cycle with alternating edge
    # types and alternating colours 2-colours it.
    def out_partner(i: int) -> int:
        return p[inv[i] ^ 1]

    colour: list[int | None] = [None] * n
    for start in range(n):
        if colour[start] is not None:
            continue
        i, c, edge = start, 0, "in"
        while colour[i] is None:
            colour[i] = c
            i = (i ^ 1) if edge == "in" else out_partner(i)
            edge = "out" if edge == "in" else "in"
            c ^= 1

    half = n // 2
    # straight: even input → upper; crossed when the even input is lower
    in_switch = [colour[2 * s] == 1 for s in range(half)]
    # output 2t receives from upper when straight; crossed when the input
    # destined for output 2t sits in the lower subnetwork
    out_switch = [colour[p[2 * t]] == 1 for t in range(half)]

    # sub-permutations: the colour-c member of input switch s enters
    # subnetwork c at port s and must emerge at port t = its output switch
    sub_perm: list[list[int]] = [[0] * half, [0] * half]
    for i in range(n):
        c = colour[i]
        assert c is not None
        sub_perm[c][inv[i] // 2] = i // 2

    upper = route(sub_perm[0])
    lower = route(sub_perm[1])
    return BenesSettings(
        n=n,
        inputs=tuple(in_switch),
        outputs=tuple(out_switch),
        upper=upper,
        lower=lower,
    )


class BenesNetwork:
    """An n-port Beneš fabric over ``width``-bit words."""

    def __init__(self, n: int, width: int = 8):
        _validate_size(n)
        if width < 1:
            raise ValueError("width must be positive")
        self.n = n
        self.width = width

    @property
    def switch_count(self) -> int:
        """``n·log2(n) − n/2`` crossovers — the rearrangeable minimum."""
        import math

        k = int(math.log2(self.n))
        return self.n * k - self.n // 2

    @property
    def stage_count(self) -> int:
        import math

        return 2 * int(math.log2(self.n)) - 1

    # -- functional ------------------------------------------------------ #

    def apply(self, settings: BenesSettings, data: Sequence) -> list:
        """Route a data vector through the configured network."""
        items = list(data)
        if len(items) != self.n or settings.n != self.n:
            raise ValueError("size mismatch")
        return self._apply(settings, items)

    def _apply(self, s: BenesSettings, items: list) -> list:
        n = len(items)
        if n == 2:
            return [items[1], items[0]] if s.inputs[0] else items
        half = n // 2
        upper_in = []
        lower_in = []
        for sw in range(half):
            a, b = items[2 * sw], items[2 * sw + 1]
            if s.inputs[sw]:
                a, b = b, a
            upper_in.append(a)
            lower_in.append(b)
        upper_out = self._apply(s.upper, upper_in)
        lower_out = self._apply(s.lower, lower_in)
        out = []
        for sw in range(half):
            a, b = upper_out[sw], lower_out[sw]
            if s.outputs[sw]:
                a, b = b, a
            out.extend((a, b))
        return out

    def permute(self, perm: Sequence[int], data: Sequence) -> list:
        """Route + apply in one call: output j = data[perm[j]]."""
        return self.apply(route(perm), data)

    # -- structural -------------------------------------------------------- #

    def build_netlist(self) -> Netlist:
        """The fabric with per-switch control inputs.

        Inputs: ``in0..in{n-1}`` (data words) and ``ctrl`` (one bit per
        switch, in :meth:`BenesSettings.flatten` order).  Outputs:
        ``out0..out{n-1}``.
        """
        nl = Netlist(name=f"benes_n{self.n}_w{self.width}")
        data = [nl.input(f"in{i}", self.width) for i in range(self.n)]
        ctrl = nl.input("ctrl", self.switch_count)
        cursor = [0]

        def next_ctrl() -> int:
            wire = ctrl[cursor[0]]
            cursor[0] += 1
            return wire

        def build(items: list[Bus]) -> list[Bus]:
            n = len(items)
            if n == 2:
                a, b = crossover(nl, next_ctrl(), items[0], items[1])
                return [a, b]
            half = n // 2
            upper_in, lower_in = [], []
            for sw in range(half):
                a, b = crossover(nl, next_ctrl(), items[2 * sw], items[2 * sw + 1])
                upper_in.append(a)
                lower_in.append(b)
            upper_out = build(upper_in)
            lower_out = build(lower_in)
            out: list[Bus] = []
            for sw in range(half):
                a, b = crossover(nl, next_ctrl(), upper_out[sw], lower_out[sw])
                out.extend((a, b))
            return out

        outs = build(data)
        assert cursor[0] == self.switch_count
        for i, bus in enumerate(outs):
            nl.output(f"out{i}", bus)
        return nl

    def simulate_netlist(
        self, perm: Sequence[int], data: Sequence[int]
    ) -> list[int]:
        """Route ``perm``, load the control word, push data through gates."""
        settings = route(perm)
        bits = settings.flatten()
        ctrl_word = 0
        for i, bit in enumerate(bits):
            if bit:
                ctrl_word |= 1 << i
        nl = self.build_netlist()
        sim = CombinationalSimulator(nl)
        inputs = {"ctrl": ctrl_word}
        inputs.update({f"in{i}": int(v) for i, v in enumerate(data)})
        outs = sim.run(inputs)
        return [int(outs[f"out{i}"][0]) for i in range(self.n)]
