"""The factorial number system (§II of the paper).

Every integer ``0 ≤ N < n!`` has a unique representation

    N = s_{n−1}·(n−1)! + s_{n−2}·(n−2)! + … + s_1·1! + s_0·0!

with ``0 ≤ s_i ≤ i`` (so ``s_0`` is always 0 — the paper keeps it as a
placeholder and so do we).  Digits are stored **LSB first**: ``digits[i]``
is the coefficient of ``i!``.  The paper's Table I prints vectors MSB
first; :meth:`FactorialDigits.__str__` follows that convention.

Two digit-extraction algorithms are provided and cross-checked in the test
suite: the arithmetic ``divmod`` chain, and the *greedy* subtract-compare
chain of the paper's Observation 3 — which is precisely what the hardware
stages implement.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Sequence

__all__ = [
    "factorial",
    "max_index",
    "index_width",
    "element_width",
    "word_width",
    "digits_from_index",
    "digits_from_index_greedy",
    "index_from_digits",
    "iter_digit_vectors",
    "FactorialDigits",
]


@lru_cache(maxsize=None)
def factorial(n: int) -> int:
    """``n!`` with memoisation (exact, arbitrary precision)."""
    if n < 0:
        raise ValueError("factorial of a negative number")
    return 1 if n < 2 else n * factorial(n - 1)


def max_index(n: int) -> int:
    """The largest valid index, ``n! − 1`` (paper Observation 1).

    Equals ``Σ_{i<n} i·i!`` — the all-maximal digit vector ``(n−1)…1 0``.
    """
    return factorial(n) - 1


def index_width(n: int) -> int:
    """Bits needed for the index input: ``ceil(log2 n!)`` (≥ 1)."""
    return max(1, max_index(n).bit_length())


def element_width(n: int) -> int:
    """Bits per permutation element: ``ceil(log2 n)`` (≥ 1)."""
    return max(1, (n - 1).bit_length())


def word_width(n: int) -> int:
    """Bits in the packed output word, ``n·ceil(log2 n)``.

    The paper notes this is 36 for n = 9 — wide for a CPU register but
    trivial for an FPGA word.
    """
    return n * element_width(n)


def digits_from_index(index: int, n: int) -> tuple[int, ...]:
    """Factorial digits of ``index`` via the divmod chain (LSB first)."""
    if n < 1:
        raise ValueError("n must be at least 1")
    if not (0 <= index < factorial(n)):
        raise ValueError(f"index {index} outside 0..{max_index(n)}")
    digits = []
    for radix in range(1, n + 1):
        index, d = divmod(index, radix)
        digits.append(d)
    return tuple(digits)


def digits_from_index_greedy(index: int, n: int) -> tuple[int, ...]:
    """Factorial digits via the paper's greedy algorithm (Observation 3).

    For each place ``i`` from high to low, the digit is the largest ``s``
    with ``s·i! ≤ N`` — found in hardware by comparing ``N`` against the
    multiples ``i!, 2·i!, …, i·i!`` and subtracting the matched one.  The
    comparator semantics here mirror the circuit stage for stage.
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    if not (0 <= index < factorial(n)):
        raise ValueError(f"index {index} outside 0..{max_index(n)}")
    remaining = index
    out = [0] * n
    for i in range(n - 1, 0, -1):
        weight = factorial(i)
        s = 0
        for j in range(1, i + 1):  # thermometer of comparators N ≥ j·i!
            if remaining >= j * weight:
                s = j
        remaining -= s * weight
        out[i] = s
    assert remaining == 0
    return tuple(out)


def index_from_digits(digits: Sequence[int]) -> int:
    """Evaluate a digit vector back to its integer (paper eq. (1))."""
    total = 0
    for i, d in enumerate(digits):
        if not (0 <= d <= i):
            raise ValueError(f"digit s_{i}={d} violates 0 ≤ s_i ≤ i")
        total += d * factorial(i)
    return total


def iter_digit_vectors(n: int) -> Iterator[tuple[int, ...]]:
    """All digit vectors for width ``n``, in increasing index order.

    Implemented as a mixed-radix odometer: place ``i`` has radix ``i+1``,
    so incrementing costs amortised O(1) — the software analogue of
    streaming one index per clock into the converter.
    """
    digits = [0] * n
    while True:
        yield tuple(digits)
        i = 1
        while i < n and digits[i] == i:
            digits[i] = 0
            i += 1
        if i >= n:
            return
        digits[i] += 1


@dataclass(frozen=True)
class FactorialDigits:
    """A validated factorial-number-system value.

    ``digits[i]`` is the coefficient of ``i!`` (LSB first); ``str()``
    renders MSB first to match the paper's Table I.
    """

    digits: tuple[int, ...]

    def __post_init__(self):
        for i, d in enumerate(self.digits):
            if not (0 <= d <= i):
                raise ValueError(f"digit s_{i}={d} violates 0 ≤ s_i ≤ i")

    @classmethod
    def from_index(cls, index: int, n: int) -> "FactorialDigits":
        return cls(digits_from_index(index, n))

    @property
    def n(self) -> int:
        return len(self.digits)

    def __int__(self) -> int:
        return index_from_digits(self.digits)

    def __iter__(self):
        return iter(self.digits)

    def __str__(self) -> str:
        return " ".join(str(d) for d in reversed(self.digits))

    def expansion(self) -> str:
        """Human-readable ``s·i!`` expansion, e.g. ``2·2!+1·1!+0·0!``."""
        terms = [f"{d}·{i}!" for i, d in reversed(list(enumerate(self.digits)))]
        return " + ".join(terms)
