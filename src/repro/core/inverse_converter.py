"""Permutation → index converter: the reverse of the paper's circuit.

The paper's §I motivates *classification* workloads — computing the
P-representative of a Boolean function (ref. [5]) needs to map candidate
permutations back to canonical indices.  The forward circuit (Fig. 1)
unranks; this module builds its inverse, a **ranking circuit** with the
same cascade shape:

Stage ``t`` holds the pool of still-unranked elements (initially the
input permutation's reference pool).  It locates input element ``p_t``
in the pool with an equality-comparator bank (one-hot hit vector), counts
the live slots *before* the hit to obtain the factorial digit ``s_t``
(thermometer → binary), accumulates ``s_t · (n−1−t)!`` into the running
index with a shift-and-add constant multiplier + adder, and compacts the
pool exactly like the forward circuit.

Complexity is the same O(n²) comparators / O(n) stages as the forward
converter, and the two netlists compose to the identity — asserted in the
test suite both functionally and gate-level.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.factorial import element_width, factorial, index_width
from repro.core.lehmer import rank_batch
from repro.hdl.components import (
    mux2_bus,
    onehot_to_binary,
    reduce_or,
    ripple_add,
    shift_add_mult_const,
    zero_extend,
)
from repro.hdl.gates import Op
from repro.hdl.netlist import Bus, Netlist
from repro.hdl.simulator import CombinationalSimulator, SequentialSimulator

__all__ = ["PermutationToIndexConverter"]


class PermutationToIndexConverter:
    """Rank permutations in hardware: permutation in, index out.

    Parameters
    ----------
    n:
        Permutation size.
    pool:
        Reference pool (the forward converter's input permutation);
        defaults to the identity, giving the lexicographic rank.
    """

    def __init__(self, n: int, pool: Sequence[int] | None = None):
        if n < 1:
            raise ValueError("n must be at least 1")
        self.n = n
        if pool is None:
            self.pool = tuple(range(n))
        else:
            p = tuple(int(x) for x in pool)
            if sorted(p) != list(range(n)):
                raise ValueError("pool must permute 0..n-1")
            self.pool = p
        self.index_limit = factorial(n)
        self.index_width = index_width(n)
        self.element_width = element_width(n)

    # ------------------------------------------------------------------ #
    # functional model

    def convert(self, perm: Sequence[int]) -> int:
        """Rank one permutation (stage-accurate mirror of the netlist)."""
        p = [int(x) for x in perm]
        if len(p) != self.n:
            raise ValueError(f"expected {self.n} elements")
        pool = list(self.pool)
        index = 0
        for t, element in enumerate(p):
            try:
                s = pool.index(element)
            except ValueError:
                raise ValueError(f"{perm!r} is not drawn from the pool") from None
            index += s * factorial(self.n - 1 - t)
            pool.pop(s)
        return index

    def convert_batch(self, perms: np.ndarray) -> np.ndarray:
        """Vectorised ranking of a ``(B, n)`` array."""
        arr = np.asarray(perms)
        if tuple(self.pool) == tuple(range(self.n)) and self.n <= 20:
            return rank_batch(arr)
        return np.array([self.convert(row) for row in arr], dtype=object if self.n > 20 else np.int64)

    # ------------------------------------------------------------------ #
    # structural model

    @property
    def comparator_count(self) -> int:
        """Equality comparators: n + (n−1) + … + 1 = n(n+1)/2, O(n²)."""
        return self.n * (self.n + 1) // 2

    @property
    def latency(self) -> int:
        return self.n

    def build_netlist(self, pipelined: bool = False) -> Netlist:
        """The ranking cascade as a gate-level netlist.

        Inputs ``in0..in{n-1}`` (element buses); output ``index``.
        """
        n = self.n
        ew = self.element_width
        nl = Netlist(name=f"perm2idx_n{n}" + ("_pipe" if pipelined else ""))
        elements = [nl.input(f"in{t}", ew) for t in range(n)]
        pool: list[Bus] = [nl.const_bus(self.pool[j], ew) for j in range(n)]
        acc = nl.const_bus(0, self.index_width)

        for t in range(n):
            m = n - t
            target = elements[t]
            if m == 1:
                break  # the last element contributes digit 0
            # equality-comparator bank → one-hot hit vector over the pool
            hits = []
            for j in range(m):
                eq_bits = [
                    nl.gate(Op.XNOR, a, b) for a, b in zip(pool[j], target)
                ]
                from repro.hdl.components import reduce_and

                hits.append(reduce_and(nl, eq_bits))
            # digit = position of the hit (one-hot → binary)
            digit = onehot_to_binary(nl, hits)
            # accumulate digit · (m−1)!
            weight = factorial(m - 1)
            term = shift_add_mult_const(nl, digit, weight)
            term = term[: self.index_width] if term.width > self.index_width else zero_extend(
                nl, term, self.index_width
            )
            acc, _ = ripple_add(nl, acc, term)
            acc = acc[: self.index_width]
            # pool compaction: slot j keeps its element while the hit is
            # strictly later; 'seen[j]' = OR of hits[0..j]
            new_pool = []
            for j in range(m - 1):
                seen = reduce_or(nl, hits[: j + 1])
                new_pool.append(mux2_bus(nl, seen, pool[j], pool[j + 1]))
            pool = new_pool
            if pipelined:
                acc = nl.register_bus(acc, name=f"s{t}.acc")
                pool = [nl.register_bus(b, name=f"s{t}.pool{j}") for j, b in enumerate(pool)]
                elements = elements[: t + 1] + [
                    nl.register_bus(b, name=f"s{t}.el{j}")
                    for j, b in enumerate(elements[t + 1 :], start=t + 1)
                ]

        nl.output("index", acc)
        return nl

    def simulate_netlist(self, perms: np.ndarray, pipelined: bool = False) -> np.ndarray:
        """Run permutations through the gate-level circuit; returns indices."""
        arr = np.asarray(perms)
        if not pipelined:
            nl = self.build_netlist(pipelined=False)
            sim = CombinationalSimulator(nl)
            inputs = {f"in{t}": [int(v) for v in arr[:, t]] for t in range(self.n)}
            return np.array([int(v) for v in sim.run(inputs)["index"]], dtype=np.int64)
        nl = self.build_netlist(pipelined=True)
        seq = SequentialSimulator(nl, batch=1)
        fill = self.n - 1
        out = []
        rows = list(arr) + [arr[-1]] * fill
        for cycle, row in enumerate(rows):
            outs = seq.step({f"in{t}": int(row[t]) for t in range(self.n)})
            if cycle >= fill:
                out.append(int(outs["index"][0]))
        return np.asarray(out, dtype=np.int64)
