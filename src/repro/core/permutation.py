"""Permutation value type.

One-line notation throughout: a permutation of ``{0, …, n−1}`` is the
sequence ``p`` with ``p[i]`` the image of ``i``.  The paper's opening
example "2 0 1 3" (0↦2, 1↦0, 2↦1, 3↦3) is ``Permutation((2, 0, 1, 3))``.

The class is immutable and hashable so permutations can key dictionaries
(the Fig.-4 histogram buckets on them) and participate in sets (P-class
enumeration in :mod:`repro.apps.bdd`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, TypeVar

import numpy as np

from repro.core.factorial import element_width

__all__ = ["Permutation"]

T = TypeVar("T")


class Permutation:
    """An immutable permutation of ``{0, …, n−1}`` in one-line notation."""

    __slots__ = ("seq",)

    def __init__(self, seq: Iterable[int]):
        s = tuple(int(x) for x in seq)
        if sorted(s) != list(range(len(s))):
            raise ValueError(f"{s} is not a permutation of 0..{len(s) - 1}")
        object.__setattr__(self, "seq", s)

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError("Permutation is immutable")

    # -- constructors --------------------------------------------------- #

    @classmethod
    def identity(cls, n: int) -> "Permutation":
        return cls(range(n))

    @classmethod
    def reversal(cls, n: int) -> "Permutation":
        """``n−1, n−2, …, 0`` — the permutation at index ``n! − 1``."""
        return cls(range(n - 1, -1, -1))

    @classmethod
    def random(cls, n: int, rng: np.random.Generator | None = None) -> "Permutation":
        rng = rng if rng is not None else np.random.default_rng()
        return cls(rng.permutation(n))

    @classmethod
    def from_cycles(cls, n: int, cycles: Sequence[Sequence[int]]) -> "Permutation":
        """Build from disjoint cycles, e.g. ``from_cycles(4, [(0, 2, 1)])``."""
        seq = list(range(n))
        seen: set[int] = set()
        for cyc in cycles:
            for a in cyc:
                if a in seen:
                    raise ValueError(f"element {a} appears in two cycles")
                seen.add(a)
            for i, a in enumerate(cyc):
                seq[a] = cyc[(i + 1) % len(cyc)]
        return cls(seq)

    @classmethod
    def from_packed(cls, value: int, n: int) -> "Permutation":
        """Decode the paper's packed word (MSB-first elements).

        Inverse of :meth:`packed_value`: e.g. for n = 4 the 8-bit word
        ``0b11100100 = 228`` decodes to ``3 2 1 0``.
        """
        w = element_width(n)
        mask = (1 << w) - 1
        seq = [(value >> (w * (n - 1 - i))) & mask for i in range(n)]
        return cls(seq)

    # -- basic protocol -------------------------------------------------- #

    @property
    def n(self) -> int:
        return len(self.seq)

    def __len__(self) -> int:
        return len(self.seq)

    def __iter__(self) -> Iterator[int]:
        return iter(self.seq)

    def __getitem__(self, i: int) -> int:
        return self.seq[i]

    def __eq__(self, other) -> bool:
        if isinstance(other, Permutation):
            return self.seq == other.seq
        if isinstance(other, (tuple, list)):
            return self.seq == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.seq)

    def __repr__(self) -> str:
        return f"Permutation({list(self.seq)})"

    def __str__(self) -> str:
        return " ".join(str(x) for x in self.seq)

    # -- algebra --------------------------------------------------------- #

    def __call__(self, i: int) -> int:
        """Image of point ``i``."""
        return self.seq[i]

    def compose(self, other: "Permutation") -> "Permutation":
        """``self ∘ other``: apply ``other`` first, then ``self``."""
        if self.n != other.n:
            raise ValueError("size mismatch")
        return Permutation(self.seq[other.seq[i]] for i in range(self.n))

    def __mul__(self, other: "Permutation") -> "Permutation":
        return self.compose(other)

    def inverse(self) -> "Permutation":
        inv = [0] * self.n
        for i, v in enumerate(self.seq):
            inv[v] = i
        return Permutation(inv)

    def __pow__(self, k: int) -> "Permutation":
        if k < 0:
            return self.inverse() ** (-k)
        result = Permutation.identity(self.n)
        base = self
        while k:
            if k & 1:
                result = result * base
            base = base * base
            k >>= 1
        return result

    def apply(self, items: Sequence[T]) -> list[T]:
        """Permute a sequence: output position ``i`` gets ``items[p[i]]``.

        This is the data-reordering view used by the DSP application:
        ``Permutation(p).apply(stream)`` reorders a data block.
        """
        if len(items) != self.n:
            raise ValueError("sequence length mismatch")
        return [items[v] for v in self.seq]

    def scatter(self, items: Sequence[T]) -> list[T]:
        """Inverse reordering: ``items[i]`` lands at position ``p[i]``."""
        if len(items) != self.n:
            raise ValueError("sequence length mismatch")
        out: list[T] = [items[0]] * self.n
        for i, v in enumerate(self.seq):
            out[v] = items[i]
        return out

    # -- structure -------------------------------------------------------- #

    def fixed_points(self) -> tuple[int, ...]:
        """Points with ``p[i] == i`` (paper §III-C uses these directly)."""
        return tuple(i for i, v in enumerate(self.seq) if v == i)

    @property
    def is_derangement(self) -> bool:
        """True when no element is fixed — the §III-C statistic."""
        return all(v != i for i, v in enumerate(self.seq))

    @property
    def is_identity(self) -> bool:
        return all(v == i for i, v in enumerate(self.seq))

    def cycles(self) -> list[tuple[int, ...]]:
        """Disjoint cycle decomposition (singletons included)."""
        seen = [False] * self.n
        out = []
        for start in range(self.n):
            if seen[start]:
                continue
            cyc = [start]
            seen[start] = True
            j = self.seq[start]
            while j != start:
                cyc.append(j)
                seen[j] = True
                j = self.seq[j]
            out.append(tuple(cyc))
        return out

    def cycle_type(self) -> tuple[int, ...]:
        """Sorted cycle lengths (a partition of n)."""
        return tuple(sorted(len(c) for c in self.cycles()))

    @property
    def order(self) -> int:
        """Order in the symmetric group: lcm of cycle lengths."""
        import math

        o = 1
        for c in self.cycles():
            o = math.lcm(o, len(c))
        return o

    @property
    def sign(self) -> int:
        """+1 for even permutations, −1 for odd."""
        transpositions = sum(len(c) - 1 for c in self.cycles())
        return -1 if transpositions % 2 else 1

    def inversions(self) -> int:
        """Number of pairs ``i < j`` with ``p[i] > p[j]``."""
        return sum(
            1
            for i in range(self.n)
            for j in range(i + 1, self.n)
            if self.seq[i] > self.seq[j]
        )

    def displacement(self) -> int:
        """Total displacement ``Σ |p[i] − i|`` — the 'almost sorted' metric
        behind the Oommen/Ng discussion of Insertion-Sort behaviour."""
        return sum(abs(v - i) for i, v in enumerate(self.seq))

    # -- encodings --------------------------------------------------------- #

    def packed_value(self) -> int:
        """The paper's single-word encoding: elements MSB first.

        For n = 4: ``3 2 1 0`` → ``11 10 01 00`` = 228.  The word has
        ``n·ceil(log2 n)`` bits.
        """
        w = element_width(self.n)
        value = 0
        for v in self.seq:
            value = (value << w) | v
        return value

    @property
    def index(self) -> int:
        """Lexicographic rank — delegates to :mod:`repro.core.lehmer`."""
        from repro.core.lehmer import rank

        return rank(self.seq)

    def lehmer(self) -> tuple[int, ...]:
        """Factorial digit vector (LSB first)."""
        from repro.core.lehmer import lehmer_digits

        return lehmer_digits(self.seq)
