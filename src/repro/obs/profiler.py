"""Continuous sampling profiler: phase attribution without slowing code.

``sys.setprofile``-style tracing multiplies the cost of every function
call, which would invalidate the very latencies this repo measures.
:class:`SamplingProfiler` instead runs one daemon thread that wakes
every ``interval_s``, grabs a snapshot of every other thread's stack via
``sys._current_frames()`` (one C call; the profiled threads never
execute a single extra bytecode), and attributes the sample to a
**phase** — compiled-kernel execution, lane pack/unpack, the
micro-batcher, the serving/supervision layer, map-reduce sharding — by
matching frames innermost-first against a rule table keyed on file path
and function name.

Alongside the phase tally it keeps *folded stacks* (the
``a;b;c count`` format flamegraph tools eat) with a bounded table:
beyond ``max_stacks`` distinct stacks new ones collapse into an
``__overflow__`` row, the same budget discipline as the metrics
registry's label-cardinality bound.

The profiler is approximate by construction — a phase that never holds
the CPU for a full interval can be missed — but it is *safe to leave on
in production*, which a tracing profiler is not.  Reports are
``repro-profile/1`` JSON documents (:meth:`SamplingProfiler.report`,
:func:`validate_profile`).
"""

from __future__ import annotations

import json
import pathlib
import sys
import threading
import time

__all__ = [
    "PROFILE_SCHEMA",
    "SamplingProfiler",
    "classify_frame",
    "validate_profile",
]

PROFILE_SCHEMA = "repro-profile/1"

#: Stack-frame → phase rules, matched innermost-first; first hit wins.
#: Each rule is ``(phase, path_fragment, function_prefix)`` — empty
#: fragment/prefix matches anything.
_PHASE_RULES: tuple[tuple[str, str, str], ...] = (
    ("kernel", "", "_kernel"),  # the generated straight-line sweep fn
    ("pack_unpack", "hdl/compile.py", "pack_lanes"),
    ("pack_unpack", "hdl/compile.py", "unpack_lanes"),
    ("pack_unpack", "hdl/simulator.py", "_pack"),
    ("pack_unpack", "hdl/simulator.py", "_unpack"),
    ("kernel", "hdl/compile.py", ""),
    ("kernel", "hdl/simulator.py", ""),
    ("batcher", "serve/batcher.py", ""),
    ("serve", "serve/service.py", ""),
    ("supervise", "serve/supervisor.py", ""),
    ("engine", "serve/engine.py", ""),
    ("sharding", "parallel/sharding.py", ""),
)

_OVERFLOW_STACK = "__overflow__"


def classify_frame(filename: str, funcname: str) -> str | None:
    """The phase for one frame, or ``None`` when no rule matches."""
    path = filename.replace("\\", "/")
    for phase, fragment, prefix in _PHASE_RULES:
        if fragment and fragment not in path:
            continue
        if prefix and not funcname.startswith(prefix):
            continue
        return phase
    return None


def _classify_stack(frame) -> tuple[str, list[str]]:
    """Phase (innermost match, ``"other"`` fallback) + folded frames."""
    phase: str | None = None
    frames: list[str] = []
    f = frame
    while f is not None:
        code = f.f_code
        frames.append(code.co_name)
        if phase is None:
            phase = classify_frame(code.co_filename, code.co_name)
        f = f.f_back
    frames.reverse()  # outermost first, the folded-stack convention
    return phase if phase is not None else "other", frames


class SamplingProfiler:
    """Samples every thread's stack on a fixed interval; start/stop safe.

    ``interval_s`` is the sampling period (default 5 ms ≈ 200 Hz — cheap
    enough to leave on, fine enough to see millisecond phases).
    ``max_stacks`` bounds the folded-stack table.  Use as a context
    manager or via :meth:`start`/:meth:`stop`; :meth:`report` and
    :meth:`dump` work while running or after stopping.
    """

    def __init__(self, interval_s: float = 0.005, max_stacks: int = 512):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if max_stacks < 1:
            raise ValueError("max_stacks must be positive")
        self.interval_s = interval_s
        self.max_stacks = max_stacks
        self.samples = 0
        self.phase_counts: dict[str, int] = {}
        self.stack_counts: dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None
        self._wall_s = 0.0

    # ------------------------------------------------------------------ #

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._loop, name="obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join()
        self._thread = None
        if self._started_at is not None:
            self._wall_s += time.perf_counter() - self._started_at
            self._started_at = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #

    def _loop(self) -> None:
        me = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self._sample(me)

    def _sample(self, own_ident: int) -> None:
        frames = sys._current_frames()
        with self._lock:
            for ident, frame in frames.items():
                if ident == own_ident:
                    continue
                phase, stack = _classify_stack(frame)
                self.samples += 1
                self.phase_counts[phase] = self.phase_counts.get(phase, 0) + 1
                folded = ";".join(stack)
                if (
                    folded not in self.stack_counts
                    and len(self.stack_counts) >= self.max_stacks
                ):
                    folded = _OVERFLOW_STACK
                self.stack_counts[folded] = self.stack_counts.get(folded, 0) + 1

    # ------------------------------------------------------------------ #

    def report(self, top_stacks: int = 40) -> dict:
        """The profile as a ``repro-profile/1`` document."""
        with self._lock:
            phases = dict(sorted(self.phase_counts.items()))
            stacks = sorted(
                self.stack_counts.items(), key=lambda kv: (-kv[1], kv[0])
            )[:top_stacks]
            samples = self.samples
        wall = self._wall_s
        if self._started_at is not None:
            wall += time.perf_counter() - self._started_at
        return {
            "schema": PROFILE_SCHEMA,
            "interval_s": self.interval_s,
            "wall_s": wall,
            "samples": samples,
            "phases": phases,
            "phase_fractions": {
                p: c / samples for p, c in phases.items()
            }
            if samples
            else {},
            "stacks": [
                {"stack": folded, "count": count} for folded, count in stacks
            ],
        }

    def dump(self, path: str | pathlib.Path, top_stacks: int = 40) -> dict:
        doc = self.report(top_stacks=top_stacks)
        pathlib.Path(path).write_text(
            json.dumps(doc, indent=1, sort_keys=True) + "\n"
        )
        return doc


def validate_profile(doc: object) -> None:
    """Raise :class:`ValueError` unless ``doc`` is a valid profile dump."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        raise ValueError("profile must be a JSON object")
    if doc.get("schema") != PROFILE_SCHEMA:
        problems.append(
            f"schema must be {PROFILE_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    if not isinstance(doc.get("samples"), int) or doc.get("samples", -1) < 0:
        problems.append("samples must be a non-negative integer")
    phases = doc.get("phases")
    if not isinstance(phases, dict) or not all(
        isinstance(k, str) and isinstance(v, int) for k, v in phases.items()
    ):
        problems.append("phases must map phase name to sample count")
    elif isinstance(doc.get("samples"), int) and sum(phases.values()) != doc["samples"]:
        problems.append("phase counts must sum to samples")
    stacks = doc.get("stacks")
    if not isinstance(stacks, list) or not all(
        isinstance(s, dict)
        and isinstance(s.get("stack"), str)
        and isinstance(s.get("count"), int)
        for s in stacks
    ):
        problems.append("stacks must be [{stack, count}] rows")
    if problems:
        raise ValueError("; ".join(problems))
