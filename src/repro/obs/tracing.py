"""Tracing spans: nested wall/CPU timing with typed events.

A :class:`Span` measures one region of work — wall time on the monotonic
clock (``perf_counter``), CPU time (``process_time``) — and carries
typed events (name + timestamp offset + fields) plus child spans.  A
:class:`Tracer` maintains the active span stack and renders the finished
tree.

Distributed identity
--------------------
Every span carries a ``span_id`` and the ``trace_id`` of the request
tree it belongs to (128/64-bit hex, minted by
:mod:`repro.obs.sampling`); a child's ``parent_id`` is its parent's
``span_id``.  Grafting (:meth:`Tracer.adopt`, :meth:`Span.child`)
restamps the adopted sub-tree onto the enclosing trace, so a request can
be followed across threads, worker restarts and failovers by one id.

Sampling
--------
A :class:`Tracer` optionally takes a
:class:`~repro.obs.sampling.Sampler` (consulted once per trace *root*;
descendants inherit the decision) and a
:class:`~repro.obs.sampling.SpanRing` that receives the export of every
*sampled* finished root — the bounded buffer the ``/traces`` endpoint
serves.  Without a sampler every trace is kept, the pre-sampling
behaviour.

Cross-process propagation
-------------------------
Spans export to plain dicts (:meth:`Span.export`) and rebuild from them
(:meth:`Span.from_export`).  That is how
:func:`repro.parallel.sharding.hardened_map_reduce` merges traces: each
worker process runs its shard inside a fresh span, ships the exported
sub-tree back with the result, and the parent grafts it under the
current span (:meth:`Tracer.adopt`) — so every shard attempt, including
retries, timeouts and crash-resubmits, appears as a child of the
caller's trace.

All of this is opt-in: code paths take ``tracer=None`` and skip
instrumentation entirely when no tracer is supplied.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs.sampling import Sampler, SpanRing, new_span_id, new_trace_id

__all__ = ["Span", "Tracer"]


class Span:
    """One timed region: attributes, events, children.

    The span starts timing at construction and stops at :meth:`end`
    (context-managed use via :meth:`Tracer.span` does both).
    """

    __slots__ = (
        "name",
        "attrs",
        "events",
        "children",
        "status",
        "error",
        "wall_s",
        "cpu_s",
        "trace_id",
        "span_id",
        "parent_id",
        "_t0",
        "_c0",
    )

    def __init__(
        self,
        name: str,
        attrs: dict | None = None,
        *,
        trace_id: str | None = None,
        parent_id: str | None = None,
    ):
        self.name = name
        self.attrs = dict(attrs or {})
        self.events: list[dict] = []
        self.children: list[Span] = []
        self.status = "open"
        self.error: str | None = None
        self.wall_s: float | None = None
        self.cpu_s: float | None = None
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()

    # ------------------------------------------------------------------ #

    def event(self, name: str, **fields: object) -> None:
        """Record a typed event at the current offset into the span."""
        self.events.append(
            {
                "name": name,
                "offset_s": round(time.perf_counter() - self._t0, 6),
                "fields": fields,
            }
        )

    def end(self, status: str = "ok", error: str | None = None) -> "Span":
        if self.status == "open":
            self.wall_s = time.perf_counter() - self._t0
            self.cpu_s = time.process_time() - self._c0
            self.status = status
            self.error = error
        return self

    def child(self, name: str, **attrs: object) -> "Span":
        """Open a child span with inherited trace identity, and attach it.

        The manual-graft counterpart of :meth:`Tracer.span` for code that
        builds span trees off the tracer stack (the serving batch path,
        the supervisor ladder): the child gets this span's ``trace_id``
        and this span's ``span_id`` as its ``parent_id``.  The caller
        must still :meth:`end` it.
        """
        s = Span(name, attrs, trace_id=self.trace_id, parent_id=self.span_id)
        self.children.append(s)
        return s

    def child_record(
        self, name: str, wall_s: float | None = None, **attrs: object
    ) -> "Span":
        """Attach an already-finished child without touching the clocks.

        The bulk-instrumentation counterpart of :meth:`child`: a sampled
        serving batch attaches one child per lane *after* the sweep has
        been timed, so each child needs trace identity and attributes
        but not its own clock reads — ``Span.__init__``'s two clock
        calls plus the :meth:`end` pair are roughly a third of span cost
        at 63 lanes.  The child is born ``status="ok"`` carrying the
        caller-measured ``wall_s``.
        """
        s = Span.__new__(Span)
        s.name = name
        s.attrs = attrs
        s.events = []
        s.children = []
        s.status = "ok"
        s.error = None
        s.wall_s = wall_s
        s.cpu_s = None
        s.trace_id = self.trace_id
        s.span_id = new_span_id()
        s.parent_id = self.span_id
        s._t0 = 0.0
        s._c0 = 0.0
        self.children.append(s)
        return s

    def restamp(self, trace_id: str, parent_id: str | None) -> "Span":
        """Rewrite this sub-tree's identity onto a new enclosing trace.

        Sets ``trace_id`` on every span in the sub-tree and repairs
        structural ``parent_id`` links (each child points at its actual
        parent) — how adopted/imported sub-trees, whose ids were minted
        in another process or before grafting, join the caller's trace.
        """
        self.trace_id = trace_id
        self.parent_id = parent_id
        stack = [self]
        while stack:
            s = stack.pop()
            for c in s.children:
                c.trace_id = trace_id
                c.parent_id = s.span_id
                stack.append(c)
        return self

    # ------------------------------------------------------------------ #
    # serialisation (pickle/JSON-safe plain dicts)

    def export(self) -> dict:
        return {
            "name": self.name,
            "attrs": self.attrs,
            "status": self.status,
            "error": self.error,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "events": self.events,
            "children": [c.export() for c in self.children],
        }

    @classmethod
    def from_export(cls, data: dict) -> "Span":
        span = cls(
            data["name"],
            data.get("attrs"),
            trace_id=data.get("trace_id"),
            parent_id=data.get("parent_id"),
        )
        if data.get("span_id") is not None:
            span.span_id = data["span_id"]
        span.status = data.get("status", "ok")
        span.error = data.get("error")
        span.wall_s = data.get("wall_s")
        span.cpu_s = data.get("cpu_s")
        span.events = list(data.get("events", ()))
        span.children = [cls.from_export(c) for c in data.get("children", ())]
        return span

    # ------------------------------------------------------------------ #
    # introspection

    def walk(self) -> Iterator["Span"]:
        yield self
        for c in self.children:
            yield from c.walk()

    def find_all(self, name: str) -> list["Span"]:
        return [s for s in self.walk() if s.name == name]

    # ------------------------------------------------------------------ #
    # rendering

    def _header(self) -> str:
        parts = [self.name]
        if self.wall_s is not None:
            parts.append(f"wall={self.wall_s * 1e3:.2f}ms")
        if self.cpu_s is not None:
            parts.append(f"cpu={self.cpu_s * 1e3:.2f}ms")
        if self.status not in ("ok", "open"):
            parts.append(f"status={self.status}")
        if self.error:
            parts.append(f"error={self.error!r}")
        parts += [f"{k}={v}" for k, v in self.attrs.items()]
        return " ".join(parts)

    def render(self) -> str:
        """The span tree as indented ASCII (one span or event per line)."""
        lines: list[str] = []

        def emit(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
            if is_root:
                lines.append(span._header())
                child_prefix = ""
            else:
                branch = "└─ " if is_last else "├─ "
                lines.append(prefix + branch + span._header())
                child_prefix = prefix + ("   " if is_last else "│  ")
            rows: list[tuple[str, object]] = [("event", e) for e in span.events]
            rows += [("span", c) for c in span.children]
            for i, (kind, item) in enumerate(rows):
                last = i == len(rows) - 1
                if kind == "event":
                    e = item
                    fields = " ".join(f"{k}={v}" for k, v in e["fields"].items())
                    mark = "└· " if last else "├· "
                    lines.append(
                        child_prefix
                        + mark
                        + f"{e['name']} @{e['offset_s'] * 1e3:.1f}ms"
                        + (f" {fields}" if fields else "")
                    )
                else:
                    emit(item, child_prefix, last, False)

        emit(self, "", True, True)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<Span {self.name!r} status={self.status} children={len(self.children)}>"


class Tracer:
    """Maintains the active span stack; owns the finished trace.

    ``sampler`` (optional) is consulted once per trace root —
    :meth:`sampled_root` returns ``None`` for unsampled traces so
    instrumentation sites skip span construction entirely.  ``ring``
    (optional) receives the export of every sampled root finished
    through :meth:`span` or adopted at root level, giving the exposition
    endpoint a bounded live buffer without the tracer's ``roots`` list
    growing unbounded (``keep_roots=False`` additionally stops
    accumulating finished roots in memory — the long-running-service
    mode; :meth:`render` then only covers still-open trees).
    """

    def __init__(
        self,
        sampler: Sampler | None = None,
        ring: SpanRing | None = None,
        keep_roots: bool = True,
    ) -> None:
        self.roots: list[Span] = []
        self.sampler = sampler
        self.ring = ring
        self.keep_roots = keep_roots
        self._stack: list[Span] = []

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @property
    def root(self) -> Span | None:
        return self.roots[0] if self.roots else None

    def sampled_root(self, name: str, **attrs: object) -> Span | None:
        """A fresh root span, or ``None`` when the sampler declines.

        The head-sampling seam for code that builds trees off the stack
        (the serving batch path): one call decides the whole trace, and
        a ``None`` return means the site pays nothing further.  The
        caller finishes with :meth:`adopt`.
        """
        if self.sampler is not None and not self.sampler(name):
            return None
        return Span(name, attrs)

    @contextmanager
    def span(self, name: str, **attrs: object):
        """Open a child span of the current span (or a new root)."""
        parent = self.current
        sampled = True
        if parent is not None:
            s = Span(
                name, attrs, trace_id=parent.trace_id, parent_id=parent.span_id
            )
            parent.children.append(s)
        else:
            sampled = self.sampler is None or self.sampler(name)
            s = Span(name, attrs)
            if self.keep_roots:
                self.roots.append(s)
        self._stack.append(s)
        try:
            yield s
        except BaseException as exc:
            s.end("error", error=f"{type(exc).__name__}: {exc}")
            raise
        else:
            s.end("ok")
        finally:
            self._stack.pop()
            if parent is None and sampled:
                self._record_root(s)

    def adopt(self, span: Span | dict) -> Span:
        """Graft a finished span (or its export) into the current trace.

        The adopted sub-tree is restamped onto the enclosing trace
        (current span's ``trace_id``/``span_id``); adopted *roots* keep
        their own identity, have their internal parent links repaired,
        and are offered to the ring.
        """
        if isinstance(span, dict):
            span = Span.from_export(span)
        parent = self.current
        if parent is not None:
            span.restamp(parent.trace_id, parent.span_id)
            parent.children.append(span)
        else:
            span.restamp(span.trace_id, None)
            if self.keep_roots:
                self.roots.append(span)
            self._record_root(span)
        return span

    def _record_root(self, span: Span) -> None:
        """Offer a finished root to the ring (sampling already decided)."""
        if self.ring is not None and span.status != "open":
            self.ring.record(span.export())

    def render(self) -> str:
        return "\n".join(r.render() for r in self.roots)


def worker_span(name: str, **attrs: object) -> Span:
    """A fresh span for worker-process use; tags the worker PID."""
    attrs.setdefault("pid", os.getpid())
    return Span(name, attrs)
