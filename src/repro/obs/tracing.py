"""Tracing spans: nested wall/CPU timing with typed events.

A :class:`Span` measures one region of work — wall time on the monotonic
clock (``perf_counter``), CPU time (``process_time``) — and carries
typed events (name + timestamp offset + fields) plus child spans.  A
:class:`Tracer` maintains the active span stack and renders the finished
tree.

Cross-process propagation
-------------------------
Spans export to plain dicts (:meth:`Span.export`) and rebuild from them
(:meth:`Span.from_export`).  That is how
:func:`repro.parallel.sharding.hardened_map_reduce` merges traces: each
worker process runs its shard inside a fresh span, ships the exported
sub-tree back with the result, and the parent grafts it under the
current span (:meth:`Tracer.adopt`) — so every shard attempt, including
retries, timeouts and crash-resubmits, appears as a child of the
caller's trace.

All of this is opt-in: code paths take ``tracer=None`` and skip
instrumentation entirely when no tracer is supplied.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["Span", "Tracer"]


class Span:
    """One timed region: attributes, events, children.

    The span starts timing at construction and stops at :meth:`end`
    (context-managed use via :meth:`Tracer.span` does both).
    """

    __slots__ = (
        "name",
        "attrs",
        "events",
        "children",
        "status",
        "error",
        "wall_s",
        "cpu_s",
        "_t0",
        "_c0",
    )

    def __init__(self, name: str, attrs: dict | None = None):
        self.name = name
        self.attrs = dict(attrs or {})
        self.events: list[dict] = []
        self.children: list[Span] = []
        self.status = "open"
        self.error: str | None = None
        self.wall_s: float | None = None
        self.cpu_s: float | None = None
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()

    # ------------------------------------------------------------------ #

    def event(self, name: str, **fields: object) -> None:
        """Record a typed event at the current offset into the span."""
        self.events.append(
            {
                "name": name,
                "offset_s": round(time.perf_counter() - self._t0, 6),
                "fields": fields,
            }
        )

    def end(self, status: str = "ok", error: str | None = None) -> "Span":
        if self.status == "open":
            self.wall_s = time.perf_counter() - self._t0
            self.cpu_s = time.process_time() - self._c0
            self.status = status
            self.error = error
        return self

    # ------------------------------------------------------------------ #
    # serialisation (pickle/JSON-safe plain dicts)

    def export(self) -> dict:
        return {
            "name": self.name,
            "attrs": self.attrs,
            "status": self.status,
            "error": self.error,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "events": self.events,
            "children": [c.export() for c in self.children],
        }

    @classmethod
    def from_export(cls, data: dict) -> "Span":
        span = cls(data["name"], data.get("attrs"))
        span.status = data.get("status", "ok")
        span.error = data.get("error")
        span.wall_s = data.get("wall_s")
        span.cpu_s = data.get("cpu_s")
        span.events = list(data.get("events", ()))
        span.children = [cls.from_export(c) for c in data.get("children", ())]
        return span

    # ------------------------------------------------------------------ #
    # introspection

    def walk(self) -> Iterator["Span"]:
        yield self
        for c in self.children:
            yield from c.walk()

    def find_all(self, name: str) -> list["Span"]:
        return [s for s in self.walk() if s.name == name]

    # ------------------------------------------------------------------ #
    # rendering

    def _header(self) -> str:
        parts = [self.name]
        if self.wall_s is not None:
            parts.append(f"wall={self.wall_s * 1e3:.2f}ms")
        if self.cpu_s is not None:
            parts.append(f"cpu={self.cpu_s * 1e3:.2f}ms")
        if self.status not in ("ok", "open"):
            parts.append(f"status={self.status}")
        if self.error:
            parts.append(f"error={self.error!r}")
        parts += [f"{k}={v}" for k, v in self.attrs.items()]
        return " ".join(parts)

    def render(self) -> str:
        """The span tree as indented ASCII (one span or event per line)."""
        lines: list[str] = []

        def emit(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
            if is_root:
                lines.append(span._header())
                child_prefix = ""
            else:
                branch = "└─ " if is_last else "├─ "
                lines.append(prefix + branch + span._header())
                child_prefix = prefix + ("   " if is_last else "│  ")
            rows: list[tuple[str, object]] = [("event", e) for e in span.events]
            rows += [("span", c) for c in span.children]
            for i, (kind, item) in enumerate(rows):
                last = i == len(rows) - 1
                if kind == "event":
                    e = item
                    fields = " ".join(f"{k}={v}" for k, v in e["fields"].items())
                    mark = "└· " if last else "├· "
                    lines.append(
                        child_prefix
                        + mark
                        + f"{e['name']} @{e['offset_s'] * 1e3:.1f}ms"
                        + (f" {fields}" if fields else "")
                    )
                else:
                    emit(item, child_prefix, last, False)

        emit(self, "", True, True)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<Span {self.name!r} status={self.status} children={len(self.children)}>"


class Tracer:
    """Maintains the active span stack; owns the finished trace."""

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @property
    def root(self) -> Span | None:
        return self.roots[0] if self.roots else None

    @contextmanager
    def span(self, name: str, **attrs: object):
        """Open a child span of the current span (or a new root)."""
        s = Span(name, attrs)
        parent = self.current
        if parent is not None:
            parent.children.append(s)
        else:
            self.roots.append(s)
        self._stack.append(s)
        try:
            yield s
        except BaseException as exc:
            s.end("error", error=f"{type(exc).__name__}: {exc}")
            raise
        else:
            s.end("ok")
        finally:
            self._stack.pop()

    def adopt(self, span: Span | dict) -> Span:
        """Graft a finished span (or its export) into the current trace."""
        if isinstance(span, dict):
            span = Span.from_export(span)
        parent = self.current
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        return span

    def render(self) -> str:
        return "\n".join(r.render() for r in self.roots)


def worker_span(name: str, **attrs: object) -> Span:
    """A fresh span for worker-process use; tags the worker PID."""
    attrs.setdefault("pid", os.getpid())
    return Span(name, attrs)
