"""Observability: metrics, tracing spans, structured events, sim probes.

The paper's claims are quantitative — comparator counts, one permutation
per clock, bias shrinking with LFSR width — so the reproduction carries a
real telemetry layer instead of ad-hoc ``perf_counter`` calls:

* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket histograms
  with labels, a Prometheus-style text exposition and a JSON snapshot.
  The global :data:`~repro.obs.metrics.REGISTRY` is **disabled by
  default**; disabled instrumentation is a guarded no-op.
* :mod:`repro.obs.tracing` — nested spans with wall/CPU time and typed
  events.  Spans export to plain dicts, so worker processes can ship
  their sub-trees across the pickle boundary and the parent grafts them
  back into one trace (see ``hardened_map_reduce``).
* :mod:`repro.obs.events` — structured progress events (the replacement
  for print-lambda callbacks) with stderr / collecting / tee sinks.
* :mod:`repro.obs.probes` — opt-in signal-level probes for the netlist
  simulators: per-wire transition counts, gate-evaluation totals,
  per-stage factorial-digit values, and VCD export for waveform viewers.
* :mod:`repro.obs.bench` — the benchmark telemetry harness: versioned,
  schema-validated JSON reports (``results/*.json``) with an environment
  fingerprint and iteration statistics.

``probes`` and ``bench`` are imported lazily: ``probes`` pulls in the
converter (which itself uses ``obs.metrics``), and keeping it out of the
package import breaks the cycle.
"""

from __future__ import annotations

from repro.obs import events, metrics, tracing

__all__ = ["metrics", "tracing", "events", "probes", "bench"]


def __getattr__(name: str):
    if name in ("probes", "bench"):
        import importlib

        return importlib.import_module(f"repro.obs.{name}")
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
