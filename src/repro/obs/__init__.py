"""Observability: metrics, tracing spans, structured events, sim probes.

The paper's claims are quantitative — comparator counts, one permutation
per clock, bias shrinking with LFSR width — so the reproduction carries a
real telemetry layer instead of ad-hoc ``perf_counter`` calls:

* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket histograms
  with labels, a Prometheus-style text exposition and a JSON snapshot.
  The global :data:`~repro.obs.metrics.REGISTRY` is **disabled by
  default**; disabled instrumentation is a guarded no-op.
* :mod:`repro.obs.tracing` — nested spans with wall/CPU time and typed
  events.  Spans export to plain dicts, so worker processes can ship
  their sub-trees across the pickle boundary and the parent grafts them
  back into one trace (see ``hardened_map_reduce``).
* :mod:`repro.obs.events` — structured progress events (the replacement
  for print-lambda callbacks) with stderr / collecting / tee sinks.
* :mod:`repro.obs.probes` — opt-in signal-level probes for the netlist
  simulators: per-wire transition counts, gate-evaluation totals,
  per-stage factorial-digit values, and VCD export for waveform viewers.
* :mod:`repro.obs.bench` — the benchmark telemetry harness: versioned,
  schema-validated JSON reports (``results/*.json``) with an environment
  fingerprint and iteration statistics.
* :mod:`repro.obs.sampling` — trace samplers (probabilistic,
  rate-limited), W3C-sized trace/span ids, and the bounded span ring
  behind the ``/traces`` endpoint.
* :mod:`repro.obs.digests` — mergeable HDR-style log-bucketed latency
  digests (p50/p90/p99/p99.9 with bounded relative error).
* :mod:`repro.obs.httpexp` — the pull-based exposition endpoint
  (``/metrics``, ``/metrics.json``, ``/traces``, ``/health``) and the
  ``repro obs top`` dashboard renderer.
* :mod:`repro.obs.profiler` — the continuous stack-sampling profiler
  with engine-phase attribution and folded-stack output.
* :mod:`repro.obs.history` — the append-only bench-history ledger
  (``repro-bench-history/1``) and the noise-aware regression gate.

``probes``, ``bench``, ``httpexp``, ``profiler`` and ``history`` are
imported lazily: ``probes`` pulls in the converter (which itself uses
``obs.metrics``) and the others are tooling nobody on the hot path
needs at import time.
"""

from __future__ import annotations

from repro.obs import digests, events, metrics, sampling, tracing

__all__ = [
    "metrics",
    "tracing",
    "events",
    "sampling",
    "digests",
    "probes",
    "bench",
    "httpexp",
    "profiler",
    "history",
]

_LAZY = ("probes", "bench", "httpexp", "profiler", "history")


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return importlib.import_module(f"repro.obs.{name}")
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
