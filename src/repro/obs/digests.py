"""HDR-style latency digests: mergeable log-bucketed quantile sketches.

The fixed-edge histograms in :mod:`repro.obs.metrics` are the right tool
for Prometheus exposition, but their tail resolution is whatever the
hand-picked edge list gives them — with
:data:`~repro.obs.metrics.FAST_LATENCY_BUCKETS` the gap between 50 ms
and 100 ms is a single bucket, so a p99.9 read off those edges can be
off by 2×.  :class:`LatencyDigest` instead buckets on a *geometric*
grid: every bucket spans the same ratio (default ≈ 1.0905, i.e. 16
buckets per power of two), which bounds the **relative** quantile error
at the grid ratio everywhere on the axis — the classic HDR-histogram
trade.  Memory stays bounded because the grid is clamped to a fixed
index range (sub-nanosecond underflows and >1000 s overflows saturate
into the end buckets).

Digests are **mergeable**: ``a.merge(b)`` adds counts bucket-by-bucket
and is associative and commutative, so per-worker digests recorded on
opposite sides of a process boundary (shipped as plain dicts through
:meth:`to_dict`/:meth:`from_dict`, like
:meth:`repro.obs.tracing.Span.export`) fold into one distribution whose
quantiles are exactly what a single observer would have sketched.  That
is what lets :func:`repro.parallel.sharding.hardened_map_reduce` workers
and the serving tier's shards report tail latency without ever sharing
a lock.

Bucketing math
--------------
A value ``v`` lands in bucket ``floor(log2(v) * SUBBUCKETS_PER_OCTAVE)``
computed via :func:`math.log2` (one C call), offset so the
smallest representable value (1 ns) maps to index 0.  Quantiles are read
back by walking the cumulative counts to rank ``q·(count−1)`` and
returning the bucket's geometric midpoint.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Mapping

__all__ = ["LatencyDigest", "SUBBUCKETS_PER_OCTAVE", "DIGEST_QUANTILES"]

#: Buckets per power of two.  16 gives a grid ratio of 2^(1/16) ≈ 1.044
#: between adjacent bucket *edges* and bounds relative quantile error at
#: ~±2.2% (half a bucket), comfortably inside benchmark noise.
SUBBUCKETS_PER_OCTAVE = 16

#: The quantiles the serving layer reports and exposes by default.
DIGEST_QUANTILES = (0.5, 0.9, 0.99, 0.999)

# Clamp the grid to [1 ns, ~1100 s]: log2 exponents -30..40 → indices
# 0..(70*16).  Observations outside saturate into the end buckets.
_MIN_EXP = -30
_MAX_EXP = 41
_BUCKETS = (_MAX_EXP - _MIN_EXP) * SUBBUCKETS_PER_OCTAVE
_SCALE = float(SUBBUCKETS_PER_OCTAVE)
_log2 = math.log2


def _bucket_index(v: float) -> int:
    """The clamped geometric bucket index for a positive value.

    Must stay bit-identical to the inlined copies in
    :meth:`LatencyDigest.observe`/:meth:`~LatencyDigest.observe_many` —
    same ``log2`` call, same clamp — or an edge value could land in
    different buckets depending on which path recorded it.
    """
    idx = int((_log2(v) - _MIN_EXP) * _SCALE)
    if idx < 0:
        return 0
    if idx >= _BUCKETS:
        return _BUCKETS - 1
    return idx


def _bucket_mid(idx: int) -> float:
    """Geometric midpoint of bucket ``idx`` (the quantile read-back value)."""
    lo_log2 = idx / _SCALE + _MIN_EXP
    return 2.0 ** (lo_log2 + 0.5 / _SCALE)


class LatencyDigest:
    """A mergeable log-bucketed quantile sketch over positive values.

    Thread-safe for concurrent :meth:`observe` (one lock per digest;
    the critical section is a dict increment).  Non-positive values are
    counted in ``zero_count`` and treated as the distribution's minimum
    — a 0-second latency is a measurement artefact, not a bucket.
    """

    __slots__ = ("_counts", "count", "sum", "zero_count", "_min", "_max", "_lock")

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.zero_count = 0
        self._min = math.inf
        self._max = 0.0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # recording

    def observe(self, value: float) -> None:
        # The bucket math is inlined (not a _bucket_index call): this is
        # the serving hot path's per-request cost, and one Python frame
        # is a measurable slice of the ≤5% telemetry budget.
        v = float(value)
        with self._lock:
            self.count += 1
            if v <= 0.0:
                self.zero_count += 1
                return
            self.sum += v
            if v < self._min:
                self._min = v
            if v > self._max:
                self._max = v
            idx = int((_log2(v) - _MIN_EXP) * _SCALE)
            if idx < 0:
                idx = 0
            elif idx >= _BUCKETS:
                idx = _BUCKETS - 1
            counts = self._counts
            counts[idx] = counts.get(idx, 0) + 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of values under one lock acquisition.

        The per-batch flush path: the serving loop accumulates plain
        floats per response and folds them in here, so the per-request
        cost is a list append rather than a lock round-trip.
        """
        vals = values
        log2 = _log2
        with self._lock:
            counts = self._counts
            get = counts.get
            vmin, vmax, total = self._min, self._max, self.sum
            n = zeros = 0
            for value in vals:
                v = float(value)
                n += 1
                if v <= 0.0:
                    zeros += 1
                    continue
                total += v
                if v < vmin:
                    vmin = v
                if v > vmax:
                    vmax = v
                idx = int((log2(v) - _MIN_EXP) * _SCALE)
                if idx < 0:
                    idx = 0
                elif idx >= _BUCKETS:
                    idx = _BUCKETS - 1
                counts[idx] = get(idx, 0) + 1
            self.count += n
            self.zero_count += zeros
            self.sum = total
            self._min = vmin
            self._max = vmax

    # ------------------------------------------------------------------ #
    # reading

    @property
    def min(self) -> float:
        return 0.0 if self.zero_count else (self._min if self.count else 0.0)

    @property
    def max(self) -> float:
        return self._max

    @property
    def mean(self) -> float:
        positive = self.count - self.zero_count
        return self.sum / positive if positive else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``0 <= q <= 1``) via nearest-rank read-back.

        Returns the geometric midpoint of the bucket holding rank
        ``q·(count−1)``, clamped to the observed ``[min, max]`` so a
        sparse digest never reports a value outside its data.
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = round(q * (self.count - 1))
            if rank < self.zero_count:
                return 0.0
            rank -= self.zero_count
            acc = 0
            for idx in sorted(self._counts):
                acc += self._counts[idx]
                if acc > rank:
                    mid = _bucket_mid(idx)
                    return min(max(mid, self._min), self._max)
            return self._max  # pragma: no cover - rank always found

    def quantiles(self, qs: Iterable[float] = DIGEST_QUANTILES) -> dict[float, float]:
        return {q: self.quantile(q) for q in qs}

    # ------------------------------------------------------------------ #
    # merge + serialisation

    def merge(self, other: "LatencyDigest") -> "LatencyDigest":
        """Fold ``other`` into this digest (associative, commutative)."""
        with other._lock:
            counts = dict(other._counts)
            o_count, o_sum = other.count, other.sum
            o_zero, o_min, o_max = other.zero_count, other._min, other._max
        with self._lock:
            for idx, c in counts.items():
                self._counts[idx] = self._counts.get(idx, 0) + c
            self.count += o_count
            self.sum += o_sum
            self.zero_count += o_zero
            if o_min < self._min:
                self._min = o_min
            if o_max > self._max:
                self._max = o_max
        return self

    def to_dict(self) -> dict:
        """Plain-dict export (JSON/pickle-safe, the merge wire format)."""
        with self._lock:
            return {
                "buckets": {str(k): v for k, v in sorted(self._counts.items())},
                "count": self.count,
                "sum": self.sum,
                "zero_count": self.zero_count,
                "min": None if math.isinf(self._min) else self._min,
                "max": self._max,
            }

    @classmethod
    def from_dict(cls, data: Mapping) -> "LatencyDigest":
        d = cls()
        d._counts = {int(k): int(v) for k, v in data.get("buckets", {}).items()}
        d.count = int(data.get("count", 0))
        d.sum = float(data.get("sum", 0.0))
        d.zero_count = int(data.get("zero_count", 0))
        mn = data.get("min")
        d._min = math.inf if mn is None else float(mn)
        d._max = float(data.get("max", 0.0))
        return d

    def __repr__(self) -> str:
        return (
            f"<LatencyDigest count={self.count} "
            f"p50={self.quantile(0.5):.3g} p99={self.quantile(0.99):.3g}>"
        )
