"""Structured progress events: the replacement for print-lambda callbacks.

Long-running jobs (fault campaigns, sharded experiments) report progress
as typed events — a ``kind`` plus keyword fields — instead of
pre-rendered strings.  Sinks decide what happens to them:

* :class:`StderrSink` renders human-readable lines (what the CLI shows
  unless ``--quiet``);
* :class:`CollectingSink` keeps :class:`Event` objects for tests and
  programmatic consumers;
* :class:`SpanEventSink` forwards events onto the current tracing span,
  so a traced run records the same progress in its span tree;
* :class:`TeeSink` fans out to several sinks;
* :class:`NullSink` drops everything (the ``--quiet`` path — the final
  report is unaffected because reports never travel through the sink).

Producers take ``events: EventSink | None`` and treat ``None`` as
:class:`NullSink`, so uninstrumented callers pay nothing.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import IO, Mapping

__all__ = [
    "Event",
    "EventSink",
    "NullSink",
    "StderrSink",
    "CollectingSink",
    "SpanEventSink",
    "TeeSink",
]


def _render_fields(fields: Mapping[str, object]) -> str:
    return " ".join(f"{k}={v}" for k, v in fields.items())


@dataclass(frozen=True)
class Event:
    """One structured progress event."""

    kind: str
    fields: Mapping[str, object] = field(default_factory=dict)
    monotonic_s: float = field(default_factory=time.monotonic)

    def render(self) -> str:
        fields = _render_fields(self.fields)
        return f"{self.kind}: {fields}" if fields else self.kind


class EventSink:
    """Base sink: drops events.  Subclasses override :meth:`emit`."""

    def emit(self, kind: str, **fields: object) -> None:
        pass


class NullSink(EventSink):
    """Explicitly-named drop-everything sink (the ``--quiet`` path)."""


class StderrSink(EventSink):
    """Renders ``[prefix] kind: k=v …`` lines to a text stream.

    The stream is resolved at emit time by default so pytest's capture
    (and any stderr redirection) sees the output.
    """

    def __init__(self, prefix: str = "", stream: IO[str] | None = None):
        self.prefix = prefix
        self._stream = stream

    def emit(self, kind: str, **fields: object) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        tag = f"[{self.prefix}] " if self.prefix else ""
        print(f"{tag}{Event(kind, fields).render()}", file=stream)


class CollectingSink(EventSink):
    """Keeps every event; ``sink.events`` is the log, in emit order."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, kind: str, **fields: object) -> None:
        self.events.append(Event(kind, fields))

    def kinds(self) -> list[str]:
        return [e.kind for e in self.events]


class SpanEventSink(EventSink):
    """Forwards events to the tracer's current span (if any is open)."""

    def __init__(self, tracer) -> None:
        self.tracer = tracer

    def emit(self, kind: str, **fields: object) -> None:
        span = self.tracer.current
        if span is not None:
            span.event(kind, **fields)


class TeeSink(EventSink):
    """Fans each event out to every child sink."""

    def __init__(self, *sinks: EventSink):
        self.sinks = tuple(sinks)

    def emit(self, kind: str, **fields: object) -> None:
        for sink in self.sinks:
            sink.emit(kind, **fields)
