"""Pull-based telemetry exposition over HTTP, plus the text dashboard.

:class:`ExpositionServer` is a stdlib-only (``http.server``) endpoint a
running service starts next to itself — one daemon thread, bound to
``127.0.0.1`` by default, port ``0`` for an OS-assigned port.  It serves
the *pull* side of the telemetry pipeline:

========================  ==============================================
``/metrics``              Prometheus text exposition of the registry
``/metrics.json``         the same data as a JSON snapshot
``/traces``               the span ring as a ``repro-traces/1`` document
``/health``               the health callback's JSON (503 when not ok)
========================  ==============================================

Scrapes never touch the serving hot path: every handler reads the
registry/ring under their own locks, and the server thread is the only
thing that pays for rendering.

:func:`render_dashboard` is the *view* half of ``repro obs top``: a pure
function from a ``/metrics.json`` snapshot (plus an optional ``/health``
document) to a fixed-width terminal panel — queue depth, shed/degraded
rates, serving-mode mix, breaker states, cache hit ratio and the
latency-digest percentiles.  Keeping it pure (no sockets, no clock)
makes the dashboard testable with canned snapshots.
"""

from __future__ import annotations

import json
import threading
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs import metrics as _metrics
from repro.obs.sampling import SpanRing, TRACE_DUMP_SCHEMA

__all__ = [
    "ExpositionServer",
    "render_dashboard",
    "fetch_json",
    "fetch_text",
]


class ExpositionServer:
    """A background HTTP endpoint exposing one registry + span ring.

    ``health_fn`` (optional) returns the ``/health`` document; a
    ``status`` value other than ``"ok"`` turns the response into a 503 —
    which is exactly what a load-balancer probe or the CI smoke check
    wants to see from a degraded service.  ``registry`` defaults to the
    global :data:`repro.obs.metrics.REGISTRY`.
    """

    def __init__(
        self,
        registry: _metrics.MetricsRegistry | None = None,
        ring: SpanRing | None = None,
        health_fn=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.registry = registry if registry is not None else _metrics.REGISTRY
        self.ring = ring
        self.health_fn = health_fn
        self.host = host
        self.port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ExpositionServer":
        if self._httpd is not None:
            return self
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # silence per-request noise
                pass

            def do_GET(self) -> None:
                server._handle(self)

        self._httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]  # resolve port 0
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="obs-exposition",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ExpositionServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # request handling (runs on the server's handler threads)

    def _handle(self, handler: BaseHTTPRequestHandler) -> None:
        path = handler.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = self.registry.render_exposition().encode()
                ctype = "text/plain; version=0.0.4; charset=utf-8"
                status = 200
            elif path == "/metrics.json":
                body = _json_bytes(self.registry.snapshot())
                ctype = "application/json"
                status = 200
            elif path == "/traces":
                doc = (
                    self.ring.dump()
                    if self.ring is not None
                    else {
                        "schema": TRACE_DUMP_SCHEMA,
                        "capacity": 0,
                        "recorded": 0,
                        "dropped": 0,
                        "traces": [],
                    }
                )
                body = _json_bytes(doc)
                ctype = "application/json"
                status = 200
            elif path == "/health":
                doc = self.health_fn() if self.health_fn is not None else {"status": "ok"}
                body = _json_bytes(doc)
                ctype = "application/json"
                status = 200 if doc.get("status") == "ok" else 503
            else:
                body = _json_bytes({"error": f"unknown path {path!r}"})
                ctype = "application/json"
                status = 404
        except Exception as exc:  # defensive: a scrape must never kill the server
            body = _json_bytes({"error": f"{type(exc).__name__}: {exc}"})
            ctype = "application/json"
            status = 500
        handler.send_response(status)
        handler.send_header("Content-Type", ctype)
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)


def _json_bytes(doc: object) -> bytes:
    return (json.dumps(doc, indent=1, sort_keys=True) + "\n").encode()


# --------------------------------------------------------------------- #
# client helpers (the ``repro obs top`` fetch side)


def fetch_text(url: str, timeout: float = 2.0) -> str:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read().decode()


def fetch_json(url: str, timeout: float = 2.0) -> dict:
    return json.loads(fetch_text(url, timeout=timeout))


# --------------------------------------------------------------------- #
# the dashboard view (pure: snapshot dicts in, panel text out)


def _series(snapshot: dict, name: str) -> list[dict]:
    for m in snapshot.get("metrics", ()):
        if m.get("name") == name:
            return list(m.get("series", ()))
    return []


def _counter_by(snapshot: dict, name: str, label: str) -> dict[str, float]:
    out: dict[str, float] = {}
    for s in _series(snapshot, name):
        key = s.get("labels", {}).get(label, "")
        out[key] = out.get(key, 0.0) + float(s.get("value", 0.0))
    return out


def _fmt_rate(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:5.1f}%" if whole > 0 else "    —"


def _fmt_s(v: float) -> str:
    if v >= 1.0:
        return f"{v:7.2f}s"
    if v >= 1e-3:
        return f"{v * 1e3:6.2f}ms"
    return f"{v * 1e6:6.1f}µs"


def _worker_sweeps(snapshot: dict | None) -> dict[tuple[str, str], float]:
    """Per-(shard, replica) cumulative sweep counts from a snapshot."""
    out: dict[tuple[str, str], float] = {}
    if not snapshot:
        return out
    for s in _series(snapshot, "repro_serve_pool_worker_sweeps_total"):
        labels = s.get("labels", {})
        key = (labels.get("shard", "?"), labels.get("replica", "?"))
        out[key] = out.get(key, 0.0) + float(s.get("value", 0.0))
    return out


def render_dashboard(
    snapshot: dict,
    health: dict | None = None,
    prev: dict | None = None,
    interval_s: float | None = None,
) -> str:
    """One terminal panel from a ``/metrics.json`` snapshot.

    Missing metrics render as absent rows, not errors: the dashboard is
    usable against any registry, not only a fully-instrumented serving
    run.  When the health document carries per-worker rows (the pooled
    serving tier), a worker table is appended — pid, shard, cumulative
    sweeps, restarts — with a sweeps/s column computed from the previous
    snapshot ``prev`` over ``interval_s`` when both are given.
    """
    lines: list[str] = []
    bar = "─" * 64
    lines.append("repro serving telemetry")
    lines.append(bar)

    # --- traffic -------------------------------------------------------
    outcomes = _counter_by(snapshot, "repro_serve_requests_total", "outcome")
    total = sum(outcomes.values())
    if outcomes:
        shed = outcomes.get("shed", 0.0)
        degraded = outcomes.get("degraded", 0.0)
        errors = outcomes.get("error", 0.0)
        lines.append(
            f"requests {int(total):>10}   ok {_fmt_rate(outcomes.get('ok', 0.0), total)}"
            f"   shed {_fmt_rate(shed, total)}"
            f"   degraded {_fmt_rate(degraded, total)}"
            f"   error {_fmt_rate(errors, total)}"
        )
    depth = _series(snapshot, "repro_serve_queue_depth")
    if depth:
        lines.append(f"queue depth {int(depth[0].get('value', 0)):>7}")

    # --- serving-mode mix ---------------------------------------------
    modes = _counter_by(snapshot, "repro_serve_mode_total", "mode")
    if modes:
        served = sum(modes.values())
        mix = "   ".join(
            f"{mode} {_fmt_rate(count, served).strip()}"
            for mode, count in sorted(modes.items())
        )
        lines.append(f"mode mix    {mix}")

    # --- cache ---------------------------------------------------------
    cache = _counter_by(snapshot, "repro_serve_cache_total", "result")
    if cache:
        lookups = sum(cache.values())
        lines.append(
            f"cache       hit ratio {_fmt_rate(cache.get('hit', 0.0), lookups).strip()}"
            f"  ({int(lookups)} lookups)"
        )

    # --- breakers ------------------------------------------------------
    breakers: dict[tuple[str, str], str] = {}
    for s in _series(snapshot, "repro_serve_breaker_state"):
        labels = s.get("labels", {})
        if float(s.get("value", 0.0)) == 1.0:
            breakers[(labels.get("shard", "?"), labels.get("path", "?"))] = labels.get(
                "state", "?"
            )
    if breakers:
        lines.append("breakers")
        for (shard, path), state in sorted(breakers.items()):
            marker = " " if state == "closed" else "!"
            lines.append(f"  {marker} {shard:<16} {path:<9} {state}")

    # --- latency digests ----------------------------------------------
    digests = _series(snapshot, "repro_serve_latency_seconds")
    if digests:
        lines.append(bar)
        lines.append(
            f"{'workload/mode':<22} {'count':>8} {'p50':>9} {'p90':>9} "
            f"{'p99':>9} {'p99.9':>9}"
        )
        for s in digests:
            labels = s.get("labels", {})
            name = f"{labels.get('workload', '?')}/{labels.get('mode', '?')}"
            qs = s.get("quantiles", {})
            lines.append(
                f"{name:<22} {int(s.get('count', 0)):>8}"
                f" {_fmt_s(float(qs.get('0.5', 0.0))):>9}"
                f" {_fmt_s(float(qs.get('0.9', 0.0))):>9}"
                f" {_fmt_s(float(qs.get('0.99', 0.0))):>9}"
                f" {_fmt_s(float(qs.get('0.999', 0.0))):>9}"
            )

    # --- worker pool ---------------------------------------------------
    pool_depth = _series(snapshot, "repro_serve_pool_queue_depth")
    if pool_depth:
        cells = "   ".join(
            f"{s.get('labels', {}).get('shard', '?')}="
            f"{int(float(s.get('value', 0.0)))}"
            for s in sorted(
                pool_depth, key=lambda s: s.get("labels", {}).get("shard", "")
            )
        )
        lines.append(f"pool depth  {cells}")
    workers = (health or {}).get("workers") or []
    if workers:
        now_sweeps = _worker_sweeps(snapshot)
        prev_sweeps = _worker_sweeps(prev)
        lines.append(bar)
        lines.append(
            f"{'worker':<20} {'pid':>8} {'sweeps':>8} {'sweeps/s':>9} "
            f"{'restarts':>9}"
        )
        for row in workers:
            name = f"{row.get('shard', '?')}#{row.get('replica', '?')}"
            key = (str(row.get("shard", "?")), str(row.get("replica", "?")))
            if prev is not None and interval_s:
                delta = now_sweeps.get(key, float(row.get("sweeps", 0)))
                delta -= prev_sweeps.get(key, 0.0)
                rate = f"{max(delta, 0.0) / interval_s:>9.1f}"
            else:
                rate = f"{'—':>9}"
            state = "" if row.get("alive", True) else "  (down)"
            lines.append(
                f"{name:<20} {int(row.get('pid') or 0):>8} "
                f"{int(row.get('sweeps', 0)):>8} {rate} "
                f"{int(row.get('restarts', 0)):>9}{state}"
            )

    # --- health --------------------------------------------------------
    if health is not None:
        lines.append(bar)
        status = health.get("status", "?")
        shards = health.get("shards") or {}
        lines.append(f"health      {status}")
        for key, info in sorted(shards.items()):
            if "replicas" in info:  # pooled shard group: alive is a count
                lines.append(
                    f"  {key:<18} replicas {info.get('alive', 0)}/"
                    f"{info.get('replicas', 0)} up"
                )
                continue
            alive = "up" if info.get("alive") else "down"
            breaker = info.get("breaker", "?")
            lines.append(f"  {key:<18} worker {alive:<5} breaker {breaker}")
    return "\n".join(lines)
