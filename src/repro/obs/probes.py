"""Opt-in signal-level probes for the netlist simulators.

A :class:`SimProbe` attaches to a
:class:`~repro.hdl.simulator.CombinationalSimulator` or
:class:`~repro.hdl.simulator.SequentialSimulator` and records, per sweep:

* **word-level samples** of every watched bus (primary inputs, primary
  outputs — which include the converter's per-stage factorial-digit
  debug buses when the netlist is built with ``with_stage_probes=True``);
* **per-wire transition counts** across consecutive samples (toggle
  activity, the same quantity the power model integrates);
* **gate-evaluation totals** (logic evaluations × batch lanes), the
  simulator-side cost metric.

Sequential runs produce one sample per clock; combinational batch runs
produce one sample per lane (lane order is the "time" axis).  The sample
stream exports to a standard VCD via the existing
:class:`~repro.hdl.export.VCDWriter`, so traced runs open directly in
GTKWave or any other waveform viewer.

Probing is strictly opt-in: a simulator constructed without a probe has
exactly one ``is None`` check per sweep added to its hot path.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.hdl.export import VCDWriter
from repro.hdl.gates import Op
from repro.hdl.netlist import Bus, Netlist

__all__ = ["SimProbe", "trace_converter"]

_LEAF_OPS = (Op.INPUT, Op.REG, Op.CONST0, Op.CONST1)


def _lane(arr: np.ndarray, i: int) -> int:
    """Lane ``i`` of a possibly-broadcast (length-1) value vector."""
    return int(arr[0] if arr.shape[0] == 1 else arr[i])


class SimProbe:
    """Records watched-signal samples, transitions and evaluation counts.

    Parameters
    ----------
    netlist:
        The circuit being simulated (fixes widths and the wire universe).
    signals:
        Optional name → :class:`~repro.hdl.netlist.Bus` mapping to watch.
        Defaults to every primary input and output bus.
    track_wire_transitions:
        Also count per-wire toggles across **all** wires (lane-vectorised
        XOR per sweep).  Costs one NumPy op per wire per sweep; disable
        for long runs that only need the sample stream.
    """

    def __init__(
        self,
        netlist: Netlist,
        signals: Mapping[str, Bus] | None = None,
        track_wire_transitions: bool = True,
    ):
        self.netlist = netlist
        if signals is None:
            signals = {**netlist.inputs, **netlist.outputs}
        self.signals: dict[str, Bus] = dict(signals)
        if not self.signals:
            raise ValueError("nothing to watch: netlist has no named buses")
        self.track_wire_transitions = track_wire_transitions

        self.samples: list[dict[str, int]] = []
        self.sweeps = 0
        self.gate_evals = 0
        self.wire_transitions = np.zeros(len(netlist.gates), dtype=np.int64)
        self._prev_bits: list[np.ndarray | None] | None = None
        self._logic_gates = sum(
            1 for g in netlist.gates if g.op not in _LEAF_OPS
        )

    # ------------------------------------------------------------------ #
    # recording (called by the simulators)

    def record_sweep(self, values: Sequence[np.ndarray], batch: int) -> None:
        """Ingest one combinational sweep (``values[w]`` per wire)."""
        self.sweeps += 1
        self.gate_evals += self._logic_gates * batch

        for i in range(batch):
            sample: dict[str, int] = {}
            for name, bus in self.signals.items():
                word = 0
                for b, w in enumerate(bus):
                    word |= _lane(values[w], i) << b
                sample[name] = word
            self.samples.append(sample)

        if self.track_wire_transitions:
            prev = self._prev_bits
            cur: list[np.ndarray | None] = [None] * len(values)
            for w, arr in enumerate(values):
                if arr is None:
                    continue
                lanes = np.broadcast_to(arr, (batch,)) if arr.shape[0] == 1 else arr
                if batch > 1:
                    self.wire_transitions[w] += int(
                        np.count_nonzero(lanes[1:] ^ lanes[:-1])
                    )
                if prev is not None and prev[w] is not None:
                    self.wire_transitions[w] += int(bool(prev[w] ^ lanes[0]))
                cur[w] = lanes[-1]
            self._prev_bits = cur

    # ------------------------------------------------------------------ #
    # derived views

    @property
    def cycles(self) -> int:
        """Samples recorded (clocks for sequential runs, lanes otherwise)."""
        return len(self.samples)

    def signal_history(self, name: str) -> list[int]:
        """The watched signal's value at every recorded sample."""
        if name not in self.signals:
            raise KeyError(f"signal {name!r} is not watched")
        return [s[name] for s in self.samples]

    def stage_digits(self) -> dict[int, list[int]]:
        """Per-stage factorial-digit streams (``dbg_digit{t}`` signals).

        Present when the netlist was built with ``with_stage_probes=True``
        (see :meth:`IndexToPermutationConverter.build_netlist`).
        """
        out: dict[int, list[int]] = {}
        for name in self.signals:
            if name.startswith("dbg_digit"):
                out[int(name[len("dbg_digit"):])] = self.signal_history(name)
        return dict(sorted(out.items()))

    def toggle_total(self) -> int:
        """Total recorded wire transitions across the whole run."""
        return int(self.wire_transitions.sum())

    def summary(self) -> dict:
        """JSON-able roll-up (what the bench harness embeds)."""
        return {
            "sweeps": self.sweeps,
            "samples": self.cycles,
            "gate_evals": self.gate_evals,
            "logic_gates": self._logic_gates,
            "wire_toggles": self.toggle_total(),
            "watched_signals": sorted(self.signals),
        }

    # ------------------------------------------------------------------ #
    # VCD export

    def to_vcd(self, timescale: str = "1ns") -> str:
        """The sample stream as VCD text (loadable in GTKWave)."""
        if not self.samples:
            raise ValueError("no samples recorded")
        writer = VCDWriter(
            {name: bus.width for name, bus in self.signals.items()},
            timescale=timescale,
        )
        for sample in self.samples:
            writer.sample(sample)
        return writer.render()

    def write_vcd(self, path: str, timescale: str = "1ns") -> None:
        with open(path, "w") as fh:
            fh.write(self.to_vcd(timescale))


def trace_converter(
    n: int,
    indices: Sequence[int],
    vcd_path: str | None = None,
    pipelined: bool = True,
    tracer=None,
):
    """Run indices through the gate-level converter with probes attached.

    Returns ``(permutations, probe)`` where ``permutations`` is the
    ``(B, n)`` integer array the circuit produced and ``probe`` holds the
    sample stream (including per-stage factorial digits) ready for VCD
    export.  With ``vcd_path`` the trace is written out directly.
    """
    from repro.core.converter import IndexToPermutationConverter
    from repro.hdl.simulator import CombinationalSimulator, SequentialSimulator

    conv = IndexToPermutationConverter(n)
    nl = conv.build_netlist(pipelined=pipelined, with_stage_probes=True)
    probe = SimProbe(nl)
    idx = [int(i) for i in indices]

    span_ctx = tracer.span("simulate", n=n, pipelined=pipelined) if tracer else None
    if span_ctx is not None:
        span_ctx.__enter__()
    try:
        if pipelined:
            seq = SequentialSimulator(nl, batch=1, probe=probe)
            fill = conv.pipeline_register_stages
            rows = []
            for cycle, value in enumerate(idx + [0] * fill):
                outs = seq.step({"index": value})
                if cycle >= fill:
                    rows.append([int(outs[f"out{t}"][0]) for t in range(n)])
            perms = np.asarray(rows, dtype=np.int64)
        else:
            sim = CombinationalSimulator(nl, probe=probe)
            outs = sim.run({"index": idx})
            perms = np.empty((len(idx), n), dtype=np.int64)
            for t in range(n):
                perms[:, t] = [int(v) for v in outs[f"out{t}"]]
    finally:
        if span_ctx is not None:
            span_ctx.__exit__(None, None, None)

    if vcd_path is not None:
        probe.write_vcd(vcd_path)
        if tracer is not None and tracer.current is not None:
            tracer.current.event("vcd_written", path=vcd_path, cycles=probe.cycles)
    return perms, probe
