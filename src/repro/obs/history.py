"""Bench-history ledger + noise-aware perf-regression gate.

Every ``repro-bench/1`` report is a snapshot; this module gives the
repo a *trajectory*.  :func:`ingest_report` appends one line per report
to an append-only JSONL ledger — ``results/history/<name>.jsonl``, one
file per benchmark, one ``repro-bench-history/1`` entry per line, keyed
by git SHA — and :func:`regress` compares the newest entry against the
trailing window of its predecessors, flagging metrics that moved past a
noise-aware threshold.

Ledger entry (``repro-bench-history/1``)
----------------------------------------
::

    {
      "schema": "repro-bench-history/1",   # required, exact
      "name": "serving_latency",           # benchmark name, [a-z0-9_]+
      "git_sha": "36ccb92…",               # required (or "unknown")
      "recorded_at": "2026-08-08T12:00:00Z",
      "smoke": false,                      # CI smoke runs are marked …
      "metrics": {"timing_mean_s": 1.2e-5, # flat name → float
                  "data.batched_ns": 9800.0}
    }

Smoke-mode entries (thresholds relaxed, tiny workloads) are recorded
with ``smoke: true`` and only ever compared against other smoke entries
— a fast CI run must not drag the full-run baseline around.

Regression semantics
--------------------
For each metric of the newest entry, the baseline is the trailing
window (default 5) of same-``smoke`` predecessors.  The tolerance is
``max(rel_tol · |median|, z · stddev)`` — whichever is larger, so a
noisy metric gets the statistical allowance and a rock-stable one the
relative floor.  Direction is inferred from the metric name
(:func:`metric_direction`): ``…_s``/``…_seconds``/``…_ns`` regress
*upward*, ``…_per_s``/``…_speedup``/``…x`` regress *downward*; metrics
with no inferable direction — or fewer than ``min_history`` baseline
points — are reported as skipped, never failed.  That makes the gate
safe to turn on against a freshly seeded ledger: the first runs skip,
the trajectory accumulates, the gate tightens by itself.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import time
from typing import Iterable

__all__ = [
    "HISTORY_SCHEMA",
    "extract_metrics",
    "metric_direction",
    "current_git_sha",
    "ingest_report",
    "load_history",
    "ledger_names",
    "validate_history_entry",
    "regress",
    "render_regress_report",
]

HISTORY_SCHEMA = "repro-bench-history/1"

#: Most metrics a single report may contribute (flattening guard).
_MAX_METRICS = 64

#: Suffix → direction tables for :func:`metric_direction`.  The longest
#: matching suffix across both tables wins, so ``_per_s`` (higher is
#: better) beats the bare ``_s`` latency suffix and ``_overhead_x``
#: (lower) beats the generic ``_x`` speedup suffix.  ``lower`` means "a
#: bigger value is worse".
_LOWER_BETTER_SUFFIXES = (
    "_s",
    "_ns",
    "_us",
    "_ms",
    "_seconds",
    "_bytes",
    "_pct",
    "_stddev",
    "_overhead_x",
)
_HIGHER_BETTER_SUFFIXES = (
    "_per_s",
    "_per_sec",
    "_throughput",
    "_speedup",
    "_ratio",
    "_coverage",
    "_x",
)


def metric_direction(name: str) -> str | None:
    """``"lower"`` / ``"higher"`` (better) by longest-suffix match, else ``None``."""
    best_len = 0
    best: str | None = None
    for suffix in _LOWER_BETTER_SUFFIXES:
        if name.endswith(suffix) and len(suffix) > best_len:
            best_len, best = len(suffix), "lower"
    for suffix in _HIGHER_BETTER_SUFFIXES:
        if name.endswith(suffix) and len(suffix) > best_len:
            best_len, best = len(suffix), "higher"
    return best


# --------------------------------------------------------------------- #
# report → flat metrics


def _flatten(prefix: str, value: object, out: dict[str, float]) -> None:
    if len(out) >= _MAX_METRICS:
        return
    if isinstance(value, bool):  # bools are ints; never a perf metric
        return
    if isinstance(value, (int, float)):
        out[prefix] = float(value)
        return
    if isinstance(value, dict):
        for k in sorted(value):
            _flatten(f"{prefix}.{k}" if prefix else str(k), value[k], out)


def extract_metrics(report: dict) -> dict[str, float]:
    """The flat numeric metrics of one ``repro-bench/1`` report.

    Timing statistics become ``timing_<stat>_s``; numeric scalars under
    ``data`` keep their dotted path (``data.batched_ns``).  Histogram
    arrays and non-numeric leaves are ignored.
    """
    out: dict[str, float] = {}
    timing = report.get("timing")
    if isinstance(timing, dict):
        unit = timing.get("unit", "s")
        for stat in ("min", "max", "mean", "median", "stddev"):
            v = timing.get(stat)
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                out[f"timing_{stat}_{unit}"] = float(v)
    data = report.get("data")
    if isinstance(data, dict):
        _flatten("data", data, out)
    return out


# --------------------------------------------------------------------- #
# ledger I/O


def current_git_sha(repo_dir: str | pathlib.Path | None = None) -> str:
    """The current commit SHA, or ``"unknown"`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_dir) if repo_dir is not None else None,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def _ledger_path(history_dir: str | pathlib.Path, name: str) -> pathlib.Path:
    return pathlib.Path(history_dir) / f"{name}.jsonl"


def ingest_report(
    report: dict,
    history_dir: str | pathlib.Path,
    *,
    git_sha: str | None = None,
    smoke: bool = False,
) -> dict | None:
    """Append one ledger entry for ``report``; returns it (or ``None``).

    Idempotent per ``(git_sha, smoke)``: re-running CI on the same
    commit must not stack duplicate entries and shrink the effective
    baseline window to one commit's noise.  Returns ``None`` when the
    entry was skipped as a duplicate.
    """
    name = report.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError("report has no name; validate it first")
    sha = git_sha if git_sha is not None else current_git_sha()
    entry = {
        "schema": HISTORY_SCHEMA,
        "name": name,
        "git_sha": sha,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "smoke": bool(smoke),
        "metrics": extract_metrics(report),
    }
    validate_history_entry(entry)
    path = _ledger_path(history_dir, name)
    path.parent.mkdir(parents=True, exist_ok=True)
    if sha != "unknown" and path.exists():
        for prior in load_history(history_dir, name):
            if prior["git_sha"] == sha and prior["smoke"] == bool(smoke):
                return None
    with path.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(history_dir: str | pathlib.Path, name: str) -> list[dict]:
    """Every (validated) ledger entry for ``name``, oldest first."""
    path = _ledger_path(history_dir, name)
    if not path.exists():
        return []
    entries = []
    for i, line in enumerate(path.read_text().splitlines()):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{i + 1}: not JSON: {exc}") from exc
        validate_history_entry(entry, where=f"{path}:{i + 1}")
        entries.append(entry)
    return entries


def ledger_names(history_dir: str | pathlib.Path) -> list[str]:
    """Benchmark names with a ledger file, sorted."""
    root = pathlib.Path(history_dir)
    if not root.is_dir():
        return []
    return sorted(p.stem for p in root.glob("*.jsonl"))


def validate_history_entry(entry: object, where: str = "entry") -> None:
    """Raise :class:`ValueError` unless ``entry`` fits the schema."""
    problems = []
    if not isinstance(entry, dict):
        raise ValueError(f"{where}: must be a JSON object")
    if entry.get("schema") != HISTORY_SCHEMA:
        problems.append(
            f"schema must be {HISTORY_SCHEMA!r}, got {entry.get('schema')!r}"
        )
    if not isinstance(entry.get("name"), str) or not entry.get("name"):
        problems.append("name must be a non-empty string")
    if not isinstance(entry.get("git_sha"), str) or not entry.get("git_sha"):
        problems.append("git_sha must be a non-empty string")
    if not isinstance(entry.get("smoke"), bool):
        problems.append("smoke must be a boolean")
    metrics = entry.get("metrics")
    if not isinstance(metrics, dict) or not all(
        isinstance(k, str)
        and isinstance(v, (int, float))
        and not isinstance(v, bool)
        for k, v in metrics.items()
    ):
        problems.append("metrics must map string names to numbers")
    if problems:
        raise ValueError(f"{where}: " + "; ".join(problems))


# --------------------------------------------------------------------- #
# the regression gate


def _median(xs: list[float]) -> float:
    ys = sorted(xs)
    n = len(ys)
    return ys[n // 2] if n % 2 else (ys[n // 2 - 1] + ys[n // 2]) / 2


def _stddev(xs: list[float]) -> float:
    n = len(xs)
    if n < 2:
        return 0.0
    mean = sum(xs) / n
    return (sum((x - mean) ** 2 for x in xs) / (n - 1)) ** 0.5


def regress(
    history_dir: str | pathlib.Path,
    *,
    names: Iterable[str] | None = None,
    window: int = 5,
    rel_tol: float = 0.10,
    z: float = 3.0,
    min_history: int = 2,
    smoke: bool = False,
) -> dict:
    """Compare each ledger's newest entry against its trailing window.

    Returns ``{"ok", "checked", "regressions", "improvements",
    "skipped"}``; ``ok`` is ``False`` iff any metric regressed.  Only
    entries whose ``smoke`` flag matches are compared (smoke CI runs
    measure relaxed workloads).  See the module docstring for the
    threshold and direction rules.
    """
    todo = list(names) if names is not None else ledger_names(history_dir)
    regressions: list[dict] = []
    improvements: list[dict] = []
    skipped: list[dict] = []
    checked = 0
    for name in todo:
        entries = [
            e for e in load_history(history_dir, name) if e["smoke"] == smoke
        ]
        if not entries:
            skipped.append({"name": name, "reason": "no matching entries"})
            continue
        candidate = entries[-1]
        baseline = entries[:-1][-window:]
        for metric, value in sorted(candidate["metrics"].items()):
            direction = metric_direction(metric)
            if direction is None:
                skipped.append(
                    {"name": name, "metric": metric, "reason": "no direction"}
                )
                continue
            series = [
                e["metrics"][metric]
                for e in baseline
                if isinstance(e["metrics"].get(metric), (int, float))
            ]
            if len(series) < min_history:
                skipped.append(
                    {
                        "name": name,
                        "metric": metric,
                        "reason": f"history {len(series)} < {min_history}",
                    }
                )
                continue
            checked += 1
            center = _median(series)
            tolerance = max(rel_tol * abs(center), z * _stddev(series))
            delta = value - center
            row = {
                "name": name,
                "metric": metric,
                "value": value,
                "baseline_median": center,
                "tolerance": tolerance,
                "delta": delta,
                "direction": direction,
                "git_sha": candidate["git_sha"],
                "window": len(series),
            }
            worse = delta > tolerance if direction == "lower" else -delta > tolerance
            better = -delta > tolerance if direction == "lower" else delta > tolerance
            if worse:
                regressions.append(row)
            elif better:
                improvements.append(row)
    return {
        "ok": not regressions,
        "checked": checked,
        "regressions": regressions,
        "improvements": improvements,
        "skipped": skipped,
    }


def render_regress_report(result: dict) -> str:
    """Human-readable summary of a :func:`regress` result."""
    lines = []
    for row in result["regressions"]:
        lines.append(
            f"REGRESSION {row['name']}.{row['metric']}: "
            f"{row['value']:.6g} vs baseline {row['baseline_median']:.6g} "
            f"(Δ {row['delta']:+.3g}, tol ±{row['tolerance']:.3g}, "
            f"n={row['window']}, {row['direction']}-is-better)"
        )
    for row in result["improvements"]:
        lines.append(
            f"improved   {row['name']}.{row['metric']}: "
            f"{row['value']:.6g} vs baseline {row['baseline_median']:.6g} "
            f"(Δ {row['delta']:+.3g})"
        )
    lines.append(
        f"{'PASS' if result['ok'] else 'FAIL'}: "
        f"{result['checked']} metric(s) checked, "
        f"{len(result['regressions'])} regressed, "
        f"{len(result['improvements'])} improved, "
        f"{len(result['skipped'])} skipped"
    )
    return "\n".join(lines)
