"""Metrics registry: labelled counters, gauges and fixed-bucket histograms.

Design goals, in priority order:

1. **Near-zero overhead when disabled.**  The global :data:`REGISTRY`
   starts disabled; every mutating call (``inc``/``set``/``observe``)
   short-circuits on one attribute load and a branch, and ``labels(...)``
   returns a shared no-op handle without allocating a series.  Call sites
   on genuinely hot loops should additionally instrument at batch
   granularity (one ``inc(n)`` per loop, not per element) — the
   benchmark harness measures and records the residual cost
   (:func:`repro.obs.bench.measure_disabled_metrics_overhead`).
2. **Bounded cardinality.**  Each metric tracks at most ``max_series``
   distinct label sets; overflow collapses into a reserved
   ``__overflow__`` series instead of growing without bound — a
   misbehaving label (say, a raw index) degrades resolution, never
   memory.
3. **Standard exposition.**  :meth:`MetricsRegistry.render_exposition`
   emits the Prometheus text format (``# HELP``/``# TYPE``, cumulative
   ``_bucket{le=...}`` histogram series); :meth:`MetricsRegistry.snapshot`
   returns the same data as plain JSON-able dicts.

Metric registration is idempotent: ``registry.counter(name, ...)``
returns the existing metric when the name is already registered (and
raises if the kind or label names differ), so module-level handles work
across repeated CLI invocations in one process.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import NoReturn, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Digest",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "FAST_LATENCY_BUCKETS",
    "OVERFLOW_LABEL",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Label value that absorbs series beyond a metric's cardinality budget.
OVERFLOW_LABEL = "__overflow__"

#: Prometheus' default duration buckets (seconds).
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets for sub-millisecond paths (seconds).  The default buckets
#: start at 5 ms, which puts an entire in-process serving request — a
#: few microseconds of queueing plus one compiled sweep — in the first
#: bucket and erases the latency distribution.  These extend three
#: decades further down (1 µs .. 100 ms) for per-stage serving
#: histograms and similar hot-path timings.
FAST_LATENCY_BUCKETS = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1,
)


class _NoopHandle:
    """Returned by ``labels()`` on a disabled registry: absorbs updates."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_n(self, value: float, n: int) -> None:
        pass

    def observe_many(self, values) -> None:
        pass


_NOOP = _NoopHandle()


class _CounterHandle:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class _GaugeHandle:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _HistogramHandle:
    __slots__ = ("edges", "counts", "sum", "count")

    def __init__(self, edges: tuple[float, ...]) -> None:
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        v = float(value)
        self.counts[bisect_left(self.edges, v)] += 1
        self.sum += v
        self.count += 1

    def observe_n(self, value: float, n: int) -> None:
        """``n`` identical observations in one call.

        The batch-granularity seam: a 63-lane sweep has one sweep
        duration shared by every response, so the serving loop records
        it once per batch instead of once per lane.
        """
        v = float(value)
        self.counts[bisect_left(self.edges, v)] += n
        self.sum += v * n
        self.count += n

    def observe_many(self, values) -> None:
        """A batch of distinct observations with one method dispatch."""
        counts, edges = self.counts, self.edges
        total = 0.0
        n = 0
        for value in values:
            v = float(value)
            counts[bisect_left(edges, v)] += 1
            total += v
            n += 1
        self.sum += total
        self.count += n

    def cumulative(self) -> list[int]:
        out, acc = [], 0
        for c in self.counts:
            acc += c
            out.append(acc)
        return out


class Metric:
    """Base class: series management and cardinality control.

    **Cardinality bound.**  A metric holds at most ``max_series``
    distinct label sets — the per-metric override passed at
    registration, or the registry-wide default
    (:attr:`MetricsRegistry.max_series`, 256).  The ``max_series + 1``-th
    distinct label set does *not* allocate: the observation is routed to
    the single reserved :data:`OVERFLOW_LABEL` series (one extra series,
    created on first overflow), so an unbounded label value — a shard
    key per ``n``, a raw request index — degrades that metric to "and
    everything else" resolution but can never grow memory past
    ``max_series + 1`` series.  The serving tier's per-(workload, shard,
    rung) labels are sized well inside the default; the bound is the
    backstop for the labels nobody predicted.
    """

    kind = "untyped"
    _handle_cls: type = _CounterHandle

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        max_series: int | None = None,
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for ln in labelnames:
            if not _LABEL_RE.match(ln):
                raise ValueError(f"invalid label name {ln!r}")
        if max_series is not None and max_series < 1:
            raise ValueError("max_series must be positive")
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.max_series = max_series
        self._series: dict[tuple[str, ...], object] = {}

    # ------------------------------------------------------------------ #

    def _new_handle(self):
        return self._handle_cls()

    @property
    def _series_budget(self) -> int:
        return (
            self.max_series
            if self.max_series is not None
            else self._registry.max_series
        )

    def _bad_labels(self, labels: dict) -> NoReturn:
        raise ValueError(
            f"{self.name} expects labels {self.labelnames}, "
            f"got {tuple(sorted(labels))}"
        )

    def labels(self, **labels: object):
        """The handle for one label set (no-op handle when disabled).

        Beyond the metric's cardinality budget (see the class docstring)
        new label sets collapse into the reserved
        :data:`OVERFLOW_LABEL` series instead of allocating.
        """
        if not self._registry.enabled:
            return _NOOP
        # Validation is a length check + KeyError fallback rather than
        # set equality: labels() sits on the serving hot path and two
        # throwaway set() builds per call cost more than the lookup.
        names = self.labelnames
        nlabels = len(names)
        if len(labels) != nlabels:
            self._bad_labels(labels)
        try:
            # unrolled for the 1- and 2-label shapes every serving
            # metric uses: a genexpr-into-tuple costs a generator frame
            if nlabels == 1:
                key = (str(labels[names[0]]),)
            elif nlabels == 2:
                key = (str(labels[names[0]]), str(labels[names[1]]))
            else:
                key = tuple(str(labels[ln]) for ln in names)
        except KeyError:
            self._bad_labels(labels)
        handle = self._series.get(key)
        if handle is None:
            with self._registry._lock:
                handle = self._series.get(key)
                if handle is None:
                    if len(self._series) >= self._series_budget:
                        key = (OVERFLOW_LABEL,) * len(self.labelnames)
                        handle = self._series.get(key)
                        if handle is None:
                            handle = self._new_handle()
                            self._series[key] = handle
                    else:
                        handle = self._new_handle()
                        self._series[key] = handle
        return handle

    def _default_handle(self):
        """The unlabelled series (metrics declared without label names)."""
        if self.labelnames:
            raise ValueError(f"{self.name} requires labels {self.labelnames}")
        handle = self._series.get(())
        if handle is None:
            with self._registry._lock:
                handle = self._series.setdefault((), self._new_handle())
        return handle

    @property
    def series_count(self) -> int:
        return len(self._series)

    def reset(self) -> None:
        self._series.clear()


class Counter(Metric):
    kind = "counter"
    _handle_cls = _CounterHandle

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._registry.enabled:
            return
        if labels or self.labelnames:
            self.labels(**labels).inc(amount)
        else:
            self._default_handle().inc(amount)


class Gauge(Metric):
    kind = "gauge"
    _handle_cls = _GaugeHandle

    def set(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        if labels or self.labelnames:
            self.labels(**labels).set(value)
        else:
            self._default_handle().set(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._registry.enabled:
            return
        if labels or self.labelnames:
            self.labels(**labels).inc(amount)
        else:
            self._default_handle().inc(amount)

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def set_enum(
        self, active: str, states: Sequence[str], **labels: object
    ) -> None:
        """Record a state machine as the Prometheus enum-gauge pattern.

        One series per state via a ``state`` label (which must be one of
        the gauge's label names): the active state's series is set to 1,
        every other to 0.  Scrapes therefore always see exactly one
        series at 1 — e.g. a circuit breaker's closed/open/half-open —
        and transitions are visible as level changes, not lost samples.
        ``active`` must be a member of ``states``.
        """
        if not self._registry.enabled:
            return
        if active not in states:
            raise ValueError(f"state {active!r} not in {tuple(states)}")
        for s in states:
            self.labels(state=s, **labels).set(1.0 if s == active else 0.0)


class Histogram(Metric):
    kind = "histogram"

    def __init__(
        self,
        registry,
        name,
        help,
        labelnames=(),
        max_series=None,
        buckets=DEFAULT_BUCKETS,
    ):
        super().__init__(registry, name, help, labelnames, max_series)
        edges = tuple(sorted(float(b) for b in buckets))
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if len(set(edges)) != len(edges):
            raise ValueError("duplicate bucket edges")
        self.buckets = edges

    def _new_handle(self):
        return _HistogramHandle(self.buckets)

    def observe(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        if labels or self.labelnames:
            self.labels(**labels).observe(value)
        else:
            self._default_handle().observe(value)


class Digest(Metric):
    """A labelled family of mergeable HDR-style latency digests.

    Each series handle is a :class:`repro.obs.digests.LatencyDigest` —
    log-bucketed, so tail quantiles (p99.9) keep ~±2% relative accuracy
    without hand-picked edges, unlike the fixed-bucket
    :class:`Histogram`.  Exposed in the Prometheus *summary* idiom:
    ``name{quantile="0.5"}`` series per configured quantile plus
    ``name_sum``/``name_count``.  Handles merge across workers via
    :meth:`~repro.obs.digests.LatencyDigest.merge`; :meth:`merge_in`
    folds an exported digest dict into one series, which is how
    map-reduce parents absorb worker-side sketches.
    """

    kind = "summary"

    def __init__(
        self,
        registry,
        name,
        help,
        labelnames=(),
        max_series=None,
        quantiles=None,
    ):
        from repro.obs.digests import DIGEST_QUANTILES

        super().__init__(registry, name, help, labelnames, max_series)
        self.quantiles = tuple(quantiles) if quantiles is not None else DIGEST_QUANTILES

    def _new_handle(self):
        from repro.obs.digests import LatencyDigest

        return LatencyDigest()

    def observe(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        if labels or self.labelnames:
            self.labels(**labels).observe(value)
        else:
            self._default_handle().observe(value)

    def merge_in(self, exported: dict, **labels: object) -> None:
        """Fold a worker-exported digest dict into one series."""
        from repro.obs.digests import LatencyDigest

        if not self._registry.enabled:
            return
        handle = self.labels(**labels) if (labels or self.labelnames) else self._default_handle()
        if handle is _NOOP:
            return
        handle.merge(LatencyDigest.from_dict(exported))


def _escape_label_value(v: str) -> str:
    return v.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _fmt_labels(labelnames: tuple[str, ...], key: tuple[str, ...], extra: str = "") -> str:
    parts = [
        f'{ln}="{_escape_label_value(lv)}"' for ln, lv in zip(labelnames, key)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt_value(v: float) -> str:
    return repr(int(v)) if float(v).is_integer() else repr(float(v))


class MetricsRegistry:
    """A namespace of metrics with a global enable switch.

    The registry starts **disabled**; :meth:`enable` turns recording on.
    Registration works either way (handles are cheap), so modules can
    declare their metrics at import time.
    """

    def __init__(self, enabled: bool = False, max_series: int = 256):
        #: Plain attribute, not a property: guard sites read it on hot
        #: paths (`if REGISTRY.enabled:`), and a descriptor call would
        #: triple the cost of the disabled branch.
        self.enabled = enabled
        self.max_series = max_series
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # switch

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # ------------------------------------------------------------------ #
    # registration (idempotent)

    def _register(self, cls: type, name: str, help: str, labelnames, **kw):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(self, name, help, labelnames, **kw)
            self._metrics[name] = metric
            return metric

    def counter(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_series: int | None = None,
    ) -> Counter:
        return self._register(Counter, name, help, labelnames, max_series=max_series)

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_series: int | None = None,
    ) -> Gauge:
        return self._register(Gauge, name, help, labelnames, max_series=max_series)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        max_series: int | None = None,
    ) -> Histogram:
        return self._register(
            Histogram, name, help, labelnames, max_series=max_series, buckets=buckets
        )

    def digest(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        quantiles: Sequence[float] | None = None,
        max_series: int | None = None,
    ) -> Digest:
        return self._register(
            Digest, name, help, labelnames, max_series=max_series, quantiles=quantiles
        )

    def reset(self) -> None:
        """Zero every series; registrations survive."""
        with self._lock:
            for m in self._metrics.values():
                m.reset()

    # ------------------------------------------------------------------ #
    # export

    def render_exposition(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        out: list[str] = []
        for name in sorted(self._metrics):
            m = self._metrics[name]
            if not m._series:
                continue
            if m.help:
                out.append(f"# HELP {name} {m.help}")
            out.append(f"# TYPE {name} {m.kind}")
            for key in sorted(m._series):
                h = m._series[key]
                if isinstance(h, _HistogramHandle):
                    cum = h.cumulative()
                    for edge, c in zip(m.buckets, cum):
                        lbl = _fmt_labels(m.labelnames, key, f'le="{edge}"')
                        out.append(f"{name}_bucket{lbl} {c}")
                    lbl = _fmt_labels(m.labelnames, key, 'le="+Inf"')
                    out.append(f"{name}_bucket{lbl} {h.count}")
                    plain = _fmt_labels(m.labelnames, key)
                    out.append(f"{name}_sum{plain} {_fmt_value(h.sum)}")
                    out.append(f"{name}_count{plain} {h.count}")
                elif m.kind == "summary":
                    for q in m.quantiles:
                        lbl = _fmt_labels(m.labelnames, key, f'quantile="{q}"')
                        out.append(f"{name}{lbl} {repr(h.quantile(q))}")
                    plain = _fmt_labels(m.labelnames, key)
                    out.append(f"{name}_sum{plain} {_fmt_value(h.sum)}")
                    out.append(f"{name}_count{plain} {h.count}")
                else:
                    lbl = _fmt_labels(m.labelnames, key)
                    out.append(f"{name}{lbl} {_fmt_value(h.value)}")
        return "\n".join(out) + ("\n" if out else "")

    def snapshot(self) -> dict:
        """JSON-able dump of every live series."""
        metrics = []
        for name in sorted(self._metrics):
            m = self._metrics[name]
            series = []
            for key in sorted(m._series):
                h = m._series[key]
                labels = dict(zip(m.labelnames, key))
                if isinstance(h, _HistogramHandle):
                    series.append(
                        {
                            "labels": labels,
                            "buckets": list(h.edges),
                            "counts": list(h.counts),
                            "sum": h.sum,
                            "count": h.count,
                        }
                    )
                elif m.kind == "summary":
                    series.append(
                        {
                            "labels": labels,
                            "quantiles": {
                                str(q): h.quantile(q) for q in m.quantiles
                            },
                            "sum": h.sum,
                            "count": h.count,
                        }
                    )
                else:
                    series.append({"labels": labels, "value": h.value})
            if series:
                metrics.append(
                    {"name": name, "kind": m.kind, "help": m.help, "series": series}
                )
        return {"metrics": metrics}


#: The process-wide default registry (disabled until someone opts in,
#: e.g. via the CLI's ``--metrics`` flag).
REGISTRY = MetricsRegistry()
