"""Trace sampling: samplers, trace/span identifiers, the span ring.

Production tracing cannot afford a span tree per request — at the
serving layer's ~10 µs/request a full trace would dominate the hot path
and fill memory in seconds.  This module supplies the three pieces that
turn the span API of :mod:`repro.obs.tracing` into *sampled* distributed
tracing:

* **Samplers** — the head-sampling decision seam.  A sampler is asked
  once per trace *root*; every descendant span inherits the decision
  (consistent sampling: a trace is recorded whole or not at all).
  :class:`ProbabilisticSampler` keeps a seeded fraction of traces,
  :class:`RateLimitedSampler` caps traces per second on the monotonic
  clock (token bucket, clock-seam injectable for tests), and the
  :class:`AlwaysSampler`/:class:`NeverSampler` constants cover the
  debug/off ends.
* **Identifiers** — :func:`new_trace_id` / :func:`new_span_id` mint
  W3C-trace-context-sized hex ids (128/64 bit) from a per-process
  generator seeded from ``os.urandom`` (reseeded after fork), so ids
  minted on different threads, workers or hosts never collide in
  practice and a request can be followed across process boundaries by
  grepping one string.
* **SpanRing** — a bounded in-memory ring of finished root-span exports.
  The exposition endpoint serves it at ``/traces``; :meth:`SpanRing.dump`
  writes a JSON document validated by :func:`validate_trace_dump`.  The
  ring drops the *oldest* trace on overflow — recent traces are the ones
  an operator is debugging — and counts what it dropped.

Nothing here imports the serving layer: samplers and rings are plain
obs primitives that any subsystem (serving, campaigns, map-reduce) can
attach to a :class:`~repro.obs.tracing.Tracer`.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import threading
import time
from collections import deque
from typing import Iterable

__all__ = [
    "Sampler",
    "AlwaysSampler",
    "NeverSampler",
    "ProbabilisticSampler",
    "RateLimitedSampler",
    "new_trace_id",
    "new_span_id",
    "SpanRing",
    "TRACE_DUMP_SCHEMA",
    "validate_trace_dump",
]

# Injectable clock seam (monotonic), mirroring parallel.sharding.
_monotonic = time.monotonic

#: Schema tag for :meth:`SpanRing.dump` documents.
TRACE_DUMP_SCHEMA = "repro-traces/1"


# Id minting draws from a process-local Mersenne generator seeded once
# from the OS entropy pool, not from os.urandom per id: a sampled
# 63-lane batch mints 64+ span ids back to back and the urandom syscall
# was the single largest line in that bill.  getrandbits is one C call
# under the GIL, so concurrent minting threads stay safe; forked
# children reseed on first use (pid check) so two workers never replay
# the same id stream.
_id_rand = random.Random(os.urandom(16))
_id_pid = os.getpid()


def _id_bits(bits: int) -> int:
    global _id_rand, _id_pid
    pid = os.getpid()
    if pid != _id_pid:
        _id_rand = random.Random(os.urandom(16))
        _id_pid = pid
    return _id_rand.getrandbits(bits)


def new_trace_id() -> str:
    """A 128-bit hex trace id (W3C trace-context sized)."""
    return f"{_id_bits(128):032x}"


def new_span_id() -> str:
    """A 64-bit hex span id."""
    return f"{_id_bits(64):016x}"


class Sampler:
    """Head-sampling decision seam: asked once per trace root.

    Subclasses override :meth:`sample`.  The base class records the
    decision tally so dashboards can report the effective sampling rate
    (``sampled / decisions``) without a separate counter.
    """

    def __init__(self) -> None:
        self.decisions = 0
        self.sampled = 0

    def sample(self, name: str) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, name: str) -> bool:
        self.decisions += 1
        if self.sample(name):
            self.sampled += 1
            return True
        return False


class AlwaysSampler(Sampler):
    """Record every trace (the pre-sampling behaviour; debugging)."""

    def sample(self, name: str) -> bool:
        return True


class NeverSampler(Sampler):
    """Record no traces (spans still time, nothing is exported)."""

    def sample(self, name: str) -> bool:
        return False


class ProbabilisticSampler(Sampler):
    """Keep a seeded pseudo-random fraction of traces.

    The stream is a seeded ``random.Random`` — two services configured
    with the same ``(rate, seed)`` make the same decisions in the same
    order, which is what makes sampled-trace tests deterministic.
    """

    def __init__(self, rate: float, seed: int = 0):
        super().__init__()
        if not (0.0 <= rate <= 1.0):
            raise ValueError(f"sampling rate must be in [0, 1], got {rate}")
        import random

        self.rate = rate
        self._rng = random.Random(seed)

    def sample(self, name: str) -> bool:
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        return self._rng.random() < self.rate


class RateLimitedSampler(Sampler):
    """Cap sampled traces per second (token bucket, monotonic clock).

    Admits at most ``max_per_s`` traces per second with a burst budget of
    ``burst`` tokens, so a quiet service still records its first few
    requests after an idle period while a storm cannot flood the ring.
    All clock reads go through the module seam ``_monotonic`` — tests
    drive it directly.
    """

    def __init__(self, max_per_s: float, burst: int | None = None):
        super().__init__()
        if max_per_s <= 0:
            raise ValueError("max_per_s must be positive")
        self.max_per_s = float(max_per_s)
        self.burst = float(burst if burst is not None else max(1.0, max_per_s))
        self._tokens = self.burst
        self._last = _monotonic()
        self._lock = threading.Lock()

    def sample(self, name: str) -> bool:
        with self._lock:
            now = _monotonic()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.max_per_s
            )
            self._last = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


class SpanRing:
    """Bounded ring of finished root-span exports (newest kept).

    ``record`` takes a span *export* (the plain dict from
    :meth:`~repro.obs.tracing.Span.export`) so the ring never pins live
    span objects, and a ring snapshot is already JSON-ready.  Overflow
    evicts the oldest trace and increments ``dropped``.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.dropped = 0
        self.recorded = 0
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._ring)

    def record(self, span_export: dict) -> None:
        with self._lock:
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(span_export)
            self.recorded += 1

    def snapshot(self) -> list[dict]:
        """The ring's traces, oldest first (a copy; safe to serialise)."""
        with self._lock:
            return list(self._ring)

    def dump(self, path: str | pathlib.Path | None = None) -> dict:
        """The ring as a ``repro-traces/1`` document (optionally written)."""
        doc = {
            "schema": TRACE_DUMP_SCHEMA,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "traces": self.snapshot(),
        }
        if path is not None:
            pathlib.Path(path).write_text(
                json.dumps(doc, indent=1, sort_keys=True) + "\n"
            )
        return doc


# --------------------------------------------------------------------- #
# trace-dump validation (CI gate for dumped traces)


def _walk_spans(span: dict) -> Iterable[dict]:
    yield span
    for child in span.get("children", ()):
        yield from _walk_spans(child)


def validate_trace_dump(doc: object) -> None:
    """Raise :class:`ValueError` unless ``doc`` is a valid trace dump.

    Checks the schema tag, that every span carries ``name``/``span_id``,
    that children share their root's ``trace_id``, and that every
    child's ``parent_id`` is its structural parent's ``span_id`` — the
    invariant the failover-trace tests rely on.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        raise ValueError("trace dump must be a JSON object")
    if doc.get("schema") != TRACE_DUMP_SCHEMA:
        problems.append(
            f"schema must be {TRACE_DUMP_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    traces = doc.get("traces")
    if not isinstance(traces, list):
        problems.append("traces must be an array")
        traces = []
    for i, root in enumerate(traces):
        if not isinstance(root, dict):
            problems.append(f"traces[{i}] must be an object")
            continue
        trace_id = root.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            problems.append(f"traces[{i}] missing trace_id")
            continue
        for span in _walk_spans(root):
            if not isinstance(span.get("name"), str):
                problems.append(f"traces[{i}]: span without a name")
            if not isinstance(span.get("span_id"), str):
                problems.append(f"traces[{i}]: span {span.get('name')!r} missing span_id")
            if span.get("trace_id") != trace_id:
                problems.append(
                    f"traces[{i}]: span {span.get('name')!r} trace_id "
                    f"{span.get('trace_id')!r} != root {trace_id!r}"
                )
            for child in span.get("children", ()):
                if isinstance(child, dict) and child.get("parent_id") != span.get(
                    "span_id"
                ):
                    problems.append(
                        f"traces[{i}]: child {child.get('name')!r} parent_id "
                        f"{child.get('parent_id')!r} != parent span_id "
                        f"{span.get('span_id')!r}"
                    )
    if problems:
        raise ValueError("; ".join(problems))
