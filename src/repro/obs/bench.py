"""Benchmark telemetry harness: versioned, machine-readable results.

Every ``benchmarks/bench_*.py`` module routes its artefacts through
:func:`emit_report`, which writes ``results/<name>.json`` next to the
human-readable ``results/<name>.txt``.  The JSON is the *perf
trajectory*: schema-versioned, stamped with an environment fingerprint,
and carrying the benchmark's structured data plus iteration statistics
(pytest-benchmark stats when available, or :func:`measure` samples with
histogram summaries).

Schema (``repro-bench/1``)
--------------------------
Top-level object::

    {
      "schema": "repro-bench/1",          # required, exact
      "name": "table2_speedup",           # required, [a-z0-9_]+
      "environment": {                    # required
        "python": "3.11.9",               # required
        "platform": "Linux-...",          # required
        "cpu_count": 8,                   # required, int
        "numpy": "2.4.6",                 # required
        ...                               # extra keys allowed
      },
      "data": { ... },                    # required, benchmark-specific
      "timing": {                         # optional
        "unit": "s" | "ns",
        "min": 1.2e-05, "max": ..., "mean": ..., "median": ...,
        "stddev": ..., "rounds": 5,
        "histogram": {                    # optional
          "edges": [e0, e1, ...],         # ascending
          "counts": [c0, ..., c_k]        # len == len(edges) + 1 (+Inf)
        }
      },
      "text_report": "results/<name>.txt" # optional pointer
    }

:func:`validate_report` enforces exactly this; ``python -m
repro.obs.bench validate results/*.json`` is the CI entry point.  The
schema is intentionally dependency-free (no jsonschema import) so it
runs anywhere the package runs.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import platform
import re
import sys
import time
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "SCHEMA",
    "BenchReportError",
    "environment_fingerprint",
    "iteration_stats",
    "measure",
    "timing_from_benchmark",
    "emit_report",
    "validate_report",
    "load_and_validate",
    "measure_disabled_metrics_overhead",
    "main",
]

SCHEMA = "repro-bench/1"

_NAME_RE = re.compile(r"^[a-z0-9_]+$")


class BenchReportError(ValueError):
    """A benchmark JSON report violates the ``repro-bench/1`` schema."""

    def __init__(self, problems: list[str]):
        super().__init__("; ".join(problems))
        self.problems = problems


# --------------------------------------------------------------------- #
# environment + timing capture


def environment_fingerprint() -> dict:
    """Where the numbers came from: interpreter, machine, key libraries."""
    from repro import __version__

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "numpy": np.__version__,
        "repro": __version__,
    }


def iteration_stats(samples: Sequence[float], unit: str = "s", bins: int = 8) -> dict:
    """Summary statistics + a log-spaced histogram of timing samples."""
    xs = sorted(float(s) for s in samples)
    if not xs:
        raise ValueError("no samples")
    n = len(xs)
    mean = sum(xs) / n
    var = sum((x - mean) ** 2 for x in xs) / n if n > 1 else 0.0
    stats = {
        "unit": unit,
        "rounds": n,
        "min": xs[0],
        "max": xs[-1],
        "mean": mean,
        "median": xs[n // 2] if n % 2 else (xs[n // 2 - 1] + xs[n // 2]) / 2,
        "stddev": math.sqrt(var),
    }
    lo, hi = xs[0], xs[-1]
    if lo > 0 and hi > lo:
        edges = [
            lo * (hi / lo) ** (i / bins) for i in range(1, bins)
        ]  # bins-1 interior edges -> bins buckets + overflow
        counts = [0] * (len(edges) + 1)
        for x in xs:
            i = 0
            while i < len(edges) and x > edges[i]:
                i += 1
            counts[i] += 1
        stats["histogram"] = {"edges": edges, "counts": counts}
    return stats


def measure(fn: Callable[[], object], rounds: int = 5) -> dict:
    """Time ``fn`` ``rounds`` times; returns :func:`iteration_stats`."""
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return iteration_stats(samples)


def timing_from_benchmark(benchmark) -> dict | None:
    """Iteration stats out of a pytest-benchmark fixture, defensively.

    Returns ``None`` when the fixture was not exercised (or the plugin's
    internals moved) — JSON reports then simply omit ``timing``.
    """
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is None:
        return None
    out: dict = {"unit": "s"}
    for key in ("min", "max", "mean", "median", "stddev"):
        value = getattr(stats, key, None)
        if isinstance(value, (int, float)) and math.isfinite(value):
            out[key] = float(value)
    rounds = getattr(stats, "rounds", None)
    if isinstance(rounds, int):
        out["rounds"] = rounds
    return out if len(out) > 1 else None


# --------------------------------------------------------------------- #
# report emission


def emit_report(
    results_dir: str | pathlib.Path,
    name: str,
    *,
    data: dict | None = None,
    timing: dict | None = None,
    benchmark=None,
    text_report: str | None = None,
) -> pathlib.Path:
    """Write ``results/<name>.json`` (schema-validated before writing)."""
    if timing is None and benchmark is not None:
        timing = timing_from_benchmark(benchmark)
    payload: dict = {
        "schema": SCHEMA,
        "name": name,
        "environment": environment_fingerprint(),
        "data": data if data is not None else {},
    }
    if timing is not None:
        payload["timing"] = timing
    if text_report is not None:
        payload["text_report"] = text_report
    validate_report(payload)
    path = pathlib.Path(results_dir) / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


# --------------------------------------------------------------------- #
# validation


def _check(problems: list[str], cond: bool, msg: str) -> bool:
    if not cond:
        problems.append(msg)
    return cond


def validate_report(payload: object) -> None:
    """Raise :class:`BenchReportError` unless ``payload`` fits the schema."""
    problems: list[str] = []
    if not _check(problems, isinstance(payload, dict), "report must be a JSON object"):
        raise BenchReportError(problems)

    _check(problems, payload.get("schema") == SCHEMA,
           f"schema must be {SCHEMA!r}, got {payload.get('schema')!r}")
    name = payload.get("name")
    _check(problems, isinstance(name, str) and bool(_NAME_RE.match(name or "")),
           f"name must match [a-z0-9_]+, got {name!r}")

    env = payload.get("environment")
    if _check(problems, isinstance(env, dict), "environment must be an object"):
        for key in ("python", "platform", "numpy"):
            _check(problems, isinstance(env.get(key), str),
                   f"environment.{key} must be a string")
        _check(problems, isinstance(env.get("cpu_count"), int),
               "environment.cpu_count must be an integer")

    _check(problems, isinstance(payload.get("data"), dict), "data must be an object")

    timing = payload.get("timing")
    if timing is not None and _check(
        problems, isinstance(timing, dict), "timing must be an object"
    ):
        for key in ("min", "max", "mean", "median", "stddev"):
            if key in timing:
                _check(problems, isinstance(timing[key], (int, float)),
                       f"timing.{key} must be numeric")
        hist = timing.get("histogram")
        if hist is not None and _check(
            problems, isinstance(hist, dict), "timing.histogram must be an object"
        ):
            edges = hist.get("edges")
            counts = hist.get("counts")
            ok_e = _check(problems, isinstance(edges, list) and edges == sorted(edges),
                          "histogram.edges must be an ascending array")
            ok_c = _check(problems, isinstance(counts, list)
                          and all(isinstance(c, int) and c >= 0 for c in counts),
                          "histogram.counts must be non-negative integers")
            if ok_e and ok_c:
                _check(problems, len(counts) == len(edges) + 1,
                       "histogram.counts must have len(edges)+1 entries")

    if "text_report" in payload:
        _check(problems, isinstance(payload["text_report"], str),
               "text_report must be a string")

    if problems:
        raise BenchReportError(problems)


def load_and_validate(path: str | pathlib.Path) -> dict:
    payload = json.loads(pathlib.Path(path).read_text())
    validate_report(payload)
    return payload


# --------------------------------------------------------------------- #
# disabled-metrics overhead measurement (ISSUE 2 acceptance)


def measure_disabled_metrics_overhead(
    hot_fn: Callable[[], object],
    *,
    instrumented_sites_per_op: float = 1.0,
    hot_calls: int = 2_000,
    guard_calls: int = 200_000,
    repeats: int = 5,
) -> dict:
    """Measure what disabled instrumentation costs on a hot path.

    ``hot_fn`` is one hot-path operation (e.g. a single scalar unrank);
    ``instrumented_sites_per_op`` is how many disabled metric updates the
    *shipped* instrumentation performs per such operation (loop-level
    instrumentation gives values like ``1/iterations``).  The guard loop
    mirrors the shipped call-site idiom — ``if REGISTRY.enabled:
    metric.inc(...)`` — so the number reported is the cost a disabled
    site actually pays: one attribute load plus an untaken branch.  The
    result reports that guarded no-op cost, the hot-path cost, and their
    ratio — all per-op, in nanoseconds — using best-of-``repeats``
    minima to suppress scheduler noise.
    """
    from repro.obs import metrics

    reg = metrics.MetricsRegistry(enabled=False)
    counter = reg.counter("repro_overhead_probe_total", "disabled-cost probe")

    def best(fn: Callable[[], None], calls: int) -> float:
        best_ns = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter_ns()
            fn()
            best_ns = min(best_ns, (time.perf_counter_ns() - t0) / calls)
        return best_ns

    def guard_loop() -> None:
        for _ in range(guard_calls):
            if reg.enabled:
                counter.inc()

    def baseline_loop() -> None:
        for _ in range(guard_calls):
            pass

    def hot_loop() -> None:
        for _ in range(hot_calls):
            hot_fn()

    guard_ns = max(0.0, best(guard_loop, guard_calls) - best(baseline_loop, guard_calls))
    hot_ns = best(hot_loop, hot_calls)
    overhead_pct = (
        100.0 * guard_ns * instrumented_sites_per_op / hot_ns if hot_ns > 0 else 0.0
    )
    return {
        "disabled_inc_ns": guard_ns,
        "hot_path_ns_per_op": hot_ns,
        "instrumented_sites_per_op": instrumented_sites_per_op,
        "overhead_pct": overhead_pct,
    }


# --------------------------------------------------------------------- #
# CLI (CI entry points):
#   python -m repro.obs.bench validate results/*.json
#   python -m repro.obs.bench ingest results/ [--history results/history]
#   python -m repro.obs.bench regress [--history results/history] [--smoke]


def _report_paths(paths: Sequence[str]) -> list[pathlib.Path]:
    """Expand files/directories into the report files they contain."""
    out: list[pathlib.Path] = []
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            out.extend(sorted(p.glob("*.json")))
        else:
            out.append(p)
    return out


def _cmd_validate(args) -> int:
    rc = 0
    for path in _report_paths(args.paths):
        try:
            payload = load_and_validate(path)
        except FileNotFoundError:
            print(f"MISSING {path}", file=sys.stderr)
            rc = 1
        except (BenchReportError, json.JSONDecodeError) as exc:
            print(f"INVALID {path}: {exc}", file=sys.stderr)
            rc = 1
        else:
            print(f"ok {path} ({payload['name']})")
    return rc


def _cmd_ingest(args) -> int:
    from repro.obs import history as _history

    sha = args.git_sha or _history.current_git_sha()
    rc = 0
    for path in _report_paths(args.paths):
        try:
            payload = load_and_validate(path)
        except FileNotFoundError:
            print(f"MISSING {path}", file=sys.stderr)
            rc = 1
            continue
        except (BenchReportError, json.JSONDecodeError) as exc:
            print(f"INVALID {path}: {exc}", file=sys.stderr)
            rc = 1
            continue
        entry = _history.ingest_report(
            payload, args.history, git_sha=sha, smoke=args.smoke
        )
        if entry is None:
            print(f"duplicate {path} ({payload['name']} @ {sha[:12]}); skipped")
        else:
            print(
                f"ingested {path} -> {args.history}/{payload['name']}.jsonl "
                f"({len(entry['metrics'])} metrics @ {sha[:12]})"
            )
    return rc


def _cmd_regress(args) -> int:
    from repro.obs import history as _history

    result = _history.regress(
        args.history,
        names=args.names or None,
        window=args.window,
        rel_tol=args.rel_tol,
        z=args.z,
        smoke=args.smoke,
    )
    print(_history.render_regress_report(result))
    return 0 if result["ok"] else 1


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench",
        description="Benchmark telemetry utilities",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    v = sub.add_parser("validate", help="validate bench JSON reports")
    v.add_argument("paths", nargs="+", help="report files (or results dirs)")
    v.set_defaults(fn=_cmd_validate)

    i = sub.add_parser(
        "ingest", help="append bench reports to the history ledger"
    )
    i.add_argument("paths", nargs="+", help="report files (or results dirs)")
    i.add_argument(
        "--history", default="results/history", help="ledger directory"
    )
    i.add_argument("--git-sha", default=None, help="override the entry's SHA")
    i.add_argument(
        "--smoke", action="store_true", help="mark entries as smoke-mode runs"
    )
    i.set_defaults(fn=_cmd_ingest)

    r = sub.add_parser(
        "regress", help="gate the newest ledger entries against history"
    )
    r.add_argument("names", nargs="*", help="benchmark names (default: all)")
    r.add_argument(
        "--history", default="results/history", help="ledger directory"
    )
    r.add_argument("--window", type=int, default=5)
    r.add_argument("--rel-tol", type=float, default=0.10)
    r.add_argument("--z", type=float, default=3.0)
    r.add_argument(
        "--smoke", action="store_true", help="compare smoke-mode entries"
    )
    r.set_defaults(fn=_cmd_regress)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
