"""Process-parallel versions of the heavy experiments.

Each runner is bit-identical to its sequential counterpart for any worker
count — the shard boundaries, per-shard generator states (via LFSR
jump-ahead) and shard-ordered reduction guarantee it.  Worker functions
are module-level so they pickle.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.analysis.derangements import DerangementResult, derangement_mask
from repro.analysis.distribution import permutation_histogram
from repro.apps.bdd import bdd_size_under_order
from repro.apps.pclass import p_representative
from repro.core.factorial import factorial
from repro.core.knuth import KnuthShuffleCircuit
from repro.core.lehmer import unrank_batch
from repro.parallel.sharding import ShardSpec, index_shards, parallel_map_reduce

__all__ = [
    "parallel_fig4_counts",
    "parallel_derangements",
    "parallel_best_order",
    "parallel_classify",
]


# --------------------------------------------------------------------- #
# Fig. 4 / derangements: Monte-Carlo over jump-ahead shuffle streams


@dataclass(frozen=True)
class _MCJob:
    n: int
    m: int

    def circuit_at(self, offset: int) -> KnuthShuffleCircuit:
        circuit = KnuthShuffleCircuit(self.n, m=self.m)
        for gen in circuit.generators:
            gen.lfsr.jump(offset)
        return circuit


def parallel_fig4_counts(
    n: int = 4, samples: int = 1 << 20, m: int = 31, workers: int = 4
) -> np.ndarray:
    """The Fig.-4 histogram, sharded over jump-ahead substreams.

    Identical to the histogram of ``KnuthShuffleCircuit(n, m).sample
    (samples)`` regardless of ``workers``: worker ``w`` jumps every stage
    LFSR to the exact draw offset where its shard begins.
    """
    shards = index_shards(samples, workers)
    return parallel_map_reduce(
        _Fig4Work(_MCJob(n=n, m=m)), shards, _add_arrays, workers=workers
    )


class _Fig4Work:
    """Picklable callable carrying the job spec (works under spawn)."""

    def __init__(self, job: _MCJob):
        self.job = job

    def __call__(self, shard: ShardSpec) -> np.ndarray:
        circuit = self.job.circuit_at(shard.start)
        perms = circuit.sample(shard.size)
        return permutation_histogram(perms)


def _add_arrays(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a + b


class _DerangementWork:
    def __init__(self, job: _MCJob):
        self.job = job

    def __call__(self, shard: ShardSpec) -> int:
        circuit = self.job.circuit_at(shard.start)
        return int(derangement_mask(circuit.sample(shard.size)).sum())


def parallel_derangements(
    n: int, samples: int = 1 << 20, m: int = 31, workers: int = 4
) -> DerangementResult:
    """§III-C derangement counting over process shards (bit-exact)."""
    shards = index_shards(samples, workers)
    count = parallel_map_reduce(
        _DerangementWork(_MCJob(n=n, m=m)), shards, _add_ints, workers=workers
    )
    return DerangementResult(n=n, samples=samples, derangements=count)


def _add_ints(a: int, b: int) -> int:
    return a + b


# --------------------------------------------------------------------- #
# BDD variable-order search: shard the n! index space


class _OrderSearchWork:
    def __init__(self, tt: int, n_vars: int):
        self.tt = tt
        self.n_vars = n_vars

    def __call__(self, shard: ShardSpec) -> tuple[tuple[int, ...], int, tuple[int, ...], int]:
        best = worst = None
        best_size = 1 << 62
        worst_size = -1
        orders = unrank_batch(list(shard), self.n_vars)
        for row in orders:
            order = tuple(int(x) for x in row)
            size = bdd_size_under_order(self.tt, self.n_vars, order)
            if size < best_size or (size == best_size and (best is None or order < best)):
                best, best_size = order, size
            if size > worst_size or (size == worst_size and (worst is None or order < worst)):
                worst, worst_size = order, size
        assert best is not None and worst is not None
        return best, best_size, worst, worst_size


def _merge_order_results(a, b):
    best_a, bs_a, worst_a, ws_a = a
    best_b, bs_b, worst_b, ws_b = b
    best, bs = (best_a, bs_a)
    if bs_b < bs or (bs_b == bs and best_b < best):
        best, bs = best_b, bs_b
    worst, ws = (worst_a, ws_a)
    if ws_b > ws or (ws_b == ws and worst_b < worst):
        worst, ws = worst_b, ws_b
    return best, bs, worst, ws


def parallel_best_order(
    tt: int, n_vars: int, workers: int = 4
) -> tuple[tuple[int, ...], int, tuple[int, ...], int]:
    """Exhaustive BDD order search sharded over the index space.

    Worker ``w`` unranks its own contiguous slice of ``0..n!−1`` — the
    converter *is* the work-distribution mechanism, exactly the usage the
    paper's introduction sketches for hardware-assisted search.  Ties
    resolve to the lexicographically smallest order, making the result
    worker-count invariant.
    """
    shards = index_shards(factorial(n_vars), workers)
    return parallel_map_reduce(
        _OrderSearchWork(tt, n_vars), shards, _merge_order_results, workers=workers
    )


# --------------------------------------------------------------------- #
# P-class classification: shard the function space


class _ClassifyWork:
    def __init__(self, n_vars: int):
        self.n_vars = n_vars

    def __call__(self, shard: ShardSpec) -> set[int]:
        return {p_representative(tt, self.n_vars) for tt in shard}


def _union(a: set[int], b: set[int]) -> set[int]:
    return a | b


def parallel_classify(n_vars: int, workers: int = 4) -> set[int]:
    """All P-representatives, sharded over the 2^(2^n) truth tables."""
    total = 1 << (1 << n_vars)
    shards = index_shards(total, max(workers, 1) * 4)
    return parallel_map_reduce(_ClassifyWork(n_vars), shards, _union, workers=workers)
