"""Process-parallel execution of the repository's big experiments.

The index-to-permutation converter makes the classic combinatorial
workloads *embarrassingly index-parallel*: any job over "all n!
permutations" (or a sampled subset) shards into contiguous index ranges,
each worker unranks and processes its own range, and results reduce
associatively.  The same holds for Monte-Carlo jobs through the LFSR
jump-ahead decomposition (:meth:`repro.rng.lfsr.LFSRBase.jump`).

* :mod:`repro.parallel.sharding` — deterministic work decomposition:
  index ranges, leap-frog blocks, and a process-pool map with an ordered,
  associative reduce;
* :mod:`repro.parallel.experiments` — parallel versions of the heavy
  workloads (Fig.-4 histogram, derangement counting, BDD order search,
  P-class classification), each *bit-identical* to its sequential
  counterpart — asserted in the test suite, which is the property that
  matters on a real cluster.
"""

from repro.parallel.sharding import (
    index_shards,
    ShardSpec,
    parallel_map_reduce,
)
from repro.parallel.experiments import (
    parallel_fig4_counts,
    parallel_derangements,
    parallel_best_order,
    parallel_classify,
)

__all__ = [
    "index_shards",
    "ShardSpec",
    "parallel_map_reduce",
    "parallel_fig4_counts",
    "parallel_derangements",
    "parallel_best_order",
    "parallel_classify",
]
