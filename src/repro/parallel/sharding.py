"""Deterministic work decomposition and a small map-reduce runner.

Everything here is *deterministic by construction*: a job's result must
not depend on the worker count or on scheduling order.  That is achieved
by (a) contiguous index shards with a fixed boundary rule and (b) reducing
partial results in shard order, not completion order.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

__all__ = ["ShardSpec", "index_shards", "parallel_map_reduce", "default_workers"]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class ShardSpec:
    """A contiguous half-open index range ``[start, stop)``."""

    shard_id: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start

    def __iter__(self):
        return iter(range(self.start, self.stop))


def index_shards(total: int, shards: int) -> list[ShardSpec]:
    """Split ``range(total)`` into ``shards`` near-equal contiguous ranges.

    The first ``total mod shards`` shards get one extra element, so the
    decomposition is independent of anything but ``(total, shards)``.
    Empty shards are omitted (``total < shards``).
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if shards < 1:
        raise ValueError("shards must be positive")
    base, extra = divmod(total, shards)
    out = []
    start = 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        if size == 0:
            continue
        out.append(ShardSpec(shard_id=i, start=start, stop=start + size))
        start += size
    assert start == total
    return out


def default_workers() -> int:
    """A conservative worker count for the experiment runners."""
    return max(1, min(8, os.cpu_count() or 1))


def parallel_map_reduce(
    work: Callable[[ShardSpec], R],
    shards: Sequence[ShardSpec],
    reduce_fn: Callable[[R, R], R],
    workers: int | None = None,
) -> R:
    """Run ``work`` on every shard and fold the results *in shard order*.

    ``workers <= 1`` (or a single shard) runs inline — no pool, no pickle
    round-trips — which is also how the tests prove worker-count
    invariance.  ``work`` and ``reduce_fn`` must be picklable (module
    level) for the process path.
    """
    if not shards:
        raise ValueError("no shards to process")
    workers = workers if workers is not None else default_workers()
    if workers <= 1 or len(shards) == 1:
        results = [work(s) for s in shards]
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(shards))) as pool:
            results = list(pool.map(work, shards))
    acc = results[0]
    for r in results[1:]:
        acc = reduce_fn(acc, r)
    return acc
