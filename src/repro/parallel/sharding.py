"""Deterministic work decomposition and fault-tolerant map-reduce runners.

Everything here is *deterministic by construction*: a job's result must
not depend on the worker count or on scheduling order.  That is achieved
by (a) contiguous index shards with a fixed boundary rule and (b) reducing
partial results in shard order, not completion order.

Two runners are provided:

* :func:`parallel_map_reduce` — the minimal runner: any worker failure
  aborts the job, surfaced as a :class:`~repro.errors.WorkerFailedError`
  carrying the failing shard id.
* :func:`hardened_map_reduce` — the production runner: per-shard
  timeouts, bounded retry with exponential backoff + jitter, recovery
  from worker-process crashes (the *shard* is resubmitted to a fresh
  pool, never the whole job), and an optional graceful-degradation mode
  that returns a :class:`PartialResult` — the reduction over the shards
  that succeeded plus a manifest of the ones that did not — instead of
  aborting a long campaign for one bad shard.

All deadline and backoff arithmetic uses the **monotonic clock**
(``time.monotonic``): a wall-clock adjustment (NTP step, DST, manual
``date``) mid-run can neither starve the timeout budget nor stretch a
backoff sleep.  The clock and sleep functions are module-level seams
(``_monotonic``/``_sleep``) so tests can drive them deterministically.

Observability: the hardened runner optionally takes a
:class:`~repro.obs.tracing.Tracer` — every shard attempt becomes a child
span of the caller's trace, with worker-side spans shipped back across
the pickle boundary — and an :class:`~repro.obs.events.EventSink` that
receives structured retry/timeout/crash events.  Attempt outcomes are
also counted in the global metrics registry when it is enabled.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Generic, Sequence, TypeVar

from repro.errors import ShardTimeoutError, WorkerFailedError
from repro.obs import metrics as _metrics
from repro.obs.digests import LatencyDigest
from repro.obs.tracing import Span

__all__ = [
    "ShardSpec",
    "index_shards",
    "bounded_shards",
    "parallel_map_reduce",
    "hardened_map_reduce",
    "ShardFailure",
    "PartialResult",
    "default_workers",
    "retry_backoff",
]

# Injectable clock/sleep seams: ALL deadline + backoff arithmetic in this
# module goes through these, never through time.time().
_monotonic = time.monotonic
_sleep = time.sleep


def _sleep_until(deadline: float) -> None:
    """Sleep until the monotonic clock reaches ``deadline``.

    Loops on the remaining monotonic delta, so interrupted or short
    sleeps (and any wall-clock adjustment) cannot cut the wait short or
    stretch it.
    """
    while True:
        remaining = deadline - _monotonic()
        if remaining <= 0:
            return
        _sleep(remaining)


_SHARD_ATTEMPTS = _metrics.REGISTRY.counter(
    "repro_shard_attempts_total",
    "hardened map-reduce shard attempts by outcome",
    ("outcome",),
)
_SHARD_SECONDS = _metrics.REGISTRY.histogram(
    "repro_shard_seconds", "successful shard attempt duration (seconds)"
)
_SHARD_DIGEST = _metrics.REGISTRY.digest(
    "repro_shard_seconds_digest",
    "shard attempt duration digest, merged from worker-side sketches",
)

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class ShardSpec:
    """A contiguous half-open index range ``[start, stop)``."""

    shard_id: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start

    def __iter__(self):
        return iter(range(self.start, self.stop))


def index_shards(total: int, shards: int) -> list[ShardSpec]:
    """Split ``range(total)`` into ``shards`` near-equal contiguous ranges.

    The first ``total mod shards`` shards get one extra element, so the
    decomposition is independent of anything but ``(total, shards)``.
    Empty shards are omitted — in particular ``total == 0`` yields ``[]``,
    the empty shard list, which the map-reduce runners reject (there is
    no identity element to return; callers with legitimately empty
    domains must short-circuit before sharding).
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if shards < 1:
        raise ValueError("shards must be positive")
    base, extra = divmod(total, shards)
    out = []
    start = 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        if size == 0:
            continue
        out.append(ShardSpec(shard_id=i, start=start, stop=start + size))
        start += size
    assert start == total
    return out


def bounded_shards(total: int, max_size: int) -> list[ShardSpec]:
    """Split ``range(total)`` into the fewest shards of at most ``max_size``.

    The dual of :func:`index_shards`: instead of a target shard *count*,
    the caller fixes a per-shard capacity and takes however many shards
    that needs.  This is the natural decomposition when each shard maps
    onto a fixed hardware resource — e.g. the serving layer's bulk path,
    where one shard must fit the compiled engine's
    :data:`~repro.hdl.compile.SWEEP_LANES` lane quantum.  Like
    :func:`index_shards` the split is deterministic, contiguous and
    near-equal (sizes differ by at most one), and ``total == 0`` yields
    ``[]``.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if max_size < 1:
        raise ValueError("max_size must be positive")
    if total == 0:
        return []
    return index_shards(total, -(-total // max_size))


def default_workers() -> int:
    """A conservative worker count for the experiment runners."""
    return max(1, min(8, os.cpu_count() or 1))


def parallel_map_reduce(
    work: Callable[[ShardSpec], R],
    shards: Sequence[ShardSpec],
    reduce_fn: Callable[[R, R], R],
    workers: int | None = None,
) -> R:
    """Run ``work`` on every shard and fold the results *in shard order*.

    ``workers <= 1`` (or a single shard) runs inline — no pool, no pickle
    round-trips — which is also how the tests prove worker-count
    invariance.  ``work`` and ``reduce_fn`` must be picklable (module
    level) for the process path.

    An empty shard list raises :class:`ValueError`: a fold needs at least
    one partial result, and :func:`index_shards` returns ``[]`` exactly
    when ``total == 0``.  A worker exception aborts the job and is
    re-raised as :class:`~repro.errors.WorkerFailedError` with the
    failing ``shard_id`` attached (the original exception is chained as
    ``__cause__``).  For retries and partial results use
    :func:`hardened_map_reduce`.
    """
    if not shards:
        raise ValueError("no shards to process (total == 0?)")
    workers = workers if workers is not None else default_workers()
    results = []
    if workers <= 1 or len(shards) == 1:
        for s in shards:
            try:
                results.append(work(s))
            except Exception as exc:
                raise WorkerFailedError(
                    f"shard {s.shard_id} failed: {exc}", shard_id=s.shard_id, cause=exc
                ) from exc
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(shards))) as pool:
            futures = [(s, pool.submit(work, s)) for s in shards]
            for s, fut in futures:
                try:
                    results.append(fut.result())
                except Exception as exc:
                    raise WorkerFailedError(
                        f"shard {s.shard_id} failed: {exc}",
                        shard_id=s.shard_id,
                        cause=exc,
                    ) from exc
    acc = results[0]
    for r in results[1:]:
        acc = reduce_fn(acc, r)
    return acc


# --------------------------------------------------------------------- #
# hardened execution


@dataclass(frozen=True)
class ShardFailure:
    """Manifest entry for a shard that exhausted its retry budget.

    ``error`` is the rendered final failure (``"TypeName: message"``);
    ``cause_type`` is the bare exception class name of that final
    attempt, so callers can dispatch on the failure cause (crash vs.
    timeout vs. worker exception) without parsing the message.
    """

    shard_id: int
    attempts: int
    error: str
    timed_out: bool = False
    cause_type: str = ""


@dataclass(frozen=True)
class PartialResult(Generic[R]):
    """Outcome of a degraded run: what succeeded, and what did not.

    ``value`` is the shard-ordered reduction over the successful shards
    (``None`` when every shard failed).  ``failed`` is the manifest; an
    empty manifest means the result is complete.  ``attempts`` maps
    *every* shard id — successful or not — to how many attempts it
    consumed, so a campaign report can tell a clean run from one that
    limped home on retries even when ``complete`` is ``True``.
    """

    value: R | None
    failed: tuple[ShardFailure, ...]
    completed: int
    total: int
    attempts: dict[int, int] = dataclass_field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return not self.failed

    @property
    def coverage(self) -> float:
        return self.completed / self.total if self.total else 1.0

    @property
    def total_attempts(self) -> int:
        return sum(self.attempts.values())

    @property
    def retried_shards(self) -> int:
        """Shards that needed more than one attempt (successful or not)."""
        return sum(1 for a in self.attempts.values() if a > 1)

    def failure_causes(self) -> dict[str, int]:
        """Final-failure cause histogram over the failed manifest."""
        causes: dict[str, int] = {}
        for f in self.failed:
            name = f.cause_type or f.error.split(":", 1)[0]
            causes[name] = causes.get(name, 0) + 1
        return causes


@dataclass(frozen=True)
class _TracedValue:
    """A worker result bundled with the worker-side span + digest exports."""

    value: object
    span: dict
    digest: dict | None = None


class _TracedWork:
    """Picklable wrapper: runs the shard inside a worker-side span.

    The span (wall/CPU time, worker PID, shard bounds) travels back with
    the result as a plain dict and is grafted into the parent trace —
    that is the cross-process span propagation.  A worker-side
    :class:`~repro.obs.digests.LatencyDigest` sketch of the shard
    duration rides along the same way and is merged into the parent's
    ``repro_shard_seconds_digest`` series — the digests are built
    directly (not through the registry) because worker processes start
    with a fresh, disabled registry; merging happens where the registry
    is live.
    """

    def __init__(self, work: Callable[[ShardSpec], object]):
        self.work = work

    def __call__(self, shard: ShardSpec) -> _TracedValue:
        span = Span(
            f"shard{shard.shard_id}",
            {"start": shard.start, "stop": shard.stop, "pid": os.getpid()},
        )
        value = self.work(shard)  # exceptions propagate; parent records them
        span.end("ok")
        sketch = LatencyDigest()
        sketch.observe(span.wall_s)
        return _TracedValue(value, span.export(), sketch.to_dict())


def retry_backoff(
    attempt: int,
    backoff: float,
    jitter: float = 0.0,
    rng: "random.Random | None" = None,
    cap: float | None = None,
) -> float:
    """The hardened-runner retry delay: ``backoff · 2^(attempt−1)`` + jitter.

    ``attempt`` is 1-based (the attempt that just failed).  Jitter is
    uniform in ``[0, jitter)`` from ``rng`` (seeded by the caller — runs
    stay reproducible); ``cap`` bounds the exponential term so repeated
    failures converge to a fixed retry cadence instead of effectively
    never retrying.  Shared by :func:`hardened_map_reduce` and the
    serving tier's worker pool so both layers restart crashed workers
    with identical semantics.
    """
    delay = backoff * (2 ** (attempt - 1))
    if cap is not None:
        delay = min(cap, delay)
    if jitter > 0.0 and rng is not None:
        delay += rng.uniform(0.0, jitter)
    return delay


def hardened_map_reduce(
    work: Callable[[ShardSpec], R],
    shards: Sequence[ShardSpec],
    reduce_fn: Callable[[R, R], R],
    workers: int | None = None,
    timeout: float | None = None,
    retries: int = 2,
    backoff: float = 0.05,
    jitter: float = 0.05,
    degrade: bool = False,
    seed: int = 0,
    tracer=None,
    events=None,
):
    """Fault-tolerant map-reduce: retry, recover, optionally degrade.

    Each shard gets up to ``1 + retries`` attempts.  Between attempts the
    runner sleeps ``backoff · 2^(attempt−1)`` seconds plus uniform jitter
    in ``[0, jitter)`` (seeded — runs are reproducible).  A worker
    exception, a crashed worker process (``BrokenProcessPool``) or a
    per-shard ``timeout`` all count as failed attempts; after a crash or
    timeout the pool is rebuilt and only the affected shards are
    resubmitted — completed shards are never recomputed.

    With ``degrade=False`` (default) an exhausted shard aborts the job
    with :class:`~repro.errors.WorkerFailedError` (or
    :class:`~repro.errors.ShardTimeoutError`), and the reduced value is
    returned bare on success.  With ``degrade=True`` the runner always
    returns a :class:`PartialResult`: the reduction over whatever
    succeeded plus the failure manifest, so a campaign keeps its
    completed work even when some shards are beyond saving.

    Caveat: a timed-out worker process cannot be killed through
    ``concurrent.futures``; it is abandoned with the old pool and may
    run to completion in the background.  Its result is discarded.

    Observability (all optional):

    * ``tracer`` — every shard attempt appears as a child span of the
      caller's current span: successful pool attempts carry the
      worker-side span (true worker wall/CPU time and PID), failed or
      timed-out attempts a parent-side span tagged with the outcome.
    * ``events`` — an :class:`~repro.obs.events.EventSink` receiving
      ``shard_retry``/``shard_timeout``/``pool_crash``/
      ``shard_exhausted`` events as they happen.
    """
    if not shards:
        raise ValueError("no shards to process (total == 0?)")
    workers = workers if workers is not None else default_workers()
    inline = workers <= 1
    rng = random.Random(seed)
    metrics_on = _metrics.REGISTRY.enabled

    results: dict[int, R] = {}
    failures: list[ShardFailure] = []
    attempts: dict[int, int] = {s.shard_id: 0 for s in shards}
    last_error: dict[int, tuple[Exception, bool]] = {}
    pending: list[ShardSpec] = list(shards)
    pool: ProcessPoolExecutor | None = None

    def fail(s: ShardSpec) -> None:
        exc, timed_out = last_error[s.shard_id]
        if not degrade:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            cls = ShardTimeoutError if timed_out else WorkerFailedError
            raise cls(
                f"shard {s.shard_id} failed after {attempts[s.shard_id]} "
                f"attempt(s): {exc}",
                shard_id=s.shard_id,
                attempts=attempts[s.shard_id],
                cause=exc,
            ) from exc
        failures.append(
            ShardFailure(
                shard_id=s.shard_id,
                attempts=attempts[s.shard_id],
                error=f"{type(exc).__name__}: {exc}",
                timed_out=timed_out,
                cause_type=type(exc).__name__,
            )
        )

    pool_work = _TracedWork(work) if tracer is not None else work

    def note_attempt(shard: ShardSpec, outcome: str, span: Span | None,
                     wall_s: float | None = None) -> None:
        """Metrics + trace bookkeeping for one finished attempt."""
        if metrics_on:
            _SHARD_ATTEMPTS.inc(outcome=outcome)
            if outcome == "ok" and wall_s is not None:
                _SHARD_SECONDS.observe(wall_s)
        if tracer is not None and span is not None:
            span.attrs["attempt"] = attempts[shard.shard_id]
            if outcome != "ok":
                span.attrs["outcome"] = outcome
            tracer.adopt(span)

    try:
        while pending:
            wave, pending = pending, []
            retry_delay = 0.0
            pool_broken = False
            # outcome rows: (shard, value, exc, timed_out, worker_span)
            if inline:
                outcomes = []
                for s in wave:
                    span = (
                        Span(f"shard{s.shard_id}", {"start": s.start, "stop": s.stop})
                        if tracer is not None
                        else None
                    )
                    try:
                        value = work(s)
                    except Exception as exc:
                        if span is not None:
                            span.end("error", error=f"{type(exc).__name__}: {exc}")
                        outcomes.append((s, None, exc, False, span))
                    else:
                        if span is not None:
                            span.end("ok")
                            if metrics_on:
                                _SHARD_DIGEST.observe(span.wall_s)
                        outcomes.append((s, value, None, False, span))
            else:
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=min(workers, len(shards))
                    )
                futures = [(s, pool.submit(pool_work, s)) for s in wave]
                # Per-shard timeout measured from submission on the
                # monotonic clock: shards waited on later in the wave do
                # not have their budget restarted by earlier waits.
                wave_t0 = _monotonic()
                outcomes = []
                for s, fut in futures:
                    budget = (
                        None
                        if timeout is None
                        else max(0.0, wave_t0 + timeout - _monotonic())
                    )
                    try:
                        value = fut.result(timeout=budget)
                    except FutureTimeoutError as exc:
                        fut.cancel()
                        pool_broken = True  # abandon the stuck worker
                        outcomes.append((s, None, exc, True, None))
                    except BrokenProcessPool as exc:
                        pool_broken = True
                        outcomes.append((s, None, exc, False, None))
                    except Exception as exc:
                        outcomes.append((s, None, exc, False, None))
                    else:
                        span = None
                        if isinstance(value, _TracedValue):
                            span = Span.from_export(value.span)
                            if metrics_on and value.digest is not None:
                                _SHARD_DIGEST.merge_in(value.digest)
                            value = value.value
                        outcomes.append((s, value, None, False, span))
            for s, value, exc, timed_out, span in outcomes:
                attempts[s.shard_id] += 1
                if exc is None:
                    results[s.shard_id] = value
                    note_attempt(
                        s, "ok", span,
                        wall_s=span.wall_s if span is not None else None,
                    )
                    continue
                outcome = (
                    "timeout"
                    if timed_out
                    else "crash" if isinstance(exc, BrokenProcessPool) else "error"
                )
                if span is None and tracer is not None:
                    span = Span(f"shard{s.shard_id}", {"start": s.start, "stop": s.stop})
                    span.end("error", error=f"{type(exc).__name__}: {exc}")
                    span.wall_s = None  # parent-side stub: no worker timing
                    span.cpu_s = None
                note_attempt(s, outcome, span)
                if events is not None and outcome in ("timeout", "crash"):
                    events.emit(
                        f"shard_{outcome}" if outcome == "timeout" else "pool_crash",
                        shard=s.shard_id,
                        attempt=attempts[s.shard_id],
                    )
                last_error[s.shard_id] = (exc, timed_out)
                if attempts[s.shard_id] <= retries:
                    delay = retry_backoff(
                        attempts[s.shard_id], backoff, jitter=jitter, rng=rng
                    )
                    retry_delay = max(retry_delay, delay)
                    pending.append(s)
                    if events is not None:
                        events.emit(
                            "shard_retry",
                            shard=s.shard_id,
                            attempt=attempts[s.shard_id],
                            error=type(exc).__name__,
                        )
                else:
                    if events is not None:
                        events.emit(
                            "shard_exhausted",
                            shard=s.shard_id,
                            attempts=attempts[s.shard_id],
                            error=type(exc).__name__,
                        )
                    fail(s)
            if pool_broken and pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
            if pending and retry_delay > 0.0:
                _sleep_until(_monotonic() + retry_delay)
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    acc: R | None = None
    for s in shards:
        if s.shard_id not in results:
            continue
        acc = results[s.shard_id] if acc is None else reduce_fn(acc, results[s.shard_id])
    if degrade:
        return PartialResult(
            value=acc,
            failed=tuple(failures),
            completed=len(results),
            total=len(shards),
            attempts=dict(attempts),
        )
    return acc
