"""The unified synthesis flow: one entry point from netlist to report.

Before this module existed every consumer — ``fpga/report.py``, the
robustness campaigns, the CLI and the Table III/IV benchmarks — hand
-assembled its own netlist → optimisation → LUT-map → timing chain,
which made the paper's resource numbers depend on *which* caller
produced them.  :func:`synthesize` is now the single flow:

1. run a :class:`~repro.hdl.passes.PassManager` pipeline over the input
   netlist (configurable per :class:`FlowTarget`; checked mode gates
   every pass with an equivalence proof/test);
2. cover the optimised netlist with k-input LUTs, pack ALMs, count LUT
   levels and estimate Fmax;
3. return everything as one :class:`FlowResult` — optimised netlist,
   LUT map, per-pass deltas and the Table-III/IV-style
   :class:`~repro.fpga.report.ResourceReport`.

:func:`build_circuit` is the companion front door for the paper's two
circuits by name, shared by the CLI ``synth`` subcommand and the fault
-injection campaigns, so "the converter at n = 8, pipelined" means the
same netlist everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fpga.alm import pack_alms
from repro.fpga.lut_map import LUT, lut_histogram, map_to_luts
from repro.fpga.report import ResourceReport, render_resource_table
from repro.fpga.timing import DelayModel, estimate_fmax_mhz, lut_levels
from repro.hdl.netlist import Netlist
from repro.hdl.passes import DEFAULT_PIPELINE, PassManager, PipelineResult

__all__ = [
    "FlowTarget",
    "FlowResult",
    "synthesize",
    "build_circuit",
    "render_flow_report",
]


@dataclass(frozen=True)
class FlowTarget:
    """Everything configurable about a synthesis run.

    ``passes`` names the optimisation pipeline (registry names from
    :data:`repro.hdl.passes.PASSES`); ``None`` selects the full default
    pipeline and an empty tuple disables optimisation entirely (the
    pre-pass-pipeline behaviour).  ``checked`` gates every pass with an
    equivalence check; ``engine`` selects the simulation backend those
    checks run on (any name in :data:`repro.hdl.engine.BACKENDS` —
    ``"auto"``/``"interp"``/``"compiled"``/``"vector"``, see
    :mod:`repro.hdl.simulator`).
    """

    k: int = 6  #: LUT input size
    passes: tuple[str, ...] | None = None
    checked: bool = False
    engine: str = "auto"
    delay_model: DelayModel = field(default_factory=DelayModel)

    @classmethod
    def no_opt(cls, k: int = 6) -> "FlowTarget":
        """A target that maps the netlist exactly as constructed."""
        return cls(k=k, passes=())


@dataclass(frozen=True)
class FlowResult:
    """The complete outcome of one :func:`synthesize` run."""

    netlist: Netlist  #: the optimised netlist the numbers describe
    luts: tuple[LUT, ...]
    lut_levels: int
    fmax_mhz: float
    report: ResourceReport
    passes: PipelineResult | None  #: None when optimisation was disabled
    target: FlowTarget

    @property
    def total_luts(self) -> int:
        return len(self.luts)

    @property
    def gates_removed(self) -> int:
        return self.passes.gates_removed if self.passes is not None else 0


def synthesize(
    netlist: Netlist,
    target: FlowTarget | None = None,
    *,
    n: int | None = None,
    tracer: object | None = None,
) -> FlowResult:
    """Run the full optimisation + mapping + timing flow on a netlist.

    ``n`` labels the resulting :class:`ResourceReport` row (the paper's
    permutation size column); it defaults to 0 for circuits without a
    natural n.  ``tracer`` threads an :class:`repro.obs.tracing.Tracer`
    through the pass pipeline, one child span per pass.
    """
    target = target if target is not None else FlowTarget()
    pipeline: PipelineResult | None = None
    optimised = netlist
    if target.passes is None or len(target.passes) > 0:
        manager = PassManager(
            target.passes if target.passes is not None else None,
            checked=target.checked,
            engine=target.engine,
            tracer=tracer,
        )
        pipeline = manager.run(netlist)
        optimised = pipeline.netlist

    luts = map_to_luts(optimised, k=target.k)
    levels = lut_levels(optimised, luts)
    fmax = estimate_fmax_mhz(optimised, luts, target.delay_model)
    report = ResourceReport(
        name=optimised.name,
        n=n if n is not None else 0,
        fmax_mhz=fmax,
        lut_hist=lut_histogram(luts, k=target.k),
        total_luts=len(luts),
        packed_alms=pack_alms(luts),
        registers=optimised.num_registers,
        lut_levels=levels,
    )
    return FlowResult(
        netlist=optimised,
        luts=tuple(luts),
        lut_levels=levels,
        fmax_mhz=fmax,
        report=report,
        passes=pipeline,
        target=target,
    )


#: Circuits addressable by name in :func:`build_circuit`.
CIRCUITS = ("converter", "shuffle")


def build_circuit(circuit: str, n: int, *, pipelined: bool = False) -> Netlist:
    """Construct one of the paper's circuits by name.

    The shared front door for the CLI, the fault campaigns and the
    benchmarks — every consumer building "the shuffle at n = 6" gets a
    structurally identical netlist.
    """
    if circuit == "converter":
        from repro.core.converter import IndexToPermutationConverter

        return IndexToPermutationConverter(n).build_netlist(pipelined=pipelined)
    if circuit == "shuffle":
        from repro.core.knuth import KnuthShuffleCircuit

        return KnuthShuffleCircuit(n).build_netlist(pipelined=pipelined)
    raise ValueError(f"unknown circuit {circuit!r}; expected one of {CIRCUITS}")


def render_flow_report(result: FlowResult) -> str:
    """Pass-delta table (when passes ran) plus the resource table."""
    parts = []
    if result.passes is not None:
        parts.append(result.passes.render())
        parts.append("")
    parts.append(render_resource_table([result.report], k=result.target.k))
    return "\n".join(parts)
