"""Typed request/response model for the permutation-serving layer.

A :class:`Request` names one unit of work:

* ``unrank`` — convert a caller-supplied index to its permutation
  (paper §II, the index-to-permutation converter);
* ``random_perm`` — the §II-C random permutation generator: the service
  draws the index from its scaled-LFSR source and unranks it;
* ``shuffle`` — one output of the §III Knuth-shuffle cascade.

Validation is centralised in :func:`validate_request` so the CLI, the
service and the load generator all reject malformed requests with the
same :class:`~repro.errors.InvalidRequestError` (a ``ValueError``
subclass, like the rest of the caller-mistake taxonomy).

The :class:`Response` carries the permutation plus the serving
provenance the benchmarks and traces rely on: which batch the request
rode in (``batch_id``/``lanes``), whether the result came straight from
the cache, and the per-stage timing split (time queued in the
micro-batcher vs. time in the compiled sweep).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.factorial import factorial
from repro.errors import InvalidRequestError

__all__ = [
    "WORKLOADS",
    "Request",
    "Response",
    "WideResponse",
    "validate_request",
    "validate_wide",
]

#: The serveable workloads, in documentation order.
WORKLOADS = ("unrank", "random_perm", "shuffle")


@dataclass(frozen=True)
class Request:
    """One unit of serving work.

    ``index`` is required for ``unrank`` and must be absent for the two
    random workloads (the service owns the randomness — a caller who
    already has an index wants ``unrank``).
    """

    workload: str
    n: int
    index: int | None = None


@dataclass(frozen=True)
class Response:
    """A served permutation plus its serving provenance.

    ``index`` is the index actually unranked — for ``random_perm`` the
    one the service drew; for ``shuffle`` ``None`` (the cascade never
    materialises an index).  ``batch_id`` is ``None`` when the result
    short-circuited through the cache and never entered the batcher;
    otherwise it identifies the compiled sweep this request shared with
    ``lanes − 1`` others and links the response to its batch span in the
    trace.

    ``mode`` records which rung of the serving ladder produced the
    result: ``"direct"`` (the base service's in-process engine),
    ``"worker"`` (a supervised tier's compiled worker), ``"fallback"``
    (the supervised tier degraded to its in-process interp fallback for
    this sweep) or ``"cached"`` (never swept at all).  Clients and the
    load generator use it to count degraded-mode service separately
    from healthy service.
    """

    request_id: int
    workload: str
    n: int
    index: int | None
    permutation: tuple[int, ...]
    batch_id: int | None
    lanes: int
    cached: bool
    queued_s: float
    sweep_s: float
    total_s: float
    mode: str = "direct"


@dataclass(frozen=True)
class WideResponse:
    """A served *wide* request: ``count`` permutations behind one future.

    The network front end submits one entry per socket frame however
    many indices the frame carries; the whole frame resolves through a
    single future into this response.  ``permutations`` is a
    ``(count, n)`` int64 array (rows in request order) rather than
    per-row tuples — the socket encoder reads it straight into packed
    wire bytes, so nothing materialises a million Python ints on the hot
    path.  ``indices`` are the indices actually unranked (server-drawn
    for ``random_perm``), ``None`` for shuffles.  Provenance fields
    mirror :class:`Response`.
    """

    request_id: int
    workload: str
    n: int
    count: int
    indices: tuple[int, ...] | None
    permutations: object  # (count, n) np.ndarray
    batch_id: int | None
    lanes: int
    cached: bool
    queued_s: float
    sweep_s: float
    total_s: float
    mode: str = "direct"


def validate_request(req: Request, max_n: int) -> None:
    """Reject a malformed request with :class:`InvalidRequestError`.

    Checks workload spelling, the ``n`` bounds (``shuffle`` needs at
    least two elements; everything is capped at ``max_n`` so one request
    cannot make the service compile an astronomically large netlist),
    and the index contract described on :class:`Request`.
    """
    if req.workload not in WORKLOADS:
        raise InvalidRequestError(
            f"unknown workload {req.workload!r}; expected one of "
            + ", ".join(WORKLOADS)
        )
    if isinstance(req.n, bool) or not isinstance(req.n, int):
        raise InvalidRequestError(f"n must be an integer, got {req.n!r}")
    floor = 2 if req.workload == "shuffle" else 1
    if not (floor <= req.n <= max_n):
        raise InvalidRequestError(
            f"n={req.n} outside {floor}..{max_n} for workload {req.workload!r}"
        )
    if req.workload == "unrank":
        if req.index is None:
            raise InvalidRequestError("unrank requires an index")
        if isinstance(req.index, bool) or not isinstance(req.index, int):
            raise InvalidRequestError(f"index must be an integer, got {req.index!r}")
        limit = factorial(req.n)
        if not (0 <= req.index < limit):
            raise InvalidRequestError(
                f"index {req.index} outside 0..{limit - 1} for n={req.n}"
            )
    elif req.index is not None:
        raise InvalidRequestError(
            f"workload {req.workload!r} draws its own randomness; "
            "index must not be supplied"
        )


def validate_wide(
    workload: str,
    n: int,
    count: int,
    indices,
    max_n: int,
    max_count: int,
) -> None:
    """Reject a malformed wide submission with :class:`InvalidRequestError`.

    Same rules as :func:`validate_request` applied per frame: workload
    spelling, the ``n`` bounds, the index contract (``unrank`` supplies
    exactly ``count`` in-range indices, the random workloads none), plus
    the wide-specific ``count`` bounds — at least one lane, at most
    ``max_count`` (the service's ``max_batch``: a wider entry could
    never fit one sweep).
    """
    if workload not in WORKLOADS:
        raise InvalidRequestError(
            f"unknown workload {workload!r}; expected one of " + ", ".join(WORKLOADS)
        )
    if isinstance(n, bool) or not isinstance(n, int):
        raise InvalidRequestError(f"n must be an integer, got {n!r}")
    floor = 2 if workload == "shuffle" else 1
    if not (floor <= n <= max_n):
        raise InvalidRequestError(
            f"n={n} outside {floor}..{max_n} for workload {workload!r}"
        )
    if isinstance(count, bool) or not isinstance(count, int):
        raise InvalidRequestError(f"count must be an integer, got {count!r}")
    if not (1 <= count <= max_count):
        raise InvalidRequestError(f"count {count} outside 1..{max_count}")
    if workload == "unrank":
        if indices is None:
            raise InvalidRequestError("unrank requires indices")
        if len(indices) != count:
            raise InvalidRequestError(
                f"unrank sent {len(indices)} indices for count={count}"
            )
        limit = factorial(n)
        for i in indices:
            if isinstance(i, bool) or not isinstance(i, int):
                raise InvalidRequestError(f"index must be an integer, got {i!r}")
            if not (0 <= i < limit):
                raise InvalidRequestError(
                    f"index {i} outside 0..{limit - 1} for n={n}"
                )
    elif indices is not None:
        raise InvalidRequestError(
            f"workload {workload!r} draws its own randomness; "
            "indices must not be supplied"
        )
