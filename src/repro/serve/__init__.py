"""Batch-serving layer over the compiled permutation engines.

This package turns the bit-packed compiled simulator into a
request-serving hot path: a typed request/response model
(:mod:`repro.serve.model`), a micro-batcher that coalesces concurrent
requests into packed sweep lanes (:mod:`repro.serve.batcher`), a bounded
LRU result cache (:mod:`repro.serve.cache`), admission control with
typed load-shedding, and the :class:`PermutationService` front end tying
them together (:mod:`repro.serve.service`).  A closed-loop synthetic
load generator (:mod:`repro.serve.loadgen`) drives it for the CLI
``serve`` subcommand and the serving benchmark.

On top of the single-process service sits the supervised tier
(:mod:`repro.serve.supervisor`): per-shard workers with heartbeats,
stall detection, restart-with-backoff, circuit breakers and a
worker → fallback → cache-only degradation ladder, with every served
batch end-to-end oracle-checked.  The chaos harness
(:mod:`repro.serve.chaos`) injects crashes, stalls, delays and payload
corruption on a seeded schedule to prove the tier's invariants — no
wrong permutation is ever served, killed workers restart, availability
holds a floor while degraded.

The multi-process tier (:mod:`repro.serve.pool`) moves sweeps into real
worker processes — one shard group per ``(kind, n)`` with configurable
replica counts, results returned through shared-memory rings — and the
network tier (:mod:`repro.serve.net`) exposes the whole stack over a
length-prefixed binary TCP protocol (``repro-serve/1``).
"""

from repro.serve.batcher import Batch, MicroBatcher, PendingEntry
from repro.serve.cache import ResultCache
from repro.serve.chaos import (
    CHAOS_EVENTS,
    ChaosMonkey,
    ChaosSpec,
    SweepPlan,
    run_chaos_campaign,
)
from repro.serve.engine import ConverterEngine, EngineBank, ShuffleEngine
from repro.serve.loadgen import (
    LoadReport,
    percentile,
    run_closed_loop,
    run_socket_loadgen,
)
from repro.serve.model import (
    WORKLOADS,
    Request,
    Response,
    WideResponse,
    validate_request,
    validate_wide,
)
from repro.serve.net import NetServer, ServeConnection
from repro.serve.pool import PoolConfig, PooledService, WorkerPool
from repro.serve.service import (
    CompletionFuture,
    PermutationService,
    ServiceConfig,
    serve_bulk,
)
from repro.serve.supervisor import (
    BREAKER_STATES,
    BreakerConfig,
    CircuitBreaker,
    FunctionalConverterEngine,
    ShardWorker,
    SupervisedService,
    SupervisorConfig,
    SweepSupervisor,
)

__all__ = [
    "WORKLOADS",
    "Request",
    "Response",
    "validate_request",
    "MicroBatcher",
    "Batch",
    "PendingEntry",
    "ResultCache",
    "ConverterEngine",
    "ShuffleEngine",
    "EngineBank",
    "CompletionFuture",
    "PermutationService",
    "ServiceConfig",
    "serve_bulk",
    "LoadReport",
    "run_closed_loop",
    "run_socket_loadgen",
    "percentile",
    "WideResponse",
    "validate_wide",
    "NetServer",
    "ServeConnection",
    "PoolConfig",
    "WorkerPool",
    "PooledService",
    "BREAKER_STATES",
    "BreakerConfig",
    "CircuitBreaker",
    "SupervisorConfig",
    "ShardWorker",
    "FunctionalConverterEngine",
    "SweepSupervisor",
    "SupervisedService",
    "CHAOS_EVENTS",
    "ChaosSpec",
    "SweepPlan",
    "ChaosMonkey",
    "run_chaos_campaign",
]
