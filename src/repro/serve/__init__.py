"""Batch-serving layer over the compiled permutation engines.

This package turns the bit-packed compiled simulator into a
request-serving hot path: a typed request/response model
(:mod:`repro.serve.model`), a micro-batcher that coalesces concurrent
requests into packed sweep lanes (:mod:`repro.serve.batcher`), a bounded
LRU result cache (:mod:`repro.serve.cache`), admission control with
typed load-shedding, and the :class:`PermutationService` front end tying
them together (:mod:`repro.serve.service`).  A closed-loop synthetic
load generator (:mod:`repro.serve.loadgen`) drives it for the CLI
``serve`` subcommand and the serving benchmark.
"""

from repro.serve.batcher import Batch, MicroBatcher, PendingEntry
from repro.serve.cache import ResultCache
from repro.serve.engine import ConverterEngine, EngineBank, ShuffleEngine
from repro.serve.loadgen import LoadReport, percentile, run_closed_loop
from repro.serve.model import WORKLOADS, Request, Response, validate_request
from repro.serve.service import (
    CompletionFuture,
    PermutationService,
    ServiceConfig,
    serve_bulk,
)

__all__ = [
    "WORKLOADS",
    "Request",
    "Response",
    "validate_request",
    "MicroBatcher",
    "Batch",
    "PendingEntry",
    "ResultCache",
    "ConverterEngine",
    "ShuffleEngine",
    "EngineBank",
    "CompletionFuture",
    "PermutationService",
    "ServiceConfig",
    "serve_bulk",
    "LoadReport",
    "run_closed_loop",
    "percentile",
]
